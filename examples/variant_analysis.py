"""Variant analysis: MSA-based SNP discovery + Pair-HMM genotyping.

Combines the paper's STAR (multiple sequence alignment) and PairHMM
(GATK-style likelihood) substrates on one synthetic locus: align a
family of haplotype observations, call candidate SNP columns, then
score reads against the two candidate haplotypes with the Pair-HMM
forward algorithm.

Run:  python examples/variant_analysis.py
"""

import random

from repro.core import format_table
from repro.data.synth import mutate, random_dna
from repro.genomics.hmm import forward_log_likelihood
from repro.genomics.msa import center_star
from repro.genomics.scoring import ScoringScheme
from repro.genomics.sequence import Sequence


def build_locus(seed: int = 21):
    """A reference locus plus an alternate allele and noisy samples."""
    rng = random.Random(seed)
    reference = random_dna(120, rng)
    # The alternate haplotype differs by one SNP in the middle.
    snp_pos = 60
    alt_base = {"A": "G", "C": "T", "G": "A", "T": "C"}[reference[snp_pos]]
    alternate = reference[:snp_pos] + alt_base + reference[snp_pos + 1:]

    samples = []
    for i in range(8):
        haplotype = alternate if i % 2 else reference
        observed = mutate(haplotype, rng, substitution_rate=0.005)
        samples.append(Sequence(f"sample{i}", observed))
    return reference, alternate, snp_pos, samples


def call_snps(samples) -> list[int]:
    msa = center_star(samples, ScoringScheme.dna_default())
    candidates = msa.snp_columns(min_minor=3)
    print(f"MSA of {len(samples)} samples, width {msa.width}")
    print(f"candidate SNP columns (minor allele >= 3): {candidates}")
    return candidates


def genotype_reads(reference: str, alternate: str, seed: int = 22) -> None:
    rng = random.Random(seed)
    rows = []
    for i in range(6):
        haplotype = alternate if i % 2 else reference
        start = rng.randint(0, 40)
        read = mutate(haplotype[start:start + 60], rng,
                      substitution_rate=0.01)
        log_ref = forward_log_likelihood(read, reference)
        log_alt = forward_log_likelihood(read, alternate)
        call = "alt" if log_alt > log_ref else "ref"
        truth = "alt" if i % 2 else "ref"
        rows.append({
            "read": f"read{i}",
            "log10_P(ref)": round(log_ref, 2),
            "log10_P(alt)": round(log_alt, 2),
            "call": call,
            "truth": truth,
            "correct": call == truth,
        })
    print("\nPair-HMM genotyping:")
    print(format_table(rows))


if __name__ == "__main__":
    reference, alternate, snp_pos, samples = build_locus()
    print(f"true SNP at reference position {snp_pos}\n")
    call_snps(samples)
    genotype_reads(reference, alternate)
