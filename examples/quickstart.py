"""Quickstart: align sequences, then characterize a kernel on the GPU model.

Run:  python examples/quickstart.py
"""

from repro.core import BenchmarkSuite, baseline_config, format_breakdown
from repro.genomics.align import needleman_wunsch, smith_waterman
from repro.genomics.scoring import ScoringScheme


def alignment_demo() -> None:
    """The functional layer: real alignments with real results."""
    scheme = ScoringScheme.dna_default()

    global_aln = needleman_wunsch("GATTACAGATTACA", "GATCAGATTACA", scheme)
    print("Global alignment (Needleman-Wunsch):")
    print(f"  {global_aln.aligned_query}")
    print(f"  {global_aln.aligned_target}")
    print(f"  score={global_aln.score} cigar={global_aln.cigar}")

    local_aln = smith_waterman("TTTTGATTACATTTT", "CCCGATTACACCC", scheme)
    print("\nLocal alignment (Smith-Waterman):")
    print(f"  found {local_aln.aligned_query!r} at query "
          f"{local_aln.query_start}..{local_aln.query_end}")


def simulation_demo() -> None:
    """The architecture layer: run the NW benchmark on the GPU model."""
    # A smaller machine keeps the demo instant; drop num_sms for the
    # paper's full 78-SM RTX 3070 baseline.
    suite = BenchmarkSuite(baseline_config(num_sms=16))

    print("\nTable III properties for NW:")
    props = suite.properties("NW")
    print(f"  grid={props.grid} cta={props.cta} "
          f"CTA/core={props.cta_per_core_model} (limited by {props.limiter})")

    stats = suite.run("NW")
    print(f"\nSimulated NW: {stats.instructions} instructions over "
          f"{stats.cycles} cycles (IPC {stats.ipc:.2f})")
    print(f"  kernel launches={stats.kernel_launches} "
          f"memcpys={stats.memcpy_calls}")
    print(f"  L1 miss rate {stats.l1.miss_rate:.2f}, "
          f"L2 miss rate {stats.l2.miss_rate:.2f}")

    print("\nPipeline stall breakdown (Fig 5 for NW):")
    print(format_breakdown(stats.stall_breakdown()))

    cdp = suite.run("NW", cdp=True)
    gain = 1 - cdp.device_time() / stats.device_time()
    print(f"\nCDP variant improves kernel-side time by {100 * gain:.1f}% "
          "(Fig 3)")


if __name__ == "__main__":
    alignment_demo()
    simulation_demo()
