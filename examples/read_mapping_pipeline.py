"""Short-read mapping: synthetic genome -> reads -> FM-index alignment.

The workload the paper's NvB benchmark represents, end to end on the
functional layer, followed by a microarchitectural characterization of
the same pipeline on the GPU model.

Run:  python examples/read_mapping_pipeline.py
"""

from repro.core import baseline_config, format_table
from repro.data.synth import random_dna, sample_reads
from repro.data.workloads import ReadMappingWorkload
from repro.genomics.index import ReadAligner
from repro.genomics.sequence import Sequence
from repro.kernels import build_application
from repro.sim import GPUSimulator


def build_workload() -> ReadMappingWorkload:
    reference = Sequence("chr_toy", random_dna(30_000, seed=7))
    reads = sample_reads(reference, count=80, read_length=100,
                         seed=8, error_rate=0.01)
    return ReadMappingWorkload(reference, tuple(reads))


def functional_mapping(workload: ReadMappingWorkload) -> "list":
    aligner = ReadAligner(workload.reference)
    rows = []
    correct = mapped = 0
    for record in workload.reads:
        truth = dict(
            field.split("=")
            for field in record.sequence.description.split()
        )
        mapping = aligner.map_read(record.sequence)
        if mapping is None:
            continue
        mapped += 1
        hit = abs(mapping.position - int(truth["pos"])) <= 3
        correct += hit
        if len(rows) < 8:
            rows.append({
                "read": mapping.read_name,
                "pos": mapping.position,
                "true_pos": int(truth["pos"]),
                "strand": mapping.strand,
                "mapq": mapping.mapq,
                "cigar": mapping.cigar,
            })

    print("First mappings:")
    print(format_table(rows))
    total = len(workload.reads)
    print(f"\nmapped {mapped}/{total} reads, "
          f"{correct}/{mapped} at the true locus")
    print(f"seed searches: {aligner.stats.seed_searches}, "
          f"extensions: {aligner.stats.candidates_extended}")
    return [
        (record.sequence, aligner.map_read(record.sequence))
        for record in workload.reads
    ]


def sam_and_coverage(workload: ReadMappingWorkload, mappings) -> None:
    from repro.genomics.index.sam import (
        coverage_summary,
        pileup,
        write_sam,
    )

    sam_text = write_sam(workload.reference, mappings, "toy_mappings.sam")
    print(f"\nwrote {sam_text.count(chr(10))} SAM lines to toy_mappings.sam")
    columns = pileup(workload.reference, mappings)
    summary = coverage_summary(workload.reference, columns)
    print(f"coverage breadth {100 * summary['breadth']:.1f}%, "
          f"mean depth {summary['mean_depth']:.2f}, "
          f"mismatch rate {100 * summary['mismatch_rate']:.2f}%")


def simulate_nvb(workload: ReadMappingWorkload) -> None:
    app = build_application("NvB", workload=workload)
    stats = GPUSimulator(baseline_config(num_sms=16)).run_application(app)
    print(f"\nSimulated NvB on this workload: "
          f"{stats.kernel_launches} kernel launches, "
          f"{stats.memcpy_calls} memcpys")
    breakdown = stats.stall_breakdown()
    print(f"functional-done stalls: "
          f"{100 * breakdown.get('functional_done', 0):.0f}% "
          "(the paper's NvB signature)")
    print(f"L2 miss rate: {stats.l2.miss_rate:.2f} "
          "(random FM-index lookups)")


if __name__ == "__main__":
    workload = build_workload()
    mappings = functional_mapping(workload)
    sam_and_coverage(workload, mappings)
    simulate_nvb(workload)
