"""De novo assembly: reads -> de Bruijn contigs -> validation by mapping.

Closes the loop on the genomics toolkit: sample error-containing reads
from a synthetic genome, assemble them into contigs, then validate the
contigs by aligning them back to the truth with the banded aligner.

Run:  python examples/assembly_pipeline.py
"""

from repro.core import format_table
from repro.data.synth import random_dna, sample_reads
from repro.genomics.align import semi_global
from repro.genomics.assembly import assemble
from repro.genomics.sequence import Sequence


def main() -> None:
    genome = Sequence("genome", random_dna(2000, seed=55))
    records = sample_reads(
        genome, count=1200, read_length=80, seed=56,
        error_rate=0.005, reverse_fraction=0.0,
    )
    reads = [r.sequence for r in records]
    coverage = sum(len(r) for r in reads) / len(genome)
    print(f"genome {len(genome)}bp, {len(reads)} reads "
          f"({coverage:.0f}x coverage)")

    result = assemble(reads, k=25, min_coverage=3)
    print(f"\nassembled {len(result.contigs)} contigs, "
          f"total {result.total_length}bp, N50 {result.n50()}bp, "
          f"{result.pruned_edges} error k-mers pruned")

    rows = []
    for i, contig in enumerate(result.contigs[:8]):
        aln = semi_global(contig, genome.residues)
        rows.append({
            "contig": f"contig{i}",
            "length": len(contig),
            "mapped_at": aln.target_start,
            "identity": round(aln.identity(), 4),
        })
    print()
    print(format_table(rows))

    covered = sum(len(c) for c in result.contigs)
    print(f"\ncontigs cover {100 * min(1.0, covered / len(genome)):.1f}% "
          "of the genome (before overlap dedup)")


if __name__ == "__main__":
    main()
