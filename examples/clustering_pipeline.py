"""Gene-sequence clustering with nGIA filters, plus its GPU profile.

Builds a mixture of sequence families, clusters them greedily, shows
how much work the pre-filter and short-word filter removed, then runs
the CLUSTER benchmark (and its CDP variant) on the same workload.

Run:  python examples/clustering_pipeline.py
"""

from repro.core import baseline_config, format_table
from repro.data.synth import random_dna, sequence_family
from repro.data.workloads import ClusterWorkload
from repro.genomics.cluster import greedy_cluster
from repro.genomics.sequence import Sequence
from repro.kernels import build_application
from repro.sim import GPUSimulator


def build_sequences():
    sequences = []
    for family in range(4):
        sequences.extend(
            sequence_family(8, 150, divergence=0.03, seed=family,
                            name_prefix=f"fam{family}_")
        )
    # A few unrelated singletons.
    for i in range(4):
        sequences.append(Sequence(f"single{i}", random_dna(150, seed=50 + i)))
    return sequences


def functional_clustering(sequences):
    result = greedy_cluster(sequences, identity=0.88, word_length=5)
    rows = [
        {
            "cluster": i,
            "representative": c.representative.name,
            "members": c.size,
        }
        for i, c in enumerate(result.clusters)
    ]
    print(format_table(rows))
    print(f"\n{result.num_clusters} clusters from {len(sequences)} sequences")
    print(f"pre-filter rejections:   {result.prefilter_rejections}")
    print(f"short-word rejections:   {result.short_word_rejections}")
    print(f"alignments actually run: {result.alignments_run}")
    print(f"filters removed {100 * result.filter_ratio():.0f}% of "
          "candidate comparisons")
    return result


def simulate_cluster(sequences):
    workload = ClusterWorkload(tuple(sequences), identity=0.88, word_length=5)
    config = baseline_config(num_sms=16)
    print("\nGPU characterization (CLUSTER benchmark):")
    for cdp in (False, True):
        app = build_application("CLUSTER", cdp=cdp, workload=workload)
        stats = GPUSimulator(config).run_application(app)
        occ = stats.occupancy_fractions()
        print(f"  {app.name:12s} device_time={stats.device_time():>7d} "
              f"W1-4={100 * occ['W1-4']:.0f}% "
              f"W29-32={100 * occ['W29-32']:.0f}%")
    print("(CDP recovers warp occupancy by launching full-width "
          "children for the surviving alignments)")


if __name__ == "__main__":
    sequences = build_sequences()
    functional_clustering(sequences)
    simulate_cluster(sequences)
