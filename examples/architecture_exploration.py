"""Architecture exploration: sweep hardware knobs for one kernel.

The use-case the paper motivates: use the benchmark suite to steer GPU
architecture research.  This example takes GKSW (the suite's most
memory-sensitive kernel) and sweeps cache sizes, DRAM controllers, and
interconnect widths, printing the sensitivity the paper's Figs 12, 16
and 22 report.

Run:  python examples/architecture_exploration.py
"""

from repro.core import baseline_config, format_table
from repro.core.config_presets import (
    CACHE_SWEEP,
    MEM_CONTROLLERS,
    NOC_BANDWIDTH_SWEEP,
    with_cache_sizes,
    with_controller,
    with_topology,
)
from repro.core.runner import run_benchmark

BENCH = "GKSW"
BASE = baseline_config(num_sms=16)


def sweep_caches() -> None:
    rows = []
    baseline_time = None
    for l1, l2 in CACHE_SWEEP:
        cfg = with_cache_sizes(BASE, l1, l2)
        stats = run_benchmark(BENCH, config=cfg)
        if (l1, l2) == (128 * 1024, 4 * 1024 * 1024):
            baseline_time = stats.device_time()
        rows.append({
            "L1": f"{l1 // 1024}KB",
            "L2": f"{l2 // 1024}KB",
            "cycles": stats.device_time(),
            "l1_miss": round(stats.l1.miss_rate, 2),
            "l2_miss": round(stats.l2.miss_rate, 2),
        })
    for row in rows:
        row["speedup"] = round(baseline_time / row["cycles"], 2)
    print(f"Cache sweep for {BENCH} (Fig 12/13/14):")
    print(format_table(rows))


def sweep_controllers() -> None:
    rows = []
    for controller in MEM_CONTROLLERS:
        stats = run_benchmark(BENCH, config=with_controller(BASE, controller))
        rows.append({
            "controller": controller,
            "cycles": stats.device_time(),
            "dram_efficiency": round(stats.dram.efficiency, 3),
            "row_hit_rate": round(stats.dram.row_hit_rate, 3),
        })
    print(f"\nMemory-controller sweep for {BENCH} (Fig 16/17):")
    print(format_table(rows))


def sweep_noc() -> None:
    rows = []
    for width in NOC_BANDWIDTH_SWEEP:
        cfg = with_topology(BASE, "mesh", channel_bytes=width)
        stats = run_benchmark(BENCH, config=cfg)
        rows.append({
            "channel": f"{width}B",
            "cycles": stats.device_time(),
            "noc_avg_latency": round(stats.noc.average_latency, 1),
        })
    print(f"\nInterconnect bandwidth sweep for {BENCH} on a mesh (Fig 22):")
    print(format_table(rows))


if __name__ == "__main__":
    sweep_caches()
    sweep_controllers()
    sweep_noc()
