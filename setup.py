"""Package metadata.

Kept in setup.py (legacy path) rather than a ``[project]`` table: the
target environment is offline and lacks the ``wheel`` package, so PEP
517 editable installs fail while ``setup.py develop`` works.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Genomics-GPU: a GPU-accelerated genome-analysis benchmark suite "
        "on a cycle-level GPU timing model"
    ),
    python_requires=">=3.9",
    install_requires=["numpy"],
    extras_require={"dev": ["pytest", "pytest-benchmark", "hypothesis"]},
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    entry_points={
        "console_scripts": ["genomics-gpu=repro.cli:main"],
    },
)
