"""Tests for the warp instruction model."""

import pytest

from repro.isa.instructions import (
    FULL_MASK,
    MemAccess,
    MemSpace,
    OpClass,
    WarpInstruction,
    popcount,
)


class TestPopcount:
    def test_full_mask(self):
        assert popcount(FULL_MASK) == 32

    def test_empty(self):
        assert popcount(0) == 0

    def test_truncates_to_warp_width(self):
        assert popcount(1 << 40) == 0

    @pytest.mark.parametrize("lanes", [1, 4, 17, 31])
    def test_contiguous_masks(self, lanes):
        assert popcount((1 << lanes) - 1) == lanes


class TestMemAccess:
    def test_requires_lines_for_offchip_spaces(self):
        with pytest.raises(ValueError):
            MemAccess(MemSpace.GLOBAL, ())

    def test_shared_needs_no_lines(self):
        access = MemAccess(MemSpace.SHARED, ())
        assert access.transactions == 1

    def test_transactions_counts_lines(self):
        access = MemAccess(MemSpace.GLOBAL, (1, 2, 3))
        assert access.transactions == 3


class TestWarpInstruction:
    def test_defaults(self):
        instr = WarpInstruction(OpClass.INT)
        assert instr.active_lanes == 32
        assert instr.repeat == 1

    def test_repeat_only_for_alu(self):
        WarpInstruction(OpClass.FP, repeat=4)
        with pytest.raises(ValueError):
            WarpInstruction(OpClass.CTRL, repeat=2)

    def test_repeat_positive(self):
        with pytest.raises(ValueError):
            WarpInstruction(OpClass.INT, repeat=0)

    def test_ldst_requires_mem(self):
        with pytest.raises(ValueError):
            WarpInstruction(OpClass.LDST)

    def test_mem_requires_ldst(self):
        access = MemAccess(MemSpace.GLOBAL, (1,))
        with pytest.raises(ValueError):
            WarpInstruction(OpClass.INT, mem=access)

    def test_child_requires_launch(self):
        with pytest.raises(ValueError):
            WarpInstruction(OpClass.INT, child=object())

    def test_mask_truncated(self):
        instr = WarpInstruction(OpClass.INT, mask=(1 << 40) - 1)
        assert instr.active_lanes == 32
