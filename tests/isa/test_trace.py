"""Tests for the trace builder and the coalescer."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa.instructions import MemSpace, OpClass
from repro.isa.trace import TraceBuilder, lines_for_stride


class TestCoalescer:
    def test_unit_stride_coalesces_to_one_line(self):
        # 32 lanes x 4B at stride 4 = 128B = exactly one line.
        assert lines_for_stride(0, 4, 32) == (0,)

    def test_unaligned_unit_stride_touches_two_lines(self):
        assert lines_for_stride(64, 4, 32) == (0, 1)

    def test_large_stride_one_line_per_lane(self):
        lines = lines_for_stride(0, 128, 32)
        assert len(lines) == 32

    def test_medium_stride(self):
        # Stride 32B: 4 lanes per line -> 8 lines for a full warp.
        assert len(lines_for_stride(0, 32, 32)) == 8

    def test_rejects_no_lanes(self):
        with pytest.raises(ValueError):
            lines_for_stride(0, 4, 0)

    def test_lines_sorted_unique(self):
        lines = lines_for_stride(1000, 96, 32)
        assert list(lines) == sorted(set(lines))

    @given(st.integers(min_value=0, max_value=10_000),
           st.integers(min_value=0, max_value=512),
           st.integers(min_value=1, max_value=32))
    @settings(max_examples=60)
    def test_line_count_bounded_by_lanes(self, base, stride, lanes):
        # Each 4-byte lane access can straddle at most two lines.
        lines = lines_for_stride(base, stride, lanes)
        assert 1 <= len(lines) <= 2 * lanes


class TestTraceBuilder:
    def test_mask_inherited(self):
        b = TraceBuilder()
        b.set_lanes(5)
        assert b.ints().active_lanes == 5
        assert b.ld_shared().active_lanes == 5

    def test_set_lanes_validated(self):
        b = TraceBuilder()
        with pytest.raises(ValueError):
            b.set_lanes(0)
        with pytest.raises(ValueError):
            b.set_lanes(33)

    def test_alu_repeat(self):
        b = TraceBuilder()
        assert b.ints(7).repeat == 7
        assert b.fps(3).op is OpClass.FP
        assert b.sfu().op is OpClass.SFU

    def test_memory_spaces(self):
        b = TraceBuilder()
        assert b.ld_global([1]).mem.space is MemSpace.GLOBAL
        assert b.st_global([1]).mem.store
        assert b.ld_local([1]).mem.space is MemSpace.LOCAL
        assert b.ld_const([1]).mem.space is MemSpace.CONST
        assert b.ld_tex([1]).mem.space is MemSpace.TEX
        assert b.ld_param([1]).mem.space is MemSpace.PARAM
        assert b.ld_shared().mem.space is MemSpace.SHARED
        assert b.st_shared().mem.store

    def test_control_ops(self):
        b = TraceBuilder()
        assert b.branch().op is OpClass.CTRL
        assert b.barrier().op is OpClass.SYNC
        assert b.device_sync().op is OpClass.DEVSYNC
        assert b.exit().op is OpClass.EXIT

    def test_launch_carries_child(self):
        b = TraceBuilder()
        spec = object()
        instr = b.launch(spec)
        assert instr.op is OpClass.LAUNCH
        assert instr.child is spec
