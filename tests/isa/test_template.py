"""Unit tests for the trace-template relocation solver."""

import pytest

from repro.isa import TraceBuilder
from repro.isa.instructions import OpClass
from repro.isa.template import (
    FIXED,
    build_template,
    relocate_ldst,
    structure_matches,
)


def _trace(base: int, extra_const: int = 7):
    """A small synthetic warp trace over one relocatable base."""
    b = TraceBuilder()
    return [
        b.ld_const([extra_const]),
        b.ints(3),
        b.ld_global([base, base + 1]),
        b.st_shared(),
        b.st_global([base + 9]),
        b.exit(),
    ]


def test_structure_matches_ignores_lines_only():
    a = _trace(100)
    b = _trace(2000)
    assert structure_matches(a, b)
    assert not structure_matches(a, b[:-1])  # length differs
    tb = TraceBuilder()
    c = list(a)
    c[1] = tb.ints(4)  # repeat differs
    assert not structure_matches(a, c)
    d = list(a)
    d[2] = tb.st_global([100, 101])  # store flag differs
    assert not structure_matches(a, d)


def test_relocate_ldst_preserves_everything_but_lines():
    b = TraceBuilder()
    b.set_lanes(5)
    proto = b.ld_global([10, 11, 12])
    moved = relocate_ldst(proto, (50, 51, 52))
    assert moved.op is OpClass.LDST
    assert moved.mask == proto.mask
    assert moved.active_lanes == 5
    assert moved.mem.lines == (50, 51, 52)
    assert moved.mem.space is proto.mem.space
    assert moved.mem.store == proto.mem.store
    assert moved.mem.transactions == proto.mem.transactions


def test_build_and_instantiate_single_base():
    template = build_template(_trace(100), (100,), _trace(260), (260,))
    assert template is not None
    instrs = template.instantiate((1000,))
    assert instrs is not None
    assert instrs[2].mem.lines == (1000, 1001)
    assert instrs[4].mem.lines == (1009,)
    # Non-relocated instructions are shared with the proto outright.
    assert instrs[0] is template.proto[0]
    assert instrs[1] is template.proto[1]
    assert instrs[3] is template.proto[3]
    assert instrs[5] is template.proto[5]


def test_class_constant_lines_stay_fixed():
    template = build_template(_trace(100), (100,), _trace(260), (260,))
    instrs = template.instantiate((40,))
    # The const load is class-constant: same line for every member.
    assert instrs[0].mem.lines == (7,)


def test_structure_mismatch_kills_class():
    b = TraceBuilder()
    probe0 = _trace(100)
    probe1 = _trace(260)
    probe1[1] = b.fps(3)  # different op class at the same position
    assert build_template(probe0, (100,), probe1, (260,)) is None


def test_unsolvable_line_kills_class():
    probe0 = _trace(100)
    probe1 = _trace(260)
    b = TraceBuilder()
    # A line that is neither constant nor base-relative between probes.
    probe0[4] = b.st_global([100 + 9])
    probe1[4] = b.st_global([260 + 12])
    assert build_template(probe0, (100,), probe1, (260,)) is None


def test_ambiguity_resolved_by_refine():
    # Two bases moving in lockstep between the probes: every line is
    # explainable by either region, so a member whose bases *diverge*
    # cannot be instantiated until a live trace disambiguates.
    b = TraceBuilder()

    def trace(x, y):
        return [b.ld_global([x + 5]), b.st_global([y + 3]), b.exit()]

    template = build_template(
        trace(100, 200), (100, 200), trace(150, 250), (150, 250)
    )
    assert template is not None
    # Lockstep member: both interpretations agree.
    assert template.instantiate((300, 400)) is not None
    # Diverged member: interpretations disagree -> ambiguous.
    assert template.instantiate((300, 900)) is None
    # A live trace for the diverged member narrows the candidates...
    assert template.refine(trace(300, 900), (300, 900))
    # ...after which the same member instantiates exactly.
    instrs = template.instantiate((300, 900))
    assert instrs is not None
    assert instrs[0].mem.lines == (305,)
    assert instrs[1].mem.lines == (903,)


def test_refine_detects_contract_violation():
    template = build_template(_trace(100), (100,), _trace(260), (260,))
    b = TraceBuilder()
    rogue = _trace(500)
    rogue[4] = b.st_global([99999])  # not base + 9 for any candidate
    assert not template.refine(rogue, (500,))


def test_instantiated_traces_share_instruction_objects():
    template = build_template(_trace(100), (100,), _trace(260), (260,))
    first = template.instantiate((1000,))
    second = template.instantiate((5000,))
    # ALU/shared/exit instructions are the same objects across members;
    # only the relocated LDSTs differ.
    assert first[1] is second[1]
    assert first[3] is second[3]
    assert first[5] is second[5]
    assert first[2] is not second[2]


def test_launch_instructions_never_match():
    b = TraceBuilder()
    probe = [b.ints(1), b.exit()]
    with_launch = [b.launch(object()), b.exit()]
    assert not structure_matches(with_launch, with_launch)
    assert build_template(
        probe, (), [b.ints(1), b.exit()], ()
    ) is not None


@pytest.mark.parametrize("bases", [(), (100, 200, 300)])
def test_empty_trace_class(bases):
    b = TraceBuilder()
    template = build_template([b.exit()], bases, [b.exit()], bases)
    assert template is not None
    instrs = template.instantiate(bases)
    assert len(instrs) == 1
    assert instrs[0].op is OpClass.EXIT
