"""Tests for Myers' bit-parallel edit distance."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.genomics.align.myers import (
    best_edit_window,
    edit_distance,
    within_distance,
)

dna = st.text(alphabet="ACGT", min_size=0, max_size=40)


def dp_edit_distance(a: str, b: str) -> int:
    """Classic O(mn) Wagner-Fischer reference."""
    prev = list(range(len(b) + 1))
    for i, ca in enumerate(a, start=1):
        cur = [i] + [0] * len(b)
        for j, cb in enumerate(b, start=1):
            cur[j] = min(
                prev[j] + 1,
                cur[j - 1] + 1,
                prev[j - 1] + (ca != cb),
            )
        prev = cur
    return prev[-1]


class TestEditDistance:
    @pytest.mark.parametrize("a,b,expected", [
        ("", "", 0),
        ("ACGT", "ACGT", 0),
        ("ACGT", "AGGT", 1),
        ("ACGT", "ACG", 1),
        ("ACGT", "", 4),
        ("", "ACGT", 4),
        ("GATTACA", "GCATGCT", 4),
        ("AAAA", "TTTT", 4),
    ])
    def test_known_values(self, a, b, expected):
        assert edit_distance(a, b) == expected

    @given(dna, dna)
    @settings(max_examples=80, deadline=None)
    def test_matches_dp_reference(self, a, b):
        assert edit_distance(a, b) == dp_edit_distance(a, b)

    @given(dna, dna)
    @settings(max_examples=40, deadline=None)
    def test_symmetry(self, a, b):
        assert edit_distance(a, b) == edit_distance(b, a)

    @given(dna, dna, dna)
    @settings(max_examples=30, deadline=None)
    def test_triangle_inequality(self, a, b, c):
        assert edit_distance(a, c) <= \
            edit_distance(a, b) + edit_distance(b, c)


class TestWithinDistance:
    def test_filter_accepts_close_pairs(self):
        assert within_distance("GATTACA", "GATTACA", 0)
        assert within_distance("GATTACA", "GATTCCA", 1)

    def test_filter_rejects_far_pairs(self):
        assert not within_distance("AAAA", "TTTT", 3)

    def test_length_shortcut(self):
        assert not within_distance("A" * 10, "A" * 20, 5)

    def test_rejects_negative_k(self):
        with pytest.raises(ValueError):
            within_distance("A", "A", -1)

    @given(dna, dna, st.integers(min_value=0, max_value=10))
    @settings(max_examples=40, deadline=None)
    def test_never_wrong(self, a, b, k):
        assert within_distance(a, b, k) == (dp_edit_distance(a, b) <= k)


class TestBestEditWindow:
    def test_exact_occurrence(self):
        result = best_edit_window("GATTACA", "TTTGATTACATTT")
        assert result == (10, 0)  # window ends after the match

    def test_one_error_occurrence(self):
        result = best_edit_window("GATTACA", "TTTGATCACATTT")
        assert result is not None
        assert result[1] == 1

    def test_max_k_rejects(self):
        assert best_edit_window("AAAA", "TTTTTTTT", max_k=2) is None

    def test_empty_inputs(self):
        assert best_edit_window("", "ACGT") is None
        assert best_edit_window("ACGT", "") is None

    @given(dna.filter(lambda s: len(s) >= 3),
           st.text(alphabet="ACGT", min_size=0, max_size=10),
           st.text(alphabet="ACGT", min_size=0, max_size=10))
    @settings(max_examples=40, deadline=None)
    def test_embedded_pattern_found_exactly(self, pattern, left, right):
        target = left + pattern + right
        result = best_edit_window(pattern, target)
        assert result is not None
        assert result[1] == 0
