"""Tests for the Pair-HMM forward algorithm."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.genomics.hmm import (
    PairHMMParameters,
    forward_likelihood,
    forward_log_likelihood,
    likelihood_matrix,
)

dna = st.text(alphabet="ACGT", min_size=1, max_size=12)


class TestParameters:
    def test_defaults_valid(self):
        p = PairHMMParameters()
        assert 0 < p.match_continue < 1
        assert 0 < p.gap_to_match < 1

    @pytest.mark.parametrize("field,value", [
        ("gap_open", 0.0), ("gap_open", 1.0),
        ("gap_extend", -0.1), ("base_error", 2.0),
    ])
    def test_rejects_out_of_range(self, field, value):
        with pytest.raises(ValueError):
            PairHMMParameters(**{field: value})

    def test_rejects_too_large_gap_open(self):
        with pytest.raises(ValueError, match="gap_open"):
            PairHMMParameters(gap_open=0.6)


class TestForwardLikelihood:
    def test_perfect_match_is_likely(self):
        assert forward_likelihood("ACGT", "ACGT") > 0.1

    def test_mismatch_much_less_likely(self):
        perfect = forward_likelihood("ACGT", "ACGT")
        mismatched = forward_likelihood("ACGA", "ACGT")
        assert mismatched < perfect / 50

    def test_probability_in_unit_interval(self):
        p = forward_likelihood("ACGTACGT", "ACGTACGT")
        assert 0.0 < p <= 1.0

    def test_read_matching_haplotype_interior(self):
        # Free alignment start/end: interior matches stay likely.
        p = forward_likelihood("ACGT", "TTTTACGTTTTT")
        assert p > 0.05

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            forward_likelihood("", "ACGT")
        with pytest.raises(ValueError):
            forward_likelihood("ACGT", "")

    def test_qualities_length_checked(self):
        with pytest.raises(ValueError):
            forward_likelihood("ACGT", "ACGT", qualities=[0.01])

    def test_qualities_override_base_error(self):
        low_q = forward_likelihood("ACGA", "ACGT", qualities=[0.2] * 4)
        high_q = forward_likelihood("ACGA", "ACGT", qualities=[0.001] * 4)
        # With low base quality the mismatch is cheaper to explain.
        assert low_q > high_q

    def test_better_haplotype_wins(self):
        read = "ACGTACGT"
        right = forward_likelihood(read, "ACGTACGT")
        wrong = forward_likelihood(read, "ACGTTCGT")
        assert right > wrong

    @given(dna, dna)
    @settings(max_examples=50, deadline=None)
    def test_likelihood_is_probability(self, read, hap):
        p = forward_likelihood(read, hap)
        assert 0.0 <= p <= 1.0

    @given(dna)
    @settings(max_examples=30, deadline=None)
    def test_self_alignment_beats_shuffled(self, read):
        shuffled = read[::-1]
        p_self = forward_likelihood(read, read)
        p_shuf = forward_likelihood(read, shuffled)
        assert p_self >= p_shuf or read == shuffled or p_self > 1e-12

    def test_invariant_under_tandem_padding(self):
        """Repeating the haplotype multiplies alignment starts but the
        uniform 1/H prior divides them back out: the likelihood is
        (nearly) invariant, never inflated."""
        core = forward_likelihood("ACG", "ACG")
        padded = forward_likelihood("ACG", "ACG" * 4)
        assert padded == pytest.approx(core, rel=0.01)


class TestLogLikelihood:
    def test_log10_of_forward(self):
        p = forward_likelihood("ACGT", "ACGT")
        assert forward_log_likelihood("ACGT", "ACGT") == pytest.approx(
            math.log10(p)
        )

    def test_negative_for_probabilities(self):
        assert forward_log_likelihood("ACGT", "ACGT") < 0


class TestLikelihoodMatrix:
    def test_shape(self):
        m = likelihood_matrix(["ACGT", "AAAA"], ["ACGT", "CCCC", "ACGA"])
        assert m.shape == (2, 3)

    def test_diagonal_dominance(self):
        haps = ["ACGTACGTAC", "TTTTGGGGCC"]
        reads = [h for h in haps]
        m = likelihood_matrix(reads, haps)
        assert m[0, 0] > m[0, 1]
        assert m[1, 1] > m[1, 0]

    def test_matches_scalar_calls(self):
        reads, haps = ["ACGT"], ["ACGTT"]
        m = likelihood_matrix(reads, haps)
        assert m[0, 0] == pytest.approx(
            forward_log_likelihood("ACGT", "ACGTT")
        )

    def test_all_finite(self):
        m = likelihood_matrix(["ACGT", "GGGG"], ["CCCC", "ACGT"])
        assert np.isfinite(m).all()
