"""Tests for nGIA-style clustering, k-mer filters, and packing."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.data.synth import random_dna, sequence_family
from repro.genomics.cluster import (
    greedy_cluster,
    kmer_profile,
    pack_dna,
    shared_kmer_count,
    short_word_bound,
    unpack_dna,
)
from repro.genomics.cluster.packing import packed_words
from repro.genomics.sequence import Sequence

dna = st.text(alphabet="ACGT", min_size=0, max_size=100)


class TestPacking:
    def test_roundtrip_simple(self):
        text = "ACGTACGTACGT"
        assert unpack_dna(pack_dna(text), len(text)) == text

    def test_sixteen_residues_per_word(self):
        assert len(pack_dna("A" * 16)) == 1
        assert len(pack_dna("A" * 17)) == 2

    def test_rejects_wildcard(self):
        with pytest.raises(ValueError, match="cannot pack"):
            pack_dna("ACGN")

    def test_empty(self):
        assert pack_dna("") == []
        assert unpack_dna([], 0) == ""

    def test_unpack_length_too_long(self):
        with pytest.raises(ValueError):
            unpack_dna(pack_dna("ACGT"), 20)

    def test_packed_words(self):
        assert packed_words(0) == 0
        assert packed_words(1) == 1
        assert packed_words(16) == 1
        assert packed_words(17) == 2

    @given(dna)
    @settings(max_examples=60)
    def test_roundtrip_property(self, text):
        assert unpack_dna(pack_dna(text), len(text)) == text

    @given(dna)
    @settings(max_examples=40)
    def test_packing_is_4x_compression(self, text):
        assert len(pack_dna(text)) == packed_words(len(text))


class TestKmerFilter:
    def test_profile_counts(self):
        profile = kmer_profile("ACACA", 2)
        assert profile["AC"] == 2
        assert profile["CA"] == 2

    def test_profile_rejects_bad_k(self):
        with pytest.raises(ValueError):
            kmer_profile("ACGT", 0)

    def test_shared_count_multiset(self):
        a = kmer_profile("ACACAC", 2)
        b = kmer_profile("ACAC", 2)
        # b has AC x2, CA x1; a has AC x3, CA x2 -> shared 3.
        assert shared_kmer_count(a, b) == 3

    def test_shared_count_symmetric(self):
        a = kmer_profile("ACGTACGT", 3)
        b = kmer_profile("CGTACG", 3)
        assert shared_kmer_count(a, b) == shared_kmer_count(b, a)

    def test_identical_sequences_pass_bound(self):
        text = random_dna(80, seed=3)
        profile = kmer_profile(text, 5)
        bound = short_word_bound(len(text), 5, 0.95)
        assert shared_kmer_count(profile, profile) >= bound

    def test_bound_clamps_at_zero(self):
        assert short_word_bound(20, 5, 0.1) == 0

    def test_bound_rejects_bad_identity(self):
        with pytest.raises(ValueError):
            short_word_bound(20, 5, 1.5)

    @given(st.text(alphabet="ACGT", min_size=30, max_size=80),
           st.integers(min_value=0, max_value=4))
    @settings(max_examples=40, deadline=None)
    def test_bound_is_sound(self, text, n_mut):
        """A pair within the mutation budget always passes the filter.

        This is the counting argument the filter's correctness rests
        on: if it ever rejected a pair that meets the identity
        threshold, clustering would split true clusters.
        """
        k = 4
        mutated = list(text)
        for i in range(n_mut):
            pos = (i * 7919) % len(text)
            mutated[pos] = "A" if text[pos] != "A" else "C"
        mutated = "".join(mutated)
        identity = 1.0 - n_mut / len(text)
        bound = short_word_bound(len(text), k, identity)
        shared = shared_kmer_count(
            kmer_profile(text, k), kmer_profile(mutated, k)
        )
        assert shared >= bound


class TestGreedyCluster:
    def _family_workload(self):
        fams = []
        for f in range(3):
            fams.extend(
                sequence_family(5, 100, divergence=0.03, seed=f,
                                name_prefix=f"f{f}_")
            )
        return fams

    def test_families_cluster_together(self):
        result = greedy_cluster(self._family_workload(), identity=0.85)
        assert result.num_clusters == 3
        assignments = result.assignments()
        for f in range(3):
            family_ids = {assignments[f"f{f}_{i}"] for i in range(5)}
            assert len(family_ids) == 1

    def test_unrelated_sequences_stay_apart(self):
        seqs = [Sequence(f"r{i}", random_dna(100, seed=i)) for i in range(6)]
        result = greedy_cluster(seqs, identity=0.9)
        assert result.num_clusters == 6

    def test_representative_is_longest_member(self):
        seqs = [
            Sequence("long", "ACGTACGTACGTACGTACGT"),
            Sequence("short", "ACGTACGTACGTACGT"),
        ]
        result = greedy_cluster(seqs, identity=0.8)
        assert result.clusters[0].representative.name == "long"

    def test_identity_threshold_validated(self):
        with pytest.raises(ValueError):
            greedy_cluster([Sequence("s", "ACGT")], identity=0.0)

    def test_filters_count_work(self):
        result = greedy_cluster(self._family_workload(), identity=0.85)
        total = (
            result.prefilter_rejections
            + result.short_word_rejections
            + result.alignments_run
        )
        assert total > 0
        assert 0.0 <= result.filter_ratio() <= 1.0

    def test_trail_covers_every_sequence(self):
        seqs = self._family_workload()
        result = greedy_cluster(seqs, identity=0.85)
        assert len(result.trail) == len(seqs)
        indexes = sorted(r["index"] for r in result.trail)
        assert indexes == list(range(len(seqs)))

    def test_trail_totals_match_counters(self):
        result = greedy_cluster(self._family_workload(), identity=0.85)
        assert (
            sum(r["prefilter"] for r in result.trail)
            == result.prefilter_rejections
        )
        assert (
            sum(r["shortword"] for r in result.trail)
            == result.short_word_rejections
        )
        assert sum(r["aligned"] for r in result.trail) == result.alignments_run

    def test_every_sequence_assigned_exactly_once(self):
        seqs = self._family_workload()
        result = greedy_cluster(seqs, identity=0.85)
        members = [m.name for c in result.clusters for m in c.members]
        assert sorted(members) == sorted(s.name for s in seqs)

    def test_deterministic(self):
        seqs = self._family_workload()
        a = greedy_cluster(seqs, identity=0.85)
        b = greedy_cluster(seqs, identity=0.85)
        assert a.assignments() == b.assignments()

    def test_higher_identity_never_fewer_clusters(self):
        seqs = self._family_workload()
        low = greedy_cluster(seqs, identity=0.7).num_clusters
        high = greedy_cluster(seqs, identity=0.99).num_clusters
        assert high >= low


class TestMinHashPrefilter:
    def _mixture(self):
        from repro.data.synth import random_dna

        seqs = []
        for f in range(3):
            seqs.extend(
                sequence_family(5, 120, divergence=0.03, seed=f,
                                name_prefix=f"mh{f}_")
            )
        seqs += [
            Sequence(f"mhs{i}", random_dna(120, seed=90 + i))
            for i in range(3)
        ]
        return seqs

    def test_minhash_matches_word_filter_clustering(self):
        seqs = self._mixture()
        words = greedy_cluster(seqs, identity=0.88, prefilter="words")
        sketches = greedy_cluster(seqs, identity=0.88, prefilter="minhash")
        assert words.assignments() == sketches.assignments()

    def test_minhash_filter_still_rejects(self):
        seqs = self._mixture()
        result = greedy_cluster(seqs, identity=0.88, prefilter="minhash")
        assert result.short_word_rejections > 0

    def test_unknown_prefilter_rejected(self):
        with pytest.raises(ValueError, match="prefilter"):
            greedy_cluster([Sequence("s", "ACGT")], prefilter="bloom")
