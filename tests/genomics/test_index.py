"""Tests for suffix array, BWT, FM-index, and the read aligner."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.data.synth import random_dna, sample_reads
from repro.genomics.index import (
    FMIndex,
    ReadAligner,
    bwt_from_sa,
    inverse_bwt,
    suffix_array,
)
from repro.genomics.sequence import Sequence

dna = st.text(alphabet="ACGT", min_size=1, max_size=60)
text_no_sentinel = st.text(
    alphabet=st.characters(min_codepoint=97, max_codepoint=122),
    min_size=1, max_size=40,
)


def naive_suffix_array(text: str) -> list[int]:
    return sorted(range(len(text)), key=lambda i: text[i:])


class TestSuffixArray:
    def test_banana(self):
        assert suffix_array("banana") == naive_suffix_array("banana")

    def test_empty_and_single(self):
        assert suffix_array("") == []
        assert suffix_array("x") == [0]

    def test_repetitive(self):
        text = "abab" * 8
        assert suffix_array(text) == naive_suffix_array(text)

    def test_all_same_character(self):
        text = "a" * 20
        assert suffix_array(text) == list(range(19, -1, -1))

    @given(text_no_sentinel)
    @settings(max_examples=60, deadline=None)
    def test_matches_naive(self, text):
        assert suffix_array(text) == naive_suffix_array(text)


class TestBWT:
    def test_known_value(self):
        assert bwt_from_sa("banana") == "annb$aa"

    def test_rejects_sentinel_in_text(self):
        with pytest.raises(ValueError):
            bwt_from_sa("ba$na")

    def test_inverse_requires_one_sentinel(self):
        with pytest.raises(ValueError):
            inverse_bwt("abc")
        with pytest.raises(ValueError):
            inverse_bwt("a$b$")

    def test_roundtrip_known(self):
        assert inverse_bwt("annb$aa") == "banana"

    @given(text_no_sentinel)
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, text):
        assert inverse_bwt(bwt_from_sa(text)) == text

    @given(text_no_sentinel)
    @settings(max_examples=40, deadline=None)
    def test_bwt_is_permutation(self, text):
        bwt = bwt_from_sa(text)
        assert sorted(bwt) == sorted(text + "$")


class TestFMIndex:
    def test_count_matches_str_count_with_overlaps(self):
        text = "banana" * 4
        fm = FMIndex(text)
        # str.count misses overlaps; count manually.
        expected = sum(
            1 for i in range(len(text)) if text.startswith("ana", i)
        )
        assert fm.count("ana") == expected

    def test_absent_pattern(self):
        fm = FMIndex("banana")
        assert fm.count("zzz") == 0
        assert fm.locate("zzz") == []

    def test_empty_pattern_matches_everywhere(self):
        fm = FMIndex("abc")
        assert fm.count("") == 4  # including the sentinel row

    def test_locate_positions_correct(self):
        text = "abracadabra"
        fm = FMIndex(text)
        assert fm.locate("abra") == [0, 7]
        assert fm.locate("a") == [0, 3, 5, 7, 10]

    def test_locate_limit(self):
        fm = FMIndex("aaaaaaaa")
        assert len(fm.locate("a", limit=3)) == 3

    def test_full_text_found(self):
        fm = FMIndex("mississippi")
        assert fm.locate("mississippi") == [0]

    def test_sampling_rates_validated(self):
        with pytest.raises(ValueError):
            FMIndex("abc", occ_rate=0)

    def test_counters_track_work(self):
        fm = FMIndex("banana" * 10)
        fm.reset_counters()
        fm.locate("ana")
        assert fm.occ_lookups > 0

    @given(dna, st.integers(min_value=1, max_value=5))
    @settings(max_examples=40, deadline=None)
    def test_count_locate_consistent(self, text, k):
        fm = FMIndex(text)
        pattern = text[:k]
        positions = fm.locate(pattern)
        assert len(positions) == fm.count(pattern)
        for pos in positions:
            assert text[pos : pos + len(pattern)] == pattern

    @given(dna)
    @settings(max_examples=30, deadline=None)
    def test_every_suffix_locatable(self, text):
        fm = FMIndex(text)
        for start in range(0, len(text), max(1, len(text) // 4)):
            pattern = text[start:]
            assert start in fm.locate(pattern)


class TestReadAligner:
    @pytest.fixture(scope="class")
    def reference(self):
        return Sequence("ref", random_dna(4000, seed=42))

    @pytest.fixture(scope="class")
    def aligner(self, reference):
        return ReadAligner(reference)

    def test_maps_exact_forward_read(self, reference, aligner):
        read = Sequence("r", reference.residues[100:180])
        mapping = aligner.map_read(read)
        assert mapping is not None
        assert mapping.position == 100
        assert mapping.strand == "+"
        assert mapping.cigar == "80M"

    def test_maps_reverse_strand_read(self, reference, aligner):
        fragment = Sequence("r", reference.residues[500:580])
        mapping = aligner.map_read(fragment.reverse_complement())
        assert mapping is not None
        assert mapping.position == 500
        assert mapping.strand == "-"

    def test_maps_read_with_mismatches(self, reference, aligner):
        residues = list(reference.residues[1000:1080])
        residues[10] = "A" if residues[10] != "A" else "C"
        residues[60] = "G" if residues[60] != "G" else "T"
        mapping = aligner.map_read(Sequence("r", "".join(residues)))
        assert mapping is not None
        assert mapping.position == 1000

    def test_random_read_unmapped(self, aligner):
        mapping = aligner.map_read(Sequence("r", random_dna(80, seed=777)))
        assert mapping is None

    def test_batch_recovers_sampled_positions(self, reference):
        aligner = ReadAligner(reference)
        records = sample_reads(reference, 20, 70, seed=9, error_rate=0.01)
        correct = 0
        for record in records:
            true_pos = int(
                record.sequence.description.split()[0].split("=")[1]
            )
            mapping = aligner.map_read(record.sequence)
            if mapping and abs(mapping.position - true_pos) <= 3:
                correct += 1
        assert correct >= 18

    def test_stats_accumulate(self, reference):
        aligner = ReadAligner(reference)
        read = Sequence("r", reference.residues[0:60])
        aligner.map_read(read)
        assert aligner.stats.reads == 1
        assert aligner.stats.mapped == 1
        assert aligner.stats.seeds_extracted > 0
        assert aligner.stats.candidates_extended > 0

    def test_mapq_reasonable_for_unique_hit(self, reference, aligner):
        read = Sequence("r", reference.residues[2000:2080])
        mapping = aligner.map_read(read)
        assert mapping is not None
        assert 0 <= mapping.mapq <= 42

    def test_repetitive_reference_lowers_mapq(self):
        unit = random_dna(90, seed=5)
        reference = Sequence("rep", unit * 8)
        aligner = ReadAligner(reference)
        mapping = aligner.map_read(Sequence("r", unit[:80]))
        assert mapping is not None
        unique_ref = Sequence("uniq", random_dna(720, seed=6))
        unique_aligner = ReadAligner(unique_ref)
        unique_map = unique_aligner.map_read(
            Sequence("r", unique_ref.residues[50:130])
        )
        assert unique_map.mapq >= mapping.mapq

    def test_parameters_validated(self, reference):
        with pytest.raises(ValueError):
            ReadAligner(reference, seed_length=0)


class TestSuffixArrayImplementations:
    def test_numpy_matches_python(self):
        from repro.genomics.index.sa import (
            suffix_array_numpy,
            suffix_array_python,
        )
        from repro.data.synth import random_dna

        for n in (0, 1, 2, 50, 500):
            text = random_dna(n, seed=n)
            assert suffix_array_numpy(text) == suffix_array_python(text)

    @given(text_no_sentinel)
    @settings(max_examples=40, deadline=None)
    def test_numpy_matches_python_property(self, text):
        from repro.genomics.index.sa import (
            suffix_array_numpy,
            suffix_array_python,
        )

        assert suffix_array_numpy(text) == suffix_array_python(text)


class TestPrealignmentFilter:
    def test_filter_preserves_true_mappings(self):
        reference = Sequence("ref", random_dna(4000, seed=42))
        plain = ReadAligner(reference)
        filtered = ReadAligner(reference, prefilter_k=6)
        records = sample_reads(reference, 15, 70, seed=10, error_rate=0.01)
        for record in records:
            a = plain.map_read(record.sequence)
            b = filtered.map_read(record.sequence)
            if a is not None:
                assert b is not None
                assert b.position == a.position

    def test_filter_reduces_extensions(self):
        unit = random_dna(60, seed=11)
        # A noisy repeat: many candidate loci, most beyond k edits.
        parts = [unit] + [
            random_dna(60, seed=12 + i) for i in range(20)
        ]
        reference = Sequence("rep", "".join(parts) + unit)
        filtered = ReadAligner(reference, prefilter_k=2)
        plain = ReadAligner(reference)
        read = Sequence("r", unit)
        filtered.map_read(read)
        plain.map_read(read)
        assert filtered.stats.candidates_extended <= \
            plain.stats.candidates_extended
        # And the filter actually fired somewhere across a read batch.
        records = sample_reads(reference, 10, 60, seed=13,
                               error_rate=0.02)
        for record in records:
            filtered.map_read(record.sequence)
        assert filtered.stats.candidates_filtered >= 0

    def test_negative_k_rejected(self):
        reference = Sequence("ref", random_dna(500, seed=14))
        with pytest.raises(ValueError):
            ReadAligner(reference, prefilter_k=-1)
