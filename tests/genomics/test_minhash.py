"""Tests for MinHash sketching."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.data.synth import mutate, random_dna
from repro.genomics.cluster.minhash import (
    MinHashSketch,
    jaccard_for_identity,
    sketch_filter,
)

dna = st.text(alphabet="ACGT", min_size=20, max_size=120)


class TestSketch:
    def test_sketch_is_bounded(self):
        sketch = MinHashSketch.of(random_dna(500, seed=1), k=8, size=32)
        assert len(sketch.hashes) == 32
        assert list(sketch.hashes) == sorted(sketch.hashes)

    def test_short_sequence_small_sketch(self):
        sketch = MinHashSketch.of("ACGTACGT", k=8, size=64)
        assert len(sketch.hashes) == 1

    def test_parameters_validated(self):
        with pytest.raises(ValueError):
            MinHashSketch.of("ACGT", k=0)
        with pytest.raises(ValueError):
            MinHashSketch.of("ACGT", k=2, size=0)

    def test_deterministic(self):
        text = random_dna(200, seed=2)
        assert MinHashSketch.of(text) == MinHashSketch.of(text)


class TestJaccard:
    def test_identical_sequences(self):
        sketch = MinHashSketch.of(random_dna(300, seed=3))
        assert sketch.jaccard(sketch) == 1.0

    def test_unrelated_sequences_near_zero(self):
        a = MinHashSketch.of(random_dna(400, seed=4))
        b = MinHashSketch.of(random_dna(400, seed=5))
        assert a.jaccard(b) < 0.1

    def test_similar_sequences_high(self):
        text = random_dna(400, seed=6)
        similar = mutate(text, seed=7, substitution_rate=0.01)
        a = MinHashSketch.of(text)
        b = MinHashSketch.of(similar)
        assert a.jaccard(b) > 0.4

    def test_mismatched_k_rejected(self):
        a = MinHashSketch.of("ACGTACGTACGT", k=4)
        b = MinHashSketch.of("ACGTACGTACGT", k=5)
        with pytest.raises(ValueError):
            a.jaccard(b)

    def test_symmetric(self):
        a = MinHashSketch.of(random_dna(300, seed=8))
        b = MinHashSketch.of(random_dna(300, seed=9))
        assert a.jaccard(b) == b.jaccard(a)

    @given(dna, st.floats(min_value=0.0, max_value=0.1))
    @settings(max_examples=30, deadline=None)
    def test_jaccard_in_unit_interval(self, text, rate):
        a = MinHashSketch.of(text, k=5, size=16)
        b = MinHashSketch.of(mutate(text, seed=1, substitution_rate=rate),
                             k=5, size=16)
        assert 0.0 <= a.jaccard(b) <= 1.0


class TestIdentityRelation:
    def test_monotone_in_identity(self):
        values = [jaccard_for_identity(a, 8) for a in (0.8, 0.9, 0.95, 1.0)]
        assert values == sorted(values)
        assert values[-1] == 1.0

    def test_rejects_bad_identity(self):
        with pytest.raises(ValueError):
            jaccard_for_identity(0.0, 8)


class TestSketchFilter:
    def test_true_pairs_pass(self):
        """Soundness: pairs at/above the identity threshold must pass."""
        for seed in range(8):
            text = random_dna(300, seed=100 + seed)
            similar = mutate(text, seed=seed, substitution_rate=0.03)
            a, b = MinHashSketch.of(text), MinHashSketch.of(similar)
            assert sketch_filter(a, b, identity=0.95)

    def test_unrelated_pairs_rejected(self):
        a = MinHashSketch.of(random_dna(300, seed=20))
        b = MinHashSketch.of(random_dna(300, seed=21))
        assert not sketch_filter(a, b, identity=0.9)

    def test_safety_validated(self):
        a = MinHashSketch.of(random_dna(100, seed=22))
        with pytest.raises(ValueError):
            sketch_filter(a, a, identity=0.9, safety=0.0)
