"""Tests for the Gotoh affine-gap aligner, including brute-force checks."""

from functools import lru_cache

import pytest
from hypothesis import given, settings, strategies as st

from repro.genomics.align import (
    AlignmentMode,
    align,
    needleman_wunsch,
    semi_global,
    smith_waterman,
)
from repro.genomics.scoring import ScoringScheme
from repro.genomics.sequence import Sequence

SCHEME = ScoringScheme.dna_default()

short_dna = st.text(alphabet="ACGT", min_size=1, max_size=7)


def brute_force_global(q: str, t: str, scheme: ScoringScheme) -> int:
    """Exhaustive affine-gap global alignment score (reference)."""

    @lru_cache(maxsize=None)
    def best(i: int, j: int, state: int) -> int:
        if i == len(q) and j == len(t):
            return 0
        options = []
        if i < len(q) and j < len(t):
            options.append(scheme.score(q[i], t[j]) + best(i + 1, j + 1, 0))
        if i < len(q):  # query residue against a gap (CIGAR I)
            cost = scheme.gap_extend + (scheme.gap_open if state != 1 else 0)
            options.append(-cost + best(i + 1, j, 1))
        if j < len(t):  # target residue against a gap (CIGAR D)
            cost = scheme.gap_extend + (scheme.gap_open if state != 2 else 0)
            options.append(-cost + best(i, j + 1, 2))
        return max(options)

    return best(0, 0, 0)


def brute_force_local(q: str, t: str, scheme: ScoringScheme) -> int:
    """Best global score over all substring pairs, floored at 0."""
    best = 0
    for qs in range(len(q)):
        for qe in range(qs + 1, len(q) + 1):
            for ts in range(len(t)):
                for te in range(ts + 1, len(t) + 1):
                    score = brute_force_global(q[qs:qe], t[ts:te], scheme)
                    best = max(best, score)
    return best


def rescore(result, scheme: ScoringScheme) -> int:
    """Recompute the score from the aligned strings (affine gaps)."""
    score = 0
    gap_q = gap_t = False
    for a, b in zip(result.aligned_query, result.aligned_target):
        if a == "-":
            score -= scheme.gap_extend + (0 if gap_q else scheme.gap_open)
            gap_q, gap_t = True, False
        elif b == "-":
            score -= scheme.gap_extend + (0 if gap_t else scheme.gap_open)
            gap_q, gap_t = False, True
        else:
            score += scheme.score(a, b)
            gap_q = gap_t = False
    return score


class TestGlobalAlignment:
    def test_identical_sequences(self):
        r = needleman_wunsch("GATTACA", "GATTACA", SCHEME)
        assert r.score == 14
        assert r.cigar == "7M"
        assert r.identity() == 1.0

    def test_single_mismatch(self):
        r = needleman_wunsch("GATTACA", "GATCACA", SCHEME)
        assert r.score == 6 * 2 - 3
        assert r.cigar == "7M"

    def test_deletion(self):
        r = needleman_wunsch("GATTACA", "GATCA", SCHEME)
        assert r.aligned_query == "GATTACA"
        assert "-" in r.aligned_target

    def test_empty_query(self):
        r = needleman_wunsch("", "ACG", SCHEME)
        assert r.score == -SCHEME.gap_cost(3)
        assert r.cigar == "3D"

    def test_empty_target(self):
        r = needleman_wunsch("ACG", "", SCHEME)
        assert r.cigar == "3I"

    def test_both_empty(self):
        r = needleman_wunsch("", "", SCHEME)
        assert r.score == 0
        assert r.cigar == ""

    def test_accepts_sequence_objects(self):
        r = needleman_wunsch(
            Sequence("q", "ACGT"), Sequence("t", "ACGT"), SCHEME
        )
        assert r.score == 8

    @given(short_dna, short_dna)
    @settings(max_examples=60, deadline=None)
    def test_matches_brute_force(self, q, t):
        result = needleman_wunsch(q, t, SCHEME)
        assert result.score == brute_force_global(q, t, SCHEME)

    @given(short_dna, short_dna)
    @settings(max_examples=60, deadline=None)
    def test_reported_score_matches_alignment(self, q, t):
        result = needleman_wunsch(q, t, SCHEME)
        assert rescore(result, SCHEME) == result.score

    @given(short_dna, short_dna)
    @settings(max_examples=40, deadline=None)
    def test_symmetry(self, q, t):
        # Global alignment score is symmetric for a symmetric matrix.
        assert (
            needleman_wunsch(q, t, SCHEME).score
            == needleman_wunsch(t, q, SCHEME).score
        )


class TestLocalAlignment:
    def test_finds_embedded_match(self):
        r = smith_waterman("TTTGATTACATTT", "CCGATTACACC", SCHEME)
        assert r.aligned_query == "GATTACA"
        assert r.aligned_target == "GATTACA"
        assert r.query_start == 3
        assert r.target_start == 2

    def test_no_positive_score_is_empty(self):
        r = smith_waterman("AAAA", "CCCC", SCHEME)
        assert r.score == 0
        assert r.cigar == ""

    def test_score_never_negative(self):
        r = smith_waterman("AC", "GT", SCHEME)
        assert r.score >= 0

    @given(short_dna, short_dna)
    @settings(max_examples=25, deadline=None)
    def test_matches_brute_force(self, q, t):
        result = smith_waterman(q, t, SCHEME)
        assert result.score == brute_force_local(q, t, SCHEME)

    @given(short_dna, short_dna)
    @settings(max_examples=40, deadline=None)
    def test_local_at_least_zero_and_at_most_self(self, q, t):
        result = smith_waterman(q, t, SCHEME)
        assert result.score >= 0
        perfect = SCHEME.score("A", "A") * min(len(q), len(t))
        assert result.score <= perfect


class TestSemiGlobalAlignment:
    def test_free_target_ends(self):
        r = semi_global("GATTACA", "CCCCGATTACACCCC", SCHEME)
        assert r.score == 14
        assert r.target_start == 4
        assert r.target_end == 11
        assert r.cigar == "7M"

    def test_query_fully_consumed(self):
        r = semi_global("ACGT", "TTTTACGTTTTT", SCHEME)
        assert r.query_start == 0
        assert r.query_end == 4

    @given(short_dna, short_dna)
    @settings(max_examples=40, deadline=None)
    def test_at_least_global_score(self, q, t):
        # Free end gaps can only help.
        sg = semi_global(q, t, SCHEME)
        nw = needleman_wunsch(q, t, SCHEME)
        assert sg.score >= nw.score

    @given(short_dna)
    @settings(max_examples=30, deadline=None)
    def test_exact_substring_scores_perfectly(self, q):
        target = "TT" + q + "TT"
        r = semi_global(q, target, SCHEME)
        assert r.score == SCHEME.score("A", "A") * len(q)


class TestAlignDispatch:
    @pytest.mark.parametrize("mode", list(AlignmentMode))
    def test_all_modes_run(self, mode):
        r = align("GATTACA", "GATCA", SCHEME, mode)
        assert r.length >= 1
