"""Tests for sequences and alphabets."""

import pytest
from hypothesis import given, strategies as st

from repro.genomics.sequence import DNA, PROTEIN, RNA, Alphabet, Sequence

dna_text = st.text(alphabet="ACGT", min_size=0, max_size=64)


class TestAlphabet:
    def test_encode_decode_roundtrip(self):
        codes = DNA.encode("ACGTN")
        assert codes == [0, 1, 2, 3, 4]
        assert DNA.decode(codes) == "ACGTN"

    def test_encode_rejects_foreign_letters(self):
        with pytest.raises(ValueError, match="not in alphabet"):
            DNA.encode("ACGZ")

    def test_validate_rejects_lowercase(self):
        with pytest.raises(ValueError):
            DNA.validate("acgt")

    def test_duplicate_letters_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Alphabet("bad", "AAC")

    def test_contains(self):
        assert "A" in DNA
        assert "N" in DNA  # wildcard counts
        assert "Z" not in DNA

    def test_sizes(self):
        assert DNA.size == 4
        assert RNA.size == 4
        assert PROTEIN.size == 20

    @given(dna_text)
    def test_encode_decode_property(self, text):
        assert DNA.decode(DNA.encode(text)) == text


class TestSequence:
    def test_uppercases_residues(self):
        seq = Sequence("s", "acgt")
        assert seq.residues == "ACGT"

    def test_rejects_invalid_residues(self):
        with pytest.raises(ValueError):
            Sequence("s", "ACGB")

    def test_len_iter_getitem(self):
        seq = Sequence("s", "ACGT")
        assert len(seq) == 4
        assert list(seq) == ["A", "C", "G", "T"]
        assert seq[1] == "C"
        assert seq[1:3] == "CG"

    def test_equality_ignores_description(self):
        a = Sequence("s", "ACGT", description="one")
        b = Sequence("s", "ACGT", description="two")
        assert a == b
        assert hash(a) == hash(b)

    def test_reverse_complement(self):
        seq = Sequence("s", "AACGTN")
        assert seq.reverse_complement().residues == "NACGTT"

    def test_reverse_complement_involution(self):
        seq = Sequence("s", "GATTACA")
        assert seq.reverse_complement().reverse_complement() == seq

    def test_reverse_complement_rejects_protein(self):
        seq = Sequence("p", "MKV", PROTEIN)
        with pytest.raises(ValueError):
            seq.reverse_complement()

    def test_kmers(self):
        seq = Sequence("s", "ACGTA")
        assert list(seq.kmers(3)) == ["ACG", "CGT", "GTA"]
        assert list(seq.kmers(5)) == ["ACGTA"]
        assert list(seq.kmers(6)) == []

    def test_kmers_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            list(Sequence("s", "ACGT").kmers(0))

    def test_gc_content(self):
        assert Sequence("s", "GGCC").gc_content() == 1.0
        assert Sequence("s", "AATT").gc_content() == 0.0
        assert Sequence("s", "ACGT").gc_content() == 0.5
        assert Sequence("s", "").gc_content() == 0.0

    @given(dna_text)
    def test_reverse_complement_property(self, text):
        seq = Sequence("s", text)
        rc = seq.reverse_complement()
        assert len(rc) == len(seq)
        assert rc.reverse_complement().residues == seq.residues
