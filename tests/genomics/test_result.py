"""Tests for AlignmentResult and CIGAR utilities."""

import pytest

from repro.genomics.align.result import (
    AlignmentResult,
    cigar_to_pairs,
    compress_ops,
    parse_cigar,
)


class TestParseCigar:
    def test_simple(self):
        assert parse_cigar("5M2I3D") == [(5, "M"), (2, "I"), (3, "D")]

    def test_empty(self):
        assert parse_cigar("") == []

    @pytest.mark.parametrize("bad", ["M5", "5", "5Z", "5M3", "-3M", "5m"])
    def test_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_cigar(bad)


class TestCompressOps:
    def test_run_length_encoding(self):
        assert compress_ops(["M", "M", "I", "M"]) == "2M1I1M"

    def test_empty(self):
        assert compress_ops([]) == ""

    def test_roundtrip(self):
        ops = ["M"] * 3 + ["D"] * 2 + ["M"]
        cigar = compress_ops(ops)
        expanded = []
        for count, op in parse_cigar(cigar):
            expanded.extend([op] * count)
        assert expanded == ops


class TestCigarToPairs:
    def test_match_only(self):
        assert cigar_to_pairs("2M") == [(0, 0), (1, 1)]

    def test_insertion_has_no_target(self):
        assert cigar_to_pairs("1M1I1M") == [(0, 0), (1, None), (2, 1)]

    def test_deletion_has_no_query(self):
        assert cigar_to_pairs("1M1D1M") == [(0, 0), (None, 1), (1, 2)]


def make_result(**overrides):
    defaults = dict(
        score=10,
        cigar="3M",
        query_start=0,
        query_end=3,
        target_start=0,
        target_end=3,
        aligned_query="ACG",
        aligned_target="ACG",
    )
    defaults.update(overrides)
    return AlignmentResult(**defaults)


class TestAlignmentResult:
    def test_identity_and_matches(self):
        r = make_result(aligned_target="ACT")
        assert r.matches() == 2
        assert r.identity() == pytest.approx(2 / 3)

    def test_length(self):
        assert make_result().length == 3

    def test_validates_query_span(self):
        with pytest.raises(ValueError, match="query span"):
            make_result(query_end=5)

    def test_validates_target_span(self):
        with pytest.raises(ValueError, match="target span"):
            make_result(cigar="2M1I", aligned_query="ACG",
                        aligned_target="AC-")

    def test_gap_columns_not_matches(self):
        r = make_result(
            cigar="1M1I1M",
            aligned_query="ACG",
            aligned_target="A-G",
            target_end=2,
        )
        assert r.matches() == 2
