"""Tests for paired-end read simulation and mapping."""

import pytest

from repro.data.synth import random_dna, sample_paired_reads
from repro.genomics.index import ReadAligner
from repro.genomics.sequence import Sequence


@pytest.fixture(scope="module")
def reference():
    return Sequence("ref", random_dna(8000, seed=71))


@pytest.fixture(scope="module")
def pairs(reference):
    return sample_paired_reads(
        reference, count=15, read_length=80, insert_size=300, seed=72
    )


class TestSamplePairedReads:
    def test_pair_structure(self, pairs):
        for r1, r2 in pairs:
            assert r1.name.endswith("/1")
            assert r2.name.endswith("/2")
            assert len(r1.sequence) == len(r2.sequence) == 80

    def test_truth_positions_bracket_fragment(self, pairs):
        for r1, r2 in pairs:
            pos1 = int(r1.sequence.description.split()[0].split("=")[1])
            pos2 = int(r2.sequence.description.split()[0].split("=")[1])
            assert pos2 >= pos1
            assert pos2 - pos1 <= 300 + 5 * 30  # insert + 5 sigma

    def test_mate2_is_reverse_strand(self, reference):
        pairs = sample_paired_reads(
            reference, 5, 60, insert_size=200, seed=73, error_rate=0.0
        )
        for _, r2 in pairs:
            pos2 = int(r2.sequence.description.split()[0].split("=")[1])
            fragment = Sequence("f", reference.residues[pos2:pos2 + 60])
            assert r2.sequence.residues == \
                fragment.reverse_complement().residues

    def test_insert_must_cover_read(self, reference):
        with pytest.raises(ValueError):
            sample_paired_reads(reference, 1, 100, insert_size=50)


class TestMapPair:
    def test_concordant_pair_mapped(self, reference, pairs):
        aligner = ReadAligner(reference)
        r1, r2 = pairs[0]
        m1, m2 = aligner.map_pair(r1.sequence, r2.sequence)
        assert m1 is not None and m2 is not None
        assert {m1.strand, m2.strand} == {"+", "-"}
        assert abs(m2.position - m1.position) < 500

    def test_concordance_boosts_mapq(self, reference, pairs):
        aligner = ReadAligner(reference)
        r1, r2 = pairs[1]
        single = aligner.map_read(r1.sequence)
        paired, _ = aligner.map_pair(r1.sequence, r2.sequence)
        assert paired.mapq >= single.mapq

    def test_batch_accuracy(self, reference, pairs):
        aligner = ReadAligner(reference)
        correct = 0
        for r1, r2 in pairs:
            m1, m2 = aligner.map_pair(r1.sequence, r2.sequence)
            t1 = int(r1.sequence.description.split()[0].split("=")[1])
            t2 = int(r2.sequence.description.split()[0].split("=")[1])
            if (m1 and abs(m1.position - t1) <= 3
                    and m2 and abs(m2.position - t2) <= 3):
                correct += 1
        assert correct >= len(pairs) - 2

    def test_discordant_pair_returned_as_singles(self, reference):
        aligner = ReadAligner(reference)
        # Two forward-strand reads: never concordant (same strand).
        r1 = Sequence("a/1", reference.residues[100:180])
        r2 = Sequence("a/2", reference.residues[400:480])
        m1, m2 = aligner.map_pair(r1, r2, max_insert=1000)
        assert m1 is not None and m2 is not None
        assert m1.strand == m2.strand == "+"

    def test_unmappable_mate(self, reference):
        aligner = ReadAligner(reference)
        r1 = Sequence("b/1", reference.residues[100:180])
        r2 = Sequence("b/2", random_dna(80, seed=99))
        m1, m2 = aligner.map_pair(r1, r2)
        assert m1 is not None
        assert m2 is None
