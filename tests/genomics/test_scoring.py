"""Tests for substitution matrices and scoring schemes."""

import pytest

from repro.genomics.scoring import ScoringScheme, SubstitutionMatrix, blosum62
from repro.genomics.sequence import DNA, PROTEIN


class TestSubstitutionMatrix:
    def test_match_mismatch(self):
        m = SubstitutionMatrix.match_mismatch(DNA, match=3, mismatch=-2)
        assert m.score("A", "A") == 3
        assert m.score("A", "C") == -2

    def test_wildcard_scores_worst(self):
        m = SubstitutionMatrix.match_mismatch(DNA, match=2, mismatch=-3)
        assert m.score("N", "A") == -3
        assert m.score("A", "N") == -3

    def test_as_table_shape(self):
        m = SubstitutionMatrix.match_mismatch(DNA)
        table = m.as_table()
        assert len(table) == 4
        assert all(len(row) == 4 for row in table)
        for i in range(4):
            for j in range(4):
                expected = 2 if i == j else -3
                assert table[i][j] == expected


class TestBlosum62:
    def test_is_symmetric(self):
        m = blosum62()
        for a in PROTEIN.letters:
            for b in PROTEIN.letters:
                assert m.score(a, b) == m.score(b, a)

    def test_diagonal_positive(self):
        m = blosum62()
        for a in PROTEIN.letters:
            assert m.score(a, a) > 0

    def test_known_values(self):
        m = blosum62()
        assert m.score("W", "W") == 11
        assert m.score("A", "A") == 4
        assert m.score("I", "L") == 2
        assert m.score("W", "D") == -4


class TestScoringScheme:
    def test_gap_cost_affine(self):
        s = ScoringScheme(gap_open=5, gap_extend=1)
        assert s.gap_cost(0) == 0
        assert s.gap_cost(1) == 6
        assert s.gap_cost(3) == 8

    def test_rejects_negative_penalties(self):
        with pytest.raises(ValueError):
            ScoringScheme(gap_open=-1)

    def test_dna_default(self):
        s = ScoringScheme.dna_default()
        assert s.score("A", "A") == 2
        assert s.score("A", "G") == -3

    def test_protein_default_uses_blosum(self):
        s = ScoringScheme.protein_default()
        assert s.score("W", "W") == 11
        assert s.gap_open == 11
