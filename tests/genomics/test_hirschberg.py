"""Tests for Hirschberg linear-space alignment."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.genomics.align import hirschberg, linear_scheme, needleman_wunsch
from repro.genomics.scoring import ScoringScheme

SCHEME = linear_scheme()

dna = st.text(alphabet="ACGT", min_size=0, max_size=40)


class TestHirschberg:
    def test_identical(self):
        r = hirschberg("GATTACA", "GATTACA", SCHEME)
        assert r.cigar == "7M"
        assert r.score == 14

    def test_simple_gap(self):
        r = hirschberg("GATTACA", "GATACA", SCHEME)
        assert r.score == needleman_wunsch("GATTACA", "GATACA", SCHEME).score

    def test_empty_cases(self):
        assert hirschberg("", "ACG", SCHEME).cigar == "3D"
        assert hirschberg("ACG", "", SCHEME).cigar == "3I"
        assert hirschberg("", "", SCHEME).cigar == ""

    def test_single_residue_query(self):
        r = hirschberg("G", "ACGT", SCHEME)
        assert r.score == needleman_wunsch("G", "ACGT", SCHEME).score

    def test_rejects_affine_scheme(self):
        with pytest.raises(ValueError, match="linear gap"):
            hirschberg("ACGT", "ACGT", ScoringScheme.dna_default())

    def test_long_sequences(self):
        from repro.data.synth import mutate, random_dna

        target = random_dna(600, seed=33)
        query = mutate(target, seed=34, substitution_rate=0.05,
                       insertion_rate=0.01, deletion_rate=0.01)
        r = hirschberg(query, target, SCHEME)
        full = needleman_wunsch(query, target, SCHEME)
        assert r.score == full.score

    @given(dna, dna)
    @settings(max_examples=60, deadline=None)
    def test_matches_full_dp_property(self, q, t):
        """Hirschberg is exact: same optimal score as quadratic NW."""
        assert hirschberg(q, t, SCHEME).score == \
            needleman_wunsch(q, t, SCHEME).score

    @given(dna, dna)
    @settings(max_examples=40, deadline=None)
    def test_alignment_internally_consistent(self, q, t):
        r = hirschberg(q, t, SCHEME)
        assert r.aligned_query.replace("-", "") == q
        assert r.aligned_target.replace("-", "") == t
        # Recompute the score from the alignment columns.
        score = 0
        for a, b in zip(r.aligned_query, r.aligned_target):
            if "-" in (a, b):
                score -= SCHEME.gap_extend
            else:
                score += SCHEME.score(a, b)
        assert score == r.score
