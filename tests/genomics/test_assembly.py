"""Tests for de Bruijn graph assembly."""

import pytest

from repro.data.synth import random_dna, sample_reads
from repro.genomics.assembly import DeBruijnGraph, assemble
from repro.genomics.sequence import Sequence


class TestDeBruijnGraph:
    def test_k_validated(self):
        with pytest.raises(ValueError):
            DeBruijnGraph(2)

    def test_single_read_one_unitig(self):
        graph = DeBruijnGraph(4)
        graph.add_read("ACGTACCA")
        unitigs = graph.unitigs()
        assert unitigs == ["ACGTACCA"]

    def test_coverage_accumulates(self):
        graph = DeBruijnGraph(4)
        graph.add_read("ACGTA")
        graph.add_read("ACGTA")
        assert graph.graph["ACG"]["CGT"]["coverage"] == 2

    def test_prune_removes_singletons(self):
        graph = DeBruijnGraph(4)
        graph.add_read("ACGTA")
        graph.add_read("ACGTA")
        graph.add_read("GGCCAT")  # coverage-1 path
        removed = graph.prune(min_coverage=2)
        assert removed > 0
        assert graph.unitigs() == ["ACGTA"]

    def test_branch_splits_unitigs(self):
        graph = DeBruijnGraph(4)
        # Two reads sharing a prefix: the branch ends the first unitig.
        graph.add_read("AACGTTGG")
        graph.add_read("AACGTTCC")
        unitigs = graph.unitigs()
        assert any(u.startswith("AACGTT") for u in unitigs)
        assert len(unitigs) == 3  # shared stem + two branches

    def test_cycle_emitted_once(self):
        graph = DeBruijnGraph(4)
        graph.add_read("ACGACGACG")  # pure repeat: a 3-cycle
        unitigs = graph.unitigs()
        assert len(unitigs) == 1


class TestAssemble:
    def test_reconstructs_genome_from_clean_reads(self):
        genome = random_dna(600, seed=80)
        reference = Sequence("g", genome)
        records = sample_reads(
            reference, count=300, read_length=60, seed=81,
            error_rate=0.0, reverse_fraction=0.0,
        )
        result = assemble([r.sequence for r in records], k=21)
        assert result.contigs
        # The longest contig should recover most of the genome.
        assert result.longest > 0.8 * len(genome)
        assert genome.find(result.contigs[0]) != -1

    def test_errors_pruned(self):
        genome = random_dna(400, seed=82)
        reference = Sequence("g", genome)
        records = sample_reads(
            reference, count=400, read_length=50, seed=83,
            error_rate=0.01, reverse_fraction=0.0,
        )
        result = assemble([r.sequence for r in records], k=21,
                          min_coverage=3)
        assert result.pruned_edges > 0
        # Every surviving contig is genuine genome sequence.
        for contig in result.contigs:
            assert genome.find(contig) != -1

    def test_n50(self):
        genome = random_dna(500, seed=84)
        reference = Sequence("g", genome)
        records = sample_reads(
            reference, count=250, read_length=60, seed=85,
            error_rate=0.0, reverse_fraction=0.0,
        )
        result = assemble([r.sequence for r in records], k=21)
        assert 0 < result.n50() <= result.longest
        assert result.total_length >= result.longest

    def test_empty_input(self):
        result = assemble([], k=5)
        assert result.contigs == ()
        assert result.n50() == 0

    def test_min_contig_filter(self):
        result = assemble(["ACGTACGTAC"], k=4, min_coverage=1,
                          min_contig=50)
        assert result.contigs == ()

    def test_deterministic(self):
        genome = random_dna(300, seed=86)
        reference = Sequence("g", genome)
        records = sample_reads(reference, 150, 50, seed=87,
                               error_rate=0.0, reverse_fraction=0.0)
        reads = [r.sequence for r in records]
        assert assemble(reads, k=15) == assemble(reads, k=15)
