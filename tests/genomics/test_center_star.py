"""Tests for Center-Star multiple sequence alignment."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.data.synth import sequence_family
from repro.genomics.msa import center_star
from repro.genomics.msa.center_star import choose_center
from repro.genomics.scoring import ScoringScheme
from repro.genomics.sequence import Sequence

SCHEME = ScoringScheme.dna_default()


def seqs(*texts):
    return [Sequence(f"s{i}", t) for i, t in enumerate(texts)]


class TestCenterStar:
    def test_identical_sequences(self):
        msa = center_star(seqs("ACGT", "ACGT", "ACGT"), SCHEME)
        assert msa.rows == ["ACGT", "ACGT", "ACGT"]
        assert msa.consensus() == "ACGT"

    def test_rows_have_equal_width(self):
        msa = center_star(seqs("ACGTT", "ACGT", "AGT"), SCHEME)
        assert len({len(row) for row in msa.rows}) == 1

    def test_rows_preserve_residues(self):
        inputs = seqs("ACGTT", "ACGT", "AGTTT")
        msa = center_star(inputs, SCHEME)
        for seq, row in zip(inputs, msa.rows):
            assert row.replace("-", "") == seq.residues

    def test_single_sequence(self):
        msa = center_star(seqs("ACGT"), SCHEME)
        assert msa.rows == ["ACGT"]
        assert msa.center_index == 0

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            center_star([], SCHEME)

    def test_explicit_center(self):
        inputs = seqs("ACGT", "ACGA", "ACGC")
        msa = center_star(inputs, SCHEME, center_index=2)
        assert msa.center_index == 2

    def test_center_index_out_of_range(self):
        with pytest.raises(ValueError):
            center_star(seqs("ACGT", "ACGA"), SCHEME, center_index=5)

    def test_names_preserved_in_order(self):
        inputs = seqs("ACGT", "ACGA", "AGT")
        msa = center_star(inputs, SCHEME)
        assert msa.names == ["s0", "s1", "s2"]

    def test_insertion_creates_gap_column(self):
        msa = center_star(seqs("ACGT", "ACXGT".replace("X", "G")), SCHEME)
        assert msa.width == 5
        assert "-" in msa.rows[0]

    def test_family_alignment_recovers_consensus(self):
        from repro.genomics.align import needleman_wunsch

        family = sequence_family(6, 80, divergence=0.05, seed=11)
        msa = center_star(family, SCHEME)
        # The consensus should align to the ancestor (row 0) at >90%
        # identity (gap columns shift raw offsets, so align first).
        aln = needleman_wunsch(msa.consensus(), family[0].residues, SCHEME)
        assert aln.identity() > 0.9

    @given(st.lists(st.text(alphabet="ACGT", min_size=1, max_size=8),
                    min_size=2, max_size=5))
    @settings(max_examples=40, deadline=None)
    def test_msa_invariants(self, texts):
        inputs = seqs(*texts)
        msa = center_star(inputs, SCHEME)
        widths = {len(row) for row in msa.rows}
        assert len(widths) == 1
        for seq, row in zip(inputs, msa.rows):
            assert row.replace("-", "") == seq.residues
        assert msa.width >= max(len(t) for t in texts)


class TestChooseCenter:
    def test_center_maximizes_pairwise_sum(self):
        inputs = seqs("ACGTACGT", "ACGTACGA", "ACGTACGC", "TTTTTTTT")
        center, scores = choose_center(inputs, SCHEME)
        sums = [sum(row) for row in scores]
        assert sums[center] == max(sums)
        assert center != 3  # the outlier cannot be the center

    def test_score_matrix_symmetric_zero_diagonal(self):
        inputs = seqs("ACGT", "ACGA", "AGT")
        _, scores = choose_center(inputs, SCHEME)
        for i in range(3):
            assert scores[i][i] == 0
            for j in range(3):
                assert scores[i][j] == scores[j][i]


class TestMSAAnalysis:
    def test_snp_columns(self):
        msa = center_star(seqs("ACGT", "ACGT", "ATGT"), SCHEME)
        assert msa.snp_columns() == [1]

    def test_snp_min_minor_filters_singletons(self):
        msa = center_star(seqs("ACGT", "ACGT", "ACGT", "ATGT"), SCHEME)
        assert msa.snp_columns(min_minor=1) == [1]
        assert msa.snp_columns(min_minor=2) == []

    def test_sum_of_pairs_identical(self):
        msa = center_star(seqs("ACGT", "ACGT"), SCHEME)
        assert msa.sum_of_pairs(SCHEME) == 8

    def test_sum_of_pairs_counts_gaps_affinely(self):
        msa = center_star(seqs("AACGTT", "AATT"), SCHEME)
        # Alignment has one 2-residue gap: 4 matches - (open + 2*extend).
        assert msa.sum_of_pairs(SCHEME) == 4 * 2 - (5 + 2)
