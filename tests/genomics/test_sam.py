"""Tests for SAM output and pileup analysis."""

import pytest

from repro.data.synth import random_dna, sample_reads
from repro.genomics.index import ReadAligner
from repro.genomics.index.sam import (
    FLAG_REVERSE,
    FLAG_UNMAPPED,
    coverage_summary,
    pileup,
    sam_header,
    sam_record,
    write_sam,
)
from repro.genomics.sequence import Sequence


@pytest.fixture(scope="module")
def reference():
    return Sequence("chr1", random_dna(3000, seed=61))


@pytest.fixture(scope="module")
def mapped_reads(reference):
    aligner = ReadAligner(reference)
    records = sample_reads(reference, 30, 80, seed=62, error_rate=0.005)
    return [(r.sequence, aligner.map_read(r.sequence)) for r in records]


class TestSamFormat:
    def test_header(self, reference):
        header = sam_header(reference)
        assert "@SQ\tSN:chr1\tLN:3000" in header
        assert header.startswith("@HD")

    def test_mapped_record_fields(self, reference, mapped_reads):
        read, mapping = next(
            (r, m) for r, m in mapped_reads if m is not None
        )
        fields = sam_record(mapping, read, reference.name).split("\t")
        assert fields[0] == read.name
        assert fields[2] == "chr1"
        assert int(fields[3]) == mapping.position + 1
        assert fields[5] == mapping.cigar
        assert fields[11] == f"AS:i:{mapping.score}"

    def test_unmapped_record(self, reference):
        read = Sequence("lost", "ACGT" * 10)
        fields = sam_record(None, read, reference.name).split("\t")
        assert int(fields[1]) & FLAG_UNMAPPED
        assert fields[2] == "*"

    def test_reverse_flag_and_sequence(self, reference):
        aligner = ReadAligner(reference)
        fragment = Sequence("rev", reference.residues[200:280])
        read = fragment.reverse_complement()
        mapping = aligner.map_read(read)
        fields = sam_record(mapping, read, reference.name).split("\t")
        assert int(fields[1]) & FLAG_REVERSE
        # SAM stores the forward-strand sequence.
        assert fields[9] == fragment.residues

    def test_write_sam_roundtrip_lines(self, reference, mapped_reads, tmp_path):
        path = tmp_path / "out.sam"
        text = write_sam(reference, mapped_reads, path)
        assert path.read_text() == text
        body = [ln for ln in text.strip().split("\n")
                if not ln.startswith("@")]
        assert len(body) == len(mapped_reads)


class TestPileup:
    def test_mapped_positions_covered(self, reference, mapped_reads):
        columns = pileup(reference, mapped_reads)
        assert columns
        for column in columns.values():
            assert column.depth == len(column.bases)
            assert 0 <= column.position < len(reference)

    def test_low_error_reads_mostly_match(self, reference, mapped_reads):
        columns = pileup(reference, mapped_reads)
        mismatch = sum(
            c.mismatch_fraction() for c in columns.values()
        ) / len(columns)
        assert mismatch < 0.05

    def test_consensus_recovers_reference(self, reference, mapped_reads):
        columns = pileup(reference, mapped_reads)
        deep = [c for c in columns.values() if c.depth >= 3]
        agree = sum(1 for c in deep if c.consensus() == c.reference_base)
        assert deep and agree / len(deep) > 0.95

    def test_coverage_summary(self, reference, mapped_reads):
        columns = pileup(reference, mapped_reads)
        summary = coverage_summary(reference, columns)
        assert summary["covered_positions"] == len(columns)
        assert 0 < summary["breadth"] <= 1.0
        assert summary["mean_depth"] >= 1.0
        assert summary["mismatch_rate"] < 0.05

    def test_empty_pileup(self, reference):
        assert coverage_summary(reference, {})["covered_positions"] == 0

    def test_deletion_skips_reference(self, reference):
        # Construct a read with a deletion and check the pileup walks
        # past the deleted base.
        aligner = ReadAligner(reference)
        residues = reference.residues[500:540] + reference.residues[543:583]
        read = Sequence("del", residues)
        mapping = aligner.map_read(read)
        assert mapping is not None
        columns = pileup(reference, [(read, mapping)])
        assert 500 in columns
        assert max(columns) >= 580
