"""Tests for KSW-style banded global alignment."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.genomics.align import banded_global, needleman_wunsch
from repro.genomics.align.banded import band_cells, band_limits
from repro.genomics.scoring import ScoringScheme

SCHEME = ScoringScheme.dna_default()

short_dna = st.text(alphabet="ACGT", min_size=1, max_size=10)


class TestBandedGlobal:
    def test_wide_band_equals_full_nw(self):
        q, t = "GATTACAGATTACA", "GATCAGATTACA"
        full = needleman_wunsch(q, t, SCHEME)
        banded = banded_global(q, t, SCHEME, band=max(len(q), len(t)))
        assert banded.score == full.score

    def test_narrow_band_still_aligns_similar_sequences(self):
        q = "ACGTACGTACGTACGT"
        t = "ACGTACGAACGTACGT"  # one substitution
        r = banded_global(q, t, SCHEME, band=2)
        assert r.score == 15 * 2 - 3

    def test_band_too_narrow_raises(self):
        # Query much longer than target: the band cannot reach the
        # final column (the slack only widens toward longer targets).
        with pytest.raises(ValueError, match="too narrow"):
            banded_global("A" * 10 + "C" * 20, "A" * 3, SCHEME, band=1)

    def test_negative_band_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            banded_global("ACGT", "ACGT", SCHEME, band=-1)

    def test_identical_band_zero_with_slack(self):
        r = banded_global("ACGTACGT", "ACGTACGT", SCHEME, band=0)
        assert r.cigar == "8M"

    @given(short_dna, short_dna)
    @settings(max_examples=50, deadline=None)
    def test_wide_band_matches_nw_property(self, q, t):
        width = len(q) + len(t)
        banded = banded_global(q, t, SCHEME, band=width)
        assert banded.score == needleman_wunsch(q, t, SCHEME).score

    @given(short_dna, st.integers(min_value=2, max_value=12))
    @settings(max_examples=40, deadline=None)
    def test_band_never_beats_full_dp(self, q, band):
        # The band restricts the search space, so it can only lose.
        t = q[::-1]
        try:
            banded = banded_global(q, t, SCHEME, band=band)
        except ValueError:
            return
        assert banded.score <= needleman_wunsch(q, t, SCHEME).score


class TestBandGeometry:
    def test_band_limits_clamped(self):
        lo, hi = band_limits(1, 10, 10, band=3)
        assert lo == 1
        assert hi == 4

    def test_band_limits_length_difference(self):
        # Longer target shifts the upper edge of the band.
        lo, hi = band_limits(5, 8, 12, band=2)
        assert lo == 3
        assert hi == 11

    def test_band_cells_full_matrix_when_wide(self):
        assert band_cells(6, 6, band=12) == 36

    def test_band_cells_monotonic_in_band(self):
        cells = [band_cells(20, 20, band=b) for b in (1, 2, 4, 8, 16)]
        assert cells == sorted(cells)
        assert cells[-1] <= 400
