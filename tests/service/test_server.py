"""End-to-end service tests: a live HTTP server, real simulations.

One server per test class (bound to port 0, cache in a temp dir), so
cache/metrics assertions always start from a clean slate.  Simulations
run at a tiny 2-SM config to keep each request sub-second.
"""

import json
import threading
from http.client import HTTPConnection

import pytest

from repro.service.client import ServiceClient, ServiceError
from repro.service.server import make_server
from repro.sim.sampled import EstimatedRunStats

pytestmark = pytest.mark.service

#: Tiny machine: every suite benchmark finishes in well under a second.
TINY = {"num_sms": 2, "num_mem_partitions": 2}


@pytest.fixture
def server(tmp_path):
    """A live server on an ephemeral port with a fresh result cache."""
    httpd = make_server(
        "127.0.0.1", 0,
        cache_root=tmp_path / "results",
        artifact_root=tmp_path / "artifacts",
        workers=2,
    )
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    yield httpd
    httpd.shutdown()
    httpd.server_close()
    thread.join(timeout=10)


@pytest.fixture
def client(server):
    return ServiceClient(*server.server_address)


class TestLifecycle:
    def test_submit_poll_result(self, client):
        view = client.simulate("STAR", config=TINY)
        assert view["state"] in ("queued", "running", "done")
        assert view["cached"] is False
        done = client.wait(view["id"])
        assert done["state"] == "done"
        assert done["timings"]["queue_wait_s"] >= 0.0
        for stage in ("run_s", "trace_load_s", "sim_s", "serialize_s"):
            assert stage in done["timings"]
        envelope = client.result(view["id"])
        assert envelope["result"]["label"] == "STAR"
        stats = client.stats(view["id"])
        assert stats.cycles > 0

    def test_result_409_until_done(self, client):
        view = client.simulate(
            "NvB", config=TINY, use_cache=False, priority=0
        )
        if view["state"] != "done":
            try:
                client.result(view["id"])
            except ServiceError as err:
                assert err.status == 409
            else:  # the tiny run can legitimately win the race
                pass
        client.wait(view["id"])
        assert client.result(view["id"])["result"]["label"] == "NvB"

    def test_job_listing(self, client):
        first = client.simulate("STAR", config=TINY)
        client.wait(first["id"])
        listed = client.jobs()
        assert first["id"] in [job["id"] for job in listed]

    def test_unknown_job_404(self, client):
        with pytest.raises(ServiceError) as err:
            client.job("feedbeef0000")
        assert err.value.status == 404

    def test_health(self, client):
        assert client.health()["ok"] is True

    def test_request_id_round_trip(self, server):
        conn = HTTPConnection(*server.server_address, timeout=30)
        try:
            conn.request("GET", "/healthz",
                         headers={"X-Request-Id": "trace-me-123"})
            response = conn.getresponse()
            response.read()
            assert response.getheader("X-Request-Id") == "trace-me-123"
        finally:
            conn.close()

    def test_request_id_minted_when_absent(self, server):
        conn = HTTPConnection(*server.server_address, timeout=30)
        try:
            conn.request("GET", "/healthz")
            response = conn.getresponse()
            response.read()
            assert response.getheader("X-Request-Id")
        finally:
            conn.close()


class TestValidation:
    def test_malformed_body_is_400_with_field(self, client):
        with pytest.raises(ServiceError) as err:
            client.simulate("STAR", config={"num_smss": 8})
        assert err.value.status == 400
        assert err.value.body["field"] == "config"
        assert "unknown key" in err.value.body["error"]

    def test_unknown_benchmark_400(self, client):
        with pytest.raises(ServiceError) as err:
            client.simulate("BLAST")
        assert err.value.status == 400
        assert "unknown benchmark" in err.value.body["error"]

    def test_invalid_json_400(self, server):
        conn = HTTPConnection(*server.server_address, timeout=30)
        try:
            conn.request("POST", "/v1/simulate", body=b"{not json",
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            body = json.loads(response.read())
            assert response.status == 400
            assert "invalid JSON" in body["error"]
        finally:
            conn.close()

    def test_unknown_endpoint_404(self, client):
        with pytest.raises(ServiceError) as err:
            client.submit("compile", benchmark="STAR")
        assert err.value.status == 404

    def test_error_envelope_carries_request_id(self, client):
        with pytest.raises(ServiceError) as err:
            client.simulate("BLAST")
        assert err.value.body["request_id"]


class TestCaching:
    def test_cache_hit_bit_identical_and_no_worker(self, client):
        cold_view = client.simulate("SW", config=TINY)
        client.wait(cold_view["id"])
        cold_stats = client.stats(cold_view["id"])
        executed_after_cold = client.metrics()["jobs_executed"]

        warm_view = client.simulate("SW", config=TINY)
        # Answered inline: already done, flagged cached, result attached.
        assert warm_view["state"] == "done"
        assert warm_view["cached"] is True
        assert warm_view["result"]["label"] == "SW"
        warm_stats = client.stats(warm_view["id"])
        assert warm_stats == cold_stats  # bit-identical RunStats
        # No worker dispatched for the hit.
        metrics = client.metrics()
        assert metrics["jobs_executed"] == executed_after_cold
        assert metrics["cache"]["hits"] == 1
        assert metrics["result_cache"]["entries"] >= 1

    def test_estimate_caches_and_round_trips(self, client):
        cold = client.run(
            "estimate", benchmark="SW", config=TINY,
            sample_fraction=0.5, sample_seed=3,
        )
        warm_view = client.estimate(
            "SW", config=TINY, sample_fraction=0.5, sample_seed=3
        )
        assert warm_view["cached"] is True
        warm_stats = client.stats(warm_view["id"])
        assert isinstance(warm_stats, EstimatedRunStats)
        assert warm_stats.to_dict() == cold["result"]["stats"]

    def test_sample_fraction_is_part_of_the_key(self, client):
        client.run("estimate", benchmark="STAR", config=TINY,
                   sample_fraction=0.5)
        other = client.estimate("STAR", config=TINY, sample_fraction=0.9)
        assert other["cached"] is False  # different fraction, cold run
        client.wait(other["id"])

    def test_config_change_misses(self, client):
        client.run("simulate", benchmark="STAR", config=TINY)
        other = client.simulate(
            "STAR", config={**TINY, "l1.size_bytes": 65536}
        )
        assert other["cached"] is False
        client.wait(other["id"])

    def test_use_cache_false_bypasses(self, client):
        client.run("simulate", benchmark="STAR", config=TINY)
        bypass = client.simulate("STAR", config=TINY, use_cache=False)
        assert bypass["cached"] is False
        client.wait(bypass["id"])
        assert client.metrics()["jobs_executed"] == 2

    def test_cache_survives_restart(self, tmp_path):
        root = tmp_path / "results"
        stats_before = None
        for generation in range(2):
            httpd = make_server("127.0.0.1", 0, cache_root=root, workers=1)
            thread = threading.Thread(
                target=httpd.serve_forever, daemon=True
            )
            thread.start()
            try:
                client = ServiceClient(*httpd.server_address)
                view = client.simulate("GL", config=TINY)
                if generation == 0:
                    assert view["cached"] is False
                    client.wait(view["id"])
                    stats_before = client.stats(view["id"])
                else:
                    # A fresh process answers from the on-disk cache.
                    assert view["cached"] is True
                    assert client.stats(view["id"]) == stats_before
                    assert client.metrics()["jobs_executed"] == 0
            finally:
                httpd.shutdown()
                httpd.server_close()
                thread.join(timeout=10)

    def test_fingerprint_change_invalidates(self, client, monkeypatch):
        import repro.service.result_cache as result_cache_mod

        client.run("simulate", benchmark="GG", config=TINY)
        monkeypatch.setattr(
            result_cache_mod, "source_fingerprint",
            lambda: "kernels-were-edited",
        )
        stale = client.simulate("GG", config=TINY)
        assert stale["cached"] is False  # old entry no longer addressed
        client.wait(stale["id"])


class TestCancellation:
    def test_delete_cancels(self, client, server):
        # Saturate both workers with slow jobs, then cancel a queued one.
        blockers = [
            client.simulate("NvB", size="medium", use_cache=False)
            for _ in range(2)
        ]
        victim = client.simulate("NvB", size="medium", use_cache=False,
                                 priority=-1)
        response = client.cancel(victim["id"])
        assert response["cancelled"] is True
        final = client.wait(victim["id"])
        assert final["state"] == "cancelled"
        for job in blockers:
            client.wait(job["id"], timeout=120)

    def test_cancel_finished_is_false(self, client):
        view = client.simulate("STAR", config=TINY, use_cache=False)
        client.wait(view["id"])
        assert client.cancel(view["id"])["cancelled"] is False


class TestProfileArtifacts:
    def test_artifacts_downloadable(self, client):
        view = client.profile("STAR", config=TINY, interval=2000)
        done = client.wait(view["id"])
        assert sorted(done["artifacts"]) == ["telemetry.jsonl", "trace.json"]

        jsonl = client.artifact(view["id"], "telemetry.jsonl")
        lines = [json.loads(line) for line in jsonl.splitlines() if line]
        assert lines[0]["interval"] == 2000  # header
        samples = [s for s in lines[1:] if s.get("type") == "interval"]
        assert samples and all("end" in sample for sample in samples)

        trace = json.loads(client.artifact(view["id"], "trace.json"))
        assert trace["traceEvents"]

    def test_profile_never_cached(self, client):
        for expected_executed in (1, 2):
            view = client.profile("STAR", config=TINY, interval=2000)
            assert view["cached"] is False
            client.wait(view["id"])
            assert client.metrics()["jobs_executed"] == expected_executed

    def test_missing_artifact_404(self, client):
        view = client.profile("STAR", config=TINY, artifacts=["jsonl"])
        client.wait(view["id"])
        with pytest.raises(ServiceError) as err:
            client.artifact(view["id"], "trace.json")
        assert err.value.status == 404


class TestMetrics:
    def test_metrics_shape(self, client):
        client.run("simulate", benchmark="STAR", config=TINY)
        client.simulate("STAR", config=TINY)  # a hit
        metrics = client.metrics()
        assert metrics["requests"]["simulate"] == 2
        assert metrics["cache"] == {
            "hits": 1, "misses": 1, "coalesced": 0, "stores": 1,
        }
        assert metrics["queue"]["workers"] == 2
        stage = metrics["stage_latency"]["sim_s"]
        # Exactly the one real execution; the hit didn't dilute it.
        assert stage["count"] == 1
        assert stage["max_s"] >= stage["mean_s"] > 0.0
        assert metrics["result_cache"]["entries"] == 1


class TestConcurrentClients:
    def test_identical_requests_execute_once(self, client):
        """The stress invariant: N clients hammering one request spec
        produce bit-identical stats from exactly one execution."""
        results, errors = [], []

        def hammer():
            try:
                local = ServiceClient(client.host, client.port)
                envelope = local.run(
                    "simulate", benchmark="GSG", config=TINY, timeout=60
                )
                results.append(envelope["result"]["stats"])
            except Exception as exc:  # pragma: no cover - fail loudly
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors
        assert len(results) == 8
        canonical = json.dumps(results[0], sort_keys=True)
        assert all(
            json.dumps(stats, sort_keys=True) == canonical
            for stats in results
        )
        metrics = client.metrics()
        # Deterministic invariant: one cold execution, everyone else
        # either coalesced onto it or hit the cache afterwards.
        assert metrics["jobs_executed"] == 1
        assert metrics["cache"]["stores"] == 1
        assert (
            metrics["cache"]["hits"] + metrics["cache"]["coalesced"] == 7
        )

    def test_mixed_workload_all_complete(self, client):
        """Different requests from concurrent clients all finish and
        land the right payloads (no cross-talk between jobs)."""
        benchmarks = ["SW", "NW", "STAR", "GG", "GL", "GSG"]
        outcomes, errors = {}, []

        def run_one(name):
            try:
                local = ServiceClient(client.host, client.port)
                envelope = local.run(
                    "simulate", benchmark=name, config=TINY,
                    use_cache=False, timeout=120,
                )
                outcomes[name] = envelope["result"]["label"]
            except Exception as exc:  # pragma: no cover - fail loudly
                errors.append((name, exc))

        threads = [
            threading.Thread(target=run_one, args=(name,))
            for name in benchmarks
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=180)
        assert not errors
        assert outcomes == {name: name for name in benchmarks}
        assert client.metrics()["jobs_executed"] == len(benchmarks)
