"""Job progress: executor-side publication and service-side reads."""

import json
import time

import pytest

from repro.service.execute import execute_sweep, write_progress
from repro.service.schemas import JobView, parse_request
from repro.service.service import SimulationService
from repro.sim.config import GPUConfig
from repro.sim.gpu import GPUSimulator

pytestmark = pytest.mark.service


class TestWriteProgress:
    def test_atomic_write_and_read_back(self, tmp_path):
        write_progress(tmp_path, {"unit": "points", "done": 1})
        payload = json.loads((tmp_path / "progress.json").read_text())
        assert payload == {"unit": "points", "done": 1}
        assert not list(tmp_path.glob("*.tmp"))

    def test_none_artifact_dir_is_a_no_op(self):
        write_progress(None, {"unit": "points"})  # must not raise

    def test_unwritable_dir_swallowed(self, tmp_path):
        write_progress(tmp_path / "missing" / "deep", {"done": 0})


class TestSweepProgress:
    def test_sweep_executor_publishes_exact_percent(self, tmp_path):
        request = parse_request("sweep", {
            "benchmarks": ["NW", "CLUSTER"], "cdp_variants": False,
            "config": {"num_sms": 4},
        })
        execute_sweep(request, str(tmp_path))
        payload = json.loads((tmp_path / "progress.json").read_text())
        assert payload == {
            "unit": "points", "done": 2, "total": 2, "percent": 100.0,
        }


class TestTelemetryProgressHook:
    def test_hook_fires_on_new_intervals_monotonically(self):
        from repro.kernels import build_application

        seen = []
        sim = GPUSimulator(GPUConfig(num_sms=4, telemetry_interval=1000))
        sim.telemetry.progress = (
            lambda index, interval: seen.append((index, interval))
        )
        sim.run_application(build_application("NW"))
        assert seen, "no intervals reported"
        indexes = [index for index, _ in seen]
        assert indexes == sorted(set(indexes)), "indexes must be monotone"
        assert all(interval == 1000 for _, interval in seen)

    def test_hook_absent_costs_nothing(self):
        from repro.kernels import build_application

        sim = GPUSimulator(GPUConfig(num_sms=4, telemetry_interval=1000))
        assert sim.telemetry.progress is None
        sim.run_application(build_application("NW"))  # must not raise


class TestJobViewProgress:
    def test_view_round_trips_progress(self):
        view = JobView(
            id="j1", kind="sweep", state="running", priority=0,
            cached=False, coalesced=False, request_id=None,
            submitted_at=0.0, started_at=None, finished_at=None,
            timings={}, error=None, artifacts=(),
            progress={"unit": "points", "done": 1, "total": 4,
                      "percent": 25.0},
        )
        back = JobView.from_dict(json.loads(json.dumps(view.to_dict())))
        assert back.progress == view.progress

    def test_progress_defaults_to_none(self):
        payload = JobView(
            id="j1", kind="simulate", state="queued", priority=0,
            cached=False, coalesced=False, request_id=None,
            submitted_at=0.0, started_at=None, finished_at=None,
            timings={}, error=None, artifacts=(),
        ).to_dict()
        assert payload["progress"] is None


class TestServiceProgress:
    def test_running_job_reports_progress_in_view_and_metrics(
        self, tmp_path
    ):
        service = SimulationService(
            artifact_root=tmp_path, workers=1, use_processes=True,
        )
        try:
            job = service.submit("sweep", {
                "benchmarks": ["NW", "SW", "STAR", "GG"],
                "cdp_variants": True,
            })
            deadline = time.monotonic() + 60
            seen = None
            while time.monotonic() < deadline:
                view = service.job(job.id).view()
                if view.state in ("done", "failed"):
                    break
                if view.progress is not None:
                    seen = view.progress
                    running = service.metrics_dict()["running"]
                    assert any(
                        row["id"] == job.id and row["progress"]
                        for row in running
                    )
                    break
                time.sleep(0.01)
            assert seen is not None, "job finished before progress showed"
            assert seen["unit"] == "points"
            assert seen["total"] == 8
            service.wait(job.id, timeout=120)
        finally:
            service.shutdown()

    def test_finished_job_reports_no_progress(self, tmp_path):
        service = SimulationService(
            artifact_root=tmp_path, workers=1, use_processes=False,
        )
        try:
            job = service.submit("simulate", {
                "benchmark": "NW", "config": {"num_sms": 4},
            })
            service.wait(job.id, timeout=120)
            assert service.job(job.id).view().progress is None
            assert service.metrics_dict()["running"] == []
        finally:
            service.shutdown()
