"""Schema round-trip and rejection tests (the wire contract)."""

import pytest

from repro.service.schemas import (
    PROFILE_ARTIFACTS,
    SCHEMA_VERSION,
    EstimateRequest,
    JobView,
    ProfileRequest,
    SchemaError,
    SimulateRequest,
    SweepRequest,
    error_body,
    parse_request,
)

pytestmark = pytest.mark.service


class TestRoundTrip:
    """to_dict -> from_dict must be the identity for every schema."""

    @pytest.mark.parametrize("kind,payload", [
        ("simulate", {"benchmark": "NW"}),
        ("simulate", {
            "benchmark": "SW", "cdp": True, "size": "medium",
            "config": {"num_sms": 8, "dram.controller": "fifo"},
            "priority": 5, "timeout_s": 30.0, "use_cache": False,
        }),
        ("estimate", {
            "benchmark": "PairHMM", "sample_fraction": 0.25,
            "sample_seed": 7,
        }),
        ("sweep", {
            "benchmarks": ["NW", "STAR"], "cdp_variants": False,
            "config": {"l1.size_bytes": 65536},
        }),
        ("profile", {
            "benchmark": "NvB", "interval": 5000,
            "artifacts": ["jsonl"],
        }),
    ])
    def test_request_round_trip(self, kind, payload):
        request = parse_request(kind, payload)
        again = parse_request(kind, request.to_dict())
        assert again == request

    def test_defaults_applied(self):
        request = parse_request("simulate", {"benchmark": "NW"})
        assert request.size == "small"
        assert request.use_cache is True
        assert request.priority == 0
        assert request.timeout_s is None

    def test_profile_defaults_all_artifacts(self):
        request = parse_request("profile", {"benchmark": "NW"})
        assert request.artifacts == PROFILE_ARTIFACTS

    def test_resolved_config_carries_sample_knobs(self):
        request = parse_request("estimate", {
            "benchmark": "NW", "sample_fraction": 0.5, "sample_seed": 3,
        })
        config = request.resolved_config()
        assert config.sample_fraction == 0.5
        assert config.sample_seed == 3

    def test_resolved_config_applies_overrides(self):
        request = parse_request("simulate", {
            "benchmark": "NW",
            "config": {"num_sms": 8, "noc.topology": "mesh"},
        })
        config = request.resolved_config()
        assert config.num_sms == 8
        assert config.noc.topology == "mesh"

    def test_job_view_round_trip(self):
        view = JobView(
            id="abc123", kind="simulate", state="queued", priority=1,
            cached=False, coalesced=False, request_id="rid",
            submitted_at=1.5, started_at=None, finished_at=None,
            timings={"queue_wait_s": 0.1}, error=None,
            artifacts=("telemetry.jsonl",),
        )
        assert JobView.from_dict(view.to_dict()) == view

    def test_job_view_rejects_version_skew(self):
        payload = JobView(
            id="abc", kind="simulate", state="queued", priority=0,
            cached=False, coalesced=False, request_id=None,
            submitted_at=0.0, started_at=None, finished_at=None,
            timings={}, error=None, artifacts=(),
        ).to_dict()
        payload["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(SchemaError, match="schema_version"):
            JobView.from_dict(payload)


class TestRejection:
    """Malformed payloads fail loudly, naming the offending field."""

    def test_unknown_kind(self):
        with pytest.raises(SchemaError, match="unknown request kind"):
            parse_request("compile", {})

    def test_non_object_body(self):
        with pytest.raises(SchemaError, match="must be an object"):
            parse_request("simulate", [1, 2, 3])

    def test_missing_benchmark(self):
        with pytest.raises(SchemaError, match="benchmark"):
            parse_request("simulate", {})

    def test_unknown_benchmark(self):
        with pytest.raises(SchemaError, match="unknown benchmark"):
            parse_request("simulate", {"benchmark": "BLAST"})

    def test_unknown_field(self):
        with pytest.raises(SchemaError, match="unknown field"):
            parse_request("simulate", {"benchmark": "NW", "gpus": 2})

    @pytest.mark.parametrize("field,value,match", [
        ("cdp", "yes", "boolean"),
        ("size", "huge", "unknown size"),
        ("priority", 1.5, "integer"),
        ("priority", True, "integer"),
        ("timeout_s", -1, "positive"),
        ("timeout_s", "soon", "number"),
        ("use_cache", 1, "boolean"),
        ("config", ["num_sms"], "object"),
    ])
    def test_simulate_field_types(self, field, value, match):
        with pytest.raises(SchemaError, match=match):
            parse_request("simulate", {"benchmark": "NW", field: value})

    @pytest.mark.parametrize("overrides,match", [
        ({"num_smss": 8}, "unknown key"),
        ({"dram.controler": "fifo"}, "unknown key"),
        ({"warp.size": 16}, "unknown component"),
        ({"num_sms": "many"}, "integer"),
        ({"num_sms": 0}, "at least one SM"),
    ])
    def test_config_overrides_validated(self, overrides, match):
        with pytest.raises(SchemaError, match=match):
            parse_request(
                "simulate", {"benchmark": "NW", "config": overrides}
            )

    @pytest.mark.parametrize("fraction", [0.0, -0.1, 1.5, "half"])
    def test_estimate_fraction_range(self, fraction):
        with pytest.raises(SchemaError, match="sample_fraction"):
            parse_request("estimate", {
                "benchmark": "NW", "sample_fraction": fraction,
            })

    def test_sweep_rejects_unknown_subset_member(self):
        with pytest.raises(SchemaError, match="unknown benchmark"):
            parse_request("sweep", {"benchmarks": ["NW", "BLAST"]})

    def test_sweep_rejects_non_list_subset(self):
        with pytest.raises(SchemaError, match="expected a list"):
            parse_request("sweep", {"benchmarks": "NW"})

    @pytest.mark.parametrize("payload,match", [
        ({"benchmark": "NW", "interval": 0}, "positive"),
        ({"benchmark": "NW", "artifacts": ["pdf"]}, "unknown artifact"),
        ({"benchmark": "NW", "artifacts": "jsonl"}, "expected a list"),
    ])
    def test_profile_rejections(self, payload, match):
        with pytest.raises(SchemaError, match=match):
            parse_request("profile", payload)

    def test_schema_error_carries_field(self):
        with pytest.raises(SchemaError) as err:
            parse_request("simulate", {"benchmark": "NW", "cdp": "yes"})
        assert err.value.field == "cdp"


class TestRequestClasses:
    def test_dataclasses_are_frozen(self):
        request = SimulateRequest(benchmark="NW")
        with pytest.raises(Exception):
            request.benchmark = "SW"

    def test_identity_excludes_scheduling_knobs(self):
        fast = SimulateRequest(benchmark="NW", priority=9, timeout_s=1.0)
        slow = SimulateRequest(benchmark="NW", priority=0, use_cache=False)
        assert fast.identity() == slow.identity()

    def test_kind_registry_covers_all(self):
        assert {cls.KIND for cls in (
            SimulateRequest, EstimateRequest, SweepRequest, ProfileRequest
        )} == {"simulate", "estimate", "sweep", "profile"}

    def test_error_body_shape(self):
        body = error_body("boom", request_id="rid", field_name="cdp")
        assert body == {
            "schema_version": SCHEMA_VERSION,
            "error": "boom",
            "request_id": "rid",
            "field": "cdp",
        }


class TestSweepPointsMode:
    """Explicit wire-encoded points (the dsweep ServiceLauncher path)."""

    def _points(self):
        from repro.core.sweep import sweep_point
        from repro.dist.wire import encode_point
        from repro.sim.config import GPUConfig

        config = GPUConfig(num_sms=4)
        return [
            encode_point(sweep_point("NW|a", "NW", config)),
            encode_point(sweep_point("NW|b", "NW", config, cdp=True)),
        ]

    def test_points_round_trip_canonically(self):
        encoded = self._points()
        request = parse_request("sweep", {"points": encoded})
        assert list(request.to_dict()["points"]) == encoded
        assert len(request.points) == 2

    def test_identity_is_the_point_keys(self):
        encoded = self._points()
        request = parse_request("sweep", {"points": encoded})
        assert request.identity() == {
            "points": [entry["key"] for entry in encoded]
        }

    def test_points_exclude_grid_fields(self):
        encoded = self._points()
        for extra in (
            {"benchmarks": ["NW"]},
            {"cdp_variants": False},
            {"size": "small"},
            {"config": {"num_sms": 8}},
        ):
            with pytest.raises(SchemaError, match="do not combine"):
                parse_request("sweep", {"points": encoded, **extra})

    def test_corrupt_point_rejected_with_index(self):
        encoded = self._points()
        encoded[1]["cdp"] = False  # stale identity key
        with pytest.raises(SchemaError) as err:
            parse_request("sweep", {"points": encoded})
        assert err.value.field == "points[1]"

    def test_non_object_point_rejected(self):
        with pytest.raises(SchemaError, match="expected an object"):
            parse_request("sweep", {"points": ["NW"]})

    def test_duplicate_labels_rejected(self):
        entry = self._points()[0]
        with pytest.raises(SchemaError, match="unique"):
            parse_request("sweep", {"points": [entry, dict(entry)]})
