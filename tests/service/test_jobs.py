"""Job queue semantics: lifecycle, priorities, cancellation, timeouts.

These tests drive :class:`repro.service.jobs.JobQueue` directly with
closure executors (inherited across ``fork``, so no pickling), which
keeps every scenario deterministic: sleep executors stand in for long
simulations, ``start=False`` freezes dispatch until the queue is
fully loaded.
"""

import multiprocessing
import time

import pytest

from repro.service.jobs import JobQueue, JobState

pytestmark = pytest.mark.service

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

needs_fork = pytest.mark.skipif(
    not HAS_FORK, reason="kill-based control needs the fork start method"
)


def quick(request, artifact_dir):
    return {"echo": request}, {"sim_s": 0.0}


def failing(request, artifact_dir):
    raise RuntimeError("deliberate explosion")


def sleeper(request, artifact_dir):
    time.sleep(float(request))
    return {"slept": request}, {}


@pytest.fixture
def queue():
    jobs = JobQueue(
        {"quick": quick, "fail": failing, "sleep": sleeper},
        workers=2,
        use_processes=False,
    )
    yield jobs
    jobs.shutdown()


@pytest.fixture
def forked_queue():
    jobs = JobQueue(
        {"quick": quick, "fail": failing, "sleep": sleeper},
        workers=2,
        use_processes=True,
    )
    yield jobs
    jobs.shutdown()


class TestLifecycle:
    def test_submit_poll_result(self, queue):
        job = queue.submit("quick", "hello")
        assert queue.get(job.id) is job
        done = queue.wait(job.id, timeout=10)
        assert done.state == JobState.DONE
        assert done.result == {"echo": "hello"}
        assert done.error is None
        assert done.finished_at >= done.started_at >= done.submitted_at
        assert done.timings["queue_wait_s"] >= 0.0
        assert done.timings["run_s"] >= 0.0
        assert done.timings["sim_s"] == 0.0  # executor-reported stage

    def test_failure_reported_not_raised(self, queue):
        job = queue.submit("fail", None)
        done = queue.wait(job.id, timeout=10)
        assert done.state == JobState.FAILED
        assert "deliberate explosion" in done.error
        assert done.result is None

    def test_unknown_kind_rejected_at_submit(self, queue):
        with pytest.raises(KeyError, match="no executor"):
            queue.submit("compile", None)

    def test_wait_times_out(self, queue):
        job = queue.submit("sleep", "5")
        with pytest.raises(TimeoutError):
            queue.wait(job.id, timeout=0.05)
        queue.cancel(job.id)

    def test_wait_unknown_job(self, queue):
        with pytest.raises(KeyError):
            queue.wait("feedbeef0000", timeout=0.1)

    def test_executed_counts_real_runs_only(self, queue):
        queue.wait(queue.submit("quick", "a").id, timeout=10)
        queue.record_completed("quick", {"echo": "cached"}, cached=True)
        assert queue.executed == 1

    def test_record_completed_is_terminal(self, queue):
        job = queue.record_completed("quick", {"echo": "hit"}, cached=True)
        assert job.state == JobState.DONE
        assert job.cached is True
        assert job.result == {"echo": "hit"}
        assert queue.wait(job.id, timeout=1) is job  # no blocking

    def test_view_round_trips_state(self, queue):
        job = queue.submit("quick", "x")
        queue.wait(job.id, timeout=10)
        view = job.view()
        assert view.id == job.id
        assert view.state == JobState.DONE
        assert view.timings == job.timings


class TestPriorities:
    def test_higher_priority_dispatches_first(self):
        order = []

        def recorder(request, artifact_dir):
            order.append(request)
            return {}, {}

        # start=False: load the whole queue before any worker exists,
        # then a single worker drains it strictly by priority.
        jobs = JobQueue(
            {"rec": recorder}, workers=1, start=False, use_processes=False
        )
        try:
            jobs.submit("rec", "low", priority=0)
            jobs.submit("rec", "mid", priority=5)
            jobs.submit("rec", "high", priority=9)
            jobs.submit("rec", "mid2", priority=5)
            jobs.start()
            last = jobs.submit("rec", "late-low", priority=0)
            jobs.wait(last.id, timeout=10)
        finally:
            jobs.shutdown()
        assert order == ["high", "mid", "mid2", "low", "late-low"]

    def test_fifo_within_a_priority(self):
        order = []

        def recorder(request, artifact_dir):
            order.append(request)
            return {}, {}

        jobs = JobQueue(
            {"rec": recorder}, workers=1, start=False, use_processes=False
        )
        try:
            for name in ("a", "b", "c"):
                jobs.submit("rec", name, priority=3)
            jobs.start()
            jobs.wait(jobs.submit("rec", "d", priority=3).id, timeout=10)
        finally:
            jobs.shutdown()
        assert order == ["a", "b", "c", "d"]


class TestCancellation:
    def test_cancel_queued_job_never_runs(self):
        ran = []

        def recorder(request, artifact_dir):
            ran.append(request)
            return {}, {}

        jobs = JobQueue(
            {"rec": recorder}, workers=1, start=False, use_processes=False
        )
        try:
            victim = jobs.submit("rec", "victim")
            survivor = jobs.submit("rec", "survivor")
            assert jobs.cancel(victim.id) is True
            assert victim.state == JobState.CANCELLED
            assert "queued" in victim.error
            jobs.start()
            jobs.wait(survivor.id, timeout=10)
        finally:
            jobs.shutdown()
        assert ran == ["survivor"]

    @needs_fork
    def test_cancel_running_job_kills_it(self, forked_queue):
        job = forked_queue.submit("sleep", "30")
        deadline = time.monotonic() + 10
        while job.state == JobState.QUEUED:
            assert time.monotonic() < deadline
            time.sleep(0.01)
        assert forked_queue.cancel(job.id) is True
        done = forked_queue.wait(job.id, timeout=10)
        assert done.state == JobState.CANCELLED
        assert "cancelled while running" in done.error
        # The 30s sleep was killed, not awaited.
        assert done.timings["run_s"] < 10

    def test_cancel_finished_job_is_false(self, queue):
        job = queue.submit("quick", "x")
        queue.wait(job.id, timeout=10)
        assert queue.cancel(job.id) is False

    def test_cancel_unknown_job_is_false(self, queue):
        assert queue.cancel("feedbeef0000") is False

    def test_shutdown_cancels_queued(self):
        jobs = JobQueue(
            {"sleep": sleeper}, workers=1, start=False, use_processes=False
        )
        job = jobs.submit("sleep", "30")
        jobs.shutdown()
        assert job.state == JobState.CANCELLED
        assert "shutting down" in job.error
        with pytest.raises(RuntimeError, match="shut down"):
            jobs.submit("sleep", "1")


class TestTimeouts:
    @needs_fork
    def test_timeout_kills_the_job(self, forked_queue):
        job = forked_queue.submit("sleep", "30", timeout_s=0.2)
        done = forked_queue.wait(job.id, timeout=10)
        assert done.state == JobState.TIMEOUT
        assert "timeout_s=0.2" in done.error
        assert done.timings["run_s"] < 10  # killed, not slept out

    @needs_fork
    def test_fast_job_beats_its_timeout(self, forked_queue):
        job = forked_queue.submit("sleep", "0", timeout_s=30)
        done = forked_queue.wait(job.id, timeout=10)
        assert done.state == JobState.DONE
        assert done.result == {"slept": "0"}


class TestConcurrencyBounds:
    def test_workers_bound_parallelism(self):
        """With one worker, jobs serialize; the gauge never exceeds 1."""
        running = []

        def tracked(request, artifact_dir):
            running.append(1)
            peak = len(running)
            time.sleep(0.05)
            running.pop()
            return {"peak": peak}, {}

        jobs = JobQueue({"t": tracked}, workers=1, use_processes=False)
        try:
            submitted = [jobs.submit("t", i) for i in range(4)]
            results = [jobs.wait(job.id, timeout=30) for job in submitted]
        finally:
            jobs.shutdown()
        assert all(job.result["peak"] == 1 for job in results)

    def test_two_workers_overlap(self):
        barrier_hits = []

        def meet(request, artifact_dir):
            barrier_hits.append(request)
            deadline = time.monotonic() + 5
            while len(barrier_hits) < 2:  # both jobs must be in flight
                if time.monotonic() > deadline:
                    return {"met": False}, {}
                time.sleep(0.005)
            return {"met": True}, {}

        jobs = JobQueue({"meet": meet}, workers=2, use_processes=False)
        try:
            first = jobs.submit("meet", "a")
            second = jobs.submit("meet", "b")
            done = [jobs.wait(job.id, timeout=30) for job in (first, second)]
        finally:
            jobs.shutdown()
        assert all(job.result == {"met": True} for job in done)

    def test_depth_gauges(self, queue):
        job = queue.submit("quick", "x")
        queue.wait(job.id, timeout=10)
        depth = queue.depth()
        assert depth["workers"] == 2
        assert depth["queued"] == 0
        assert depth["states"].get(JobState.DONE, 0) >= 1

    def test_worker_floor(self):
        with pytest.raises(ValueError, match="at least one worker"):
            JobQueue({"quick": quick}, workers=0)


class TestWeightedBudget:
    """One job running ``parallel_shards=N`` occupies N worker slots —
    the fix for the ``--workers x --jobs`` core double-count."""

    @staticmethod
    def _sharded(shards):
        from types import SimpleNamespace

        config = SimpleNamespace(parallel_shards=shards)
        return SimpleNamespace(resolved_config=lambda: config)

    def test_sharded_jobs_never_overlap(self):
        """Three weight-2 jobs on two workers must serialize: each
        holds the whole budget while its shard workers run."""
        running = []
        peaks = []

        def tracked(request, artifact_dir):
            running.append(1)
            peaks.append(len(running))
            time.sleep(0.05)
            running.pop()
            return {}, {}

        jobs = JobQueue({"t": tracked}, workers=2, use_processes=False)
        try:
            submitted = [
                jobs.submit("t", self._sharded(2)) for _ in range(3)
            ]
            for job in submitted:
                jobs.wait(job.id, timeout=30)
        finally:
            jobs.shutdown()
        assert peaks and max(peaks) == 1

    def test_weight_capped_at_pool_size(self):
        """A job over-sharded past the worker count still runs (alone)
        rather than deadlocking on slots that cannot exist."""
        jobs = JobQueue({"quick": quick}, workers=2, use_processes=False)
        try:
            job = jobs.submit("quick", self._sharded(99))
            done = jobs.wait(job.id, timeout=30)
        finally:
            jobs.shutdown()
        assert done.state == JobState.DONE

    def test_unsharded_requests_weigh_one(self):
        """Plain requests (no resolvable config) keep full overlap."""
        jobs = JobQueue({"sleep": sleeper}, workers=2, use_processes=False)
        try:
            first = jobs.submit("sleep", 0.2)
            second = jobs.submit("sleep", 0.2)
            started = time.monotonic()
            jobs.wait(first.id, timeout=30)
            jobs.wait(second.id, timeout=30)
            elapsed = time.monotonic() - started
        finally:
            jobs.shutdown()
        assert elapsed < 0.38  # ran concurrently, not back-to-back

    def test_cancel_while_waiting_for_slots(self):
        """A queued heavy job cancelled while a running job holds its
        slots must die without ever dispatching."""
        jobs = JobQueue({"sleep": sleeper, "quick": quick},
                        workers=2, use_processes=False)
        try:
            blocker = jobs.submit("sleep", 0.3)
            heavy_req = self._sharded(2)
            heavy = jobs.submit("quick", heavy_req)
            time.sleep(0.05)  # let the blocker start
            assert jobs.cancel(heavy.id)
            done = jobs.wait(heavy.id, timeout=30)
            jobs.wait(blocker.id, timeout=30)
        finally:
            jobs.shutdown()
        assert done.state == JobState.CANCELLED

    def test_depth_reports_slots(self, queue):
        assert "slots_in_use" in queue.depth()
