"""Content-addressed result cache: keying, durability, concurrency."""

import json
import os
import threading
import time

import pytest

import repro.service.result_cache as result_cache_mod
from repro.service.result_cache import CACHE_VERSION, ResultCache, cache_key
from repro.service.schemas import parse_request
from repro.sim.config import GPUConfig

pytestmark = pytest.mark.service


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "results")


class TestCacheKey:
    def test_stable_across_calls(self):
        request = parse_request("simulate", {"benchmark": "NW"})
        first = cache_key("simulate", request.identity(),
                          request.resolved_config())
        second = cache_key("simulate", request.identity(),
                           request.resolved_config())
        assert first == second
        assert len(first) == 64  # sha256 hex

    def test_kind_separates_keys(self):
        request = parse_request("simulate", {"benchmark": "NW"})
        config = request.resolved_config()
        assert cache_key("simulate", request.identity(), config) != \
            cache_key("estimate", request.identity(), config)

    def test_identity_fields_separate_keys(self):
        base = parse_request("simulate", {"benchmark": "NW"})
        cdp = parse_request("simulate", {"benchmark": "NW", "cdp": True})
        assert cache_key("simulate", base.identity(),
                         base.resolved_config()) != \
            cache_key("simulate", cdp.identity(), cdp.resolved_config())

    def test_any_config_field_separates_keys(self):
        identity = {"benchmark": "NW"}
        base = GPUConfig()
        for variant in (
            base.with_(num_sms=8),
            base.with_(sample_fraction=0.5),
            base.with_(sample_seed=7),
            base.with_(telemetry_interval=5000),
        ):
            assert cache_key("simulate", identity, base) != \
                cache_key("simulate", identity, variant)

    def test_scheduling_knobs_share_a_key(self):
        fast = parse_request(
            "simulate", {"benchmark": "NW", "priority": 9, "timeout_s": 5}
        )
        slow = parse_request("simulate", {"benchmark": "NW"})
        assert cache_key("simulate", fast.identity(),
                         fast.resolved_config()) == \
            cache_key("simulate", slow.identity(), slow.resolved_config())

    def test_source_fingerprint_invalidates(self, monkeypatch):
        """Editing any trace-producing source retires every entry."""
        identity = {"benchmark": "NW"}
        config = GPUConfig()
        before = cache_key("simulate", identity, config)
        monkeypatch.setattr(
            result_cache_mod, "source_fingerprint", lambda: "edited-tree"
        )
        after = cache_key("simulate", identity, config)
        assert before != after


class TestPayloads:
    def test_round_trip(self, cache):
        payload = {"stats": {"cycles": 123, "ipc": 0.75}, "label": "NW"}
        key = "ab" * 32
        cache.put(key, payload)
        assert cache.get(key) == payload
        assert (cache.hits, cache.misses, cache.stores) == (1, 0, 1)

    def test_miss_on_unknown_key(self, cache):
        assert cache.get("cd" * 32) is None
        assert cache.misses == 1

    def test_round_trip_is_bit_identical(self, cache):
        """Float payloads survive json round-trip bit-for-bit (repr
        floats): what comes back equals what went in, exactly."""
        payload = {"pi": 3.141592653589793, "tiny": 5e-324,
                   "counts": {"7": 1234567890123}}
        key = "ef" * 32
        cache.put(key, payload)
        again = cache.get(key)
        assert again == payload
        assert json.dumps(again, sort_keys=True) == json.dumps(
            payload, sort_keys=True
        )

    def test_corrupt_entry_retired_as_miss(self, cache):
        key = "12" * 32
        cache.put(key, {"ok": True})
        cache.path_for(key).write_text('{"version": 1, "payl')  # torn write
        assert cache.get(key) is None
        assert not cache.path_for(key).exists()  # retired, not raised

    def test_foreign_version_retired(self, cache):
        key = "34" * 32
        cache.path_for(key).parent.mkdir(parents=True, exist_ok=True)
        cache.path_for(key).write_text(
            json.dumps({"version": CACHE_VERSION + 1, "payload": {}})
        )
        assert cache.get(key) is None
        assert not cache.path_for(key).exists()

    def test_overwrite_is_idempotent(self, cache):
        key = "56" * 32
        cache.put(key, {"v": 1})
        cache.put(key, {"v": 1})
        assert cache.get(key) == {"v": 1}
        assert len(cache) == 1

    def test_survives_restart(self, tmp_path):
        key = "78" * 32
        ResultCache(tmp_path).put(key, {"persisted": True})
        reopened = ResultCache(tmp_path)
        assert reopened.get(key) == {"persisted": True}
        assert len(reopened) == 1


class TestIndex:
    def test_index_records_meta(self, cache):
        key = "9a" * 32
        cache.put(key, {"x": 1}, meta={"kind": "simulate"})
        entry = cache.index()["entries"][key]
        assert entry["kind"] == "simulate"
        assert entry["file"] == f"{key}.json"
        assert entry["created"] > 0

    def test_corrupt_index_tolerated(self, cache):
        cache.put("bc" * 32, {"x": 1})
        (cache.root / "index.json").write_text("not json{{")
        assert cache.index() == {"version": CACHE_VERSION, "entries": {}}
        # payloads are untouched by index corruption
        assert cache.get("bc" * 32) == {"x": 1}

    def test_concurrent_writers_all_land(self, tmp_path):
        """N threads with their own cache handles share one index."""
        keys = [f"{i:02x}" * 32 for i in range(8)]
        errors = []

        def writer(key):
            try:
                ResultCache(tmp_path).put(key, {"key": key})
            except Exception as exc:  # pragma: no cover - fail loudly
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(key,)) for key in keys
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        index = ResultCache(tmp_path).index()
        assert sorted(index["entries"]) == sorted(keys)
        assert not (tmp_path / "index.lock").exists()

    def test_stale_index_lock_broken(self, tmp_path):
        """A lock from a dead writer is taken over, not waited out."""
        cache = ResultCache(tmp_path, stale_lock_s=0.2)
        cache.root.mkdir(parents=True, exist_ok=True)
        lock = cache.root / "index.lock"
        lock.write_text("99999")  # orphaned by a killed process
        old = time.time() - 5.0
        os.utime(lock, (old, old))
        started = time.monotonic()
        cache.put("de" * 32, {"recovered": True})
        assert time.monotonic() - started < 2.0  # did not block for 60s
        assert cache.get("de" * 32) == {"recovered": True}

    def test_fresh_lock_respected(self, tmp_path):
        """A live writer's lock delays, not breaks, the second writer."""
        cache = ResultCache(tmp_path, stale_lock_s=0.25)
        cache.root.mkdir(parents=True, exist_ok=True)
        (cache.root / "index.lock").write_text("123")  # freshly created
        started = time.monotonic()
        cache.put("f0" * 32, {"waited": True})
        # Had to wait for the lock to cross the stale threshold.
        assert time.monotonic() - started >= 0.2


class TestEviction:
    def test_max_entries_evicts_oldest(self, tmp_path):
        cache = ResultCache(tmp_path, max_entries=2)
        for i, key in enumerate(("a1" * 32, "b2" * 32, "c3" * 32)):
            cache.put(key, {"n": i})
            time.sleep(0.01)  # distinct created timestamps
        assert len(cache) == 2
        assert cache.evictions == 1
        assert cache.get("a1" * 32) is None  # oldest gone...
        assert not cache.path_for("a1" * 32).exists()  # ...payload too
        assert cache.get("b2" * 32) == {"n": 1}
        assert cache.get("c3" * 32) == {"n": 2}

    def test_max_bytes_evicts_until_under(self, tmp_path):
        cache = ResultCache(tmp_path, max_bytes=1)
        cache.put("d4" * 32, {"first": True})
        # The freshly published entry always survives, even oversized:
        # a budget below one payload degrades to a single-entry cache.
        assert len(cache) == 1
        assert cache.evictions == 0
        time.sleep(0.01)
        cache.put("e5" * 32, {"second": True})
        assert len(cache) == 1
        assert cache.evictions == 1
        assert cache.get("d4" * 32) is None
        assert cache.get("e5" * 32) == {"second": True}

    def test_pre_budget_entries_sized_by_stat(self, tmp_path):
        """Entries written before the budgets existed carry no
        ``bytes`` in the index; eviction falls back to the payload
        file's on-disk size."""
        legacy = ResultCache(tmp_path)
        legacy.put("f6" * 32, {"old": True})
        index = legacy.index()
        del index["entries"]["f6" * 32]["bytes"]
        (tmp_path / "index.json").write_text(json.dumps(index))
        time.sleep(0.01)
        bounded = ResultCache(tmp_path, max_bytes=16)
        bounded.put("a7" * 32, {"new": True})
        assert bounded.evictions == 1
        assert bounded.get("f6" * 32) is None
        assert bounded.get("a7" * 32) == {"new": True}

    def test_unbounded_cache_never_evicts(self, tmp_path):
        cache = ResultCache(tmp_path)
        for i in range(8):
            cache.put(f"{i:02d}" * 32, {"n": i})
        assert len(cache) == 8
        assert cache.evictions == 0

    def test_budget_floor_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="max_entries"):
            ResultCache(tmp_path, max_entries=0)
        with pytest.raises(ValueError, match="max_bytes"):
            ResultCache(tmp_path, max_bytes=0)

    def test_service_reports_eviction_metrics(self, tmp_path):
        from repro.service.service import SimulationService

        service = SimulationService(
            cache_root=tmp_path / "results",
            workers=1,
            start=False,
            cache_max_entries=5,
            cache_max_bytes=1 << 20,
        )
        try:
            stats = service.metrics_dict()["result_cache"]
            assert stats["evictions"] == 0
            assert stats["max_entries"] == 5
            assert stats["max_bytes"] == 1 << 20
        finally:
            service.shutdown()
