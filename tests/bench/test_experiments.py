"""Smoke + shape tests for the per-figure experiment harnesses.

Full-suite sweeps run in the ``benchmarks/`` harness; here each
experiment is exercised on a reduced machine and, where the paper makes
a headline claim, the claim's *shape* is asserted.
"""

import pytest

from repro.bench import (
    fig2_cpu_gpu,
    fig3_cdp,
    fig4_kernel_pci,
    fig5_stalls,
    fig6_sram,
    fig7_shared_memory,
    fig8_instruction_mix,
    fig9_memory_mix,
    fig10_warp_occupancy,
    fig15_perfect_memory,
    fig18_dram_utilization,
    table1_configs,
    table2_configs,
    table3_properties,
    suite_variants,
)
from repro.core.config_presets import baseline_config

CONFIG = baseline_config(num_sms=8)


class TestTables:
    def test_table1_rows(self):
        rows = table1_configs()
        names = [r["configuration"] for r in rows]
        assert "Memory Controller" in names
        assert "Scheduler" in names

    def test_table2_rows(self):
        rows = table2_configs()
        assert any(r["configuration"] == "Topology" for r in rows)

    def test_table3_all_benchmarks(self):
        rows = table3_properties(CONFIG)
        assert len(rows) == 10
        assert {r["abbr"] for r in rows} == set(
            a for a, _ in suite_variants()
        )


class TestSuiteVariants:
    def test_twenty_variants(self):
        assert len(suite_variants()) == 20


class TestFig2:
    def test_gpu_beats_cpu(self):
        rows = fig2_cpu_gpu(CONFIG)
        assert [r["benchmark"] for r in rows] == ["SW", "NW", "STAR"]
        for row in rows:
            assert row["gpu_speedup"] > 1.0

    def test_star_cdp_large_gain(self):
        # On the full 78-SM baseline CDP more than halves STAR's time;
        # on this reduced machine the children contend for SMs, so
        # assert the slightly weaker form of the claim.
        rows = fig2_cpu_gpu(CONFIG)
        star = next(r for r in rows if r["benchmark"] == "STAR")
        assert star["gpu_cdp_cycles"] < star["gpu_cycles"] * 0.6


class TestFig3:
    def test_cdp_helps_on_average(self):
        rows = fig3_cdp(CONFIG)
        improvements = [r["improvement"] for r in rows]
        assert sum(improvements) / len(improvements) > 0.05
        assert max(improvements) > 0.4  # the STAR-style big win
        assert min(improvements) > -0.15  # no serious regression


class TestFig4:
    def test_counts_present(self):
        rows = fig4_kernel_pci(CONFIG)
        assert len(rows) == 20
        by_name = {r["benchmark"]: r for r in rows}
        assert by_name["SW"]["kernel_count"] > by_name["SW"]["pci_count"]
        assert by_name["GG"]["pci_count"] > by_name["GG"]["kernel_count"]


class TestFig5:
    def test_fractions_sum_to_one(self):
        rows = fig5_stalls(CONFIG)
        for row in rows:
            fractions = [v for k, v in row.items() if k != "benchmark"]
            assert sum(fractions) == pytest.approx(1.0)

    def test_nvb_functional_done(self):
        rows = {r["benchmark"]: r for r in fig5_stalls(CONFIG)}
        assert rows["NvB"].get("functional_done", 0) > 0.5
        assert rows["NvB-CDP"].get("functional_done", 0) > 0.5


class TestFig6:
    def test_utilization_rows(self):
        rows = fig6_sram(CONFIG)
        assert len(rows) == 10
        for row in rows:
            assert 0.0 <= row["registers"] <= 1.0
        by_name = {r["benchmark"]: r for r in rows}
        # Only the Table III shared-memory kernels use shared memory.
        assert by_name["NW"]["shared_memory"] > 0
        assert by_name["SW"]["shared_memory"] == 0.0


class TestFig7:
    def test_shared_memory_ablation(self):
        rows = {r["benchmark"]: r for r in fig7_shared_memory(CONFIG)}
        assert 1.2 < rows["NW"]["slowdown_without"] < 4.0
        assert rows["PairHMM"]["slowdown_without"] > 15.0


class TestFig8:
    def test_integer_over_60_percent_on_average(self):
        rows = fig8_instruction_mix(CONFIG)
        ints = [r.get("int", 0.0) for r in rows]
        assert sum(ints) / len(ints) > 0.55


class TestFig9:
    def test_space_signatures(self):
        rows = {r["benchmark"]: r for r in fig9_memory_mix(CONFIG)}
        assert rows["GG"]["local"] > 0.9
        assert rows["NW"]["shared"] > 0.85
        assert rows["NvB"]["global"] > 0.9


class TestFig10:
    def test_histograms_normalized(self):
        rows = fig10_warp_occupancy(CONFIG)
        for row in rows:
            buckets = [v for k, v in row.items() if k.startswith("W")]
            assert sum(buckets) == pytest.approx(1.0)


class TestFig15:
    def test_perfect_memory_never_hurts(self):
        rows = fig15_perfect_memory(CONFIG)
        for row in rows:
            # Short CDP runs on the reduced 8-SM machine see a few
            # percent of scheduling noise: zero-latency memory shifts
            # child-kernel completion times and hence dispatch packing.
            assert row["speedup"] >= 0.90

    def test_gksw_gains_most(self):
        rows = fig15_perfect_memory(CONFIG)
        best = max(rows, key=lambda r: r["speedup"])
        assert "GKSW" in best["benchmark"]
        assert best["speedup"] > 3.0


class TestFig18:
    def test_gksw_highest_utilization(self):
        rows = fig18_dram_utilization(CONFIG)
        by_name = {r["benchmark"]: r["utilization"] for r in rows}
        top = max(by_name, key=by_name.get)
        assert top in ("GKSW", "GKSW-CDP")
        assert by_name["GKSW"] > 0.3
