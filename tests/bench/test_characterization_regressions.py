"""Regression locks on the characterization claims in EXPERIMENTS.md.

EXPERIMENTS.md records what this model *measured* against each of the
paper's claims; these tests freeze the measured column as range
assertions so timing-model drift that silently changes a reproduced
figure fails loudly.  Bounds are deliberately loose (ranges, not exact
values) — they lock the *claims*, not the bit patterns (the golden
tests do that).
"""

import pytest

from repro.bench import fig8_instruction_mix, suite_variants
from repro.core.config_presets import baseline_config
from repro.core.runner import run_benchmark

pytestmark = pytest.mark.slow

CONFIG = baseline_config()


class TestFig5Stalls:
    def test_pairhmm_memory_stall_dominates(self):
        """Fig 5 measured: memory latency up to 98% on PairHMM."""
        breakdown = run_benchmark(
            "PairHMM", config=CONFIG
        ).stall_breakdown()
        assert breakdown["long_memory_latency"] >= 0.90
        assert max(breakdown, key=breakdown.get) == "long_memory_latency"


class TestFig8InstructionMix:
    @pytest.fixture(scope="class")
    def rows(self):
        return {r["benchmark"]: r for r in fig8_instruction_mix(CONFIG)}

    def test_int_mean_above_60_percent(self, rows):
        ints = [r.get("int", 0.0) for r in rows.values()]
        assert sum(ints) / len(ints) > 0.60

    def test_sfu_below_5_percent_everywhere(self, rows):
        assert all(r.get("sfu", 0.0) < 0.05 for r in rows.values())

    def test_pairhmm_is_the_fp_outlier(self, rows):
        """EXPERIMENTS.md: PairHMM is the FP-heavy outlier."""
        row = rows["PairHMM"]
        assert row.get("fp", 0.0) > row.get("int", 0.0)
        assert row.get("fp", 0.0) >= 0.50


class TestFig10WarpOccupancy:
    """Measured column: NW/GL 100% W29-32; CLUSTER 97% W1-4; STAR 97%
    W13-16; STAR-CDP 97% W1-4; NW-CDP 100% W29-32."""

    EXPECTED = [
        ("NW", False, "W29-32", 0.99),
        ("GL", False, "W29-32", 0.99),
        ("CLUSTER", False, "W1-4", 0.90),
        ("STAR", False, "W13-16", 0.90),
        ("STAR", True, "W1-4", 0.90),
        ("NW", True, "W29-32", 0.99),
    ]

    @pytest.mark.parametrize(
        "abbr,cdp,bucket,floor", EXPECTED,
        ids=[f"{a}{'-cdp' if c else ''}" for a, c, _, _ in EXPECTED],
    )
    def test_dominant_bucket(self, abbr, cdp, bucket, floor):
        fractions = run_benchmark(
            abbr, cdp=cdp, config=CONFIG
        ).occupancy_fractions()
        assert fractions[bucket] >= floor
        assert max(fractions, key=fractions.get) == bucket


class TestSuiteShape:
    def test_twenty_variants(self):
        """The claims above quantify over the 10x2 variant suite."""
        assert len(suite_variants()) == 20
