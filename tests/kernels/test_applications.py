"""Integration tests: every benchmark application runs and is faithful."""

import numpy as np
import pytest

from repro.data.datasets import DatasetSize, dataset_for
from repro.kernels import benchmark_names, build_application
from repro.sim import GPUSimulator
from repro.sim.config import GPUConfig


CONFIG = GPUConfig(num_sms=8)


def run(abbr, cdp=False, **options):
    app = build_application(abbr, cdp=cdp, **options)
    return GPUSimulator(CONFIG).run_application(app)


class TestAllApplicationsRun:
    @pytest.mark.parametrize("abbr", benchmark_names())
    @pytest.mark.parametrize("cdp", [False, True])
    def test_runs_to_completion(self, abbr, cdp):
        stats = run(abbr, cdp=cdp)
        assert stats.instructions > 0
        assert stats.kernel_cycles > 0
        assert stats.kernel_launches >= 1
        assert stats.memcpy_calls >= 1

    @pytest.mark.parametrize("abbr", benchmark_names())
    def test_cdp_variant_uses_device_launches(self, abbr):
        stats = run(abbr, cdp=True)
        assert stats.device_launches >= 1

    @pytest.mark.parametrize("abbr", benchmark_names())
    def test_noncdp_has_no_device_launches(self, abbr):
        stats = run(abbr, cdp=False)
        assert stats.device_launches == 0

    @pytest.mark.parametrize("abbr", benchmark_names())
    def test_deterministic(self, abbr):
        a = run(abbr)
        b = run(abbr)
        assert a.kernel_cycles == b.kernel_cycles
        assert a.instructions == b.instructions


class TestHostProgramShapes:
    def test_sw_kernel_calls_outnumber_pci(self):
        stats = run("SW")
        assert stats.kernel_launches > stats.memcpy_calls

    def test_nw_kernel_calls_outnumber_pci(self):
        stats = run("NW")
        assert stats.kernel_launches > stats.memcpy_calls

    def test_gasal_pci_outnumber_kernel_calls(self):
        for abbr in ("GG", "GL", "GKSW", "GSG"):
            stats = run(abbr)
            assert stats.memcpy_calls > stats.kernel_launches, abbr

    def test_nvb_launches_many_kernels(self):
        stats = run("NvB")
        assert stats.kernel_launches > 50

    def test_cdp_reduces_host_launches(self):
        for abbr in ("SW", "NW", "STAR", "NvB"):
            base = run(abbr, cdp=False)
            cdp = run(abbr, cdp=True)
            assert cdp.kernel_launches < base.kernel_launches, abbr


class TestFunctionalResults:
    def test_sw_alignment(self):
        app = build_application("SW")
        result = app.run_functional()
        assert result.score > 0
        assert result.identity() > 0.5

    def test_nw_alignment(self):
        app = build_application("NW")
        result = app.run_functional()
        assert result.query_end == len(app.workload.query)

    def test_star_msa(self):
        app = build_application("STAR")
        msa = app.run_functional()
        assert len(msa.rows) == len(app.workload.sequences)
        assert len({len(r) for r in msa.rows}) == 1

    def test_gasal_batch(self):
        app = build_application("GG")
        results = app.run_functional()
        assert len(results) == len(app.workload.queries)
        assert all(r.score is not None for r in results)

    def test_cluster(self):
        app = build_application("CLUSTER")
        result = app.run_functional()
        assert 1 <= result.num_clusters <= len(app.workload.sequences)
        # Families in the synthetic mixture must merge.
        assert result.num_clusters < len(app.workload.sequences)

    def test_pairhmm_matrix(self):
        app = build_application("PairHMM")
        matrix = app.run_functional()
        assert matrix.shape == (
            len(app.workload.reads), len(app.workload.haplotypes)
        )
        assert np.isfinite(matrix).all()

    def test_nvb_maps_most_reads(self):
        app = build_application("NvB")
        mappings, stats, index = app.run_functional()
        mapped = sum(1 for m in mappings if m is not None)
        assert mapped / len(mappings) > 0.9
        assert stats.reads == len(app.workload.reads)

    def test_nvb_functional_cached(self):
        app = build_application("NvB")
        first = app.run_functional()
        second = app.run_functional()
        assert first is second


class TestAblationVariants:
    def test_nw_no_shared_slower(self):
        fast = run("NW", use_shared=True)
        slow = run("NW", use_shared=False)
        assert slow.device_time() > fast.device_time()

    def test_pairhmm_no_shared_much_slower(self):
        fast = run("PairHMM", use_shared=True)
        slow = run("PairHMM", use_shared=False)
        assert slow.device_time() > 10 * fast.device_time()

    def test_no_shared_variant_drops_shared_accesses(self):
        stats = run("PairHMM", use_shared=False)
        assert stats.mem_fractions().get("shared", 0.0) == 0.0


class TestWorkloadOverride:
    def test_custom_workload_accepted(self):
        workload = dataset_for("SW", DatasetSize.SMALL, seed=99)
        app = build_application("SW", workload=workload)
        assert app.workload is workload

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ValueError):
            build_application("BLAST")


class TestCharacterizationSignatures:
    """The per-benchmark microarchitectural signatures the paper reports."""

    def test_gasal_local_memory_dominant(self):
        for abbr in ("GG", "GL", "GSG"):
            mix = run(abbr).mem_fractions()
            assert mix["local"] > 0.9, abbr

    def test_nw_pairhmm_shared_dominant(self):
        for abbr in ("NW", "PairHMM"):
            mix = run(abbr).mem_fractions()
            assert mix["shared"] > 0.85, abbr

    def test_pairhmm_is_fp_heavy(self):
        ops = run("PairHMM").op_fractions()
        assert ops["fp"] > ops["int"]

    def test_integer_dominant_elsewhere(self):
        for abbr in ("SW", "NW", "STAR", "GG", "CLUSTER", "NvB"):
            ops = run(abbr).op_fractions()
            assert ops["int"] > 0.5, abbr

    def test_cluster_dominated_by_narrow_warps(self):
        occ = run("CLUSTER").occupancy_fractions()
        assert occ["W1-4"] > 0.5

    def test_star_cdp_narrow_warps(self):
        occ = run("STAR", cdp=True).occupancy_fractions()
        assert occ["W1-4"] > 0.8

    def test_nw_full_warps(self):
        occ = run("NW").occupancy_fractions()
        assert occ["W29-32"] > 0.6

    def test_nvb_functional_done_dominates(self):
        breakdown = run("NvB").stall_breakdown()
        assert breakdown["functional_done"] > 0.5

    def test_sfu_instructions_rare(self):
        for abbr in benchmark_names():
            ops = run(abbr).op_fractions()
            assert ops.get("sfu", 0.0) < 0.05, abbr
