"""Tests for Table III properties and kernel resource modelling."""

import pytest

from repro.kernels import BENCHMARKS, benchmark_names, build_application
from repro.sim.config import GPUConfig
from repro.sim.occupancy import occupancy_report


class TestTableIII:
    def test_ten_benchmarks(self):
        assert len(BENCHMARKS) == 10
        assert benchmark_names() == [
            "SW", "NW", "STAR", "GG", "GL", "GKSW", "GSG",
            "CLUSTER", "PairHMM", "NvB",
        ]

    @pytest.mark.parametrize("abbr,grid,cta", [
        ("SW", (3, 1, 1), (64, 1, 1)),
        ("NW", (500, 1, 1), (128, 1, 1)),
        ("STAR", (12, 1, 1), (256, 1, 1)),
        ("GG", (40, 1, 1), (128, 1, 1)),
        ("CLUSTER", (128, 1, 1), (128, 1, 1)),
        ("PairHMM", (150, 1, 1), (128, 1, 1)),
        ("NvB", (2048, 1, 1), (256, 1, 1)),
    ])
    def test_launch_geometry(self, abbr, grid, cta):
        info = BENCHMARKS[abbr]
        assert info.grid == grid
        assert info.cta == cta

    def test_shared_memory_flags(self):
        uses_shared = {a for a, i in BENCHMARKS.items() if i.uses_shared}
        assert uses_shared == {"NW", "CLUSTER", "PairHMM"}

    def test_all_use_constant_memory(self):
        assert all(i.uses_constant for i in BENCHMARKS.values())

    @pytest.mark.parametrize("abbr,expected", [
        ("NW", 6), ("STAR", 4), ("GG", 12), ("GL", 12), ("GKSW", 12),
        ("GSG", 12), ("CLUSTER", 12), ("PairHMM", 10), ("NvB", 6),
    ])
    def test_model_reproduces_paper_cta_per_core(self, abbr, expected):
        """Kernel resource declarations yield the paper's CTA/core.

        SW is excluded: the paper reports 30, which is inconsistent
        with its own Table I thread limit (1536 / 64 = 24).
        """
        app = build_application(abbr)
        kernel = getattr(app, "kernel", None)
        if kernel is None:
            for op in app.host_program():
                if hasattr(op, "launch"):
                    kernel = op.launch.kernel
                    break
        report = occupancy_report(GPUConfig(), kernel)
        assert report.ctas_per_sm == expected

    def test_sw_is_thread_limited(self):
        app = build_application("SW")
        report = occupancy_report(GPUConfig(), app.kernel)
        assert report.ctas_per_sm == 24
        assert report.limiter == "threads"

    def test_shared_kernels_declare_shared_memory(self):
        for abbr in ("NW", "CLUSTER", "PairHMM"):
            app = build_application(abbr)
            kernel = getattr(app, "kernel", None)
            if kernel is None:
                for op in app.host_program():
                    if hasattr(op, "launch"):
                        kernel = op.launch.kernel
                        break
            assert kernel.uses_shared_memory
