"""Trace-level unit tests for the benchmark kernels.

Every kernel's per-warp trace must be well formed: terminate with an
EXIT, keep memory operands in the right address regions, and respect
the structural signatures the applications rely on.
"""

import pytest

from repro.isa.instructions import MemSpace, OpClass
from repro.kernels import benchmark_names, build_application
from repro.kernels.base import CONST_BASE, GLOBAL_BASE, LOCAL_BASE
from repro.sim.kernel import WarpContext
from repro.sim.launch import HostLaunch


def first_launch(app):
    for op in app.host_program():
        if isinstance(op, HostLaunch):
            return op.launch
    raise AssertionError("application never launches a kernel")


def trace_of(launch, cta_id=0, warp_id=0):
    kernel = launch.kernel
    ctx = WarpContext(
        cta_id=cta_id,
        warp_id=warp_id,
        warps_per_cta=kernel.warps_per_cta,
        num_ctas=launch.num_ctas,
        args=launch.args,
    )
    return list(kernel.warp_trace(ctx))


class TestTraceWellFormedness:
    @pytest.mark.parametrize("abbr", benchmark_names())
    @pytest.mark.parametrize("cdp", [False, True])
    def test_every_warp_trace_ends_with_exit(self, abbr, cdp):
        app = build_application(abbr, cdp=cdp)
        launch = first_launch(app)
        for cta in range(min(2, launch.num_ctas)):
            for warp in range(launch.kernel.warps_per_cta):
                trace = trace_of(launch, cta, warp)
                assert trace, (abbr, cta, warp)
                assert trace[-1].op is OpClass.EXIT
                # EXIT appears exactly once, at the end.
                assert sum(
                    1 for i in trace if i.op is OpClass.EXIT
                ) == 1

    @pytest.mark.parametrize("abbr", benchmark_names())
    def test_address_regions_respected(self, abbr):
        app = build_application(abbr)
        launch = first_launch(app)
        for instr in trace_of(launch):
            if instr.op is not OpClass.LDST or not instr.mem.lines:
                continue
            space = instr.mem.space
            for line in instr.mem.lines:
                if space in (MemSpace.CONST, MemSpace.PARAM):
                    assert CONST_BASE <= line < GLOBAL_BASE, abbr
                elif space is MemSpace.LOCAL:
                    assert line >= LOCAL_BASE, abbr
                elif space is MemSpace.GLOBAL:
                    assert GLOBAL_BASE <= line < LOCAL_BASE, abbr

    @pytest.mark.parametrize("abbr", benchmark_names())
    def test_masks_always_valid(self, abbr):
        app = build_application(abbr)
        launch = first_launch(app)
        for instr in trace_of(launch):
            assert 1 <= instr.active_lanes <= 32


class TestStructuralSignatures:
    def test_sw_trace_is_const_and_global(self):
        launch = first_launch(build_application("SW"))
        spaces = {
            i.mem.space for i in trace_of(launch)
            if i.op is OpClass.LDST
        }
        assert MemSpace.CONST in spaces
        assert MemSpace.GLOBAL in spaces
        assert MemSpace.SHARED not in spaces

    def test_nw_trace_uses_shared_and_barriers(self):
        launch = first_launch(build_application("NW"))
        trace = trace_of(launch)
        assert any(
            i.op is OpClass.LDST and i.mem.space is MemSpace.SHARED
            for i in trace
        )
        assert any(i.op is OpClass.SYNC for i in trace)

    def test_gasal_uses_local_ring_buffer(self):
        launch = first_launch(build_application("GG"))
        local_lines = [
            line
            for i in trace_of(launch)
            if i.op is OpClass.LDST and i.mem.space is MemSpace.LOCAL
            for line in i.mem.lines
        ]
        assert local_lines
        # Ring buffer: the footprint is small (reused), not streaming.
        from repro.kernels.gasal2 import GasalKernel

        assert len(set(local_lines)) <= GasalKernel.LOCAL_LINES

    def test_gksw_streams_traceback(self):
        gg = first_launch(build_application("GG"))
        gksw = first_launch(build_application("GKSW"))
        gg_stores = sum(
            i.mem.transactions for i in trace_of(gg)
            if i.op is OpClass.LDST and i.mem.store
            and i.mem.space is MemSpace.GLOBAL
        )
        gksw_stores = sum(
            i.mem.transactions for i in trace_of(gksw)
            if i.op is OpClass.LDST and i.mem.store
            and i.mem.space is MemSpace.GLOBAL
        )
        assert gksw_stores > 10 * max(1, gg_stores)

    def test_pairhmm_trace_is_fp_heavy(self):
        launch = first_launch(build_application("PairHMM"))
        trace = trace_of(launch)
        fp = sum(i.repeat for i in trace if i.op is OpClass.FP)
        ints = sum(i.repeat for i in trace if i.op is OpClass.INT)
        assert fp > ints

    def test_cdp_parents_launch_and_sync(self):
        for abbr in ("SW", "NW", "STAR", "PairHMM"):
            app = build_application(abbr, cdp=True)
            launch = first_launch(app)
            found_launch = found_sync = False
            for cta in range(min(4, launch.num_ctas)):
                for warp in range(launch.kernel.warps_per_cta):
                    for i in trace_of(launch, cta, warp):
                        found_launch |= i.op is OpClass.LAUNCH
                        found_sync |= i.op is OpClass.DEVSYNC
            assert found_launch and found_sync, abbr

    def test_cluster_divergence_follows_trail(self):
        app = build_application("CLUSTER")
        result = app.run_functional()
        launch = first_launch(app)
        # Warp 0 screens the first (longest) sequence, which has no
        # representatives to reject yet — divergence builds up on the
        # later warps, whose candidates fight the filter cascade.
        narrow = 0
        for cta in range(launch.num_ctas):
            for warp in range(launch.kernel.warps_per_cta):
                narrow += sum(
                    i.repeat for i in trace_of(launch, cta, warp)
                    if i.active_lanes <= 4
                )
        assert narrow > 0
        assert result.trail  # the trace was derived from a real trail

    def test_star_lockstep_half_warps(self):
        launch = first_launch(build_application("STAR"))
        trace = trace_of(launch)
        halves = sum(
            i.repeat for i in trace if i.active_lanes == 16
        )
        assert halves > len(trace) // 2
