"""Scale smoke tests: the MEDIUM datasets run end to end.

The benches use SMALL; these confirm the suite scales to the next size
without deadlocks or trace errors (and that times actually grow).
"""

import pytest

from repro.core.runner import run_benchmark
from repro.data.datasets import DatasetSize
from repro.sim.config import GPUConfig

CONFIG = GPUConfig(num_sms=16)

#: MEDIUM-scale smoke subset: one benchmark per trace-model family.
SUBSET = ["SW", "GG", "CLUSTER", "PairHMM"]


@pytest.mark.parametrize("abbr", SUBSET)
def test_medium_runs_and_scales(abbr):
    small = run_benchmark(abbr, size=DatasetSize.SMALL, config=CONFIG)
    medium = run_benchmark(abbr, size=DatasetSize.MEDIUM, config=CONFIG)
    assert medium.instructions > small.instructions
    assert medium.kernel_cycles > small.kernel_cycles


def test_medium_cdp_still_helps_star():
    small = run_benchmark(
        "STAR", cdp=False, size=DatasetSize.MEDIUM, config=CONFIG
    ).device_time()
    cdp = run_benchmark(
        "STAR", cdp=True, size=DatasetSize.MEDIUM, config=CONFIG
    ).device_time()
    assert cdp < small
