"""Tests for synthetic data generators."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.data.synth import (
    mutate,
    random_dna,
    random_protein,
    sample_reads,
    sequence_family,
)
from repro.genomics.sequence import PROTEIN, Sequence


class TestRandomSequences:
    def test_deterministic_for_seed(self):
        assert random_dna(100, seed=1) == random_dna(100, seed=1)
        assert random_dna(100, seed=1) != random_dna(100, seed=2)

    def test_length(self):
        assert len(random_dna(57, seed=0)) == 57
        assert len(random_protein(31, seed=0)) == 31

    def test_alphabets(self):
        assert set(random_dna(500, seed=3)) <= set("ACGT")
        assert set(random_protein(500, seed=3)) <= set(PROTEIN.letters)

    def test_gc_content_respected(self):
        high_gc = random_dna(5000, seed=4, gc=0.8)
        frac = sum(1 for c in high_gc if c in "GC") / len(high_gc)
        assert 0.75 < frac < 0.85

    def test_rejects_negative_length(self):
        with pytest.raises(ValueError):
            random_dna(-1)

    def test_rejects_bad_gc(self):
        with pytest.raises(ValueError):
            random_dna(10, gc=1.5)


class TestMutate:
    def test_zero_rates_identity(self):
        text = random_dna(200, seed=5)
        assert mutate(text, seed=1, substitution_rate=0.0) == text

    def test_substitution_rate_approximate(self):
        text = random_dna(5000, seed=6)
        mutated = mutate(text, seed=7, substitution_rate=0.1)
        diffs = sum(1 for a, b in zip(text, mutated) if a != b)
        assert 0.07 < diffs / len(text) < 0.13

    def test_deletions_shorten(self):
        text = random_dna(2000, seed=8)
        mutated = mutate(text, seed=9, deletion_rate=0.1)
        assert len(mutated) < len(text)

    def test_insertions_lengthen(self):
        text = random_dna(2000, seed=10)
        mutated = mutate(text, seed=11, insertion_rate=0.1)
        assert len(mutated) > len(text)

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            mutate("ACGT", substitution_rate=1.5)

    def test_accepts_rng_instance(self):
        rng = random.Random(0)
        out = mutate("ACGT" * 10, rng, substitution_rate=0.5)
        assert len(out) == 40

    @given(st.text(alphabet="ACGT", min_size=1, max_size=100),
           st.floats(min_value=0.0, max_value=0.5))
    @settings(max_examples=40)
    def test_substitutions_preserve_length_and_alphabet(self, text, rate):
        mutated = mutate(text, seed=1, substitution_rate=rate)
        assert len(mutated) == len(text)
        assert set(mutated) <= set("ACGT")


class TestSequenceFamily:
    def test_first_member_is_ancestor(self):
        fam_a = sequence_family(4, 100, seed=12)
        fam_b = sequence_family(1, 100, seed=12)
        assert fam_a[0].residues == fam_b[0].residues

    def test_members_related(self):
        fam = sequence_family(5, 200, divergence=0.05, seed=13)
        ancestor = fam[0].residues
        for member in fam[1:]:
            # Lengths should stay within a few percent.
            assert abs(len(member) - len(ancestor)) < 0.1 * len(ancestor)

    def test_protein_family(self):
        fam = sequence_family(3, 50, seed=14, protein=True)
        assert all(s.alphabet is PROTEIN for s in fam)

    def test_names(self):
        fam = sequence_family(3, 50, seed=15, name_prefix="x")
        assert [s.name for s in fam] == ["x0", "x1", "x2"]

    def test_rejects_zero_count(self):
        with pytest.raises(ValueError):
            sequence_family(0, 50)


class TestSampleReads:
    @pytest.fixture
    def reference(self):
        return Sequence("ref", random_dna(3000, seed=16))

    def test_read_properties(self, reference):
        reads = sample_reads(reference, 25, 100, seed=17)
        assert len(reads) == 25
        for record in reads:
            assert len(record.sequence) == 100
            assert len(record.qualities) == 100

    def test_description_carries_truth(self, reference):
        (record,) = sample_reads(reference, 1, 50, seed=18)
        fields = dict(
            part.split("=") for part in record.sequence.description.split()
        )
        pos = int(fields["pos"])
        assert 0 <= pos <= len(reference) - 50
        assert fields["strand"] in "+-"

    def test_zero_error_reads_match_reference(self, reference):
        reads = sample_reads(
            reference, 10, 60, seed=19, error_rate=0.0, reverse_fraction=0.0
        )
        for record in reads:
            pos = int(record.sequence.description.split()[0].split("=")[1])
            assert record.sequence.residues == reference.residues[pos:pos + 60]

    def test_reverse_reads_are_reverse_complements(self, reference):
        reads = sample_reads(
            reference, 10, 60, seed=20, error_rate=0.0, reverse_fraction=1.0
        )
        for record in reads:
            pos = int(record.sequence.description.split()[0].split("=")[1])
            fragment = Sequence("f", reference.residues[pos:pos + 60])
            assert record.sequence.residues == \
                fragment.reverse_complement().residues

    def test_read_longer_than_reference_rejected(self, reference):
        with pytest.raises(ValueError):
            sample_reads(reference, 1, len(reference) + 1)
