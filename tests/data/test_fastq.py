"""Tests for FASTQ I/O."""

import io

import pytest

from repro.data.fastq import FastqRecord, parse_fastq, read_fastq, write_fastq
from repro.genomics.sequence import Sequence


def record(name="r", residues="ACGT", quality=30):
    return FastqRecord(
        Sequence(name, residues), tuple([quality] * len(residues))
    )


class TestFastqRecord:
    def test_quality_length_must_match(self):
        with pytest.raises(ValueError):
            FastqRecord(Sequence("r", "ACGT"), (30, 30))

    def test_quality_range_checked(self):
        with pytest.raises(ValueError):
            FastqRecord(Sequence("r", "A"), (94,))
        with pytest.raises(ValueError):
            FastqRecord(Sequence("r", "A"), (-1,))

    def test_error_probabilities(self):
        rec = record(quality=20)
        assert rec.error_probabilities() == pytest.approx([0.01] * 4)

    def test_quality_string_phred33(self):
        rec = record(quality=0)
        assert rec.quality_string() == "!!!!"

    def test_name(self):
        assert record(name="abc").name == "abc"


class TestParseFastq:
    def test_basic(self):
        text = "@r1 pos=5\nACGT\n+\nIIII\n@r2\nGG\n+\nII\n"
        records = list(parse_fastq(io.StringIO(text)))
        assert len(records) == 2
        assert records[0].name == "r1"
        assert records[0].sequence.description == "pos=5"
        assert records[0].qualities == (40, 40, 40, 40)

    def test_missing_plus_rejected(self):
        text = "@r\nACGT\nIIII\nIIII\n"
        with pytest.raises(ValueError, match="missing '\\+'"):
            list(parse_fastq(io.StringIO(text)))

    def test_quality_length_mismatch_rejected(self):
        text = "@r\nACGT\n+\nII\n"
        with pytest.raises(ValueError):
            list(parse_fastq(io.StringIO(text)))

    def test_bad_header_rejected(self):
        text = "r\nACGT\n+\nIIII\n"
        with pytest.raises(ValueError, match="expected '@'"):
            list(parse_fastq(io.StringIO(text)))

    def test_empty(self):
        assert list(parse_fastq(io.StringIO(""))) == []


class TestWriteFastq:
    def test_roundtrip(self, tmp_path):
        records = [record("a", "ACGT", 30), record("b", "GGTT", 2)]
        path = tmp_path / "reads.fastq"
        write_fastq(records, path)
        assert read_fastq(path) == records

    def test_format(self):
        text = write_fastq([record("r", "AC", 40)])
        assert text == "@r\nAC\n+\nII\n"
