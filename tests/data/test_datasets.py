"""Tests for the dataset registry and workload containers."""

import pytest

from repro.data.datasets import DatasetSize, dataset_for
from repro.data.workloads import (
    BatchAlignmentWorkload,
    ClusterWorkload,
    MSAWorkload,
    PairHMMWorkload,
    PairwiseWorkload,
    ReadMappingWorkload,
)
from repro.genomics.sequence import PROTEIN, Sequence
from repro.kernels import benchmark_names


class TestRegistry:
    @pytest.mark.parametrize("abbr", benchmark_names())
    def test_every_benchmark_has_a_dataset(self, abbr):
        workload = dataset_for(abbr, DatasetSize.SMALL)
        assert workload is not None

    def test_unknown_benchmark(self):
        with pytest.raises(ValueError, match="unknown benchmark"):
            dataset_for("NOPE")

    def test_deterministic(self):
        a = dataset_for("SW", DatasetSize.SMALL)
        b = dataset_for("SW", DatasetSize.SMALL)
        assert a == b

    def test_seed_changes_data(self):
        a = dataset_for("SW", seed=1)
        b = dataset_for("SW", seed=2)
        assert a != b

    def test_sizes_scale_up(self):
        small = dataset_for("SW", DatasetSize.SMALL)
        large = dataset_for("SW", DatasetSize.LARGE)
        assert len(large.query) > len(small.query)

    def test_workload_types(self):
        assert isinstance(dataset_for("SW"), PairwiseWorkload)
        assert isinstance(dataset_for("STAR"), MSAWorkload)
        assert isinstance(dataset_for("GG"), BatchAlignmentWorkload)
        assert isinstance(dataset_for("CLUSTER"), ClusterWorkload)
        assert isinstance(dataset_for("PairHMM"), PairHMMWorkload)
        assert isinstance(dataset_for("NvB"), ReadMappingWorkload)

    def test_star_uses_proteins(self):
        workload = dataset_for("STAR")
        assert all(s.alphabet is PROTEIN for s in workload.sequences)

    def test_gasal_kernels_share_dataset(self):
        assert dataset_for("GG") == dataset_for("GL")

    def test_pairhmm_reads_have_varied_lengths(self):
        workload = dataset_for("PairHMM")
        assert len({len(r) for r in workload.reads}) > 1

    def test_nvb_reads_sampled_from_reference(self):
        workload = dataset_for("NvB")
        assert len(workload.reference) >= 10_000
        assert len(workload.reads) >= 32


class TestWorkloadContainers:
    def test_pairwise_cells(self):
        w = PairwiseWorkload(Sequence("q", "ACGT"), Sequence("t", "ACG"))
        assert w.cells == 12

    def test_batch_requires_pairing(self):
        q = (Sequence("q", "AC"),)
        with pytest.raises(ValueError):
            BatchAlignmentWorkload(q, ())

    def test_batch_not_empty(self):
        with pytest.raises(ValueError):
            BatchAlignmentWorkload((), ())

    def test_batch_total_cells(self):
        q = (Sequence("a", "AC"), Sequence("b", "ACG"))
        t = (Sequence("c", "AC"), Sequence("d", "AC"))
        w = BatchAlignmentWorkload(q, t)
        assert w.total_cells == 4 + 6
        assert len(w) == 2

    def test_msa_needs_two(self):
        with pytest.raises(ValueError):
            MSAWorkload((Sequence("a", "AC"),))

    def test_pairhmm_pairs(self):
        w = PairHMMWorkload(("AC", "GT"), ("ACGT",))
        assert w.pairs == 2

    def test_pairhmm_not_empty(self):
        with pytest.raises(ValueError):
            PairHMMWorkload((), ("ACGT",))

    def test_read_mapping_needs_reads(self):
        with pytest.raises(ValueError):
            ReadMappingWorkload(Sequence("r", "ACGT"), ())
