"""Tests for FASTA I/O."""

import io

import pytest
from hypothesis import given, settings, strategies as st

from repro.data.fasta import parse_fasta, read_fasta, write_fasta
from repro.genomics.sequence import PROTEIN, Sequence


class TestParseFasta:
    def test_basic_records(self):
        text = ">a desc one\nACGT\n>b\nGG\nTT\n"
        records = list(parse_fasta(io.StringIO(text)))
        assert [r.name for r in records] == ["a", "b"]
        assert records[0].description == "desc one"
        assert records[1].residues == "GGTT"

    def test_blank_lines_skipped(self):
        text = ">a\n\nAC\n\nGT\n"
        (record,) = parse_fasta(io.StringIO(text))
        assert record.residues == "ACGT"

    def test_data_before_header_rejected(self):
        with pytest.raises(ValueError, match="before first header"):
            list(parse_fasta(io.StringIO("ACGT\n>a\nACGT\n")))

    def test_empty_header_rejected(self):
        with pytest.raises(ValueError, match="empty header"):
            list(parse_fasta(io.StringIO(">\nACGT\n")))

    def test_empty_stream(self):
        assert list(parse_fasta(io.StringIO(""))) == []

    def test_protein_alphabet(self):
        text = ">p\nMKWV\n"
        (record,) = parse_fasta(io.StringIO(text), PROTEIN)
        assert record.residues == "MKWV"


class TestWriteFasta:
    def test_wraps_lines(self):
        seq = Sequence("s", "A" * 150)
        text = write_fasta([seq], line_width=70)
        lines = text.strip().split("\n")
        assert lines[0] == ">s"
        assert len(lines[1]) == 70
        assert len(lines[3]) == 10

    def test_description_in_header(self):
        text = write_fasta([Sequence("s", "ACGT", description="hello")])
        assert text.startswith(">s hello\n")

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            write_fasta([Sequence("s", "ACGT")], line_width=0)

    def test_roundtrip_via_file(self, tmp_path):
        seqs = [Sequence("a", "ACGT" * 30), Sequence("b", "TTGG")]
        path = tmp_path / "out.fasta"
        write_fasta(seqs, path)
        assert read_fasta(path) == seqs

    @given(st.lists(
        st.tuples(
            st.text(alphabet="abcXYZ09", min_size=1, max_size=8),
            st.text(alphabet="ACGTN", min_size=1, max_size=200),
        ),
        min_size=1, max_size=5,
    ))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, items):
        seqs = [Sequence(f"{i}_{name}", res) for i, (name, res) in enumerate(items)]
        text = write_fasta(seqs)
        parsed = list(parse_fasta(io.StringIO(text)))
        assert parsed == seqs
