"""Wire format: point/stats round trips and frame IO."""

import io
import json
import struct

import pytest

from repro.core.config_presets import baseline_config, with_cache_sizes
from repro.core.runner import run_benchmark
from repro.core.sweep import point_key, sweep_point
from repro.data.datasets import DatasetSize
from repro.dist.launchers import WorkerDied, _try_parse
from repro.dist.wire import (
    MAX_FRAME_BYTES,
    decode_point,
    decode_stats,
    encode_point,
    read_frame,
    write_frame,
)

CONFIG = baseline_config(num_sms=4)


def _point(**kwargs):
    defaults = dict(cdp=True, size=DatasetSize.SMALL)
    defaults.update(kwargs)
    return sweep_point("NW-cdp|x", "NW", CONFIG, **defaults)


class TestPointCodec:
    def test_round_trip_is_identity(self):
        point = _point()
        decoded = decode_point(encode_point(point))
        assert decoded == point
        assert point_key(decoded) == point_key(point)

    def test_round_trip_preserves_full_config(self):
        config = with_cache_sizes(CONFIG, 32 * 1024, 512 * 1024).with_(
            scheduler="gto"
        )
        point = sweep_point("NW|32k", "NW", config)
        assert decode_point(encode_point(point)).config == config

    def test_options_survive(self):
        point = sweep_point("NW|opt", "NW", CONFIG, foo=3, bar="x")
        assert decode_point(encode_point(point)).options == point.options

    def test_key_mismatch_rejected(self):
        data = encode_point(_point())
        data["cdp"] = False  # content changed, key left stale
        with pytest.raises(ValueError, match="different identity"):
            decode_point(data)

    def test_malformed_payload_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            decode_point({"label": "x"})

    def test_stats_round_trip_bit_exact(self):
        stats = run_benchmark("NW", config=CONFIG)
        assert decode_stats(stats.to_dict()) == stats


class TestFrames:
    def test_write_read_round_trip(self):
        buf = io.BytesIO()
        write_frame(buf, {"type": "chunk", "points": [1, 2]})
        buf.seek(0)
        assert read_frame(buf) == {"type": "chunk", "points": [1, 2]}

    def test_eof_returns_none(self):
        assert read_frame(io.BytesIO(b"")) is None

    def test_mid_frame_eof_returns_none(self):
        buf = io.BytesIO()
        write_frame(buf, {"type": "chunk"})
        truncated = io.BytesIO(buf.getvalue()[:-2])
        assert read_frame(truncated) is None

    def test_oversize_frame_rejected(self):
        header = struct.pack("<I", MAX_FRAME_BYTES + 1)
        with pytest.raises(ValueError, match="wire limit"):
            read_frame(io.BytesIO(header))

    def test_non_object_frame_rejected(self):
        raw = json.dumps([1, 2]).encode()
        buf = io.BytesIO(struct.pack("<I", len(raw)) + raw)
        with pytest.raises(ValueError, match="must be an object"):
            read_frame(buf)


class TestBufferedParse:
    """The launcher-side incremental parser (select-loop reads)."""

    def _frame_bytes(self, payload):
        raw = json.dumps(payload).encode()
        return struct.pack("<I", len(raw)) + raw

    def test_partial_then_complete(self):
        data = self._frame_bytes({"type": "result"})
        frame, rest = _try_parse(data[:3])
        assert frame is None and rest == data[:3]
        frame, rest = _try_parse(data)
        assert frame == {"type": "result"} and rest == b""

    def test_two_frames_parse_in_order(self):
        data = self._frame_bytes({"n": 1}) + self._frame_bytes({"n": 2})
        first, rest = _try_parse(data)
        second, rest = _try_parse(rest)
        assert (first, second, rest) == ({"n": 1}, {"n": 2}, b"")

    def test_garbage_raises_worker_died(self):
        raw = b"not json"
        data = struct.pack("<I", len(raw)) + raw
        with pytest.raises(WorkerDied, match="undecodable"):
            _try_parse(data)
