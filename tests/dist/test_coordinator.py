"""Coordinator semantics, driven through scripted in-process launchers.

Every failure mode the real pool can hit is reproduced here
deterministically: chunk failures, dying workers, retry exhaustion,
duplicate delivery after a straggler re-dispatch, quarantine of a slot
that keeps dying, and journal resume after an interrupt.  The real
subprocess pool is exercised in ``test_launchers.py``.
"""

import threading

import pytest

from repro.core.config_presets import baseline_config, with_cache_sizes
from repro.core.sweep import TraceCache, point_key, run_point, run_sweep, sweep_point
from repro.dist import (
    ChunkJournal,
    DistSweepError,
    run_dsweep,
)
from repro.dist.coordinator import make_chunks
from repro.dist.journal import JournalMismatch
from repro.dist.launchers import ChunkFailed, ChunkTimeout, WorkerDied

CONFIG = baseline_config(num_sms=4)


@pytest.fixture(scope="module")
def points():
    """2 benchmarks x 2 configs: two application groups of two."""
    small_l1 = with_cache_sizes(CONFIG, 32 * 1024, 512 * 1024)
    return [
        sweep_point(f"{abbr}|{tag}", abbr, cfg)
        for abbr in ("NW", "CLUSTER")
        for tag, cfg in (("base", CONFIG), ("32k", small_l1))
    ]


@pytest.fixture(scope="module")
def serial(points):
    return run_sweep(points, jobs=0, store=None)


class ScriptedLauncher:
    """In-process launcher with per-chunk scripted failures.

    ``plan`` maps a chunk id to a list of exceptions; each dispatch of
    that chunk pops and raises one until the list is empty, then the
    chunk runs for real.  Execution is serialized under one lock, so
    the shared TraceCache needs no thread-safety of its own.
    """

    def __init__(self, workers=2, plan=None):
        self.workers = workers
        self.plan = {k: list(v) for k, v in (plan or {}).items()}
        self.calls = []
        self.cache = TraceCache()
        self.lock = threading.Lock()

    def close(self):
        pass

    def run_chunk(self, worker_id, chunk_id, points, timeout=None):
        with self.lock:
            self.calls.append((worker_id, chunk_id))
            failures = self.plan.get(chunk_id)
            if failures:
                raise failures.pop(0)
            return [run_point(p, self.cache) for p in points]


class TestChunking:
    def test_chunks_group_by_application(self, points):
        chunks = make_chunks(points, chunk_size=4)
        assert chunks == [[0, 1], [2, 3]]

    def test_chunk_size_slices_groups(self, points):
        assert make_chunks(points, chunk_size=1) == [[0], [1], [2], [3]]

    def test_chunk_size_must_be_positive(self, points):
        with pytest.raises(ValueError):
            make_chunks(points, chunk_size=0)


class TestHappyPath:
    def test_bit_identical_to_run_sweep(self, points, serial):
        results = run_dsweep(points, ScriptedLauncher(), chunk_size=2)
        assert results == serial
        assert list(results) == [p.label for p in points]

    def test_single_worker_single_point_chunks(self, points, serial):
        launcher = ScriptedLauncher(workers=1)
        assert run_dsweep(points, launcher, chunk_size=1) == serial
        assert len(launcher.calls) == 4

    def test_duplicate_labels_rejected(self, points):
        twice = points + points
        with pytest.raises(ValueError, match="unique"):
            run_dsweep(twice, ScriptedLauncher())

    def test_progress_reports_completed_points(self, points, serial):
        seen = []
        run_dsweep(points, ScriptedLauncher(), chunk_size=2,
                   on_progress=seen.append)
        assert seen[-1] == len(points)
        assert seen == sorted(seen)


class TestRetries:
    def test_failed_chunk_is_retried_elsewhere(self, points, serial):
        launcher = ScriptedLauncher(plan={0: [ChunkFailed("sim raised")]})
        results = run_dsweep(points, launcher, chunk_size=2)
        assert results == serial
        assert run_dsweep.last_stats["retries"] == 1

    def test_worker_death_and_timeout_are_retried(self, points, serial):
        launcher = ScriptedLauncher(plan={
            0: [WorkerDied("gone")],
            1: [ChunkTimeout("too slow")],
        })
        assert run_dsweep(points, launcher, chunk_size=2) == serial
        assert run_dsweep.last_stats["retries"] == 2

    def test_exhausted_retries_fail_loudly_with_identities(self, points):
        launcher = ScriptedLauncher(
            plan={0: [ChunkFailed("boom")] * 3},
        )
        with pytest.raises(DistSweepError) as err:
            run_dsweep(points, launcher, chunk_size=2, max_retries=2)
        assert len(err.value.lost) == 2  # both points of chunk 0
        for point in points[:2]:
            assert any(point_key(point) in lost for lost in err.value.lost)
        assert "boom" in err.value.cause

    def test_zero_max_retries_means_one_shot(self, points):
        launcher = ScriptedLauncher(plan={0: [ChunkFailed("boom")]})
        with pytest.raises(DistSweepError):
            run_dsweep(points, launcher, chunk_size=2, max_retries=0)


class TestQuarantine:
    def test_repeatedly_dying_slot_is_retired_not_fatal(
        self, points, serial
    ):
        class DyingSlotLauncher(ScriptedLauncher):
            def run_chunk(self, worker_id, chunk_id, pts, timeout=None):
                if worker_id == 0:
                    raise WorkerDied("slot 0 keeps dying")
                return super().run_chunk(worker_id, chunk_id, pts, timeout)

        results = run_dsweep(
            points, DyingSlotLauncher(workers=2), chunk_size=1,
            max_retries=2, worker_failure_limit=2,
        )
        assert results == serial
        assert run_dsweep.last_stats["workers_retired"] == 1

    def test_all_slots_dying_is_fatal_and_names_everything(self, points):
        class AllDeadLauncher(ScriptedLauncher):
            def run_chunk(self, worker_id, chunk_id, pts, timeout=None):
                raise WorkerDied("host on fire")

        with pytest.raises(DistSweepError, match="every worker slot"):
            run_dsweep(points, AllDeadLauncher(workers=2), chunk_size=2,
                       max_retries=5, worker_failure_limit=2)


class TestStragglers:
    def test_duplicate_delivery_first_wins(self, points, serial):
        """A straggler re-dispatch races the original; the late copy's
        result must be dropped, not double-merged."""
        second_done = threading.Event()
        state = {"c0": 0}

        class StallingLauncher(ScriptedLauncher):
            def run_chunk(self, worker_id, chunk_id, pts, timeout=None):
                if chunk_id == 0:
                    with self.lock:
                        state["c0"] += 1
                        copy = state["c0"]
                    if copy == 1:
                        # First copy wedges until the re-dispatched
                        # copy has answered, then delivers a duplicate.
                        assert second_done.wait(timeout=30)
                result = super().run_chunk(
                    worker_id, chunk_id, pts, timeout
                )
                if chunk_id == 0 and state["c0"] >= 2:
                    second_done.set()
                return result

        results = run_dsweep(
            points, StallingLauncher(workers=2), chunk_size=1,
            straggler_factor=0.1,
        )
        assert results == serial
        assert run_dsweep.last_stats["redispatches"] >= 1
        assert run_dsweep.last_stats["duplicates_dropped"] >= 1

    def test_straggler_disabled_means_no_redispatch(self, points, serial):
        results = run_dsweep(points, ScriptedLauncher(), chunk_size=1,
                             straggler_factor=None)
        assert results == serial
        assert run_dsweep.last_stats["redispatches"] == 0


class TestJournalResume:
    def test_interrupted_sweep_resumes_from_journal(
        self, tmp_path, points, serial
    ):
        path = tmp_path / "sweep.journal"
        # First attempt: chunk 1 fails hard enough to lose the sweep;
        # chunk 0's completion must already be journaled.
        bad = ScriptedLauncher(
            workers=1, plan={1: [ChunkFailed("power cut")] * 9},
        )
        with pytest.raises(DistSweepError):
            run_dsweep(points, bad, chunk_size=2, journal=path,
                       max_retries=1)
        # Second attempt with a healthy pool: chunk 0 replays from the
        # journal, only chunk 1 is dispatched.
        good = ScriptedLauncher(workers=1)
        results = run_dsweep(points, good, chunk_size=2, journal=path)
        assert results == serial
        assert run_dsweep.last_stats["replayed"] == 1
        assert [chunk for _, chunk in good.calls] == [1]

    def test_completed_sweep_replays_fully(self, tmp_path, points, serial):
        path = tmp_path / "sweep.journal"
        run_dsweep(points, ScriptedLauncher(), chunk_size=2, journal=path)
        idle = ScriptedLauncher()
        assert run_dsweep(points, idle, chunk_size=2,
                          journal=path) == serial
        assert idle.calls == []
        assert run_dsweep.last_stats["replayed"] == 2

    def test_foreign_journal_refused(self, tmp_path, points):
        path = tmp_path / "sweep.journal"
        run_dsweep(points, ScriptedLauncher(), chunk_size=2, journal=path)
        with pytest.raises(JournalMismatch):
            # Same grid, different chunking -> different fingerprint.
            run_dsweep(points, ScriptedLauncher(), chunk_size=1,
                       journal=path)

    def test_journal_instance_accepted(self, tmp_path, points, serial):
        journal = ChunkJournal(tmp_path / "sweep.journal")
        assert run_dsweep(points, ScriptedLauncher(), chunk_size=2,
                          journal=journal) == serial


class TestResume:
    def test_resume_skips_known_points(self, points, serial):
        resume = {
            point_key(points[0]): serial[points[0].label],
            point_key(points[3]): serial[points[3].label],
        }
        launcher = ScriptedLauncher(workers=1)
        results = run_dsweep(points, launcher, chunk_size=1, resume=resume)
        assert results == serial
        assert len(launcher.calls) == 2  # only the two unknown points

    def test_resume_covering_everything_dispatches_nothing(
        self, points, serial
    ):
        resume = {point_key(p): serial[p.label] for p in points}
        launcher = ScriptedLauncher()
        assert run_dsweep(points, launcher, resume=resume) == serial
        assert launcher.calls == []
        assert run_dsweep.last_stats["chunks"] == 0
