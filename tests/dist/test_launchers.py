"""The real subprocess pool: bit-identity and violent failure modes.

These tests spawn actual ``python -m repro.dist.worker`` processes.
Failure injection uses the worker's env knobs (``REPRO_DIST_DIE_AFTER``
kills the process with no reply mid-chunk — indistinguishable from a
SIGKILL to the parent — and ``REPRO_DIST_STALL_S`` wedges it), plus one
genuine ``SIGKILL`` aimed at a live pid.
"""

import os
import signal

import pytest

from repro.core.config_presets import baseline_config, with_cache_sizes
from repro.core.sweep import run_sweep, sweep_point
from repro.dist import DistSweepError, LocalProcessLauncher, run_dsweep
from repro.dist.launchers import ChunkTimeout, WorkerDied

CONFIG = baseline_config(num_sms=4)


@pytest.fixture(scope="module")
def points():
    small_l1 = with_cache_sizes(CONFIG, 32 * 1024, 512 * 1024)
    return [
        sweep_point(f"NW{'-cdp' if cdp else ''}|{tag}", "NW", cfg, cdp=cdp)
        for cdp in (False, True)
        for tag, cfg in (("base", CONFIG), ("32k", small_l1))
    ]


@pytest.fixture(scope="module")
def serial(points):
    return run_sweep(points, jobs=0, store=None)


def test_two_workers_bit_identical(points, serial):
    with LocalProcessLauncher(workers=2) as launcher:
        results = run_dsweep(points, launcher, chunk_size=1)
    assert results == serial
    assert list(results) == [p.label for p in points]


def test_worker_reused_across_chunks(points, serial):
    with LocalProcessLauncher(workers=1) as launcher:
        assert run_dsweep(points, launcher, chunk_size=2) == serial
        assert launcher.spawns == 1


def test_killed_worker_mid_chunk_loses_nothing(points, serial):
    """Worker 0 exits without replying on its first chunk, and again on
    every respawn; the sweep must finish bit-identically off worker 1
    after quarantining the dying slot."""
    launcher = LocalProcessLauncher(
        workers=2, worker_env={0: {"REPRO_DIST_DIE_AFTER": "1"}},
    )
    with launcher:
        results = run_dsweep(points, launcher, chunk_size=1,
                             max_retries=2, worker_failure_limit=2)
    assert results == serial
    assert run_dsweep.last_stats["retries"] >= 1
    assert run_dsweep.last_stats["workers_retired"] == 1


def test_sigkill_during_sweep_is_survived(points, serial):
    """A genuine SIGKILL of a live worker: the next dispatch sees EOF,
    the chunk is re-queued, the slot respawns."""
    with LocalProcessLauncher(workers=2) as launcher:
        # Pre-spawn both slots so there is a pid to murder.
        launcher.run_chunk(0, -1, points[:1], timeout=None)
        launcher.run_chunk(1, -1, points[:1], timeout=None)
        victim = launcher.pids()[1]
        os.kill(victim, signal.SIGKILL)
        results = run_dsweep(points, launcher, chunk_size=1)
    assert results == serial
    assert run_dsweep.last_stats["workers_retired"] == 0


def test_chunk_timeout_kills_and_retries_elsewhere(points, serial):
    """Worker 0 wedges on every chunk; the deadline fires, the worker
    is killed, and the chunk reruns on the healthy slot."""
    launcher = LocalProcessLauncher(
        workers=2, worker_env={0: {"REPRO_DIST_STALL_S": "60"}},
    )
    with launcher:
        results = run_dsweep(points, launcher, chunk_size=2,
                             chunk_timeout=10.0, max_retries=2,
                             worker_failure_limit=1)
    assert results == serial
    assert run_dsweep.last_stats["workers_retired"] == 1


def test_timeout_exhaustion_fails_loudly(points):
    """Every slot wedges: retries exhaust and the error names the lost
    points instead of hanging or returning a partial grid."""
    launcher = LocalProcessLauncher(
        workers=1, extra_env={"REPRO_DIST_STALL_S": "60"},
    )
    with launcher:
        with pytest.raises(DistSweepError) as err:
            run_dsweep(points[:2], launcher, chunk_size=2,
                       chunk_timeout=1.0, max_retries=1,
                       worker_failure_limit=5)
    assert len(err.value.lost) == 2


def test_direct_run_chunk_timeout_raises(points):
    launcher = LocalProcessLauncher(
        workers=1, extra_env={"REPRO_DIST_STALL_S": "60"},
    )
    with launcher:
        with pytest.raises(ChunkTimeout):
            launcher.run_chunk(0, 0, points[:1], timeout=1.0)
        # The wedged worker was killed; the slot respawns clean.
        assert launcher.pids() == {}


def test_direct_run_chunk_worker_death_raises(points):
    launcher = LocalProcessLauncher(
        workers=1, extra_env={"REPRO_DIST_DIE_AFTER": "1"},
    )
    with launcher:
        with pytest.raises(WorkerDied):
            launcher.run_chunk(0, 0, points[:1], timeout=None)


def test_close_is_idempotent(points):
    launcher = LocalProcessLauncher(workers=1)
    launcher.run_chunk(0, 0, points[:1], timeout=None)
    launcher.close()
    launcher.close()
    assert launcher.pids() == {}
