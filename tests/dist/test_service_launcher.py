"""Dsweep over live ``repro serve`` endpoints (the remote launcher)."""

import threading

import pytest

from repro.core.config_presets import baseline_config
from repro.core.sweep import run_sweep, sweep_point
from repro.dist import run_dsweep
from repro.dist.launchers import ChunkFailed, ServiceLauncher

pytestmark = pytest.mark.service

CONFIG = baseline_config(num_sms=4)


@pytest.fixture(scope="module")
def points():
    return [
        sweep_point(f"NW|{sms}", "NW", CONFIG.with_(num_sms=sms))
        for sms in (2, 4, 6, 8)
    ]


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    from repro.service.server import make_server

    tmp = tmp_path_factory.mktemp("svc")
    server = make_server(
        "127.0.0.1", 0,
        artifact_root=tmp / "artifacts",
        cache_root=tmp / "cache",
        workers=1,
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()
    thread.join(timeout=10)


def _endpoint(server) -> str:
    host, port = server.server_address
    return f"{host}:{port}"


def test_dsweep_over_http_bit_identical(server, points):
    serial = run_sweep(points, jobs=0, store=None)
    launcher = ServiceLauncher([_endpoint(server)], timeout=120.0)
    results = run_dsweep(points, launcher, chunk_size=2)
    assert results == serial


def test_second_sweep_answers_from_result_cache(server, points):
    """Identical chunks re-submitted must hit the server's cache and
    still merge bit-identically."""
    launcher = ServiceLauncher([_endpoint(server)], timeout=120.0)
    first = run_dsweep(points, launcher, chunk_size=2)
    second = run_dsweep(points, launcher, chunk_size=2)
    assert first == second


def test_unreachable_endpoint_is_a_worker_death(points):
    from repro.dist.launchers import WorkerDied

    launcher = ServiceLauncher(["127.0.0.1:1"], timeout=2.0)
    with pytest.raises(WorkerDied):
        launcher.run_chunk(0, 0, points[:1], timeout=5.0)


def test_rejected_chunk_is_chunk_failed(server, points):
    """A schema-level rejection marks the chunk failed, not the worker
    dead (the endpoint is healthy and must keep its slot)."""
    launcher = ServiceLauncher([_endpoint(server)], timeout=30.0)
    broken = [points[0], points[0]]  # duplicate labels -> rejected
    with pytest.raises(ChunkFailed):
        launcher.run_chunk(0, 0, broken, timeout=30.0)
