"""Chunk journal and results files: resume without ever lying."""

import json

import pytest

from repro.core.config_presets import baseline_config
from repro.core.runner import run_benchmark
from repro.core.sweep import point_key, sweep_point
from repro.dist.journal import (
    ChunkJournal,
    JournalMismatch,
    load_results_file,
    sweep_fingerprint,
    write_results_file,
)

CONFIG = baseline_config(num_sms=4)


@pytest.fixture(scope="module")
def stats():
    return run_benchmark("NW", config=CONFIG)


@pytest.fixture(scope="module")
def points():
    return [
        sweep_point(f"NW|{i}", "NW", CONFIG.with_(num_sms=2 + i))
        for i in range(4)
    ]


def _chunk_keys(points):
    return [[point_key(p) for p in points[:2]],
            [point_key(p) for p in points[2:]]]


class TestJournal:
    def test_fresh_open_writes_header_and_replays_nothing(
        self, tmp_path, points
    ):
        journal = ChunkJournal(tmp_path / "j.jsonl")
        assert journal.open(_chunk_keys(points)) == {}
        header = json.loads(
            (tmp_path / "j.jsonl").read_text().splitlines()[0]
        )
        assert header["kind"] == "repro-dsweep-journal"
        assert header["sweep"] == sweep_fingerprint(_chunk_keys(points))

    def test_record_then_replay(self, tmp_path, points, stats):
        keys = _chunk_keys(points)
        journal = ChunkJournal(tmp_path / "j.jsonl")
        journal.open(keys)
        journal.record(1, keys[1], [stats, stats])
        replayed = ChunkJournal(tmp_path / "j.jsonl").open(keys)
        assert list(replayed) == [1]
        assert replayed[1] == [stats, stats]

    def test_truncated_tail_line_is_skipped(self, tmp_path, points, stats):
        keys = _chunk_keys(points)
        path = tmp_path / "j.jsonl"
        journal = ChunkJournal(path)
        journal.open(keys)
        journal.record(0, keys[0], [stats, stats])
        # Simulate a crash mid-append: chop the last record in half.
        whole = path.read_text()
        path.write_text(whole + whole.splitlines()[-1][: len(whole) // 4])
        replayed = ChunkJournal(path).open(keys)
        assert list(replayed) == [0]

    def test_foreign_sweep_rejected(self, tmp_path, points):
        keys = _chunk_keys(points)
        journal = ChunkJournal(tmp_path / "j.jsonl")
        journal.open(keys)
        other = [keys[0]]  # different chunking, different fingerprint
        with pytest.raises(JournalMismatch, match="was written for sweep"):
            ChunkJournal(tmp_path / "j.jsonl").open(other)

    def test_headerless_file_rejected(self, tmp_path, points):
        path = tmp_path / "notes.jsonl"
        path.write_text('{"chunk": 0}\n')
        with pytest.raises(JournalMismatch, match="no journal header"):
            ChunkJournal(path).open(_chunk_keys(points))

    def test_stale_record_reruns_instead_of_resuming(
        self, tmp_path, points, stats
    ):
        keys = _chunk_keys(points)
        path = tmp_path / "j.jsonl"
        journal = ChunkJournal(path)
        journal.open(keys)
        # Keys that belong to nothing in this grid: must be ignored.
        journal.record(0, ["feedfacefeedface"] * 2, [stats, stats])
        assert ChunkJournal(path).open(keys) == {}

    def test_wrong_stats_count_is_skipped(self, tmp_path, points, stats):
        keys = _chunk_keys(points)
        path = tmp_path / "j.jsonl"
        journal = ChunkJournal(path)
        journal.open(keys)
        journal.record(0, keys[0], [stats])  # chunk has 2 points
        assert ChunkJournal(path).open(keys) == {}


class TestResultsFiles:
    def test_round_trip(self, tmp_path, points, stats):
        results = {p.label: stats for p in points}
        path = tmp_path / "results.json"
        write_results_file(path, points, results)
        loaded = load_results_file(path)
        assert loaded == {point_key(p): stats for p in points}

    def test_partial_results_write_partial_files(
        self, tmp_path, points, stats
    ):
        path = tmp_path / "partial.json"
        write_results_file(path, points, {points[0].label: stats})
        assert list(load_results_file(path)) == [point_key(points[0])]

    def test_non_results_file_rejected(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"kind": "something-else"}))
        with pytest.raises(ValueError, match="not a sweep results file"):
            load_results_file(path)

    def test_unparseable_file_rejected(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("{nope")
        with pytest.raises(ValueError, match="not a results file"):
            load_results_file(path)

    def test_corrupt_entry_dropped_not_fatal(self, tmp_path, points, stats):
        path = tmp_path / "results.json"
        write_results_file(path, points, {p.label: stats for p in points})
        payload = json.loads(path.read_text())
        key = point_key(points[0])
        payload["results"][key]["stats"] = {"bogus": True}
        path.write_text(json.dumps(payload))
        loaded = load_results_file(path)
        assert key not in loaded
        assert len(loaded) == len(points) - 1
