"""Shared fixtures for the test suite."""

import pytest

from repro.sim.config import GPUConfig


@pytest.fixture
def small_gpu() -> GPUConfig:
    """A 4-SM machine: fast to simulate, same per-SM parameters."""
    return GPUConfig(num_sms=4)


@pytest.fixture
def tiny_gpu() -> GPUConfig:
    """A 2-SM machine with 2 memory partitions for unit-level tests."""
    return GPUConfig(num_sms=2, num_mem_partitions=2)
