"""Shared fixtures for the test suite."""

import pytest

from repro.sim.config import GPUConfig


@pytest.fixture(autouse=True)
def _hermetic_trace_env(monkeypatch):
    """Keep the ambient trace-store/verify env out of every test.

    Tests that exercise the store or verification opt back in via
    ``monkeypatch.setenv`` / explicit arguments.
    """
    monkeypatch.delenv("REPRO_TRACE_STORE", raising=False)
    monkeypatch.delenv("REPRO_TRACE_VERIFY", raising=False)


@pytest.fixture
def small_gpu() -> GPUConfig:
    """A 4-SM machine: fast to simulate, same per-SM parameters."""
    return GPUConfig(num_sms=4)


@pytest.fixture
def tiny_gpu() -> GPUConfig:
    """A 2-SM machine with 2 memory partitions for unit-level tests."""
    return GPUConfig(num_sms=2, num_mem_partitions=2)
