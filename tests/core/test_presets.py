"""Tests for config presets and sweep helpers."""

import pytest

from repro.core.config_presets import (
    CACHE_SWEEP,
    CTA_SCALING,
    MEM_CONTROLLERS,
    NOC_BANDWIDTH_SWEEP,
    NOC_LATENCY_SWEEP,
    SCHEDULERS,
    TOPOLOGIES,
    baseline_config,
    scale_cta_resources,
    with_cache_sizes,
    with_controller,
    with_topology,
)


class TestBaseline:
    def test_table1_bolded_values(self):
        cfg = baseline_config()
        assert cfg.num_sms == 78
        assert cfg.warp_size == 32
        assert cfg.registers_per_sm == 65536
        assert cfg.max_ctas_per_sm == 32
        assert cfg.max_threads_per_sm == 1536
        assert cfg.shared_mem_per_sm == 100 * 1024
        assert cfg.l1.size_bytes == 128 * 1024
        assert cfg.l2.size_bytes == 4 * 1024 * 1024
        assert cfg.dram.controller == "frfcfs"
        assert cfg.scheduler == "lrr"

    def test_table2_bolded_values(self):
        cfg = baseline_config()
        assert cfg.noc.topology == "xbar"
        assert cfg.noc.channel_bytes == 40
        assert cfg.noc.router_delay == 0

    def test_overrides(self):
        assert baseline_config(num_sms=4).num_sms == 4


class TestSweepLists:
    def test_sweeps_contain_baseline(self):
        assert (128 * 1024, 4 * 1024 * 1024) in CACHE_SWEEP
        assert 1.0 in CTA_SCALING
        assert "frfcfs" in MEM_CONTROLLERS
        assert "lrr" in SCHEDULERS
        assert "xbar" in TOPOLOGIES
        assert 0 in NOC_LATENCY_SWEEP
        assert 40 in NOC_BANDWIDTH_SWEEP

    def test_cache_sweep_has_six_points(self):
        assert len(CACHE_SWEEP) == 6


class TestHelpers:
    def test_with_cache_sizes(self):
        cfg = with_cache_sizes(baseline_config(), 0, 128 * 1024)
        assert cfg.l1.disabled
        assert cfg.l2.size_bytes == 128 * 1024

    def test_with_controller(self):
        cfg = with_controller(baseline_config(), "fifo")
        assert cfg.dram.controller == "fifo"

    def test_with_topology(self):
        cfg = with_topology(baseline_config(), "mesh", router_delay=8,
                            channel_bytes=16)
        assert cfg.noc.topology == "mesh"
        assert cfg.noc.router_delay == 8
        assert cfg.noc.channel_bytes == 16

    def test_scale_cta_resources(self):
        half = scale_cta_resources(baseline_config(), 0.5)
        assert half.max_ctas_per_sm == 16
        assert half.max_threads_per_sm == 768
        assert half.registers_per_sm == 32768
        assert half.shared_mem_per_sm == 50 * 1024

    def test_scale_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            scale_cta_resources(baseline_config(), 0.0)

    def test_original_config_untouched(self):
        base = baseline_config()
        scale_cta_resources(base, 2.0)
        assert base.max_ctas_per_sm == 32
