"""Tests for the public runner/suite API."""

import pytest

from repro.core import BenchmarkSuite, run_benchmark, run_suite, variant_name
from repro.core.config_presets import baseline_config
from repro.data.datasets import DatasetSize


CONFIG = baseline_config(num_sms=8)


class TestRunner:
    def test_variant_name(self):
        assert variant_name("NW", False) == "NW"
        assert variant_name("NW", True) == "NW-CDP"

    def test_run_benchmark_returns_stats(self):
        stats = run_benchmark("SW", config=CONFIG)
        assert stats.instructions > 0

    def test_options_forwarded(self):
        stats = run_benchmark("NW", config=CONFIG, use_shared=False)
        assert stats.mem_fractions().get("shared", 0.0) == 0.0

    def test_run_suite_subset(self):
        results = run_suite(["SW", "STAR"], config=CONFIG)
        assert set(results) == {"SW", "SW-CDP", "STAR", "STAR-CDP"}

    def test_run_suite_without_cdp(self):
        results = run_suite(["SW"], cdp_variants=False, config=CONFIG)
        assert set(results) == {"SW"}


class TestBenchmarkSuite:
    @pytest.fixture(scope="class")
    def suite(self):
        return BenchmarkSuite(CONFIG, size=DatasetSize.SMALL)

    def test_names(self, suite):
        assert len(suite.names()) == 10

    def test_properties(self, suite):
        props = suite.properties("NW")
        assert props.full_name == "Needleman-Wunsch"
        assert props.cta_per_core_model == props.cta_per_core_paper == 6

    def test_run(self, suite):
        stats = suite.run("STAR", cdp=True)
        assert stats.device_launches > 0

    def test_run_all_subset(self, suite):
        results = suite.run_all(["CLUSTER"], cdp_variants=False)
        assert list(results) == ["CLUSTER"]
