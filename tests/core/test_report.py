"""Tests for report formatting."""

from repro.core.report import format_breakdown, format_table


class TestFormatTable:
    def test_empty(self):
        assert format_table([]) == "(empty table)"

    def test_alignment(self):
        rows = [
            {"name": "a", "value": 1},
            {"name": "longer", "value": 123456},
        ]
        text = format_table(rows)
        lines = text.split("\n")
        assert lines[0].startswith("name")
        assert len({len(line) for line in lines[:2]}) <= 2
        assert "longer" in lines[3]

    def test_floats_formatted(self):
        text = format_table([{"x": 0.123456}])
        assert "0.123" in text

    def test_column_selection_and_order(self):
        rows = [{"a": 1, "b": 2, "c": 3}]
        text = format_table(rows, columns=["c", "a"])
        header = text.split("\n")[0]
        assert header.index("c") < header.index("a")
        assert "b" not in header

    def test_missing_keys_blank(self):
        text = format_table([{"a": 1}, {"b": 2}], columns=["a", "b"])
        assert "2" in text


class TestFormatBreakdown:
    def test_empty(self):
        assert format_breakdown({}) == "(no data)"

    def test_sorted_by_fraction(self):
        text = format_breakdown({"small": 0.1, "big": 0.9})
        assert text.index("big") < text.index("small")

    def test_percentages(self):
        text = format_breakdown({"x": 0.5})
        assert "50.00%" in text

    def test_bar_lengths_proportional(self):
        text = format_breakdown({"a": 1.0, "b": 0.5}, width=10)
        lines = text.split("\n")
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5


class TestFormatBarChart:
    def test_empty(self):
        from repro.core.report import format_bar_chart

        assert format_bar_chart([], "x", ["y"]) == "(empty chart)"

    def test_bars_scale_to_peak(self):
        from repro.core.report import format_bar_chart

        rows = [{"name": "a", "v": 10.0}, {"name": "b", "v": 5.0}]
        text = format_bar_chart(rows, "name", ["v"], width=10)
        lines = text.split("\n")
        assert lines[0] == "a"
        assert lines[1].count("#") == 10
        assert lines[3].count("#") == 5

    def test_zero_values_no_bar(self):
        from repro.core.report import format_bar_chart

        rows = [{"name": "a", "v": 0.0}, {"name": "b", "v": 2.0}]
        text = format_bar_chart(rows, "name", ["v"], width=10)
        assert "|          |" in text  # empty bar for the zero

    def test_multiple_series_per_group(self):
        from repro.core.report import format_bar_chart

        rows = [{"name": "a", "x": 1.0, "y": 2.0}]
        text = format_bar_chart(rows, "name", ["x", "y"])
        assert text.count("|") == 4
