"""Tests for report formatting."""

from repro.core.report import format_breakdown, format_table


class TestFormatTable:
    def test_empty(self):
        assert format_table([]) == "(empty table)"

    def test_alignment(self):
        rows = [
            {"name": "a", "value": 1},
            {"name": "longer", "value": 123456},
        ]
        text = format_table(rows)
        lines = text.split("\n")
        assert lines[0].startswith("name")
        assert len({len(line) for line in lines[:2]}) <= 2
        assert "longer" in lines[3]

    def test_floats_formatted(self):
        text = format_table([{"x": 0.123456}])
        assert "0.123" in text

    def test_column_selection_and_order(self):
        rows = [{"a": 1, "b": 2, "c": 3}]
        text = format_table(rows, columns=["c", "a"])
        header = text.split("\n")[0]
        assert header.index("c") < header.index("a")
        assert "b" not in header

    def test_missing_keys_blank(self):
        text = format_table([{"a": 1}, {"b": 2}], columns=["a", "b"])
        assert "2" in text


class TestFormatBreakdown:
    def test_empty(self):
        assert format_breakdown({}) == "(no data)"

    def test_sorted_by_fraction(self):
        text = format_breakdown({"small": 0.1, "big": 0.9})
        assert text.index("big") < text.index("small")

    def test_percentages(self):
        text = format_breakdown({"x": 0.5})
        assert "50.00%" in text

    def test_bar_lengths_proportional(self):
        text = format_breakdown({"a": 1.0, "b": 0.5}, width=10)
        lines = text.split("\n")
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5


class TestFormatBarChart:
    def test_empty(self):
        from repro.core.report import format_bar_chart

        assert format_bar_chart([], "x", ["y"]) == "(empty chart)"

    def test_bars_scale_to_peak(self):
        from repro.core.report import format_bar_chart

        rows = [{"name": "a", "v": 10.0}, {"name": "b", "v": 5.0}]
        text = format_bar_chart(rows, "name", ["v"], width=10)
        lines = text.split("\n")
        assert lines[0] == "a"
        assert lines[1].count("#") == 10
        assert lines[3].count("#") == 5

    def test_zero_values_no_bar(self):
        from repro.core.report import format_bar_chart

        rows = [{"name": "a", "v": 0.0}, {"name": "b", "v": 2.0}]
        text = format_bar_chart(rows, "name", ["v"], width=10)
        assert "|          |" in text  # empty bar for the zero

    def test_multiple_series_per_group(self):
        from repro.core.report import format_bar_chart

        rows = [{"name": "a", "x": 1.0, "y": 2.0}]
        text = format_bar_chart(rows, "name", ["x", "y"])
        assert text.count("|") == 4


class TestFormatIntervalProfile:
    def _stats(self):
        from repro.core.runner import run_benchmark
        from repro.sim.config import GPUConfig

        return run_benchmark(
            "NW", config=GPUConfig(telemetry_interval=2_000)
        )

    def test_renders_one_row_per_interval(self):
        from repro.core.report import format_interval_profile

        stats = self._stats()
        text = format_interval_profile(stats)
        lines = text.splitlines()
        assert "top_stall" in lines[0]
        # header + separator + one line per sampled interval
        assert len(lines) == 2 + len(stats.telemetry["rows"])

    def test_accepts_summary_dict_and_clips(self):
        from repro.core.report import format_interval_profile

        stats = self._stats()
        text = format_interval_profile(stats.telemetry, max_rows=2)
        assert "more intervals" in text

    def test_placeholder_without_telemetry(self):
        from repro.core.report import format_interval_profile

        class Plain:
            telemetry = None

        assert "no telemetry" in format_interval_profile(Plain())
