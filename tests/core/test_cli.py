"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_all_benchmarks(self, capsys):
        assert main(["list", "--sms", "4"]) == 0
        out = capsys.readouterr().out
        for abbr in ("SW", "NW", "STAR", "NvB"):
            assert abbr in out


class TestRun:
    def test_run_prints_characterization(self, capsys):
        assert main(["run", "STAR", "--sms", "4"]) == 0
        out = capsys.readouterr().out
        assert "instructions" in out
        assert "Stall breakdown" in out

    def test_run_cdp_with_profile(self, capsys):
        assert main(["run", "STAR", "--cdp", "--sms", "4", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "Per-kernel profile" in out
        assert "star_child" in out
        assert "device" in out

    def test_unknown_benchmark(self, capsys):
        assert main(["run", "BLAST", "--sms", "4"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_run_with_workers_matches_sequential(self, capsys):
        """--workers routes through the parallel core and must print
        the exact characterization the sequential run prints."""
        assert main(["run", "NW", "--sms", "4"]) == 0
        sequential = capsys.readouterr().out
        assert main(["run", "NW", "--sms", "4", "--workers", "2"]) == 0
        assert capsys.readouterr().out == sequential


class TestFigure:
    def test_table3(self, capsys):
        assert main(["figure", "table3", "--sms", "4"]) == 0
        assert "Needleman-Wunsch" in capsys.readouterr().out

    def test_fig7(self, capsys):
        assert main(["figure", "fig7", "--sms", "8"]) == 0
        assert "slowdown_without" in capsys.readouterr().out

    def test_unknown_figure(self, capsys):
        assert main(["figure", "fig99", "--sms", "4"]) == 2
        assert "unknown figure" in capsys.readouterr().err


class TestDataset:
    def test_exports_pairwise_fasta(self, tmp_path, capsys):
        assert main(["dataset", "SW", "--out", str(tmp_path)]) == 0
        files = list(tmp_path.glob("*.fasta"))
        assert len(files) == 1
        assert files[0].read_text().startswith(">query")

    def test_exports_nvb_reference_and_fastq(self, tmp_path):
        assert main(["dataset", "NvB", "--out", str(tmp_path)]) == 0
        assert (tmp_path / "nvb_reference.fasta").exists()
        assert (tmp_path / "nvb_reads.fastq").exists()

    def test_exports_pairhmm_two_files(self, tmp_path):
        assert main(["dataset", "PairHMM", "--out", str(tmp_path)]) == 0
        assert (tmp_path / "pairhmm_reads.fasta").exists()
        assert (tmp_path / "pairhmm_haplotypes.fasta").exists()


class TestAlign:
    def test_global(self, capsys):
        assert main(["align", "GATTACA", "GATCA"]) == 0
        out = capsys.readouterr().out
        assert "GATTACA" in out
        assert "score=3" in out

    def test_local(self, capsys):
        assert main(["align", "TTTGATTACATTT", "CCGATTACACC",
                     "--mode", "local"]) == 0
        assert "GATTACA" in capsys.readouterr().out

    @pytest.mark.parametrize("mode", ["semiglobal", "banded"])
    def test_other_modes(self, mode, capsys):
        assert main(["align", "ACGTACGT", "ACGTTCGT", "--mode", mode]) == 0
        assert "score=" in capsys.readouterr().out


class TestSuiteCommand:
    def test_suite_subset_runs(self, capsys):
        # The full suite is exercised in benchmarks/; here just make
        # sure the command wiring works end to end on a tiny machine.
        assert main(["suite", "--sms", "4", "--no-cdp"]) == 0
        out = capsys.readouterr().out
        assert "device_time" in out
        assert "NvB" in out


class TestRoofline:
    def test_roofline_subset(self, capsys):
        assert main(["roofline", "SW", "CLUSTER", "--no-cdp",
                     "--sms", "8"]) == 0
        out = capsys.readouterr().out
        assert "intensity" in out
        assert "bound" in out


class TestTraceReplay:
    def test_capture_and_replay(self, tmp_path, capsys):
        trace = tmp_path / "star.trace"
        assert main(["trace", "STAR", "--out", str(trace)]) == 0
        assert trace.exists()
        capsys.readouterr()
        assert main(["replay", str(trace), "--sms", "4"]) == 0
        out = capsys.readouterr().out
        assert "replayed" in out
        assert "IPC" in out


class TestProfile:
    def test_profile_prints_interval_table(self, capsys):
        assert main(["profile", "NW", "--sms", "4",
                     "--interval", "2000"]) == 0
        out = capsys.readouterr().out
        assert "sampled every 2000 cycles" in out
        assert "top_stall" in out
        assert "ipc" in out

    def test_profile_writes_trace_and_jsonl(self, tmp_path, capsys):
        import json

        trace = tmp_path / "nw.trace.json"
        jsonl = tmp_path / "nw.jsonl"
        assert main(["profile", "NW", "--sms", "4", "--interval", "2000",
                     "--trace", str(trace), "--jsonl", str(jsonl)]) == 0
        payload = json.loads(trace.read_text())
        assert any(e["ph"] == "X" for e in payload["traceEvents"])

        from repro.sim.telemetry import load_jsonl

        summary = load_jsonl(jsonl)
        assert summary["rows"] and summary["meta"]["interval"] == 2000

    def test_profile_cdp_variant(self, capsys):
        assert main(["profile", "STAR", "--cdp", "--sms", "4",
                     "--interval", "2000"]) == 0
        assert "STAR-CDP" in capsys.readouterr().out

    def test_profile_unknown_benchmark(self, capsys):
        assert main(["profile", "BLAST"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err


class TestErrorPaths:
    """Malformed invocations must exit 2 with a pointed stderr message
    (never a traceback, never silent misbehaviour)."""

    @pytest.mark.parametrize("bad", ["0", "-0.5", "1.5", "lots"])
    def test_invalid_sample_fraction(self, bad, capsys):
        with pytest.raises(SystemExit) as exit_info:
            main(["run", "SW", "--estimate", "--sample-fraction", bad])
        assert exit_info.value.code == 2
        err = capsys.readouterr().err
        assert "--sample-fraction" in err
        assert "in (0, 1]" in err or "invalid" in err

    @pytest.mark.parametrize("flags", [
        ["--profile"],
        ["--workers", "2"],
        ["--window", "1000"],
        ["--relaxed"],
        ["--profile", "--workers", "2"],
    ])
    def test_estimate_rejects_exact_only_flags(self, flags, capsys):
        assert main(["run", "SW", "--sms", "4", "--estimate", *flags]) == 2
        err = capsys.readouterr().err
        assert "--estimate cannot be combined" in err
        assert flags[0] in err

    def test_estimate_conflict_names_every_flag(self, capsys):
        assert main(["run", "SW", "--estimate", "--profile",
                     "--relaxed"]) == 2
        err = capsys.readouterr().err
        assert "--profile" in err and "--relaxed" in err

    def test_estimate_without_conflicts_runs(self, capsys):
        assert main(["run", "SW", "--sms", "4", "--estimate",
                     "--sample-fraction", "0.5"]) == 0
        assert "estimated" in capsys.readouterr().out

    def test_serve_port_in_use(self, capsys):
        import socket

        holder = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            holder.bind(("127.0.0.1", 0))
            holder.listen(1)
            port = holder.getsockname()[1]
            assert main(["serve", "--port", str(port)]) == 2
        finally:
            holder.close()
        err = capsys.readouterr().err
        assert f"cannot bind 127.0.0.1:{port}" in err
        assert "--port" in err

    def test_serve_rejects_bad_port(self, capsys):
        with pytest.raises(SystemExit) as exit_info:
            main(["serve", "--port", "not-a-port"])
        assert exit_info.value.code == 2
        assert "--port" in capsys.readouterr().err
