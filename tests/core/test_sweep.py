"""Sweep engine: parallel and cached paths must match serial exactly."""

import pickle

import pytest

from repro.core.config_presets import baseline_config, with_cache_sizes
from repro.core.runner import run_benchmark, run_suite, variant_name
from repro.core.sweep import (
    SweepPoint,
    TraceCache,
    app_key,
    default_jobs,
    run_point,
    run_sweep,
    suite_points,
    sweep_point,
    trace_signature,
)
from repro.data.datasets import DatasetSize


@pytest.fixture(scope="module")
def config():
    return baseline_config(num_sms=4)


@pytest.fixture(scope="module")
def points(config):
    """3 benchmarks x CDP on/off x 2 configs (12 independent points)."""
    small_l1 = with_cache_sizes(config, 32 * 1024, 512 * 1024)
    result = []
    for abbr in ("NW", "STAR", "CLUSTER"):
        for cdp in (False, True):
            name = variant_name(abbr, cdp)
            result.append(sweep_point(f"{name}|base", abbr, config, cdp=cdp))
            result.append(sweep_point(f"{name}|32k", abbr, small_l1, cdp=cdp))
    return result


@pytest.fixture(scope="module")
def serial(points):
    return {
        p.label: run_benchmark(p.abbr, cdp=p.cdp, size=p.size, config=p.config)
        for p in points
    }


class TestDeterminism:
    def test_cached_path_matches_serial(self, points, serial):
        cache = TraceCache()
        results = run_sweep(points, jobs=0, cache=cache)
        assert results == serial
        # Two points per application -> one miss + one hit each.
        assert cache.misses == 6
        assert cache.hits == 6

    def test_parallel_path_matches_serial(self, points, serial):
        assert run_sweep(points, jobs=2) == serial

    def test_single_worker_matches_serial(self, points, serial):
        assert run_sweep(points[:4], jobs=1) == {
            p.label: serial[p.label] for p in points[:4]
        }

    def test_result_order_follows_input_order(self, points, serial):
        reordered = list(reversed(points))
        results = run_sweep(reordered, jobs=0)
        assert list(results) == [p.label for p in reordered]

    def test_repeated_replay_is_stable(self, points, serial):
        cache = TraceCache()
        for _ in range(2):
            for point in points:
                assert run_point(point, cache) == serial[point.label]

    def test_uncached_run_point_matches(self, points, serial):
        point = points[0]
        assert run_point(point) == serial[point.label]


class TestCacheKeying:
    def test_timing_knobs_share_traces(self, config):
        a = sweep_point("a", "NW", config)
        b = sweep_point(
            "b", "NW", with_cache_sizes(config, 0, 128 * 1024)
        )
        assert app_key(a) == app_key(b)

    def test_trace_shape_knobs_invalidate(self, config):
        a = sweep_point("a", "NW", config)
        b = sweep_point("b", "NW", config.with_(warp_size=16))
        assert trace_signature(a.config) != trace_signature(b.config)
        assert app_key(a) != app_key(b)

    def test_identity_fields_invalidate(self, config):
        base = sweep_point("a", "NW", config)
        assert app_key(base) != app_key(sweep_point("b", "NW", config, cdp=True))
        assert app_key(base) != app_key(sweep_point("c", "STAR", config))
        assert app_key(base) != app_key(
            sweep_point("d", "NW", config, size=DatasetSize.MEDIUM)
        )
        assert app_key(base) != app_key(
            sweep_point("e", "NW", config, use_shared=False)
        )

    def test_non_replayable_app_runs_fresh(self, config, points, serial,
                                           monkeypatch):
        from repro.kernels import build_application

        app_cls = type(build_application("NW"))
        monkeypatch.setattr(app_cls, "replayable", False)
        cache = TraceCache()
        nw_points = [p for p in points if p.abbr == "NW"]
        results = run_sweep(nw_points, jobs=0, cache=cache)
        assert results == {p.label: serial[p.label] for p in nw_points}
        assert len(cache) == 0

    def test_invalidate(self, config):
        cache = TraceCache()
        cache.get(sweep_point("a", "NW", config))
        cache.get(sweep_point("b", "STAR", config))
        assert len(cache) == 2
        assert cache.invalidate("NW") == 1
        assert len(cache) == 1
        assert cache.invalidate() == 1
        assert len(cache) == 0


class TestValidation:
    def test_duplicate_labels_rejected(self, config):
        twice = [sweep_point("x", "NW", config), sweep_point("x", "STAR", config)]
        with pytest.raises(ValueError, match="unique"):
            run_sweep(twice, jobs=0)

    def test_negative_jobs_rejected(self, config):
        with pytest.raises(ValueError, match="jobs"):
            run_sweep([sweep_point("x", "NW", config)], jobs=-1)

    def test_default_jobs_positive(self):
        assert default_jobs() >= 1

    def test_default_jobs_divides_core_budget(self):
        """jobs x workers must never oversubscribe the affinity budget:
        the per-job worker count divides the same budget --jobs uses."""
        budget = default_jobs()
        for workers in (1, 2, 4, budget, budget * 2):
            jobs = default_jobs(workers_per_job=workers)
            assert jobs >= 1
            if workers <= budget:
                assert jobs * workers <= budget
        assert default_jobs(workers_per_job=0) == budget
        assert default_jobs(workers_per_job=1) == budget


class TestSuiteIntegration:
    def test_run_suite_jobs_matches_serial(self, config):
        benchmarks = ["NW", "STAR"]
        plain = run_suite(benchmarks, size=DatasetSize.SMALL, config=config)
        cached = run_suite(
            benchmarks, size=DatasetSize.SMALL, config=config, jobs=0
        )
        pooled = run_suite(
            benchmarks, size=DatasetSize.SMALL, config=config, jobs=2
        )
        assert cached == plain
        assert pooled == plain
        assert list(cached) == list(plain)

    def test_suite_points_labels(self, config):
        labels = [p.label for p in suite_points(["NW"], config=config)]
        assert labels == ["NW", "NW-CDP"]


class TestPicklability:
    """Everything crossing the pool boundary must pickle cheaply."""

    def test_sweep_point_round_trip(self, config):
        point = sweep_point("NW|base", "NW", config, cdp=True,
                            use_shared=False)
        clone = pickle.loads(pickle.dumps(point))
        assert clone == point
        assert isinstance(clone, SweepPoint)

    def test_config_round_trip(self, config):
        assert pickle.loads(pickle.dumps(config)) == config

    def test_run_stats_round_trip(self, points, serial):
        for label, stats in serial.items():
            blob = pickle.dumps(stats)
            assert len(blob) < 16 * 1024, f"{label} stats pickle too large"
            assert pickle.loads(blob) == stats


class TestTelemetryOptIn:
    """``run_sweep(..., telemetry_interval=N)`` samples every point."""

    def test_every_point_carries_a_summary(self, config):
        pts = [
            sweep_point(variant_name(a, c), a, config, cdp=c)
            for a, c in (("NW", False), ("STAR", True))
        ]
        results = run_sweep(pts, jobs=0, telemetry_interval=2_000)
        for label, stats in results.items():
            summary = stats.telemetry
            assert summary is not None, label
            assert summary["meta"]["interval"] == 2_000
            assert summary["rows"]

    def test_sampling_does_not_change_aggregates(self, config):
        pts = [sweep_point("NW", "NW", config)]
        plain = run_sweep(pts, jobs=0)["NW"]
        sampled = run_sweep(pts, jobs=0, telemetry_interval=2_000)["NW"]
        import dataclasses

        a = dataclasses.asdict(plain)
        b = dataclasses.asdict(sampled)
        a.pop("telemetry"), b.pop("telemetry")
        assert a == b
        assert plain.telemetry is None

    def test_interval_not_in_trace_signature(self, config):
        sampled = config.with_(telemetry_interval=2_000)
        assert trace_signature(config) == trace_signature(sampled)

    def test_summary_survives_process_pool(self, config):
        pts = [sweep_point("NW", "NW", config)]
        serial_run = run_sweep(pts, jobs=0, telemetry_interval=2_000)["NW"]
        pooled = run_sweep(pts, jobs=2, telemetry_interval=2_000)["NW"]
        assert pooled.telemetry == serial_run.telemetry


class TestPointIdentityAndMerge:
    """point_key / assert_merge_complete: the fan-out merge contract."""

    def test_point_key_ignores_label(self, config):
        a = sweep_point("one", "NW", config)
        b = sweep_point("two", "NW", config)
        from repro.core.sweep import point_key

        assert point_key(a) == point_key(b)

    def test_point_key_tracks_content(self, config):
        from repro.core.sweep import point_key

        base = sweep_point("NW", "NW", config)
        assert point_key(base) != point_key(
            sweep_point("NW", "NW", config.with_(num_sms=8))
        )
        assert point_key(base) != point_key(
            sweep_point("NW", "NW", config, cdp=True)
        )

    def test_non_scalar_option_rejected(self, config):
        from repro.core.sweep import point_key

        bad = sweep_point("NW", "NW", config, shape=(3, 4))
        with pytest.raises(TypeError, match="JSON scalar"):
            point_key(bad)

    def test_merge_complete_passes(self, config):
        from repro.core.sweep import assert_merge_complete

        pts = [sweep_point("NW", "NW", config)]
        assert_merge_complete(pts, ["anything"])

    def test_merge_missing_point_named(self, config):
        from repro.core.sweep import (
            SweepMergeError,
            assert_merge_complete,
            point_key,
        )

        pts = [sweep_point("NW", "NW", config),
               sweep_point("SW", "SW", config)]
        with pytest.raises(SweepMergeError) as err:
            assert_merge_complete(pts, ["ok", None])
        assert err.value.missing == [f"SW [{point_key(pts[1])}]"]

    def test_merge_length_mismatch_rejected(self, config):
        from repro.core.sweep import SweepMergeError, assert_merge_complete

        pts = [sweep_point("NW", "NW", config)]
        with pytest.raises(SweepMergeError):
            assert_merge_complete(pts, [])


class TestResume:
    def test_resume_fills_known_points_without_running(self, config):
        from repro.core.sweep import point_key

        pts = [sweep_point("NW|a", "NW", config),
               sweep_point("NW|b", "NW", config.with_(num_sms=8))]
        sentinel = object()
        cache = TraceCache()
        results = run_sweep(
            pts, jobs=0, cache=cache,
            resume={point_key(pts[0]): sentinel},
        )
        assert results["NW|a"] is sentinel
        assert results["NW|b"] is not sentinel
        assert cache.misses == 1  # only the unknown point simulated

    def test_resume_preserves_input_order(self, config):
        from repro.core.sweep import point_key

        pts = [sweep_point(f"NW|{i}", "NW", config.with_(num_sms=2 + i))
               for i in range(3)]
        full = run_sweep(pts, jobs=0)
        resumed = run_sweep(
            pts, jobs=0, resume={point_key(pts[1]): full["NW|1"]},
        )
        assert resumed == full
        assert list(resumed) == ["NW|0", "NW|1", "NW|2"]

    def test_resume_keys_match_final_config(self, config):
        """Resume identity is computed after the telemetry override."""
        from repro.core.sweep import point_key
        from dataclasses import replace as dc_replace

        pts = [sweep_point("NW", "NW", config)]
        overridden = dc_replace(
            pts[0], config=config.with_(telemetry_interval=2_000)
        )
        sentinel = object()
        results = run_sweep(
            pts, jobs=0, telemetry_interval=2_000,
            resume={point_key(overridden): sentinel},
        )
        assert results["NW"] is sentinel
