"""Tests for roofline analysis and load-balance diagnostics."""

import pytest

from repro.core.analysis import machine_peaks, roofline_point, roofline_report
from repro.core.runner import run_benchmark, run_suite
from repro.sim.config import GPUConfig, a100_config, rtx3090_config
from repro.sim.stats import RunStats

CONFIG = GPUConfig(num_sms=8)


class TestMachinePeaks:
    def test_peaks_scale_with_machine(self):
        ipc_small, bw_small = machine_peaks(GPUConfig(num_sms=8))
        ipc_big, bw_big = machine_peaks(a100_config())
        assert ipc_big > ipc_small
        assert bw_big > bw_small

    def test_presets_are_valid_configs(self):
        assert rtx3090_config().num_sms == 82
        assert a100_config().l2.size_bytes == 40 * 1024 * 1024
        assert rtx3090_config(num_sms=4).num_sms == 4


class TestRooflinePoint:
    def test_pure_compute_run(self):
        stats = RunStats(cycles=100, instructions=500)
        point = roofline_point("x", stats, CONFIG)
        assert point.bound == "compute"
        assert point.intensity == float("inf")
        assert point.attainable_ipc == CONFIG.num_sms

    def test_bandwidth_bound_run(self):
        stats = RunStats(cycles=1000, instructions=100)
        stats.dram.requests = 10_000  # ~1.3MB moved for 100 instructions
        point = roofline_point("y", stats, CONFIG)
        assert point.bound == "bandwidth"
        assert point.attainable_ipc < CONFIG.num_sms

    def test_attainable_is_roofline_min(self):
        stats = RunStats(cycles=10, instructions=10)
        stats.dram.requests = 1
        point = roofline_point("z", stats, CONFIG)
        peak_ipc, peak_bw = machine_peaks(CONFIG)
        expected = min(peak_ipc, point.intensity * peak_bw)
        assert point.attainable_ipc == pytest.approx(expected)


class TestRooflineReport:
    def test_gksw_least_intense(self):
        results = run_suite(["SW", "GKSW", "CLUSTER"], cdp_variants=False,
                            config=CONFIG)
        rows = roofline_report(results, CONFIG)
        # Sorted by intensity: the bandwidth hog comes first.
        assert rows[0]["benchmark"] == "GKSW"
        assert rows[0]["bound"] == "bandwidth"

    def test_compute_bound_kernels_detected(self):
        results = run_suite(["CLUSTER"], cdp_variants=False, config=CONFIG)
        rows = roofline_report(results, CONFIG)
        assert rows[0]["bound"] == "compute"

    def test_efficiency_bounded(self):
        results = run_suite(["SW", "NW"], cdp_variants=False, config=CONFIG)
        for row in roofline_report(results, CONFIG):
            assert 0.0 <= row["efficiency"] <= 1.5  # model noise margin


class TestLoadImbalance:
    def test_balanced_grid_near_one(self):
        stats = run_benchmark("GG", config=CONFIG)
        assert stats.load_imbalance() >= 1.0

    def test_empty_stats(self):
        assert RunStats().load_imbalance() == 0.0

    def test_per_sm_counts_sum_to_total(self):
        stats = run_benchmark("NW", config=CONFIG)
        assert sum(stats.sm_instructions.values()) == stats.instructions
