"""Tests for the CPU baseline cost model."""

import pytest

from repro.cpu import CPUModel, cpu_cycles
from repro.data.datasets import DatasetSize, dataset_for
from repro.data.workloads import PairwiseWorkload
from repro.genomics.sequence import Sequence


class TestCPUModel:
    def test_pairwise_scales_with_cells(self):
        model = CPUModel()
        small = PairwiseWorkload(Sequence("q", "A" * 100), Sequence("t", "A" * 100))
        large = PairwiseWorkload(Sequence("q", "A" * 200), Sequence("t", "A" * 200))
        assert model.pairwise(large) == 4 * model.pairwise(small)

    def test_center_star_counts_both_phases(self):
        workload = dataset_for("STAR", DatasetSize.SMALL)
        model = CPUModel()
        k = len(workload.sequences)
        cycles = model.center_star(workload)
        # At least (k choose 2) + (k-1) rows of work.
        min_rows = (k * (k - 1)) // 2 + (k - 1)
        assert cycles >= min_rows * model.row_cycles

    def test_batch_sums_pairs(self):
        workload = dataset_for("GG", DatasetSize.SMALL)
        assert CPUModel().batch(workload) > 0

    def test_pairhmm(self):
        workload = dataset_for("PairHMM", DatasetSize.SMALL)
        assert CPUModel().pairhmm(workload) > 0


class TestCpuCyclesDispatch:
    @pytest.mark.parametrize("abbr", ["SW", "NW", "STAR", "GG", "PairHMM"])
    def test_supported_benchmarks(self, abbr):
        workload = dataset_for(abbr, DatasetSize.SMALL)
        assert cpu_cycles(abbr, workload) > 0

    def test_unsupported_benchmark(self):
        with pytest.raises(ValueError):
            cpu_cycles("NvB", None)

    def test_gpu_speedup_in_paper_range(self):
        """Fig 2's headline: GPU beats CPU by up to ~20x."""
        from repro.core import run_benchmark
        from repro.core.config_presets import baseline_config

        workload = dataset_for("SW", DatasetSize.SMALL)
        cpu = cpu_cycles("SW", workload)
        gpu = run_benchmark(
            "SW", config=baseline_config(), workload=workload
        ).device_time()
        assert 3 < cpu / gpu < 30
