"""Golden bit-identity: window-barrier parallel core vs sequential.

The parallel core (``repro.sim.parallel``) shards the SM array across
N workers and synchronizes them at window barriers; within the safe
window bound it must produce field-for-field identical
:class:`RunStats` to the sequential event core on every benchmark —
sharding is only allowed to change wall-clock, never the timing model.

The full suite runs at the small dataset for shards in {2, 4} under
*both* execution backends — the in-process thread pool and the forked
process workers (``repro.sim.parallel_proc``); the heaviest benchmarks
get an extra medium-size lock, and a shards x windows matrix (marked
``slow``) locks the identity across explicit window sizes up to the
safe bound.  Relaxed mode (windows beyond the bound) is deliberately
absent from these locks: its results are approximate by design.
"""

import dataclasses

import pytest

from repro.core.runner import run_benchmark
from repro.data.datasets import DatasetSize
from repro.kernels import benchmark_names
from repro.sim.config import GPUConfig


def _sequential(abbr: str, cdp: bool, size: DatasetSize):
    return dataclasses.asdict(run_benchmark(
        abbr, cdp=cdp, size=size, config=GPUConfig(event_core=True)
    ))


def _parallel(abbr: str, cdp: bool, size: DatasetSize, shards: int,
              window: int = 0, executor: str = "auto"):
    config = GPUConfig(
        event_core=True,
        parallel_shards=shards,
        window_cycles=window,
        parallel_executor=executor,
    )
    return dataclasses.asdict(
        run_benchmark(abbr, cdp=cdp, size=size, config=config)
    )


@pytest.mark.parametrize("executor", ["threads", "processes"])
@pytest.mark.parametrize("shards", [2, 4])
@pytest.mark.parametrize("cdp", [False, True], ids=["plain", "cdp"])
@pytest.mark.parametrize("abbr", benchmark_names())
def test_small_suite_identical(abbr, cdp, shards, executor):
    """Both backends, whole suite.  CDP variants exercise the process
    backend's eligibility fallback (device launches keep the run
    in-process) — the identity contract holds either way."""
    seq = _sequential(abbr, cdp, DatasetSize.SMALL)
    par = _parallel(abbr, cdp, DatasetSize.SMALL, shards, executor=executor)
    assert par == seq


@pytest.mark.slow
@pytest.mark.parametrize("cdp", [False, True], ids=["plain", "cdp"])
@pytest.mark.parametrize("abbr", ["PairHMM", "NvB"])
def test_medium_heavyweights_identical(abbr, cdp):
    seq = _sequential(abbr, cdp, DatasetSize.MEDIUM)
    par = _parallel(abbr, cdp, DatasetSize.MEDIUM, 4)
    assert par == seq


@pytest.mark.slow
@pytest.mark.parametrize("window", [1, 16, 64, 131])
@pytest.mark.parametrize("shards", [2, 4])
@pytest.mark.parametrize("abbr", ["NW", "PairHMM"])
def test_shards_windows_matrix_identical(abbr, shards, window):
    """Explicit window sizes up to the default safe bound (131)."""
    seq = _sequential(abbr, False, DatasetSize.SMALL)
    par = _parallel(abbr, False, DatasetSize.SMALL, shards, window=window)
    assert par == seq


def test_inline_matches_threads():
    """The executor is pure mechanism: inline (no threads) and the
    thread pool must walk the exact same schedule."""
    threaded = _parallel(
        "PairHMM", False, DatasetSize.SMALL, 4, executor="threads"
    )
    inline = _parallel(
        "PairHMM", False, DatasetSize.SMALL, 4, executor="inline"
    )
    assert inline == threaded


def test_processes_match_threads():
    """The forked backend and the thread pool are two mechanisms for
    the same schedule: their RunStats must agree field-for-field."""
    procs = _parallel(
        "PairHMM", False, DatasetSize.SMALL, 4, executor="processes"
    )
    threaded = _parallel(
        "PairHMM", False, DatasetSize.SMALL, 4, executor="threads"
    )
    assert procs == threaded


@pytest.mark.parametrize("executor", ["threads", "processes"])
def test_telemetry_differential_identical(executor):
    """Per-shard telemetry absorbed at finalize must reproduce the
    sequential sampler's rows and events — for both backends (the
    process backend ships each worker's Telemetry pickled at
    finalize)."""
    def stats(shards):
        config = GPUConfig(
            event_core=True, parallel_shards=shards,
            telemetry_interval=5_000, parallel_executor=executor,
        )
        return run_benchmark(
            "PairHMM", size=DatasetSize.SMALL, config=config
        )

    seq, par = stats(1), stats(4)
    assert par.telemetry == seq.telemetry
    assert dataclasses.asdict(par) == dataclasses.asdict(seq)
