"""Tests for host-op validation and the application base class."""

import pytest

from repro.sim.kernel import KernelProgram
from repro.sim.launch import Application, HostMemcpy, KernelLaunch
from repro.sim.warp import Grid


class _NullTraceKernel(KernelProgram):
    def warp_trace(self, ctx):
        return iter(())


def kernel():
    return _NullTraceKernel("k", 32)


class TestKernelLaunch:
    def test_valid(self):
        launch = KernelLaunch(kernel(), num_ctas=4, args={"x": 1})
        assert launch.num_ctas == 4
        assert launch.args == {"x": 1}

    def test_rejects_empty_grid(self):
        with pytest.raises(ValueError):
            KernelLaunch(kernel(), num_ctas=0)


class TestHostMemcpy:
    def test_valid_directions(self):
        assert HostMemcpy(10, "h2d").direction == "h2d"
        assert HostMemcpy(10, "d2h").direction == "d2h"

    def test_rejects_zero_bytes(self):
        with pytest.raises(ValueError):
            HostMemcpy(0)

    def test_rejects_bad_direction(self):
        with pytest.raises(ValueError):
            HostMemcpy(10, "d2d")


class TestApplicationBase:
    def test_host_program_abstract(self):
        with pytest.raises(NotImplementedError):
            next(iter(Application().host_program()))

    def test_describe_default(self):
        app = Application()
        app.name = "thing"
        assert app.describe() == "thing"


class TestGrid:
    def test_dispatch_and_completion_tracking(self):
        grid = Grid(kernel(), num_ctas=2)
        assert not grid.dispatch_done
        grid.make_cta(0.0)
        grid.make_cta(0.0)
        assert grid.dispatch_done
        with pytest.raises(RuntimeError):
            grid.make_cta(0.0)
        assert not grid.finished
        grid.remaining_ctas = 0
        assert grid.finished

    def test_rejects_empty_grid(self):
        with pytest.raises(ValueError):
            Grid(kernel(), num_ctas=0)

    def test_start_time_recorded_on_first_cta(self):
        grid = Grid(kernel(), num_ctas=2)
        grid.make_cta(42.0)
        assert grid.start_time == 42.0
        grid.make_cta(50.0)
        assert grid.start_time == 42.0

    def test_warps_created_per_cta(self):
        grid = Grid(_NullTraceKernel("t", 128), num_ctas=1)
        cta = grid.make_cta(0.0)
        assert len(cta.warps) == 4
        assert [w.warp_id for w in cta.warps] == [0, 1, 2, 3]
