"""Event-core edge cases: deadlock, dormancy, barrier exit, run-ahead.

These exercise the paths the golden suite (`test_event_core_golden`)
only crosses incidentally: the deadlock detector, dormant-SM stall
attribution through ``wake_accounting``, barrier release by an exiting
warp, and the SM-local run-ahead gate (``may_device_launch``).
"""

import dataclasses

import pytest

from repro.isa import TraceBuilder
from repro.sim import (
    Application,
    GPUConfig,
    GPUSimulator,
    HostLaunch,
    KernelLaunch,
    KernelProgram,
)
from repro.sim.gpu import SimulationDeadlock
from repro.sim.stats import StallReason

BOTH_CORES = pytest.mark.parametrize(
    "event_core", [True, False], ids=["event", "reference"]
)


class ScriptKernel(KernelProgram):
    """Kernel whose trace comes from a per-warp script function."""

    def __init__(self, script, cta_threads=64, **resources):
        super().__init__("script", cta_threads, **resources)
        self.script = script

    def warp_trace(self, ctx):
        yield from self.script(ctx)


class ScriptApp(Application):
    """One launch of a scripted kernel, optionally run-ahead eligible."""

    name = "script-app"

    def __init__(self, kernel, num_ctas=1, launch_free=False):
        self.kernel = kernel
        self.num_ctas = num_ctas
        # Opting in to run-ahead is a *declaration*: the simulator
        # trusts it and hard-errors on a device launch.
        self.may_device_launch = not launch_free

    def host_program(self):
        yield HostLaunch(KernelLaunch(self.kernel, num_ctas=self.num_ctas))


def run_app(app, event_core=True, num_sms=2):
    sim = GPUSimulator(
        GPUConfig(event_core=event_core, num_sms=num_sms, num_mem_partitions=2)
    )
    return sim.run_application(app)


class TestDeadlock:
    @BOTH_CORES
    def test_undispatchable_grid_raises(self, event_core):
        def script(ctx):
            yield TraceBuilder().exit()

        huge = ScriptKernel(script, 64, smem_per_cta=200 * 1024)
        with pytest.raises(SimulationDeadlock):
            run_app(ScriptApp(huge), event_core=event_core)


class TestDormantAccounting:
    @BOTH_CORES
    def test_devsync_dormancy_charged_functional(self, event_core):
        """A parent SM with every warp parked on ``cudaDeviceSynchronize``
        goes dormant; when the child (on the other SM) completes, the
        dormant gap must be attributed to FUNCTIONAL_DONE."""
        child = ScriptKernel(
            lambda ctx: iter([TraceBuilder().ints(400), TraceBuilder().exit()]),
            32,
        )

        def parent(ctx):
            b = TraceBuilder()
            yield b.launch(KernelLaunch(child, num_ctas=1))
            yield b.device_sync()
            yield b.exit()

        stats = run_app(
            ScriptApp(ScriptKernel(parent, 32)), event_core=event_core
        )
        # The parent waits out the child's ~400-cycle ALU block: far
        # more functional-done stall than the launch overhead alone.
        assert stats.stalls[StallReason.FUNCTIONAL_DONE.value] > 300

    def test_dormant_attribution_identical_across_cores(self):
        child = ScriptKernel(
            lambda ctx: iter([TraceBuilder().ints(400), TraceBuilder().exit()]),
            32,
        )

        def parent(ctx):
            b = TraceBuilder()
            yield b.launch(KernelLaunch(child, num_ctas=1))
            yield b.device_sync()
            yield b.exit()

        results = [
            run_app(ScriptApp(ScriptKernel(parent, 32)), event_core=ec)
            for ec in (True, False)
        ]
        assert dataclasses.asdict(results[0]) == dataclasses.asdict(results[1])


class TestBarrierExit:
    @BOTH_CORES
    def test_exiting_warp_releases_barrier(self, event_core):
        """A warp that exits without reaching the barrier must still
        count toward release — its peers would hang otherwise."""

        def script(ctx):
            b = TraceBuilder()
            if ctx.warp_id == 0:
                yield b.exit()
                return
            yield b.barrier()
            yield b.ints(1)
            yield b.exit()

        stats = run_app(
            ScriptApp(ScriptKernel(script, 96), launch_free=True),
            event_core=event_core,
        )
        # 1 exit + 2x (barrier + int + exit): all warps completed.
        assert stats.instructions == 7

    def test_release_identical_across_cores(self):
        def script(ctx):
            b = TraceBuilder()
            if ctx.warp_id == 0:
                yield b.ints(30)
                yield b.exit()
                return
            yield b.barrier()
            yield b.ints(5)
            yield b.exit()

        results = [
            run_app(
                ScriptApp(ScriptKernel(script, 128), launch_free=True),
                event_core=ec,
            )
            for ec in (True, False)
        ]
        assert dataclasses.asdict(results[0]) == dataclasses.asdict(results[1])


class TestRunAhead:
    def test_runahead_matches_legacy_event_core(self):
        """The same application, declared launch-free (SM-local
        run-ahead) vs conservatively (one decision per heap pop), must
        produce identical stats on the event core."""

        def script(ctx):
            b = TraceBuilder()
            for i in range(40):
                yield b.ints(3)
                yield b.ld_global([ctx.global_warp * 7 + i, 50_000 + i])
                yield b.branch()
                yield b.ld_shared()
            yield b.barrier()
            yield b.exit()

        kernel_args = dict(num_ctas=6)
        results = [
            run_app(
                ScriptApp(
                    ScriptKernel(script, 128), launch_free=free, **kernel_args
                )
            )
            for free in (True, False)
        ]
        assert dataclasses.asdict(results[0]) == dataclasses.asdict(results[1])

    def test_false_declaration_raises(self):
        """An application that declares itself launch-free but then
        device-launches must fail loudly, not diverge silently."""
        child = ScriptKernel(
            lambda ctx: iter([TraceBuilder().exit()]), 32
        )

        def parent(ctx):
            b = TraceBuilder()
            yield b.launch(KernelLaunch(child, num_ctas=1))
            yield b.device_sync()
            yield b.exit()

        app = ScriptApp(ScriptKernel(parent, 32), launch_free=True)
        with pytest.raises(RuntimeError, match="may_device_launch"):
            run_app(app)
