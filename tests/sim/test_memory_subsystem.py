"""Tests for the shared memory subsystem (L2 banks + NoC + DRAM)."""

import pytest

from repro.sim.config import GPUConfig
from repro.sim.memory import MemorySubsystem


@pytest.fixture
def memory():
    return MemorySubsystem(GPUConfig(num_sms=4, num_mem_partitions=4))


class TestAddressInterleaving:
    def test_consecutive_lines_hit_consecutive_partitions(self, memory):
        assert [memory.partition_of(line) for line in range(8)] == \
            [0, 1, 2, 3, 0, 1, 2, 3]

    def test_l2_banked_per_partition(self, memory):
        assert len(memory.l2_banks) == 4
        assert len(memory.dram) == 4

    def test_bank_capacity_is_slice(self, memory):
        total = GPUConfig().l2.size_bytes
        assert memory.l2_banks[0].config.size_bytes == total // 4


class TestLineRequests:
    def test_l2_hit_faster_than_miss(self, memory):
        first = memory.line_request(0, 100, False, 0)
        # Same line again (resident in L2): must return sooner
        # relative to issue time.
        second = memory.line_request(0, 100, False, first)
        assert second - first < first - 0

    def test_load_miss_reaches_dram(self, memory):
        memory.line_request(0, 64, False, 0)
        assert sum(ch.stats.requests for ch in memory.dram) == 1

    def test_store_fills_l2(self, memory):
        memory.line_request(1, 40, True, 0)
        bank = memory.l2_banks[memory.partition_of(40)]
        assert bank.contains(40)

    def test_completion_after_now(self, memory):
        done = memory.line_request(2, 7, False, 1000)
        assert done > 1000


class TestWriteback:
    def test_writeback_fills_l2_without_blocking(self, memory):
        memory.writeback(0, 24, now=0)
        bank = memory.l2_banks[memory.partition_of(24)]
        assert bank.contains(24)

    def test_writeback_miss_charges_dram(self, memory):
        memory.writeback(0, 24, now=0)
        assert sum(ch.stats.requests for ch in memory.dram) == 1

    def test_writeback_hit_skips_dram(self, memory):
        memory.line_request(0, 24, False, 0)  # line now in L2
        before = sum(ch.stats.requests for ch in memory.dram)
        memory.writeback(0, 24, now=5000)
        assert sum(ch.stats.requests for ch in memory.dram) == before


class TestFlush:
    def test_flush_empties_all_banks(self, memory):
        for line in range(16):
            memory.line_request(0, line, False, 0)
        memory.flush()
        assert all(
            not bank.contains(line)
            for line in range(16)
            for bank in memory.l2_banks
        )
