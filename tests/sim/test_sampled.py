"""Unit and determinism tests for the warp-sampled estimator.

The determinism lock is the load-bearing test here: the same
``(application, config, sample_seed)`` must produce the identical
:class:`EstimatedRunStats` regardless of process topology
(``--jobs`` / ``--workers``) or ambient global-RNG state.
"""

from __future__ import annotations

import dataclasses
import random

import pytest

from repro.core.runner import estimate_benchmark
from repro.core.sweep import (
    TraceCache,
    run_point,
    run_sweep,
    sweep_point,
    trace_signature,
)
from repro.kernels import build_application
from repro.sim.config import GPUConfig
from repro.sim.gpu import GPUSimulator
from repro.sim.replay import CachedApplication, replay_application
from repro.sim.sampled import (
    EstimatedRunStats,
    estimate_application,
    ranking_inversions,
    spearman,
)


@pytest.fixture(scope="module")
def cached_nw() -> CachedApplication:
    return CachedApplication(build_application("NW"))


@pytest.fixture(scope="module")
def cached_sw() -> CachedApplication:
    return CachedApplication(build_application("SW"))


def est_config(**overrides) -> GPUConfig:
    params = {"sample_fraction": 0.1}
    params.update(overrides)
    return GPUConfig(**params)


# -- result shape ----------------------------------------------------------

def test_returns_estimated_run_stats(cached_nw):
    stats = estimate_application(cached_nw, est_config())
    assert isinstance(stats, EstimatedRunStats)
    for metric in ("cycles", "device_time", "ipc",
                   "l1_miss_rate", "l2_miss_rate",
                   "dram_requests", "noc_bytes"):
        lo, hi = stats.interval(metric)
        assert lo <= hi
    sample = stats.sample
    assert sample["requested_fraction"] == 0.1
    assert 0 < sample["sampled_ctas"] <= sample["total_ctas"]
    assert 0 < sample["launches_kept"] <= sample["launches"]


def test_interval_brackets_estimate(cached_nw):
    stats = estimate_application(cached_nw, est_config())
    lo, hi = stats.interval("cycles")
    assert lo <= stats.cycles <= hi
    assert stats.covers("cycles", stats.cycles)
    with pytest.raises(KeyError):
        stats.covers("no_such_metric", 0.0)


def test_exact_passthroughs_are_exact(cached_nw):
    """Counts that do not depend on timing are never estimated."""
    exact = replay_application(cached_nw, GPUSimulator(GPUConfig()))
    stats = estimate_application(cached_nw, est_config())
    assert stats.instructions == exact.instructions
    assert stats.kernel_launches == exact.kernel_launches
    assert stats.device_launches == exact.device_launches
    assert stats.memcpy_calls == exact.memcpy_calls
    assert stats.pci_cycles == exact.pci_cycles


# -- exact fallback --------------------------------------------------------

def test_fraction_one_degenerates_to_exact(cached_nw):
    exact = replay_application(cached_nw, GPUSimulator(GPUConfig()))
    stats = estimate_application(cached_nw, est_config(sample_fraction=1.0))
    assert not stats.estimated
    assert stats.sample["exact_fallback"]
    assert stats.cycles == exact.cycles
    assert stats.ipc == exact.ipc
    lo, hi = stats.interval("cycles")
    assert lo == hi == exact.cycles


# -- misuse guards ---------------------------------------------------------

def test_gpu_simulator_rejects_sample_fraction(cached_nw):
    simulator = GPUSimulator(est_config())
    with pytest.raises(RuntimeError, match="sample"):
        simulator.run_application(cached_nw)


def test_estimate_requires_positive_fraction(cached_nw):
    with pytest.raises(ValueError):
        estimate_application(cached_nw, GPUConfig())


def test_estimate_requires_cached_application():
    with pytest.raises(TypeError):
        estimate_application(build_application("NW"), est_config())


def test_config_validates_sample_knobs():
    with pytest.raises(ValueError):
        GPUConfig(sample_fraction=1.5)
    with pytest.raises(ValueError):
        GPUConfig(sample_min_per_class=0)
    with pytest.raises(ValueError):
        GPUConfig(sample_max_launches_per_class=-1)


# -- determinism (the satellite lock) --------------------------------------

def test_same_seed_identical_estimates(cached_sw):
    config = est_config()
    first = estimate_application(cached_sw, config)
    second = estimate_application(cached_sw, config)
    assert dataclasses.asdict(first) == dataclasses.asdict(second)


def test_global_rng_is_neither_read_nor_written(cached_sw):
    config = est_config()
    random.seed(12345)
    state = random.getstate()
    first = estimate_application(cached_sw, config)
    assert random.getstate() == state, "estimator touched the global RNG"
    random.seed(99999)
    second = estimate_application(cached_sw, config)
    assert dataclasses.asdict(first) == dataclasses.asdict(second)


def test_seed_changes_the_sample(cached_sw):
    """Across several seeds the drawn samples must actually vary."""
    estimates = {
        estimate_application(
            cached_sw, est_config(sample_seed=seed)
        ).cycles
        for seed in range(5)
    }
    assert len(estimates) > 1


def test_identical_across_jobs():
    """Same points, jobs=0 vs jobs=2: bit-identical EstimatedRunStats.

    This is the determinism satellite: the seed travels inside the
    point's config across the process-pool boundary, and no worker
    ever consults process-local state to draw the sample.
    """
    config = est_config()
    points = [
        sweep_point(f"{abbr}|{cdp}", abbr, config, cdp=cdp)
        for abbr in ("NW", "SW")
        for cdp in (False, True)
    ]
    serial = run_sweep(points, jobs=0, store=None)
    pooled = run_sweep(points, jobs=2, store=None)
    for label in serial:
        assert dataclasses.asdict(serial[label]) == dataclasses.asdict(
            pooled[label]
        ), label
        assert isinstance(serial[label], EstimatedRunStats)


# -- sweep-engine routing --------------------------------------------------

def test_run_point_routes_to_estimator():
    point = sweep_point("NW-est", "NW", est_config())
    stats = run_point(point)
    assert isinstance(stats, EstimatedRunStats)
    assert stats.interval("cycles") is not None


def test_exact_and_estimated_points_share_traces():
    cache = TraceCache()
    exact_point = sweep_point("NW", "NW", GPUConfig())
    est_point = sweep_point("NW-est", "NW", est_config())
    run_point(exact_point, cache)
    assert (cache.misses, cache.hits) == (1, 0)
    stats = run_point(est_point, cache)
    assert (cache.misses, cache.hits) == (1, 1)
    assert isinstance(stats, EstimatedRunStats)


def test_trace_signature_excludes_sample_knobs():
    assert trace_signature(GPUConfig()) == trace_signature(
        est_config(sample_seed=7, sample_min_per_class=4)
    )


def test_estimate_benchmark_defaults_to_ten_percent():
    stats = estimate_benchmark("NW")
    assert isinstance(stats, EstimatedRunStats)
    assert stats.sample["requested_fraction"] == 0.1


# -- ranking helpers -------------------------------------------------------

def test_spearman_perfect_and_reversed():
    xs = [1.0, 2.0, 3.0, 4.0]
    assert spearman(xs, xs) == pytest.approx(1.0)
    assert spearman(xs, list(reversed(xs))) == pytest.approx(-1.0)


def test_spearman_handles_ties():
    rho = spearman([1.0, 2.0, 2.0, 3.0], [1.0, 2.0, 2.0, 3.0])
    assert rho == pytest.approx(1.0)


def test_ranking_inversions_counts_swaps():
    assert ranking_inversions(["a", "b", "c"], ["a", "b", "c"]) == 0
    assert ranking_inversions(["a", "b", "c"], ["b", "a", "c"]) == 1
    assert ranking_inversions(["a", "b", "c"], ["c", "b", "a"]) == 3
