"""Golden bit-identity: template and store paths vs live generation.

The trace fast paths — per-class template instantiation
(:mod:`repro.isa.template`) and binary store round trips
(:mod:`repro.sim.trace_store`) — are only allowed to change how fast a
trace materializes, never a single instruction of it.  Every benchmark
(plain and CDP, small dataset) is replayed three ways and the
resulting :class:`RunStats` must match field for field:

1. live: templates disabled, every warp through its generator;
2. templated: the default path, with ``REPRO_TRACE_VERIFY`` making the
   replay layer cross-check each instantiation against the generator
   (a dishonest ``trace_template`` raises instead of skewing results);
3. stored: the templated application through an encode/decode round
   trip.

The heaviest template user (PairHMM) and the heaviest opt-out user
(NvB, whose FM-index stages are data-dependent) get an extra
medium-size lock.
"""

import dataclasses

import pytest

from repro.data.datasets import DatasetSize
from repro.kernels import benchmark_names, build_application
from repro.sim.config import GPUConfig
from repro.sim.gpu import GPUSimulator
from repro.sim.replay import CachedApplication, replay_application
from repro.sim.trace_store import decode_bytes, encode_bytes

CONFIG = GPUConfig(num_sms=4)


def _replay(entry):
    return dataclasses.asdict(
        replay_application(entry, GPUSimulator(CONFIG))
    )


def _assert_all_paths_identical(abbr, cdp, size, monkeypatch):
    app = build_application(abbr, cdp=cdp, size=size)
    live = _replay(CachedApplication(app, template=False))

    monkeypatch.setenv("REPRO_TRACE_VERIFY", "1")
    templated = CachedApplication(app)
    assert _replay(templated) == live

    stored = decode_bytes(encode_bytes(templated))
    assert stored.total_counts.instructions == \
        templated.total_counts.instructions
    assert _replay(stored) == live


@pytest.mark.parametrize("cdp", [False, True], ids=["plain", "cdp"])
@pytest.mark.parametrize("abbr", benchmark_names())
def test_small_suite_identical(abbr, cdp, monkeypatch):
    _assert_all_paths_identical(abbr, cdp, DatasetSize.SMALL, monkeypatch)


@pytest.mark.parametrize("cdp", [False, True], ids=["plain", "cdp"])
@pytest.mark.parametrize("abbr", ["PairHMM", "NvB"])
def test_medium_heavyweights_identical(abbr, cdp, monkeypatch):
    _assert_all_paths_identical(abbr, cdp, DatasetSize.MEDIUM, monkeypatch)


@pytest.mark.parametrize(
    "abbr,options",
    [("PairHMM", {"use_shared": False}), ("NW", {"use_shared": False})],
)
def test_ablation_variants_identical(abbr, options, monkeypatch):
    """The Fig 7 no-shared ablations: PairHMM opts out of templating
    (mutable stream state), NW templates its strided global rows."""
    app = build_application(
        abbr, cdp=False, size=DatasetSize.SMALL, **options
    )
    live = _replay(CachedApplication(app, template=False))
    monkeypatch.setenv("REPRO_TRACE_VERIFY", "1")
    templated = CachedApplication(app)
    assert _replay(templated) == live
    assert _replay(decode_bytes(encode_bytes(templated))) == live


def test_template_layer_actually_used():
    """The golden identity above would pass vacuously if every kernel
    opted out; pin that the big template users really instantiate."""
    for abbr in ("PairHMM", "SW", "NW", "STAR"):
        app = build_application(abbr, cdp=False, size=DatasetSize.SMALL)
        entry = CachedApplication(app)
        assert entry.template_hits > 0, abbr
        assert entry.template_hits > entry.template_live, abbr
