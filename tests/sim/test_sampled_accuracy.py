"""Accuracy suite: the estimator against exact runs, whole suite.

Three claims, mirroring the validation contract in DESIGN.md:

- **coverage**: for every benchmark x CDP variant, the exact value of
  each estimated metric falls inside the declared confidence interval
  (the intervals *are* the estimator's error bounds).
- **ranking**: estimated cycle counts preserve the exact ordering
  across the paper's sweep axes (Spearman >= 0.95) — config-space
  exploration only needs ordering, so this is the property ``--estimate``
  sweeps rely on.  The fast test covers one axis on a subset; the
  ``slow``-marked matrix covers every Fig 11-22 axis on all 20 variants.
- **honest CIs**: over repeated seeds, the exact value lands inside
  the interval at no less than the nominal rate.  The fast test samples
  a few seeds on two benchmarks; the ``slow`` version sweeps the suite.
"""

from __future__ import annotations

import pytest

from repro.core.config_presets import (
    CACHE_SWEEP,
    CTA_SCALING,
    MEM_CONTROLLERS,
    NOC_BANDWIDTH_SWEEP,
    NOC_LATENCY_SWEEP,
    SCHEDULERS,
    TOPOLOGIES,
    baseline_config,
    scale_cta_resources,
    with_cache_sizes,
    with_controller,
    with_topology,
)
from repro.kernels import benchmark_names, build_application
from repro.sim.config import GPUConfig
from repro.sim.gpu import GPUSimulator
from repro.sim.replay import CachedApplication, replay_application
from repro.sim.sampled import estimate_application, spearman

SAMPLE_FRACTION = 0.1

VARIANTS = [
    (abbr, cdp) for abbr in benchmark_names() for cdp in (False, True)
]


@pytest.fixture(scope="module")
def suite_runs():
    """(exact, estimated) stats per variant, traces built once."""
    config = baseline_config()
    est_config = config.with_(sample_fraction=SAMPLE_FRACTION)
    runs = {}
    for abbr, cdp in VARIANTS:
        cached = CachedApplication(build_application(abbr, cdp=cdp))
        exact = replay_application(cached, GPUSimulator(config))
        estimate = estimate_application(cached, est_config)
        runs[(abbr, cdp)] = (exact, estimate)
    return runs


# -- per-variant coverage --------------------------------------------------

@pytest.mark.parametrize("abbr,cdp", VARIANTS,
                         ids=[f"{a}{'-CDP' if c else ''}" for a, c in VARIANTS])
def test_exact_inside_declared_interval(suite_runs, abbr, cdp):
    exact, estimate = suite_runs[(abbr, cdp)]
    assert estimate.covers("cycles", exact.cycles)
    assert estimate.covers("device_time", exact.device_time())
    assert estimate.covers("ipc", exact.ipc)
    assert estimate.covers("l1_miss_rate", exact.l1.miss_rate)
    assert estimate.covers("l2_miss_rate", exact.l2.miss_rate)
    assert estimate.covers("dram_requests", exact.dram.requests)
    assert estimate.covers("noc_bytes", exact.noc.bytes)


@pytest.mark.parametrize("abbr,cdp", VARIANTS,
                         ids=[f"{a}{'-CDP' if c else ''}" for a, c in VARIANTS])
def test_stall_fractions_inside_intervals(suite_runs, abbr, cdp):
    exact, estimate = suite_runs[(abbr, cdp)]
    for reason, fraction in exact.stall_breakdown().items():
        metric = f"stall_{reason}"
        if estimate.interval(metric) is not None:
            assert estimate.covers(metric, fraction), reason


@pytest.mark.parametrize("abbr,cdp", VARIANTS,
                         ids=[f"{a}{'-CDP' if c else ''}" for a, c in VARIANTS])
def test_exact_counts_pass_through(suite_runs, abbr, cdp):
    """Timing-independent counters must be exact, not estimated."""
    exact, estimate = suite_runs[(abbr, cdp)]
    assert estimate.instructions == exact.instructions
    assert estimate.kernel_launches == exact.kernel_launches
    assert estimate.device_launches == exact.device_launches
    assert estimate.memcpy_calls == exact.memcpy_calls


# -- ranking preservation across sweep axes --------------------------------

def _axis_configs(axis: str) -> list[GPUConfig]:
    """The Fig 11-22 config lists, keyed by sweep axis."""
    config = baseline_config()
    if axis == "cta":  # Fig 11: capacity binds only on a small machine
        small = config.with_(num_sms=4)
        return [scale_cta_resources(small, f) for f in CTA_SCALING]
    if axis == "cache":  # Figs 12-14
        return [with_cache_sizes(config, l1, l2) for l1, l2 in CACHE_SWEEP]
    if axis == "memory":  # Fig 15
        return [config, config.with_(perfect_memory=True)]
    if axis == "controller":  # Figs 16-18
        return [with_controller(config, c) for c in MEM_CONTROLLERS]
    if axis == "scheduler":  # Fig 19
        return [config.with_(scheduler=s) for s in SCHEDULERS]
    if axis == "topology":  # Fig 20
        return [with_topology(config, t) for t in TOPOLOGIES]
    if axis == "noc-latency":  # Fig 21
        return [with_topology(config, "mesh", router_delay=d)
                for d in NOC_LATENCY_SWEEP]
    if axis == "noc-bandwidth":  # Fig 22
        return [with_topology(config, "xbar", channel_bytes=b)
                for b in NOC_BANDWIDTH_SWEEP]
    raise ValueError(axis)


def _axis_spearman(axis: str, variants) -> list[float]:
    """Per-config Spearman of estimated-vs-exact cycles across variants.

    Traces are materialized once per variant and replayed at every
    config of the axis (exact) and estimated at the same configs.
    """
    rhos = []
    apps = {
        (abbr, cdp): CachedApplication(build_application(abbr, cdp=cdp))
        for abbr, cdp in variants
    }
    for config in _axis_configs(axis):
        est_config = config.with_(sample_fraction=SAMPLE_FRACTION)
        exact_cycles = []
        est_cycles = []
        for key in variants:
            exact_cycles.append(float(
                replay_application(apps[key], GPUSimulator(config)).cycles
            ))
            est_cycles.append(float(
                estimate_application(apps[key], est_config).cycles
            ))
        rhos.append(spearman(exact_cycles, est_cycles))
    return rhos


def test_scheduler_axis_preserves_ranking():
    """Fast ranking check: one axis, six variants."""
    variants = [(a, c) for a in ("NW", "STAR", "CLUSTER")
                for c in (False, True)]
    for rho in _axis_spearman("scheduler", variants):
        assert rho >= 0.95


@pytest.mark.slow
@pytest.mark.parametrize("axis", [
    "cta", "cache", "memory", "controller",
    "scheduler", "topology", "noc-latency", "noc-bandwidth",
])
def test_all_axes_preserve_ranking(axis):
    """Fig 11-22 matrix: every axis, all 20 variants, Spearman >= 0.95."""
    for rho in _axis_spearman(axis, VARIANTS):
        assert rho >= 0.95, (axis, rho)


# -- honest confidence intervals -------------------------------------------

#: Minimum acceptable coverage.  Intervals carry the declared model
#: margin on top of the statistical width, so observed coverage should
#: exceed the nominal 95%; the floor leaves room for seed-to-seed noise
#: in small samples without ever accepting a sub-nominal estimator.
COVERAGE_FLOOR = 0.9
CI_METRICS = ("cycles", "l1_miss_rate", "l2_miss_rate")


def _coverage_checks(benchmarks, seeds):
    """Yield one bool per (benchmark, seed, metric) coverage check."""
    config = baseline_config()
    for abbr in benchmarks:
        cached = CachedApplication(build_application(abbr))
        exact = replay_application(cached, GPUSimulator(config))
        exact_values = {
            "cycles": exact.cycles,
            "l1_miss_rate": exact.l1.miss_rate,
            "l2_miss_rate": exact.l2.miss_rate,
        }
        for seed in seeds:
            estimate = estimate_application(
                cached,
                config.with_(sample_fraction=SAMPLE_FRACTION,
                             sample_seed=seed),
            )
            for metric in CI_METRICS:
                yield estimate.covers(metric, exact_values[metric])


def test_intervals_are_honest_sampled():
    """Fast CI-honesty check: two benchmarks, a few seeds."""
    checks = list(_coverage_checks(["NW", "SW"], range(5)))
    assert sum(checks) / len(checks) >= COVERAGE_FLOOR


@pytest.mark.slow
def test_intervals_are_honest_full():
    """Whole-suite CI honesty over repeated seeds."""
    checks = list(_coverage_checks(benchmark_names(), range(10)))
    assert sum(checks) / len(checks) >= 0.95
