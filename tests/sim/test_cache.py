"""Tests for the set-associative cache model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.cache import Cache, CacheStats
from repro.sim.config import CacheConfig


def make_cache(size=1024, assoc=2, line=128):
    return Cache(CacheConfig(size, assoc, line_bytes=line))


class TestCacheBasics:
    def test_cold_miss_then_hit(self):
        cache = make_cache()
        assert cache.access(5) is False
        assert cache.access(5) is True

    def test_num_sets(self):
        # 1024B / 128B = 8 lines, 2-way -> 4 sets.
        assert CacheConfig(1024, 2).num_sets == 4

    def test_disabled_cache_always_misses(self):
        cache = Cache(CacheConfig(0, 1))
        assert cache.access(1) is False
        assert cache.access(1) is False
        assert cache.stats.misses == 2

    def test_cache_smaller_than_line_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig(64, 1)

    def test_contains_no_side_effects(self):
        cache = make_cache()
        cache.access(4)
        before = cache.stats.accesses
        assert cache.contains(4)
        assert not cache.contains(8)
        assert cache.stats.accesses == before


class TestLRUReplacement:
    def test_lru_eviction_order(self):
        # 4 sets, 2 ways: lines 0, 4, 8 share set 0.
        cache = make_cache()
        cache.access(0)
        cache.access(4)
        cache.access(0)  # refresh line 0
        cache.access(8)  # evicts line 4 (LRU)
        assert cache.contains(0)
        assert not cache.contains(4)
        assert cache.contains(8)

    def test_associativity_respected(self):
        cache = make_cache(assoc=2)
        cache.access(0)
        cache.access(4)
        assert cache.contains(0) and cache.contains(4)

    def test_different_sets_no_conflict(self):
        cache = make_cache()
        for line in range(4):  # one line per set
            cache.access(line)
        assert all(cache.contains(line) for line in range(4))

    @given(st.lists(st.integers(min_value=0, max_value=63),
                    min_size=1, max_size=200))
    @settings(max_examples=40)
    def test_occupancy_never_exceeds_capacity(self, lines):
        cache = make_cache(size=1024, assoc=2)
        for line in lines:
            cache.access(line)
        resident = sum(1 for line in set(lines) if cache.contains(line))
        assert resident <= 8  # total ways

    @given(st.lists(st.integers(min_value=0, max_value=63),
                    min_size=1, max_size=100))
    @settings(max_examples=40)
    def test_stats_consistent(self, lines):
        cache = make_cache()
        for line in lines:
            cache.access(line)
        s = cache.stats
        assert s.hits + s.misses == s.accesses == len(lines)
        assert s.load_accesses == len(lines)


class TestWritePolicy:
    def test_store_miss_allocates_dirty(self):
        cache = make_cache()
        cache.access(3, store=True)
        assert cache.contains(3)

    def test_dirty_eviction_hits_sink(self):
        evicted = []
        cache = make_cache()
        cache.writeback_sink = evicted.append
        cache.access(0, store=True)
        cache.access(4)
        cache.access(8)  # evicts dirty line 0
        assert evicted == [0]
        assert cache.stats.writebacks == 1

    def test_clean_eviction_silent(self):
        evicted = []
        cache = make_cache()
        cache.writeback_sink = evicted.append
        cache.access(0)
        cache.access(4)
        cache.access(8)
        assert evicted == []

    def test_store_hit_marks_dirty(self):
        evicted = []
        cache = make_cache()
        cache.writeback_sink = evicted.append
        cache.access(0)  # clean fill
        cache.access(0, store=True)  # now dirty
        cache.access(4)
        cache.access(8)
        assert evicted == [0]

    def test_miss_rate_is_load_only(self):
        cache = make_cache()
        cache.access(0, store=True)  # store miss: excluded
        cache.access(0)  # load hit
        assert cache.stats.miss_rate == 0.0
        assert cache.stats.total_miss_rate == 0.5


class TestFlush:
    def test_flush_invalidates(self):
        cache = make_cache()
        cache.access(1)
        cache.access(2, store=True)
        dirty = cache.flush()
        assert dirty == 1
        assert not cache.contains(1)
        assert not cache.contains(2)

    def test_flush_does_not_call_sink(self):
        evicted = []
        cache = make_cache()
        cache.writeback_sink = evicted.append
        cache.access(2, store=True)
        cache.flush()
        assert evicted == []


class TestCacheStatsMerge:
    def test_merge_adds_counters(self):
        a, b = CacheStats(accesses=2, hits=1, misses=1), CacheStats(accesses=3, misses=3)
        a.merge(b)
        assert a.accesses == 5
        assert a.misses == 4
