"""Golden bit-identity: event core vs scan-per-decision reference.

The event-maintained issue loop (``repro.sim.sm``, with SM-local
run-ahead for non-CDP applications) must produce field-for-field
identical :class:`RunStats` to the frozen reference core
(``repro.sim.sm_reference``) on every benchmark — the performance work
is only allowed to change wall-clock, never the timing model.

The full suite runs at the small dataset; the heaviest benchmarks get
an extra medium-size lock so the identity holds beyond the default
size's trace shapes.
"""

import dataclasses

import pytest

from repro.core.runner import run_benchmark
from repro.data.datasets import DatasetSize
from repro.kernels import benchmark_names
from repro.sim.config import GPUConfig


def _stats_pair(abbr: str, cdp: bool, size: DatasetSize):
    fast = run_benchmark(
        abbr, cdp=cdp, size=size, config=GPUConfig(event_core=True)
    )
    ref = run_benchmark(
        abbr, cdp=cdp, size=size, config=GPUConfig(event_core=False)
    )
    return dataclasses.asdict(fast), dataclasses.asdict(ref)


@pytest.mark.parametrize("cdp", [False, True], ids=["plain", "cdp"])
@pytest.mark.parametrize("abbr", benchmark_names())
def test_small_suite_identical(abbr, cdp):
    fast, ref = _stats_pair(abbr, cdp, DatasetSize.SMALL)
    assert fast == ref


@pytest.mark.parametrize("cdp", [False, True], ids=["plain", "cdp"])
@pytest.mark.parametrize("abbr", ["GKSW", "PairHMM", "NvB"])
def test_medium_heavyweights_identical(abbr, cdp):
    fast, ref = _stats_pair(abbr, cdp, DatasetSize.MEDIUM)
    assert fast == ref
