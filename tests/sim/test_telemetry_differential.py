"""Differential lock: telemetry is core-independent.

The golden suite (``test_event_core_golden.py``) proves the event core
and the scan-per-decision reference produce identical end-of-run
aggregates.  Telemetry is a stronger claim — both cores must make the
same attribution call at the same *simulated cycle*, even where the
event core macro-issues whole repeat blocks, fuses stall spans inline,
or runs ahead of global heap order.  Here every benchmark (both CDP
variants) runs through both cores with sampling on, and the interval
time series, the canonically-sorted event streams, and the metadata
must be bit-identical.
"""

import pytest

from repro.core.runner import run_benchmark
from repro.data.datasets import DatasetSize
from repro.kernels import benchmark_names
from repro.sim.config import GPUConfig

#: Small enough to make interval effects visible on the SMALL datasets.
INTERVAL = 2_000

pytestmark = pytest.mark.differential


def _telemetry_pair(abbr: str, cdp: bool):
    fast = run_benchmark(
        abbr, cdp=cdp, size=DatasetSize.SMALL,
        config=GPUConfig(event_core=True, telemetry_interval=INTERVAL),
    )
    ref = run_benchmark(
        abbr, cdp=cdp, size=DatasetSize.SMALL,
        config=GPUConfig(event_core=False, telemetry_interval=INTERVAL),
    )
    return fast.telemetry, ref.telemetry


@pytest.mark.parametrize("cdp", [False, True], ids=["plain", "cdp"])
@pytest.mark.parametrize("abbr", benchmark_names())
def test_interval_series_identical(abbr, cdp):
    fast, ref = _telemetry_pair(abbr, cdp)
    assert fast is not None and ref is not None
    assert fast["rows"] == ref["rows"]
    assert fast["events"] == ref["events"]
    assert fast["meta"] == ref["meta"]


def test_telemetry_off_leaves_stats_untelemetered():
    stats = run_benchmark("NW", size=DatasetSize.SMALL, config=GPUConfig())
    assert stats.telemetry is None
