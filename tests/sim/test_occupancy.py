"""Tests for the CTA occupancy calculator."""

import pytest

from repro.sim.config import GPUConfig
from repro.sim.kernel import KernelProgram
from repro.sim.occupancy import ctas_per_sm, occupancy_report


def kernel(threads=128, regs=32, smem=0, const=0):
    return KernelProgram("k", threads, regs, smem, const)


class TestLimits:
    def test_thread_limited(self):
        config = GPUConfig()
        report = occupancy_report(config, kernel(threads=512, regs=8))
        assert report.ctas_per_sm == 3  # 1536 / 512
        assert report.limiter == "threads"

    def test_register_limited(self):
        config = GPUConfig()
        report = occupancy_report(config, kernel(threads=128, regs=84))
        assert report.ctas_per_sm == 6  # 65536 // (84*128)
        assert report.limiter == "registers"

    def test_shared_memory_limited(self):
        config = GPUConfig()
        report = occupancy_report(config, kernel(regs=8, smem=30 * 1024))
        assert report.ctas_per_sm == 3  # 100KB // 30KB
        assert report.limiter == "shared_memory"

    def test_cta_cap(self):
        config = GPUConfig()
        report = occupancy_report(config, kernel(threads=32, regs=8))
        assert report.ctas_per_sm == config.max_ctas_per_sm
        assert report.limiter == "cta"

    def test_kernel_too_big_raises(self):
        config = GPUConfig()
        with pytest.raises(ValueError, match="does not fit"):
            ctas_per_sm(config, kernel(smem=200 * 1024))


class TestUtilization:
    def test_fractions_in_unit_interval(self):
        config = GPUConfig()
        report = occupancy_report(
            config, kernel(regs=48, smem=10 * 1024, const=2048)
        )
        for value in (
            report.register_utilization,
            report.shared_utilization,
            report.constant_utilization,
            report.thread_utilization,
        ):
            assert 0.0 <= value <= 1.0

    def test_constant_utilization(self):
        config = GPUConfig()
        report = occupancy_report(config, kernel(const=32 * 1024))
        assert report.constant_utilization == pytest.approx(0.5)

    def test_register_utilization_matches_residency(self):
        config = GPUConfig()
        report = occupancy_report(config, kernel(threads=128, regs=84))
        expected = 6 * 84 * 128 / config.registers_per_sm
        assert report.register_utilization == pytest.approx(expected)


class TestScaling:
    def test_more_registers_more_ctas(self):
        small = GPUConfig(registers_per_sm=16384)
        big = GPUConfig(registers_per_sm=262144)
        k = kernel(threads=64, regs=64)
        assert ctas_per_sm(big, k) > ctas_per_sm(small, k)

    def test_kernel_program_validation(self):
        with pytest.raises(ValueError):
            KernelProgram("bad", cta_threads=0)
        with pytest.raises(ValueError):
            KernelProgram("bad", cta_threads=33)
