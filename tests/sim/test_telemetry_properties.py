"""Property tests: the interval series are exact decompositions.

Sampling must never invent or lose work — summing any telemetry series
over all intervals has to reproduce the corresponding aggregate
``RunStats`` counter *exactly* (not approximately: every hook records
integer cycles of an integer-cycle simulation).  Within a row, the
occupancy buckets partition the issued instructions and the stall
fractions partition the interval's stall cycles.
"""

import pytest

from repro.core.runner import run_benchmark
from repro.data.datasets import DatasetSize
from repro.kernels import build_application
from repro.sim.config import GPUConfig
from repro.sim.gpu import GPUSimulator
from repro.sim.replay import CachedApplication, replay_application
from repro.sim.telemetry import aggregate_rows

pytestmark = pytest.mark.differential

#: A benchmark slice covering the distinct machine behaviours: dense
#: ALU (NW), shared-memory tiling (GL), cache-hostile streaming
#: (PairHMM), low-occupancy CDP launch storms (STAR), barriers (CLUSTER).
CASES = [
    ("NW", False),
    ("GL", False),
    ("PairHMM", False),
    ("STAR", True),
    ("CLUSTER", False),
]

INTERVAL = 2_000


def _run(abbr, cdp):
    return run_benchmark(
        abbr, cdp=cdp, size=DatasetSize.SMALL,
        config=GPUConfig(telemetry_interval=INTERVAL),
    )


def _assert_exact_decomposition(stats):
    summary = stats.telemetry
    assert summary is not None
    rows = summary["rows"]
    agg = aggregate_rows(rows)

    # Per-interval: occupancy buckets partition issued instructions,
    # stall fractions partition the interval's stall cycles.
    for row in rows:
        assert sum(row["occupancy"].values()) == row["instructions"]
        if any(row["stalls"].values()):
            assert sum(row["stall_fractions"].values()) == pytest.approx(1.0)
        else:
            assert row["stall_fractions"] == {}

    # Whole-run: the series sum back to the aggregate counters exactly.
    assert agg["instructions"] == stats.instructions
    assert agg["occupancy"] == stats.warp_occupancy
    assert agg["stalls"] == {k: v for k, v in stats.stalls.items() if v}
    assert agg["l1_accesses"] == stats.l1.accesses
    assert agg["l1_misses"] == stats.l1.misses
    assert agg["l1_load_accesses"] == stats.l1.load_accesses
    assert agg["l1_load_misses"] == stats.l1.load_misses
    assert agg["l2_accesses"] == stats.l2.accesses
    assert agg["l2_misses"] == stats.l2.misses
    assert agg["l2_load_accesses"] == stats.l2.load_accesses
    assert agg["l2_load_misses"] == stats.l2.load_misses
    assert agg["dram_requests"] == stats.dram.requests
    assert agg["dram_data_cycles"] == stats.dram.data_cycles
    assert agg["noc_messages"] == stats.noc.messages
    assert agg["noc_bytes"] == stats.noc.bytes


@pytest.mark.parametrize(
    "abbr,cdp", CASES, ids=[f"{a}{'-cdp' if c else ''}" for a, c in CASES]
)
def test_series_decompose_aggregates(abbr, cdp):
    _assert_exact_decomposition(_run(abbr, cdp))


@pytest.mark.parametrize(
    "abbr,cdp", CASES, ids=[f"{a}{'-cdp' if c else ''}" for a, c in CASES]
)
def test_reference_core_series_decompose_aggregates(abbr, cdp):
    stats = run_benchmark(
        abbr, cdp=cdp, size=DatasetSize.SMALL,
        config=GPUConfig(event_core=False, telemetry_interval=INTERVAL),
    )
    _assert_exact_decomposition(stats)


def test_replayed_run_series_decompose_aggregates():
    """Replayed (precounted) warps must still sample time-resolved:
    the hooks sit outside the precount guards, so the invariant holds
    for trace replay exactly as for a fresh simulation."""
    entry = CachedApplication(build_application("NW", size=DatasetSize.SMALL))
    config = GPUConfig(telemetry_interval=INTERVAL)
    # Materialize traces, then replay through a fresh simulator.
    replay_application(entry, GPUSimulator(config))
    stats = replay_application(entry, GPUSimulator(config))
    _assert_exact_decomposition(stats)


def test_event_rows_cover_every_interval_with_work():
    stats = _run("NW", False)
    rows = stats.telemetry["rows"]
    assert rows, "a run must sample at least one interval"
    # Rows are time-ordered with consistent window bounds.
    indices = [row["index"] for row in rows]
    assert indices == sorted(indices)
    for row in rows:
        assert row["end"] - row["start"] == INTERVAL
        assert row["start"] == row["index"] * INTERVAL
