"""Tests for the config-file loader."""

import pytest

from repro.sim.config import GPUConfig
from repro.sim.configfile import load_config, parse_config, save_config


class TestParseConfig:
    def test_empty_is_baseline(self):
        assert parse_config("") == GPUConfig()

    def test_comments_and_blanks_ignored(self):
        cfg = parse_config("# a comment\n\nnum_sms = 16  # trailing\n")
        assert cfg.num_sms == 16

    def test_top_level_keys(self):
        cfg = parse_config("num_sms = 8\nscheduler = gto\n")
        assert cfg.num_sms == 8
        assert cfg.scheduler == "gto"

    def test_nested_keys(self):
        cfg = parse_config(
            "l1.size_bytes = 32768\n"
            "dram.controller = fifo\n"
            "noc.topology = mesh\n"
            "noc.router_delay = 8\n"
        )
        assert cfg.l1.size_bytes == 32768
        assert cfg.l1.assoc == GPUConfig().l1.assoc  # untouched
        assert cfg.dram.controller == "fifo"
        assert cfg.noc.topology == "mesh"
        assert cfg.noc.router_delay == 8

    def test_booleans(self):
        assert parse_config("perfect_memory = true\n").perfect_memory
        assert not parse_config("perfect_memory = off\n").perfect_memory

    def test_hex_integers(self):
        assert parse_config("num_sms = 0x10\n").num_sms == 16

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(ValueError, match="unknown key"):
            parse_config("num_smz = 8\n")

    def test_unknown_component_rejected(self):
        with pytest.raises(ValueError, match="unknown component"):
            parse_config("l3.size_bytes = 1024\n")

    def test_unknown_component_key_rejected(self):
        with pytest.raises(ValueError, match="unknown key"):
            parse_config("l1.ways = 4\n")

    def test_malformed_line_rejected(self):
        with pytest.raises(ValueError, match="expected 'key = value'"):
            parse_config("just some words\n")

    def test_validation_still_applies(self):
        with pytest.raises(ValueError):
            parse_config("scheduler = fifo\n")  # not a scheduler name


class TestSaveLoadRoundtrip:
    def test_roundtrip_baseline(self, tmp_path):
        path = tmp_path / "gpu.cfg"
        save_config(GPUConfig(), path)
        assert load_config(path) == GPUConfig()

    def test_roundtrip_modified(self, tmp_path):
        original = parse_config(
            "num_sms = 24\nl2.size_bytes = 1048576\n"
            "dram.controller = ooo128\nperfect_memory = true\n"
        )
        path = tmp_path / "gpu.cfg"
        save_config(original, path)
        assert load_config(path) == original

    def test_save_mentions_all_knobs(self):
        text = save_config(GPUConfig())
        for key in ("num_sms", "l1.size_bytes", "dram.controller",
                    "noc.channel_bytes", "pci.latency_cycles"):
            assert key in text
