"""Tests for trace capture and replay."""

import pytest

from repro.isa import TraceBuilder
from repro.kernels import build_application
from repro.sim import (
    Application,
    GPUConfig,
    GPUSimulator,
    HostLaunch,
    HostMemcpy,
    KernelLaunch,
    KernelProgram,
)
from repro.sim.launch import HostLaunch as _HostLaunch
from repro.sim.tracefile import TraceCaptureError, capture_trace, load_trace


class ToyKernel(KernelProgram):
    def __init__(self):
        super().__init__("toy", 64, regs_per_thread=40, smem_per_cta=2048,
                         const_bytes=256)

    def warp_trace(self, ctx):
        b = TraceBuilder()
        yield b.ld_const([3])
        for i in range(4):
            yield b.ints(3)
            yield b.ld_global([ctx.global_warp * 16 + i])
        b.set_lanes(7)
        yield b.branch()
        yield b.st_global([ctx.global_warp])
        yield b.ld_shared()
        yield b.barrier()
        yield b.exit()


def run_launch(launch):
    class App(Application):
        name = "replay"

        def host_program(self):
            yield HostMemcpy(512, "h2d")
            yield HostLaunch(launch)

    sim = GPUSimulator(GPUConfig(num_sms=2, num_mem_partitions=2))
    return sim.run_application(App())


class TestCaptureReplayRoundtrip:
    def test_header_and_metadata_preserved(self, tmp_path):
        launch = KernelLaunch(ToyKernel(), num_ctas=3)
        path = tmp_path / "toy.trace"
        capture_trace(launch, path)
        replay = load_trace(path)
        assert replay.kernel.name == "toy"
        assert replay.kernel.cta_threads == 64
        assert replay.kernel.smem_per_cta == 2048
        assert replay.num_ctas == 3

    def test_replay_is_timing_identical(self, tmp_path):
        launch = KernelLaunch(ToyKernel(), num_ctas=3)
        live = run_launch(launch)
        path = tmp_path / "toy.trace"
        capture_trace(launch, path)
        replayed = run_launch(load_trace(path))
        assert replayed.kernel_cycles == live.kernel_cycles
        assert replayed.instructions == live.instructions
        assert replayed.stalls == live.stalls
        assert replayed.l1.misses == live.l1.misses
        assert replayed.mem_mix == live.mem_mix
        assert replayed.warp_occupancy == live.warp_occupancy

    def test_benchmark_kernel_roundtrip(self, tmp_path):
        app = build_application("NW")
        launch = None
        for op in app.host_program():
            if isinstance(op, _HostLaunch):
                launch = op.launch
                break
        live = run_launch(launch)
        path = tmp_path / "nw.trace"
        capture_trace(launch, path)
        replayed = run_launch(load_trace(path))
        assert replayed.kernel_cycles == live.kernel_cycles

    def test_text_roundtrip_without_file(self):
        launch = KernelLaunch(ToyKernel(), num_ctas=1)
        text = capture_trace(launch)
        replay = load_trace(text)
        assert replay.kernel.name == "toy"


class TestCaptureLimits:
    def test_cdp_kernels_rejected(self):
        child = ToyKernel()

        class Parent(KernelProgram):
            def __init__(self):
                super().__init__("parent", 32)

            def warp_trace(self, ctx):
                b = TraceBuilder()
                yield b.launch(KernelLaunch(child, 1))
                yield b.device_sync()
                yield b.exit()

        with pytest.raises(TraceCaptureError):
            capture_trace(KernelLaunch(Parent(), num_ctas=1))

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            load_trace("   \n  ")
