"""Trace materialization/replay must be invisible in the results."""

import pytest

from repro.kernels import build_application
from repro.sim import GPUConfig, GPUSimulator
from repro.sim.launch import HostLaunch
from repro.sim.replay import (
    CachedApplication,
    ReplayKernel,
    TraceCounts,
    replay_application,
)


def fresh_run(abbr, cdp, config):
    app = build_application(abbr, cdp=cdp)
    return GPUSimulator(config).run_application(app)


class TestTraceCounts:
    def test_mirrors_live_counting(self, tiny_gpu):
        """Pre-credited totals equal what live counting accumulates."""
        app = build_application("NW")
        cached = CachedApplication(app)
        live = fresh_run("NW", False, tiny_gpu)
        totals = cached.total_counts
        assert totals.instructions == live.instructions
        assert totals.op_mix == live.op_mix
        assert totals.mem_mix == live.mem_mix
        assert totals.warp_occupancy == {
            k: v for k, v in live.warp_occupancy.items() if v
        }

    def test_merge_adds(self):
        a, b = TraceCounts(), TraceCounts()
        a.instructions, b.instructions = 3, 4
        a.op_mix = {"int": 3}
        b.op_mix = {"int": 1, "fp": 3}
        a.merge(b)
        assert a.instructions == 7
        assert a.op_mix == {"int": 4, "fp": 3}


class TestReplayKernel:
    def test_marks_warps_precounted(self):
        app = build_application("NW")
        cached = CachedApplication(app)
        launch = next(
            op.launch for op in cached.host_program()
            if isinstance(op, HostLaunch)
        )
        kernel = launch.kernel
        assert isinstance(kernel, ReplayKernel)
        assert kernel.counts_inline is False
        # Static resources must match or occupancy/admission changes.
        base = kernel.base
        assert kernel.cta_threads == base.cta_threads
        assert kernel.regs_per_thread == base.regs_per_thread
        assert kernel.smem_per_cta == base.smem_per_cta

    def test_same_trace_objects_on_replay(self):
        app = build_application("NW")
        cached = CachedApplication(app)
        launch = next(
            op.launch for op in cached.host_program()
            if isinstance(op, HostLaunch)
        )
        kernel = launch.kernel
        from repro.sim.kernel import WarpContext

        ctx = WarpContext(0, 0, kernel.warps_per_cta, launch.num_ctas,
                          args=launch.args)
        first = list(kernel.warp_trace(ctx))
        second = list(kernel.warp_trace(ctx))
        assert all(x is y for x, y in zip(first, second))
        assert len(first) == len(second)


class TestReplayIdentity:
    @pytest.mark.parametrize("abbr", ["NW", "STAR", "CLUSTER"])
    @pytest.mark.parametrize("cdp", [False, True])
    def test_replay_matches_fresh_run(self, abbr, cdp, tiny_gpu):
        fresh = fresh_run(abbr, cdp, tiny_gpu)
        cached = CachedApplication(build_application(abbr, cdp=cdp))
        first = replay_application(cached, GPUSimulator(tiny_gpu))
        second = replay_application(cached, GPUSimulator(tiny_gpu))
        assert first == fresh
        assert second == fresh

    def test_replay_across_configs(self, tiny_gpu):
        """One materialization serves different timing configs."""
        other = GPUConfig(num_sms=3, num_mem_partitions=2)
        cached = CachedApplication(build_application("STAR", cdp=True))
        assert (
            replay_application(cached, GPUSimulator(tiny_gpu))
            == fresh_run("STAR", True, tiny_gpu)
        )
        assert (
            replay_application(cached, GPUSimulator(other))
            == fresh_run("STAR", True, other)
        )
