"""Tests for the DRAM channel model."""

import pytest

from repro.sim.config import DRAMConfig
from repro.sim.dram import DRAMChannel


def channel(controller="frfcfs", **kwargs):
    return DRAMChannel(DRAMConfig(controller=controller, **kwargs))


class TestConfig:
    def test_unknown_controller_rejected(self):
        with pytest.raises(ValueError):
            DRAMConfig(controller="magic")

    def test_needs_banks(self):
        with pytest.raises(ValueError):
            DRAMConfig(banks=0)


class TestRowBuffer:
    def test_same_row_hits_after_activation(self):
        ch = channel()
        ch.access(0, 0)   # opens the row
        ch.access(1, 500)  # same 2KB row (lines 0..15)
        assert ch.stats.row_hits == 1
        assert ch.stats.row_misses == 1

    def test_different_row_same_bank_misses(self):
        ch = channel()
        cfg = ch.config
        lines_per_row = cfg.row_bytes // 128
        ch.access(0, 0)
        # Row `banks` maps back to bank 0 with a different row.
        far = cfg.banks * lines_per_row
        ch.access(far, 500)
        assert ch.stats.row_misses == 2

    def test_row_hit_is_faster(self):
        miss_done = channel().access(0, 0)
        ch = channel()
        ch.access(0, 0)
        hit_done = ch.access(1, 1000) - 1000
        assert hit_done < miss_done

    def test_frfcfs_reorder_window_keeps_two_rows_open(self):
        ch = channel()
        cfg = ch.config
        lines_per_row = cfg.row_bytes // 128
        row_a, row_b = 0, cfg.banks * lines_per_row
        ch.access(row_a, 0)
        ch.access(row_b, 1000)
        # Both rows in the window: either stream continues hitting.
        ch.access(row_a + 1, 2000)
        ch.access(row_b + 1, 3000)
        assert ch.stats.row_hits == 2

    def test_fifo_loses_interleaved_locality(self):
        ch = channel("fifo")
        cfg = ch.config
        lines_per_row = cfg.row_bytes // 128
        row_a, row_b = 0, cfg.banks * lines_per_row
        ch.access(row_a, 0)
        ch.access(row_b, 1000)  # closes row_a physically
        ch.access(row_a + 1, 2000)  # FIFO: miss again
        assert ch.stats.row_hits == 0


class TestTimingAndCounters:
    def test_bus_serializes_transfers(self):
        ch = channel()
        first = ch.access(0, 0)
        second = ch.access(16, 0)  # different bank, same instant
        assert second >= first + ch.config.burst_cycles

    def test_banks_overlap_latency(self):
        ch = channel()
        # Two different banks issued together: the second should not
        # wait for the first's full latency, only the shared bus.
        first = ch.access(0, 0)
        second = ch.access(16, 0)
        assert second < first + ch.config.row_miss_latency

    def test_data_cycles_accumulate(self):
        ch = channel()
        ch.access(0, 0)
        ch.access(1, 0)
        assert ch.stats.data_cycles == 2 * ch.config.burst_cycles

    def test_efficiency_high_for_saturated_stream(self):
        ch = channel()
        now = 0
        for i in range(200):
            ch.access(i, now)  # all arrive at once: deep queue
        assert ch.stats.efficiency > 0.5

    def test_efficiency_low_for_sparse_random(self):
        ch = channel()
        lines_per_row = ch.config.row_bytes // 128
        for i in range(20):
            # One isolated row-missing request every 10k cycles.
            ch.access(i * 17 * lines_per_row * ch.config.banks, i * 10_000)
        assert ch.stats.efficiency < 0.2

    def test_row_hit_rate(self):
        ch = channel()
        for i in range(16):
            ch.access(i, i * 10)
        assert ch.stats.row_hit_rate == 15 / 16

    def test_completion_monotonic_per_bank(self):
        ch = channel()
        t1 = ch.access(0, 0)
        t2 = ch.access(0, 1)
        assert t2 > t1
