"""Integration tests for the SM issue loop and the GPU simulator."""

import pytest

from repro.isa import TraceBuilder
from repro.sim import (
    Application,
    GPUConfig,
    GPUSimulator,
    HostLaunch,
    HostMemcpy,
    KernelLaunch,
    KernelProgram,
)
from repro.sim.gpu import SimulationDeadlock
from repro.sim.stats import StallReason


class ScriptKernel(KernelProgram):
    """Kernel whose trace comes from a per-warp script function."""

    def __init__(self, script, cta_threads=64, **resources):
        super().__init__("script", cta_threads, **resources)
        self.script = script

    def warp_trace(self, ctx):
        yield from self.script(ctx)


def run_one(script, config=None, num_ctas=1, cta_threads=64, memcpys=True,
            **resources):
    class App(Application):
        name = "test"

        def host_program(self):
            if memcpys:
                yield HostMemcpy(4096, "h2d")
            yield HostLaunch(
                KernelLaunch(
                    ScriptKernel(script, cta_threads, **resources),
                    num_ctas=num_ctas,
                )
            )

    sim = GPUSimulator(config or GPUConfig(num_sms=2, num_mem_partitions=2))
    return sim.run_application(App())


class TestInstructionAccounting:
    def test_counts_and_mix(self):
        def script(ctx):
            b = TraceBuilder()
            yield b.ints(10)
            yield b.fps(5)
            yield b.sfu(1)
            yield b.exit()

        stats = run_one(script)
        # 2 warps per CTA x (10 + 5 + 1 + exit).
        assert stats.instructions == 2 * 17
        mix = stats.op_fractions()
        assert mix["int"] == pytest.approx(20 / 34)
        assert mix["fp"] == pytest.approx(10 / 34)

    def test_occupancy_histogram(self):
        def script(ctx):
            b = TraceBuilder()
            b.set_lanes(3)
            yield b.ints(4)
            b.set_lanes(32)
            yield b.ints(4)
            yield b.exit()

        stats = run_one(script)
        occ = stats.occupancy_fractions()
        assert occ["W1-4"] == pytest.approx(8 / 18)
        assert occ["W29-32"] == pytest.approx(10 / 18)

    def test_memory_mix_counts_transactions(self):
        def script(ctx):
            b = TraceBuilder()
            yield b.ld_global([1, 2, 3])
            yield b.ld_shared()
            yield b.exit()

        stats = run_one(script)
        mix = stats.mem_fractions()
        assert mix["global"] == pytest.approx(3 / 4)
        assert mix["shared"] == pytest.approx(1 / 4)

    def test_ipc_positive(self):
        def script(ctx):
            b = TraceBuilder()
            yield b.ints(100)
            yield b.exit()

        stats = run_one(script)
        assert 0 < stats.ipc


class TestMemorySystem:
    def test_l1_hit_after_miss(self):
        def script(ctx):
            b = TraceBuilder()
            yield b.ld_global([7])
            yield b.ld_global([7])
            yield b.exit()

        stats = run_one(script, cta_threads=32)
        assert stats.l1.load_misses == 1
        assert stats.l1.hits == 1

    def test_memory_stalls_attributed(self):
        def script(ctx):
            b = TraceBuilder()
            for i in range(20):
                yield b.ld_global([100 + i * 64])
            yield b.exit()

        stats = run_one(script, cta_threads=32)
        assert stats.stalls.get(StallReason.MEMORY.value, 0) > 0

    def test_perfect_memory_faster(self):
        def script(ctx):
            b = TraceBuilder()
            for i in range(30):
                yield b.ld_global([i * 97])
            yield b.exit()

        base = run_one(script, GPUConfig(num_sms=2, num_mem_partitions=2))
        fast = run_one(
            script,
            GPUConfig(num_sms=2, num_mem_partitions=2, perfect_memory=True),
        )
        assert fast.kernel_cycles < base.kernel_cycles

    def test_h2d_memcpy_flushes_caches(self):
        class App(Application):
            name = "flush"

            def host_program(self):
                def script(ctx):
                    b = TraceBuilder()
                    yield b.ld_global([3])
                    yield b.exit()

                kernel = ScriptKernel(script, 32)
                yield HostLaunch(KernelLaunch(kernel, 1))
                yield HostMemcpy(1024, "h2d")
                yield HostLaunch(KernelLaunch(kernel, 1))

        sim = GPUSimulator(GPUConfig(num_sms=2, num_mem_partitions=2))
        stats = sim.run_application(App())
        # Both kernels miss: the H2D between them invalidated line 3.
        assert stats.l1.load_misses == 2

    def test_d2h_memcpy_preserves_caches(self):
        class App(Application):
            name = "noflush"

            def host_program(self):
                def script(ctx):
                    b = TraceBuilder()
                    yield b.ld_global([3])
                    yield b.exit()

                kernel = ScriptKernel(script, 32)
                yield HostLaunch(KernelLaunch(kernel, 1))
                yield HostMemcpy(1024, "d2h")
                yield HostLaunch(KernelLaunch(kernel, 1))

        sim = GPUSimulator(GPUConfig(num_sms=2, num_mem_partitions=2))
        stats = sim.run_application(App())
        assert stats.l1.load_misses == 1
        assert stats.l1.hits == 1


class TestBarriers:
    def test_barrier_synchronizes_warps(self):
        def script(ctx):
            b = TraceBuilder()
            # Warp 0 does extra work before the barrier.
            if ctx.warp_id == 0:
                yield b.ints(50)
            yield b.barrier()
            yield b.ints(1)
            yield b.exit()

        stats = run_one(script, cta_threads=128)
        assert stats.stalls.get(StallReason.SYNC.value, 0) > 0

    def test_exit_releases_barrier(self):
        def script(ctx):
            b = TraceBuilder()
            if ctx.warp_id == 0:
                yield b.exit()  # exits without reaching the barrier
                return
            yield b.barrier()
            yield b.ints(1)
            yield b.exit()

        stats = run_one(script, cta_threads=96)
        assert stats.instructions > 0  # completed without deadlock


class TestCDP:
    def test_device_launch_and_sync(self):
        child_script = lambda ctx: iter(
            [TraceBuilder().ints(5), TraceBuilder().exit()]
        )
        child = ScriptKernel(child_script, 32)

        def parent(ctx):
            b = TraceBuilder()
            yield b.launch(KernelLaunch(child, num_ctas=2))
            yield b.device_sync()
            yield b.ints(1)
            yield b.exit()

        stats = run_one(parent, cta_threads=32)
        assert stats.device_launches == 1
        # Parent warp (launch + devsync + int + exit) plus 2 child
        # CTAs of 1 warp each (5 ints + exit).
        assert stats.instructions == 4 + 2 * 6

    def test_devsync_without_children_is_cheap(self):
        def script(ctx):
            b = TraceBuilder()
            yield b.device_sync()
            yield b.exit()

        stats = run_one(script, cta_threads=32)
        assert stats.instructions == 2

    def test_nested_children_complete(self):
        leaf = ScriptKernel(
            lambda ctx: iter([TraceBuilder().ints(2), TraceBuilder().exit()]),
            32,
        )

        def mid_script(ctx):
            b = TraceBuilder()
            yield b.launch(KernelLaunch(leaf, 1))
            yield b.device_sync()
            yield b.exit()

        mid = ScriptKernel(mid_script, 32)

        def parent(ctx):
            b = TraceBuilder()
            yield b.launch(KernelLaunch(mid, 1))
            yield b.device_sync()
            yield b.exit()

        stats = run_one(parent, cta_threads=32)
        assert stats.device_launches == 2


class TestHostInterface:
    def test_memcpy_accounting(self):
        class App(Application):
            name = "copies"

            def host_program(self):
                yield HostMemcpy(10_000, "h2d")
                yield HostMemcpy(5_000, "d2h")

        sim = GPUSimulator(GPUConfig(num_sms=2, num_mem_partitions=2))
        stats = sim.run_application(App())
        assert stats.memcpy_calls == 2
        assert stats.pci_cycles > 2 * sim.config.pci.latency_cycles

    def test_launch_overhead_counted(self):
        def script(ctx):
            yield TraceBuilder().exit()

        stats = run_one(script)
        assert stats.kernel_launches == 1
        assert stats.launch_overhead_cycles == GPUConfig().host_launch_cycles
        assert stats.device_time() >= stats.kernel_cycles

    def test_simulator_single_use(self):
        class App(Application):
            name = "empty"

            def host_program(self):
                return iter(())

        sim = GPUSimulator(GPUConfig(num_sms=2, num_mem_partitions=2))
        sim.run_application(App())
        with pytest.raises(RuntimeError, match="single use"):
            sim.run_application(App())

    def test_grid_too_large_for_machine_deadlocks(self):
        def script(ctx):
            yield TraceBuilder().exit()

        huge = ScriptKernel(script, 64, smem_per_cta=200 * 1024)

        class App(Application):
            name = "huge"

            def host_program(self):
                yield HostLaunch(KernelLaunch(huge, 1))

        sim = GPUSimulator(GPUConfig(num_sms=2, num_mem_partitions=2))
        with pytest.raises(SimulationDeadlock):
            sim.run_application(App())


class TestDeterminism:
    def test_same_inputs_same_stats(self):
        def script(ctx):
            b = TraceBuilder()
            for i in range(10):
                yield b.ints(3)
                yield b.ld_global([ctx.global_warp * 7 + i])
            yield b.exit()

        a = run_one(script, num_ctas=4)
        b = run_one(script, num_ctas=4)
        assert a.kernel_cycles == b.kernel_cycles
        assert a.instructions == b.instructions
        assert a.stalls == b.stalls


class TestCTARefill:
    def test_more_ctas_than_capacity_all_complete(self):
        def script(ctx):
            b = TraceBuilder()
            yield b.ints(5)
            yield b.exit()

        stats = run_one(script, num_ctas=100, cta_threads=64)
        assert stats.instructions == 100 * 2 * 6

    def test_grid_larger_than_machine_scales_time(self):
        def script(ctx):
            b = TraceBuilder()
            yield b.ints(200)
            yield b.exit()

        few = run_one(script, num_ctas=2, cta_threads=64)
        many = run_one(script, num_ctas=200, cta_threads=64)
        assert many.kernel_cycles > few.kernel_cycles


class TestManyTinyGrids:
    """Dispatch/refill with deep pending-grid queues (the rebuilt scan)."""

    @staticmethod
    def _tiny_kernel():
        def script(ctx):
            b = TraceBuilder()
            yield b.ints(2)
            yield b.exit()

        return ScriptKernel(script, cta_threads=32)

    def test_many_concurrent_grids_all_finish(self):
        from repro.sim.warp import Grid

        config = GPUConfig(num_sms=2, num_mem_partitions=2,
                           max_ctas_per_sm=4)
        sim = GPUSimulator(config)
        kernel = self._tiny_kernel()
        grids = [Grid(kernel, 1) for _ in range(200)]
        for grid in grids:
            sim.submit_grid(grid)
        # 2 SMs x 4 CTA slots: the rest must sit in the pending queue.
        assert len(sim._pending_grids) == 200 - 8
        sim._run_until(lambda: all(g.finished for g in grids))
        assert not sim._pending_grids
        stats = sim.finalize()
        assert stats.instructions == 200 * 3
        assert sum(stats.sm_instructions.values()) == 200 * 3

    def test_pending_order_is_fifo(self):
        from repro.sim.warp import Grid

        config = GPUConfig(num_sms=1, num_mem_partitions=1,
                           max_ctas_per_sm=1)
        sim = GPUSimulator(config)
        kernel = self._tiny_kernel()
        grids = [Grid(kernel, 1) for _ in range(50)]
        for grid in grids:
            sim.submit_grid(grid)
        sim._run_until(lambda: all(g.finished for g in grids))
        completions = [g.completion_time for g in grids]
        assert completions == sorted(completions)

    def test_mixed_grid_sizes_refill(self):
        from repro.sim.warp import Grid

        config = GPUConfig(num_sms=2, num_mem_partitions=2,
                           max_ctas_per_sm=2)
        sim = GPUSimulator(config)
        kernel = self._tiny_kernel()
        grids = [Grid(kernel, 1 + (i % 5)) for i in range(60)]
        for grid in grids:
            sim.submit_grid(grid)
        sim._run_until(lambda: all(g.finished for g in grids))
        assert not sim._pending_grids
        total_ctas = sum(g.num_ctas for g in grids)
        assert sim.finalize().instructions == total_ctas * 3
