"""Parallel-core edge cases: cross-shard events, fallbacks, deadlock.

These exercise the paths the golden suite (``test_parallel_golden``)
only crosses incidentally: a CDP device launch whose child lands on a
remote shard (the per-grid sequential fallback), a grid retiring
exactly on a window boundary, the deadlock detector when every shard
heap drains mid-run, the mismarked-application error propagating
through the thread pool, relaxed mode, and the window-bound
validation.
"""

import dataclasses

import pytest

from repro.isa import TraceBuilder
from repro.sim import (
    Application,
    GPUConfig,
    GPUSimulator,
    HostLaunch,
    KernelLaunch,
    KernelProgram,
)
from repro.sim.gpu import SimulationDeadlock
from repro.sim.parallel import WindowBarrierDriver, local_completion_floor
from repro.sim.warp import Grid


class ScriptKernel(KernelProgram):
    """Kernel whose trace comes from a per-warp script function."""

    def __init__(self, script, cta_threads=64, **resources):
        super().__init__("script", cta_threads, **resources)
        self.script = script

    def warp_trace(self, ctx):
        yield from self.script(ctx)


class ScriptApp(Application):
    """One launch of a scripted kernel, optionally run-ahead eligible."""

    name = "script-app"

    def __init__(self, kernel, num_ctas=1, launch_free=False):
        self.kernel = kernel
        self.num_ctas = num_ctas
        self.may_device_launch = not launch_free

    def host_program(self):
        yield HostLaunch(KernelLaunch(self.kernel, num_ctas=self.num_ctas))


def run_app(app, num_sms=4, **config_overrides):
    config = GPUConfig(
        event_core=True, num_sms=num_sms, num_mem_partitions=2,
        **config_overrides,
    )
    return GPUSimulator(config).run_application(app)


def memory_script(ctx):
    """A few dependent global loads + ALU work: every warp crosses the
    memory subsystem, so shards must stage cross-shard traffic."""
    b = TraceBuilder()
    for i in range(6):
        yield b.ints(3)
        yield b.ld_global([ctx.global_warp * 9 + i, ctx.global_warp + 512])
    yield b.exit()


class TestCDPFallback:
    def _cdp_app(self):
        child = ScriptKernel(
            lambda ctx: iter(
                [TraceBuilder().ints(200), TraceBuilder().exit()]
            ),
            32,
        )

        def parent(ctx):
            b = TraceBuilder()
            yield b.launch(KernelLaunch(child, num_ctas=4))
            yield b.device_sync()
            yield b.exit()

        return ScriptApp(ScriptKernel(parent, 32), num_ctas=4)

    def test_device_launch_lands_identically(self):
        """A CDP child may be dispatched to any SM — including one a
        different shard would own.  The driver must route the whole
        application through the sequential fallback and match the
        plain event core bit-for-bit."""
        seq = run_app(self._cdp_app())
        par = run_app(
            self._cdp_app(), parallel_shards=4, parallel_executor="threads"
        )
        assert par.device_launches > 0
        assert dataclasses.asdict(par) == dataclasses.asdict(seq)

    def test_mismarked_app_raises_through_pool(self):
        """An application that declares itself launch-free enters
        windowed execution; a device launch from inside a shard worker
        must surface the loud RuntimeError, not diverge or hang."""
        child = ScriptKernel(lambda ctx: iter([TraceBuilder().exit()]), 32)

        def parent(ctx):
            b = TraceBuilder()
            yield b.launch(KernelLaunch(child, num_ctas=1))
            yield b.exit()

        app = ScriptApp(ScriptKernel(parent, 32), launch_free=True)
        with pytest.raises(RuntimeError, match="may_device_launch"):
            run_app(app, parallel_shards=2, parallel_executor="threads")


class TestWindowBoundaries:
    @pytest.mark.parametrize("window", [1, 2, 3, 7])
    def test_tiny_windows_identical(self, window):
        """window=1 puts a barrier on *every* occupied cycle, so grid
        retirement (``cta_finished`` draining at the barrier) lands
        exactly on a window boundary; small primes cover off-phase
        boundaries.  All must match the sequential core."""
        def app():
            return ScriptApp(
                ScriptKernel(memory_script, 64), num_ctas=8, launch_free=True
            )

        seq = run_app(app())
        par = run_app(app(), parallel_shards=2, window_cycles=window)
        assert dataclasses.asdict(par) == dataclasses.asdict(seq)

    def test_partial_dispatch_falls_back_identically(self):
        """A grid too large to fully dispatch at submit stays pending;
        mid-grid refills read live SM clocks, so the driver must take
        the sequential fallback — and still match bit-for-bit."""
        def app():
            return ScriptApp(
                ScriptKernel(memory_script, 256, smem_per_cta=24 * 1024),
                num_ctas=24,
                launch_free=True,
            )

        seq = run_app(app(), num_sms=2)
        par = run_app(app(), num_sms=2, parallel_shards=2)
        assert dataclasses.asdict(par) == dataclasses.asdict(seq)


class TestDeadlock:
    def test_all_shards_idle_raises(self):
        """Every shard heap empty with CTAs still outstanding must
        raise, not spin: the window loop cannot pick a start time."""
        sim = GPUSimulator(GPUConfig(
            event_core=True, num_sms=2, num_mem_partitions=2,
            parallel_shards=2, parallel_executor="inline",
        ))
        driver = WindowBarrierDriver(sim)
        sim._runahead = True  # windowed path, no fallback
        kernel = ScriptKernel(lambda ctx: iter([TraceBuilder().exit()]), 32)
        orphan = Grid(kernel, num_ctas=1)  # never submitted: no heap entries
        with pytest.raises(SimulationDeadlock):
            driver.drive(orphan)

    def test_undispatchable_grid_raises(self):
        """The classic deadlock (a CTA that fits no SM) flows through
        the pending-grid fallback and still reports loudly."""
        huge = ScriptKernel(
            lambda ctx: iter([TraceBuilder().exit()]),
            64,
            smem_per_cta=200 * 1024,
        )
        with pytest.raises(SimulationDeadlock):
            run_app(
                ScriptApp(huge, launch_free=True),
                num_sms=2,
                parallel_shards=2,
            )


class TestWindowValidation:
    def test_window_beyond_safe_bound_rejected(self):
        app = ScriptApp(
            ScriptKernel(memory_script, 64), num_ctas=2, launch_free=True
        )
        with pytest.raises(ValueError, match="safe bound"):
            run_app(app, parallel_shards=2, window_cycles=10_000)

    def test_relaxed_mode_completes(self):
        """Relaxed windows trade exactness for fewer barriers: results
        must still be a complete, plausible simulation (identical
        instruction stream; timing may drift within a window)."""
        def app():
            return ScriptApp(
                ScriptKernel(memory_script, 64), num_ctas=8, launch_free=True
            )

        seq = run_app(app())
        for overrides in (
            {"parallel_relaxed": True},                        # auto window
            {"parallel_relaxed": True, "window_cycles": 2_000},
        ):
            par = run_app(app(), parallel_shards=2, **overrides)
            assert par.instructions == seq.instructions
            assert par.cycles > 0

    def test_driver_reports_exactness(self):
        sim = GPUSimulator(GPUConfig(
            event_core=True, num_sms=4, num_mem_partitions=2,
            parallel_shards=2,
        ))
        driver = WindowBarrierDriver(sim)
        assert driver.exact
        assert driver.window <= driver.safe_window
        assert local_completion_floor(sim.config) < driver.safe_window
