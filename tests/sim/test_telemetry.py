"""Unit tests for the interval sampler and its file formats.

Covers the attribution mechanics in isolation (interval-boundary
splitting, point vs span attribution, burst derivation, the event cap)
plus the JSONL and Chrome ``trace_event`` exports; whole-run behaviour
is locked by ``test_telemetry_differential.py`` /
``test_telemetry_properties.py``.
"""

import json

import pytest

from repro.sim.config import GPUConfig
from repro.sim.stats import OCCUPANCY_BUCKETS
from repro.sim.telemetry import (
    BURST_MIN_ACCESSES,
    STALL_KEYS,
    Telemetry,
    aggregate_rows,
    load_jsonl,
    write_chrome_trace,
    write_jsonl,
)


class TestConstruction:
    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError):
            Telemetry(interval=0)

    def test_config_rejects_negative_interval(self):
        with pytest.raises(ValueError):
            GPUConfig(telemetry_interval=-1)

    def test_config_zero_means_off(self):
        from repro.sim.gpu import GPUSimulator

        assert GPUSimulator(GPUConfig(telemetry_interval=0)).telemetry is None

    def test_config_positive_attaches_sampler(self):
        from repro.sim.gpu import GPUSimulator

        gpu = GPUSimulator(GPUConfig(telemetry_interval=500))
        assert gpu.telemetry is not None
        assert gpu.telemetry.interval == 500


class TestSpreading:
    def test_issue_within_one_interval(self):
        tel = Telemetry(interval=100)
        tel.issue(10, lanes=32, repeat=5)
        rows = tel.rows()
        assert len(rows) == 1
        assert rows[0]["instructions"] == 5
        assert rows[0]["occupancy"]["W29-32"] == 5

    def test_issue_split_across_boundary(self):
        tel = Telemetry(interval=100)
        tel.issue(95, lanes=8, repeat=10)  # covers 95..104
        rows = {r["index"]: r for r in tel.rows()}
        assert rows[0]["instructions"] == 5
        assert rows[1]["instructions"] == 5
        assert rows[0]["occupancy"]["W5-8"] == 5
        assert rows[1]["occupancy"]["W5-8"] == 5

    def test_stall_spans_many_intervals(self):
        tel = Telemetry(interval=100)
        tel.stall(50, "long_memory_latency", 300)  # 50..349
        rows = {r["index"]: r for r in tel.rows()}
        shares = [rows[i]["stalls"]["long_memory_latency"] for i in range(4)]
        assert shares == [50, 100, 100, 50]

    def test_zero_cycle_stall_records_nothing(self):
        tel = Telemetry(interval=100)
        tel.stall(50, "pipeline_idle", 0)
        assert tel.rows() == []

    def test_cache_is_point_attributed(self):
        tel = Telemetry(interval=100)
        tel.cache("l1", 199, 4, 2, 3, 1)
        tel.cache("l2", 200, 1, 1, 1, 1)
        rows = {r["index"]: r for r in tel.rows()}
        assert rows[1]["l1_accesses"] == 4
        assert rows[1]["l1_misses"] == 2
        assert rows[1]["l2_accesses"] == 0
        assert rows[2]["l2_accesses"] == 1

    def test_dram_spreads_data_cycles_but_counts_once(self):
        tel = Telemetry(interval=100)
        tel.dram(transfer_start=90, burst_cycles=20)  # 90..109
        rows = {r["index"]: r for r in tel.rows()}
        assert rows[0]["dram_requests"] == 1
        assert rows[1]["dram_requests"] == 0
        assert rows[0]["dram_data_cycles"] == 10
        assert rows[1]["dram_data_cycles"] == 10

    def test_noc_spreads_busy_but_counts_once(self):
        tel = Telemetry(interval=100)
        tel.noc(start=95, ser_cycles=10, nbytes=136)
        rows = {r["index"]: r for r in tel.rows()}
        assert rows[0]["noc_messages"] == 1
        assert rows[0]["noc_bytes"] == 136
        assert rows[0]["noc_busy_cycles"] == 5
        assert rows[1]["noc_busy_cycles"] == 5
        assert rows[1]["noc_messages"] == 0


class TestDerivedRates:
    def test_row_rates(self):
        tel = Telemetry(interval=100)
        tel.issue(0, lanes=32, repeat=50)
        tel.stall(50, "pipeline_idle", 30)
        tel.stall(80, "long_memory_latency", 10)
        tel.cache("l1", 0, 10, 5, 8, 4)
        row = tel.rows()[0]
        assert row["ipc"] == pytest.approx(0.5)
        assert row["stall_fractions"]["pipeline_idle"] == pytest.approx(0.75)
        assert row["l1_miss_rate"] == pytest.approx(0.5)
        assert sum(row["stall_fractions"].values()) == pytest.approx(1.0)

    def test_stall_fractions_empty_without_stalls(self):
        tel = Telemetry(interval=100)
        tel.issue(0, lanes=1, repeat=1)
        assert tel.rows()[0]["stall_fractions"] == {}

    def test_aggregate_matches_recorded_totals(self):
        tel = Telemetry(interval=64)
        tel.issue(0, lanes=32, repeat=1000)
        tel.stall(1000, "synchronization", 500)
        tel.cache("l2", 123, 7, 3, 6, 2)
        agg = tel.aggregate()
        assert agg["instructions"] == 1000
        assert agg["occupancy"]["W29-32"] == 1000
        assert agg["stalls"] == {"synchronization": 500}
        assert agg["l2_accesses"] == 7
        assert agg["l2_load_misses"] == 2


class TestEvents:
    def test_event_cap_counts_drops(self):
        tel = Telemetry(interval=100, max_events=2)
        for i in range(5):
            tel.event("kernel", "k", i)
        assert len(tel.events) == 2
        assert tel.events_dropped == 3
        tel.finalize(stats=object())
        assert tel.meta["events_dropped"] == 3

    def test_sorted_events_canonical_order(self):
        tel = Telemetry(interval=100)
        tel.event("memcpy", "h2d", 500, dur=10)
        tel.event("cdp_launch", "child", 100, sm=3)
        first = tel.sorted_events()
        tel2 = Telemetry(interval=100)
        tel2.event("cdp_launch", "child", 100, sm=3)
        tel2.event("memcpy", "h2d", 500, dur=10)
        assert first == tel2.sorted_events()

    def test_burst_derivation(self):
        tel = Telemetry(interval=100)
        n = BURST_MIN_ACCESSES
        # Intervals 1-2 hot, 3 cold, 5 hot: two separate bursts.
        tel.cache("l1", 100, n, n, n, n)
        tel.cache("l1", 200, n, n, n, n)
        tel.cache("l1", 300, n, 0, n, 0)
        tel.cache("l1", 500, n, n, n, n)
        tel._derive_bursts()
        bursts = [e for e in tel.events if e["cat"] == "burst"]
        assert [(e["ts"], e["dur"]) for e in bursts] == [
            (100, 200), (500, 100),
        ]

    def test_burst_not_extended_across_sparse_gap(self):
        tel = Telemetry(interval=100)
        n = BURST_MIN_ACCESSES
        # Hot at interval 0 and 5 with *no rows in between* (sparse):
        # the first burst must close at interval 1, not stretch to 5.
        tel.cache("l1", 0, n, n, n, n)
        tel.cache("l1", 500, n, n, n, n)
        tel._derive_bursts()
        bursts = [e for e in tel.events if e["cat"] == "burst"]
        assert [(e["ts"], e["dur"]) for e in bursts] == [
            (0, 100), (500, 100),
        ]


class TestFileFormats:
    def _summary(self):
        tel = Telemetry(interval=100)
        tel.issue(0, lanes=32, repeat=150)
        tel.stall(150, "long_memory_latency", 50)
        tel.cache("l1", 10, 4, 2, 4, 2)
        tel.dram(120, 4)
        tel.noc(115, 2, 136)
        tel.event("kernel", "nw_diag", 0, dur=200, ctas=4, origin="host")
        tel.event("memcpy", "h2d", 210, dur=40, nbytes=1 << 20)
        tel.finalize(stats=object())
        return tel.summary()

    def test_jsonl_round_trip(self, tmp_path):
        summary = self._summary()
        path = tmp_path / "telemetry.jsonl"
        write_jsonl(summary, path)
        loaded = load_jsonl(path)
        assert loaded["rows"] == summary["rows"]
        assert loaded["events"] == summary["events"]
        assert loaded["meta"] == summary["meta"]

    def test_jsonl_reaggregates_identically(self, tmp_path):
        summary = self._summary()
        path = tmp_path / "telemetry.jsonl"
        write_jsonl(summary, path)
        assert aggregate_rows(load_jsonl(path)["rows"]) == aggregate_rows(
            summary["rows"]
        )

    def test_jsonl_rejects_unknown_record(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "mystery"}\n')
        with pytest.raises(ValueError):
            load_jsonl(path)

    def test_chrome_trace_structure(self, tmp_path):
        summary = self._summary()
        path = tmp_path / "trace.json"
        write_chrome_trace(summary, path)
        payload = json.loads(path.read_text())
        events = payload["traceEvents"]
        phases = {e["ph"] for e in events}
        assert {"M", "X", "C", "i"} <= phases
        slices = [e for e in events if e["ph"] == "X"]
        assert slices and slices[0]["name"] == "nw_diag"
        counters = {e["name"] for e in events if e["ph"] == "C"}
        assert "ipc" in counters and "stall cycles" in counters
        assert payload["otherData"]["interval"] == 100

    def test_interval_row_key_schema(self):
        row = self._summary()["rows"][0]
        assert set(row["occupancy"]) == set(OCCUPANCY_BUCKETS)
        assert set(row["stalls"]) == set(STALL_KEYS)
        for key in ("index", "start", "end", "ipc", "stall_fractions",
                    "l1_miss_rate", "l2_miss_rate", "dram_bandwidth",
                    "noc_utilization"):
            assert key in row
