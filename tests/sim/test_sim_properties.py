"""Property-based tests: simulator invariants over random toy kernels.

Hypothesis generates random (but well-formed) warp traces; the
simulator must uphold its global invariants regardless: every yielded
instruction is counted, stall fractions normalize, time is monotone,
and runs are deterministic.
"""

from hypothesis import given, settings, strategies as st

from repro.isa import TraceBuilder
from repro.sim import (
    Application,
    GPUConfig,
    GPUSimulator,
    HostLaunch,
    HostMemcpy,
    KernelLaunch,
    KernelProgram,
)

# One random "step" of a warp trace: (kind, magnitude).
step = st.tuples(
    st.sampled_from(["int", "fp", "ld", "st", "shared", "const", "branch"]),
    st.integers(min_value=1, max_value=6),
)
trace_spec = st.lists(step, min_size=0, max_size=25)


class SpecKernel(KernelProgram):
    """Kernel whose trace follows a generated (kind, magnitude) list."""

    def __init__(self, spec, cta_threads=64):
        super().__init__("spec", cta_threads, regs_per_thread=32)
        self.spec = spec

    def warp_trace(self, ctx):
        b = TraceBuilder()
        for kind, mag in self.spec:
            if kind == "int":
                yield b.ints(mag)
            elif kind == "fp":
                yield b.fps(mag)
            elif kind == "ld":
                yield b.ld_global(
                    [ctx.global_warp * 131 + mag * 7 + k for k in range(mag)]
                )
            elif kind == "st":
                yield b.st_global([ctx.global_warp * 131 + mag])
            elif kind == "shared":
                yield b.ld_shared()
            elif kind == "const":
                yield b.ld_const([mag])
            elif kind == "branch":
                b.set_lanes(max(1, mag * 5))
                yield b.branch()
        yield b.exit()


def run_spec(spec, num_ctas=3):
    class App(Application):
        name = "property"

        def host_program(self):
            yield HostMemcpy(1024, "h2d")
            yield HostLaunch(KernelLaunch(SpecKernel(spec), num_ctas))

    sim = GPUSimulator(GPUConfig(num_sms=2, num_mem_partitions=2))
    return sim.run_application(App())


def expected_instructions(spec, num_ctas=3, warps_per_cta=2):
    per_warp = sum(
        mag if kind in ("int", "fp") else 1 for kind, mag in spec
    ) + 1  # the exit
    return per_warp * num_ctas * warps_per_cta


class TestSimulatorInvariants:
    @given(trace_spec)
    @settings(max_examples=40, deadline=None)
    def test_every_instruction_counted(self, spec):
        stats = run_spec(spec)
        assert stats.instructions == expected_instructions(spec)

    @given(trace_spec)
    @settings(max_examples=30, deadline=None)
    def test_occupancy_histogram_totals(self, spec):
        stats = run_spec(spec)
        assert sum(stats.warp_occupancy.values()) == stats.instructions
        fractions = stats.occupancy_fractions()
        assert abs(sum(fractions.values()) - 1.0) < 1e-9

    @given(trace_spec)
    @settings(max_examples=30, deadline=None)
    def test_stall_fractions_normalized(self, spec):
        stats = run_spec(spec)
        breakdown = stats.stall_breakdown()
        if breakdown:
            assert abs(sum(breakdown.values()) - 1.0) < 1e-9

    @given(trace_spec)
    @settings(max_examples=25, deadline=None)
    def test_deterministic(self, spec):
        a = run_spec(spec)
        b = run_spec(spec)
        assert a.kernel_cycles == b.kernel_cycles
        assert a.stalls == b.stalls
        assert a.l1.misses == b.l1.misses

    @given(trace_spec)
    @settings(max_examples=25, deadline=None)
    def test_cache_accounting_consistent(self, spec):
        stats = run_spec(spec)
        assert stats.l1.hits + stats.l1.misses == stats.l1.accesses
        assert stats.l1.load_misses <= stats.l1.misses
        assert stats.l2.accesses >= stats.l2.misses

    @given(trace_spec, st.sampled_from(["lrr", "gto", "old", "2lv"]))
    @settings(max_examples=25, deadline=None)
    def test_all_schedulers_complete_all_work(self, spec, scheduler):
        class App(Application):
            name = "sched"

            def host_program(self):
                yield HostLaunch(KernelLaunch(SpecKernel(spec), 3))

        sim = GPUSimulator(
            GPUConfig(num_sms=2, num_mem_partitions=2, scheduler=scheduler)
        )
        stats = sim.run_application(App())
        assert stats.instructions == expected_instructions(spec)

    @given(trace_spec)
    @settings(max_examples=20, deadline=None)
    def test_perfect_memory_never_slower(self, spec):
        base = run_spec(spec)

        class App(Application):
            name = "perfect"

            def host_program(self):
                yield HostMemcpy(1024, "h2d")
                yield HostLaunch(KernelLaunch(SpecKernel(spec), 3))

        sim = GPUSimulator(GPUConfig(
            num_sms=2, num_mem_partitions=2, perfect_memory=True
        ))
        perfect = sim.run_application(App())
        assert perfect.kernel_cycles <= base.kernel_cycles
