"""Process shard backend: failure modes, dispatch mirror, transports.

The golden matrix (``test_parallel_golden``) locks the process
backend's bit-identity; this file exercises the machinery around it:
the replicated dispatch plan against the real ``_dispatch_pending``,
eligibility fallbacks (CDP, observers, partial dispatch), a worker
killed mid-run surfacing as :class:`SimulationDeadlock`, a worker
exception re-raising in the parent with the child traceback attached,
teardown on ``KeyboardInterrupt``, and both wire transports.
"""

import dataclasses
import os
import signal

import pytest

from repro.isa import TraceBuilder
from repro.sim import GPUConfig, GPUSimulator, HostLaunch, KernelLaunch
from repro.sim.gpu import SimulationDeadlock
from repro.sim.parallel import WindowBarrierDriver, install_parallel_driver
from repro.sim.parallel_proc import (
    ProcessShardDriver,
    plan_dispatch,
    try_install_process_driver,
)
from tests.sim.test_parallel_core import (
    ScriptApp,
    ScriptKernel,
    memory_script,
    run_app,
)


def _proc_config(**overrides):
    params = dict(
        event_core=True,
        num_sms=4,
        num_mem_partitions=2,
        parallel_shards=2,
        parallel_executor="processes",
    )
    params.update(overrides)
    return GPUConfig(**params)


def _script_app(num_ctas=8):
    return ScriptApp(
        ScriptKernel(memory_script, 64), num_ctas=num_ctas, launch_free=True
    )


def _install(sim, app):
    """Install the process driver on ``sim``; returns (driver, wrapped)."""
    wrapped = try_install_process_driver(sim, app)
    assert wrapped is not None, "expected an eligible application"
    driver = sim._grid_driver.__self__
    assert isinstance(driver, ProcessShardDriver)
    return driver, wrapped


class TestIdentity:
    def test_small_app_identical(self):
        seq = run_app(_script_app())
        par = run_app(
            _script_app(), parallel_shards=2, parallel_executor="processes"
        )
        assert dataclasses.asdict(par) == dataclasses.asdict(seq)

    def test_ring_transport_identical(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROC_TRANSPORT", "ring")
        seq = run_app(_script_app())
        par = run_app(
            _script_app(), parallel_shards=2, parallel_executor="processes"
        )
        assert dataclasses.asdict(par) == dataclasses.asdict(seq)

    def test_memcpy_flush_identical(self):
        """Host copies flush worker-side SM caches through the flush
        hook; the flushed-line writebacks must land in the merged
        cache stats exactly as in the sequential run."""

        class CopyApp(ScriptApp):
            def host_program(self):
                from repro.sim import HostMemcpy

                yield HostLaunch(
                    KernelLaunch(self.kernel, num_ctas=self.num_ctas)
                )
                yield HostMemcpy(1 << 16, "h2d")
                yield HostLaunch(
                    KernelLaunch(self.kernel, num_ctas=self.num_ctas)
                )

        def app():
            return CopyApp(
                ScriptKernel(memory_script, 64), num_ctas=8, launch_free=True
            )

        seq = run_app(app())
        par = run_app(
            app(), parallel_shards=2, parallel_executor="processes"
        )
        assert dataclasses.asdict(par) == dataclasses.asdict(seq)


class TestDispatchMirror:
    def test_plan_matches_dispatch_pending(self):
        """plan_dispatch must reproduce ``_dispatch_pending``'s
        placement CTA-for-CTA, including the (used_threads, sm_id)
        tie-break, under real resource pressure."""
        sim = GPUSimulator(GPUConfig(
            event_core=True, num_sms=3, num_mem_partitions=2,
        ))
        kernel = ScriptKernel(memory_script, 256, smem_per_cta=16 * 1024)
        num_ctas = 12
        plan = plan_dispatch(sim, kernel, num_ctas)
        from repro.sim.warp import Grid

        grid = Grid(kernel, num_ctas=num_ctas)
        sim.submit_grid(grid)
        actual = []
        for sm in sim.sms:
            for cta in sm.ctas:
                actual.append((cta.cta_id, sm.sm_id))
        actual = [sm_id for _cta, sm_id in sorted(actual)]
        assert plan == actual
        assert len(plan) == num_ctas

    def test_partial_dispatch_declined(self):
        """A grid that cannot fully dispatch from idle needs live
        mid-grid refills — the process backend must decline it."""
        sim = GPUSimulator(_proc_config(num_sms=2))
        app = ScriptApp(
            ScriptKernel(memory_script, 256, smem_per_cta=24 * 1024),
            num_ctas=24,
            launch_free=True,
        )
        assert try_install_process_driver(sim, app) is None


class TestEligibility:
    def test_cdp_app_falls_back_to_threads(self):
        """A CDP-capable application cannot enter windowed execution
        (children may land on remote shards); install must hand it to
        the in-process driver, never the process backend."""
        sim = GPUSimulator(_proc_config())
        app = _script_app()
        app.may_device_launch = True
        installed = install_parallel_driver(sim, app)
        assert installed is app  # not wrapped
        driver = sim._grid_driver.__self__
        assert type(driver) is WindowBarrierDriver

    def test_observers_fall_back(self):
        """The sampled estimator's hooks cannot cross a fork; any
        attached observer keeps the run in-process."""
        sim = GPUSimulator(_proc_config())
        sim.cta_observer = lambda cta, t: None
        assert try_install_process_driver(sim, _script_app()) is None

    def test_unsafe_window_still_rejected(self):
        """The explicit-window validation must not be bypassed by the
        process path."""
        sim = GPUSimulator(_proc_config(window_cycles=10_000))
        with pytest.raises(ValueError, match="safe bound"):
            try_install_process_driver(sim, _script_app())


class TestFailurePropagation:
    def test_dead_worker_raises_deadlock(self):
        """A shard worker killed mid-run (OOM killer, operator) must
        surface as SimulationDeadlock at the next exchange — and every
        worker must be reaped on the way out."""
        sim = GPUSimulator(_proc_config())
        driver, wrapped = _install(sim, _script_app())
        victim = driver._pids[0]
        os.kill(victim, signal.SIGKILL)
        with pytest.raises(SimulationDeadlock, match="shard worker"):
            sim.run_application(wrapped)
        assert all(pid is None for pid in driver._pids)

    def test_worker_exception_carries_traceback(self):
        """A mismarked launch-free app device-launches inside a forked
        worker: the loud RuntimeError must re-raise in the parent with
        the child's traceback chained as the cause."""
        child = ScriptKernel(lambda ctx: iter([TraceBuilder().exit()]), 32)

        def parent(ctx):
            b = TraceBuilder()
            yield b.launch(KernelLaunch(child, num_ctas=1))
            yield b.exit()

        app = ScriptApp(ScriptKernel(parent, 32), launch_free=True)
        with pytest.raises(RuntimeError, match="may_device_launch") as info:
            run_app(app, parallel_shards=2, parallel_executor="processes")
        cause = info.value.__cause__
        assert cause is not None
        assert "worker traceback" in str(cause)
        assert "device_launch" in str(cause)

    def test_keyboard_interrupt_reaps_workers(self):
        """Ctrl-C mid-window must terminate and reap every worker
        before propagating — no orphan processes, no leaked shm."""
        sim = GPUSimulator(_proc_config())
        driver, wrapped = _install(sim, _script_app())
        pids = list(driver._pids)

        def interrupt(*args, **kwargs):
            raise KeyboardInterrupt

        driver._replay = interrupt
        with pytest.raises(KeyboardInterrupt):
            sim.run_application(wrapped)
        assert all(pid is None for pid in driver._pids)
        for pid in pids:
            # Reaped: the pid is no longer our child.
            with pytest.raises(ChildProcessError):
                os.waitpid(pid, os.WNOHANG)

    def test_close_is_idempotent(self):
        sim = GPUSimulator(_proc_config())
        driver, wrapped = _install(sim, _script_app())
        stats = sim.run_application(wrapped)
        assert stats.instructions > 0
        driver.close()  # finalize already closed; must be a no-op
        driver.close(terminate=True)
