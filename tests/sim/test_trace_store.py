"""Persistent trace store: round trips, corruption, and coordination."""

import dataclasses
import os
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.core.sweep import (
    TraceCache,
    app_key,
    run_sweep,
    sweep_point,
)
from repro.data.datasets import DatasetSize
from repro.kernels import build_application
from repro.sim.config import GPUConfig
from repro.sim.gpu import GPUSimulator
from repro.sim.replay import CachedApplication, replay_application
from repro.sim.trace_store import (
    TraceStore,
    decode_bytes,
    encode_bytes,
)

CONFIG = GPUConfig(num_sms=4)


def _point(abbr="SW", label=None, cdp=False, config=CONFIG):
    return sweep_point(
        label or f"{abbr}:{cdp}", abbr, config, cdp=cdp,
        size=DatasetSize.SMALL,
    )


def _cached(abbr="SW", cdp=False):
    return CachedApplication(
        build_application(abbr, cdp=cdp, size=DatasetSize.SMALL)
    )


def _stats(entry):
    return dataclasses.asdict(
        replay_application(entry, GPUSimulator(CONFIG))
    )


# -- binary round trips ------------------------------------------------------

def test_round_trip_preserves_replay():
    entry = _cached("SW")
    stored = decode_bytes(encode_bytes(entry))
    assert stored.name == entry.name
    assert stored.may_device_launch == entry.may_device_launch
    assert _stats(stored) == _stats(entry)


def test_round_trip_preserves_cdp_launch_graph():
    entry = _cached("PairHMM", cdp=True)
    stored = decode_bytes(encode_bytes(entry))
    stats = _stats(stored)
    assert stats["device_launches"] > 0
    assert stats == _stats(entry)


def test_round_trip_preserves_counts():
    entry = _cached("CLUSTER")
    stored = decode_bytes(encode_bytes(entry))
    assert stored.total_counts.instructions == \
        entry.total_counts.instructions
    assert stored.total_counts.op_mix == entry.total_counts.op_mix
    assert stored.total_counts.mem_mix == entry.total_counts.mem_mix
    assert stored.total_counts.warp_occupancy == \
        entry.total_counts.warp_occupancy


# -- corruption fallback -----------------------------------------------------

def test_decode_rejects_bad_magic():
    data = encode_bytes(_cached())
    with pytest.raises(ValueError):
        decode_bytes(b"XXXX" + data[4:])


def test_decode_rejects_truncation():
    data = encode_bytes(_cached())
    with pytest.raises(ValueError):
        decode_bytes(data[: len(data) // 2])


def test_decode_rejects_bit_flip():
    data = bytearray(encode_bytes(_cached()))
    data[len(data) // 2] ^= 0xFF
    with pytest.raises(ValueError):
        decode_bytes(bytes(data))


def test_load_retires_corrupt_file_and_regenerates(tmp_path):
    store = TraceStore(tmp_path)
    key = app_key(_point())
    store.save(key, _cached())
    path = store.path_for(key)
    raw = bytearray(path.read_bytes())
    raw[-3] ^= 0xFF
    path.write_bytes(bytes(raw))

    assert store.load(key) is None
    assert not path.exists()  # corrupt entry retired
    # get_or_build regenerates rather than crashing.
    entry = store.get_or_build(key, lambda: _cached())
    assert entry is not None
    assert path.exists()


def test_load_tolerates_truncated_file(tmp_path):
    store = TraceStore(tmp_path)
    key = app_key(_point())
    store.save(key, _cached())
    path = store.path_for(key)
    path.write_bytes(path.read_bytes()[:10])
    assert store.load(key) is None


def test_load_misses_on_absent_entry(tmp_path):
    assert TraceStore(tmp_path).load(("no", "such", "key")) is None


# -- store keying ------------------------------------------------------------

def test_distinct_app_keys_get_distinct_paths(tmp_path):
    store = TraceStore(tmp_path)
    paths = {
        store.path_for(app_key(point))
        for point in (
            _point("SW"),
            _point("SW", cdp=True, label="SW:cdp"),
            _point("NW", label="NW"),
            _point("SW", label="SW:ws16",
                   config=CONFIG.with_(warp_size=16)),
        )
    }
    assert len(paths) == 4


def test_timing_knobs_share_one_path(tmp_path):
    store = TraceStore(tmp_path)
    a = store.path_for(app_key(_point("SW")))
    b = store.path_for(app_key(_point(
        "SW", label="SW:perfmem",
        config=CONFIG.with_(perfect_memory=True),
    )))
    assert a == b


# -- get_or_build coordination ----------------------------------------------

def test_get_or_build_builds_once_then_hits(tmp_path):
    store = TraceStore(tmp_path)
    key = app_key(_point())
    built = []

    def build():
        built.append(1)
        return _cached()

    first = store.get_or_build(key, build)
    second = store.get_or_build(key, build)
    assert len(built) == 1
    assert store.builds == 1
    assert store.hits == 1
    assert _stats(first) == _stats(second)


def test_get_or_build_passes_through_none(tmp_path):
    store = TraceStore(tmp_path)
    key = ("opted", "out")
    assert store.get_or_build(key, lambda: None) is None
    assert not store.path_for(key).exists()
    assert not (tmp_path / "builds.log").exists()


def test_stale_lock_is_broken(tmp_path, monkeypatch):
    import repro.sim.trace_store as ts

    monkeypatch.setattr(ts, "STALE_LOCK_S", 0.01)
    store = TraceStore(tmp_path)
    key = app_key(_point())
    lock = store.path_for(key).with_name(
        store.path_for(key).name + ".lock"
    )
    tmp_path.mkdir(exist_ok=True)
    lock.write_text("dead-writer")
    os.utime(lock, (0, 0))  # ancient mtime: the writer is gone
    entry = store.get_or_build(key, lambda: _cached())
    assert entry is not None
    assert not lock.exists()


def test_dead_writer_lock_recovered(tmp_path):
    """A writer SIGKILLed while holding the O_EXCL lock must not wedge
    later readers: once the lock crosses the stale age they take over
    and build themselves."""
    import multiprocessing
    import time as time_mod

    if "fork" not in multiprocessing.get_all_start_methods():
        pytest.skip("needs fork to stage a killable writer")
    store = TraceStore(tmp_path, stale_lock_s=0.3)
    key = app_key(_point())
    path = store.path_for(key)
    lock = path.with_name(path.name + ".lock")
    ctx = multiprocessing.get_context("fork")

    def doomed_writer():
        fd = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        os.write(fd, str(os.getpid()).encode())
        os.close(fd)
        time_mod.sleep(60)  # "building" forever; killed by the parent

    tmp_path.mkdir(exist_ok=True)
    writer = ctx.Process(target=doomed_writer)
    writer.start()
    deadline = time_mod.monotonic() + 5
    while not lock.exists():  # wait until the victim holds the lock
        assert time_mod.monotonic() < deadline
        time_mod.sleep(0.005)
    writer.kill()
    writer.join(timeout=10)

    started = time_mod.monotonic()
    entry = store.get_or_build(key, lambda: _cached())
    assert entry is not None
    assert time_mod.monotonic() - started < 5  # took over, no 60s wait
    assert store.builds == 1
    assert not lock.exists()
    assert path.exists()  # and the takeover published normally


def test_stale_lock_s_constructor_override(tmp_path):
    """Per-store stale age: an old lock is broken after ~stale_lock_s,
    not after the 60s module default."""
    import time as time_mod

    store = TraceStore(tmp_path, stale_lock_s=0.1)
    assert store.stale_lock_s == 0.1
    key = app_key(_point())
    path = store.path_for(key)
    lock = path.with_name(path.name + ".lock")
    tmp_path.mkdir(exist_ok=True)
    lock.write_text("dead")
    os.utime(lock, (0, 0))
    started = time_mod.monotonic()
    assert store.get_or_build(key, lambda: _cached()) is not None
    assert time_mod.monotonic() - started < 5


def test_stale_lock_env_override(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_LOCK_TIMEOUT", "0.25")
    assert TraceStore(tmp_path).stale_lock_s == 0.25
    monkeypatch.setenv("REPRO_TRACE_LOCK_TIMEOUT", "not-a-number")
    assert TraceStore(tmp_path).stale_lock_s == 60.0  # fallback
    monkeypatch.setenv("REPRO_TRACE_LOCK_TIMEOUT", "-5")
    assert TraceStore(tmp_path).stale_lock_s == 60.0  # rejects <= 0
    monkeypatch.delenv("REPRO_TRACE_LOCK_TIMEOUT")
    assert TraceStore(tmp_path).stale_lock_s == 60.0


def test_live_writer_is_awaited_not_preempted(tmp_path):
    """A fresh lock means the writer is alive: the reader waits for the
    published file and loads it instead of building a duplicate."""
    import threading
    import time as time_mod

    store = TraceStore(tmp_path, stale_lock_s=30.0)
    key = app_key(_point())
    path = store.path_for(key)
    lock = path.with_name(path.name + ".lock")
    tmp_path.mkdir(exist_ok=True)
    entry = _cached()

    def writer():
        fd = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        os.close(fd)
        time_mod.sleep(0.15)  # mid-build
        store.save(key, entry)
        os.unlink(lock)

    thread = threading.Thread(target=writer)
    thread.start()
    deadline = time_mod.monotonic() + 5
    while not lock.exists():
        assert time_mod.monotonic() < deadline
        time_mod.sleep(0.005)
    reader = TraceStore(tmp_path, stale_lock_s=30.0)
    stored = reader.get_or_build(
        key, lambda: pytest.fail("reader must wait, not rebuild")
    )
    thread.join(timeout=10)
    assert stored is not None
    assert reader.builds == 0
    assert reader.hits == 1
    assert _stats(stored) == _stats(entry)


def _contend(root: str) -> int:
    """Pool worker: race a cold build of the same sweep point."""
    cache = TraceCache(store=TraceStore(root))
    entry = cache.get(_point())
    return 0 if entry is not None else 1


def test_concurrent_cold_builds_generate_once(tmp_path):
    """Fan-out contention: many processes, one generation."""
    try:
        with ProcessPoolExecutor(max_workers=4) as pool:
            codes = list(pool.map(_contend, [str(tmp_path)] * 4))
    except (OSError, PermissionError):
        pytest.skip("no process pool in this environment")
    assert codes == [0, 0, 0, 0]
    log = (tmp_path / "builds.log").read_text().splitlines()
    assert len(log) == 1  # exactly one worker materialized


# -- sweep integration -------------------------------------------------------

def _sweep_points():
    return [
        _point("SW", label="SW|a"),
        _point("SW", label="SW|b",
               config=CONFIG.with_(perfect_memory=True)),
        _point("NW", label="NW|a"),
        _point("NW", label="NW|b", cdp=True),
    ]


def test_cold_parallel_sweep_builds_each_app_once(tmp_path):
    points = _sweep_points()
    results = run_sweep(points, jobs=4, store=str(tmp_path))
    log = (tmp_path / "builds.log").read_text().splitlines()
    distinct = {app_key(point) for point in points}
    assert len(log) == len(distinct)  # one generation per application
    # And the stored path is bit-identical to the plain serial path.
    plain = run_sweep(points, jobs=0, store=None)
    assert results == plain


def test_warm_sweep_builds_nothing(tmp_path):
    points = _sweep_points()
    run_sweep(points, jobs=0, store=str(tmp_path))
    log_before = (tmp_path / "builds.log").read_text()
    warm = run_sweep(points, jobs=0, store=str(tmp_path))
    assert (tmp_path / "builds.log").read_text() == log_before
    assert warm == run_sweep(points, jobs=0, store=None)


def test_store_from_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_STORE", str(tmp_path))
    run_sweep([_point("SW", label="env")], jobs=0)  # store="env" default
    assert (tmp_path / "builds.log").exists()
    monkeypatch.delenv("REPRO_TRACE_STORE")
    assert TraceStore.from_env() is None


def test_trace_cache_counts_store_hits(tmp_path):
    store = TraceStore(tmp_path)
    warm_cache = TraceCache(store=store)
    assert warm_cache.get(_point()) is not None
    assert warm_cache.store_hits == 0  # cold: built, not loaded

    fresh = TraceCache(store=TraceStore(tmp_path))
    assert fresh.get(_point()) is not None
    assert fresh.store_hits == 1  # new process: served from disk
    assert fresh.get(_point()) is not None
    assert fresh.store_hits == 1  # second access: in-memory


# -- pack / unpack (host-to-host sync) --------------------------------------

def _populated_store(root):
    store = TraceStore(root)
    point = _point()
    store.save(app_key(point), _cached())
    return store


def test_pack_unpack_round_trip(tmp_path):
    src = _populated_store(tmp_path / "src")
    archive = tmp_path / "traces.rpak"
    assert src.pack(archive) == 1
    dst = TraceStore(tmp_path / "dst")
    assert dst.unpack(archive) == 1
    assert dst.entry_names() == src.entry_names()
    loaded = dst.load(app_key(_point()))
    assert loaded is not None
    assert _stats(loaded) == _stats(_cached())


def test_pack_subset_by_name(tmp_path):
    store = _populated_store(tmp_path / "src")
    store.save(app_key(_point(cdp=True)), _cached(cdp=True))
    names = store.entry_names()
    assert len(names) == 2
    archive = tmp_path / "one.rpak"
    assert store.pack(archive, names=names[:1]) == 1
    dst = TraceStore(tmp_path / "dst")
    assert dst.unpack(archive) == 1
    assert dst.entry_names() == names[:1]


def test_unpack_rejects_wrong_magic(tmp_path):
    archive = tmp_path / "bogus.rpak"
    archive.write_bytes(b"NOPE" + b"\x00" * 32)
    with pytest.raises(ValueError, match="not a trace-store archive"):
        TraceStore(tmp_path / "dst").unpack(archive)


def test_unpack_rejects_foreign_fingerprint(tmp_path, monkeypatch):
    import repro.sim.trace_store as ts

    src = _populated_store(tmp_path / "src")
    archive = tmp_path / "traces.rpak"
    src.pack(archive)
    monkeypatch.setattr(ts, "source_fingerprint", lambda: "f" * 64)
    dst = TraceStore(tmp_path / "dst")
    with pytest.raises(ValueError, match="different source tree"):
        dst.unpack(archive)
    assert dst.entry_names() == []


def test_unpack_rejects_crc_corruption_and_keeps_nothing(tmp_path):
    src = _populated_store(tmp_path / "src")
    archive = tmp_path / "traces.rpak"
    src.pack(archive)
    data = bytearray(archive.read_bytes())
    data[-1] ^= 0xFF  # damage the last entry's payload in transit
    archive.write_bytes(bytes(data))
    dst = TraceStore(tmp_path / "dst")
    with pytest.raises(ValueError, match="CRC"):
        dst.unpack(archive)
    assert dst.entry_names() == []


def test_unpack_rejects_unsafe_entry_names(tmp_path):
    import struct as _struct
    import zlib as _zlib

    from repro.sim.trace_store import (
        PACK_MAGIC,
        PACK_VERSION,
        source_fingerprint,
    )

    archive = tmp_path / "evil.rpak"
    payload = b"whatever"
    name = b"../evil.trace"
    fingerprint = source_fingerprint().encode()
    archive.write_bytes(
        PACK_MAGIC + _struct.pack("<H", PACK_VERSION)
        + _struct.pack("<I", len(fingerprint)) + fingerprint
        + _struct.pack("<I", 1)
        + _struct.pack("<I", len(name)) + name
        + _struct.pack("<QI", len(payload), _zlib.crc32(payload))
        + payload
    )
    dst = TraceStore(tmp_path / "dst")
    with pytest.raises(ValueError, match="unsafe entry name"):
        dst.unpack(archive)
    assert dst.entry_names() == []


def test_unpack_rejects_future_version(tmp_path):
    import struct as _struct

    archive = tmp_path / "future.rpak"
    archive.write_bytes(b"RPAK" + _struct.pack("<H", 99) + b"\x00" * 8)
    with pytest.raises(ValueError, match="version 99"):
        TraceStore(tmp_path / "dst").unpack(archive)


def test_unpack_rejects_truncated_archive(tmp_path):
    src = _populated_store(tmp_path / "src")
    archive = tmp_path / "traces.rpak"
    src.pack(archive)
    data = archive.read_bytes()
    archive.write_bytes(data[: len(data) // 2])
    with pytest.raises(ValueError):
        TraceStore(tmp_path / "dst").unpack(archive)


def test_unpack_rejects_trailing_garbage(tmp_path):
    """Bytes past the last entry mean the file was mangled somewhere;
    refuse the whole archive rather than import what happens to parse."""
    src = _populated_store(tmp_path / "src")
    archive = tmp_path / "traces.rpak"
    src.pack(archive)
    archive.write_bytes(archive.read_bytes() + b"corrupt")
    dst = TraceStore(tmp_path / "dst")
    with pytest.raises(ValueError, match="trailing"):
        dst.unpack(archive)
    assert dst.entry_names() == []
