"""Tests for topologies and the network timing model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.config import NoCConfig
from repro.sim.interconnect import Network, build_topology


class TestTopologies:
    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            build_topology("torus", 8, 4)

    def test_crossbar_is_single_hop(self):
        topo = build_topology("xbar", 16, 8)
        for sm in range(16):
            assert topo.hops(sm, 16 + sm % 8) == 1

    def test_mesh_hops_manhattan(self):
        topo = build_topology("mesh", 14, 2)  # 16 nodes, 4x4 grid
        assert topo.hops(0, 15) == 7  # corner to corner: 3+3+1
        assert topo.hops(0, 1) == 2
        assert topo.hops(5, 5) == 1

    def test_mesh_hops_symmetric(self):
        topo = build_topology("mesh", 14, 2)
        for a in range(16):
            for b in range(16):
                assert topo.hops(a, b) == topo.hops(b, a)

    def test_butterfly_uniform_hops(self):
        topo = build_topology("butterfly", 14, 2)
        hops = {topo.hops(a, b) for a in range(16) for b in range(16)}
        assert hops == {4}  # log2(16)

    def test_fattree_nearest_common_ancestor(self):
        topo = build_topology("fattree", 14, 2)
        assert topo.hops(0, 1) == 2   # siblings under one switch
        assert topo.hops(0, 15) > topo.hops(0, 1)

    def test_average_hops_ordering(self):
        # The crossbar beats every multi-hop topology on average.
        xbar = build_topology("xbar", 16, 8).average_hops()
        mesh = build_topology("mesh", 16, 8).average_hops()
        bfly = build_topology("butterfly", 16, 8).average_hops()
        assert xbar < mesh
        assert xbar < bfly

    def test_bisection_links(self):
        assert build_topology("xbar", 16, 8).bisection_links() is None
        assert build_topology("mesh", 14, 2).bisection_links() == 4
        assert build_topology("butterfly", 14, 2).bisection_links() == 8

    @given(st.sampled_from(["xbar", "mesh", "fattree", "butterfly"]),
           st.integers(min_value=1, max_value=40),
           st.integers(min_value=1, max_value=8))
    @settings(max_examples=40)
    def test_hops_positive(self, name, sms, parts):
        topo = build_topology(name, sms, parts)
        for sm in range(0, sms, max(1, sms // 3)):
            for p in range(parts):
                assert topo.hops(sm, sms + p) >= 1


class TestNetworkTiming:
    def make(self, **noc_kwargs):
        return Network(NoCConfig(**noc_kwargs), num_sms=4, num_partitions=2)

    def test_request_response_complete(self):
        net = self.make()
        at_l2 = net.request(0, 1, now=0)
        back = net.response(1, 0, now=at_l2)
        assert back > at_l2 > 0

    def test_wider_channel_is_faster(self):
        slow = self.make(channel_bytes=8)
        fast = self.make(channel_bytes=40)
        assert slow.response(0, 1, 0) > fast.response(0, 1, 0)

    def test_router_delay_adds_latency(self):
        base = self.make(topology="mesh", router_delay=0)
        delayed = self.make(topology="mesh", router_delay=8)
        assert delayed.request(0, 1, 0) > base.request(0, 1, 0)

    def test_mesh_slower_than_crossbar(self):
        xbar = self.make(topology="xbar")
        mesh = self.make(topology="mesh")
        assert mesh.request(0, 1, 0) >= xbar.request(0, 1, 0)

    def test_port_contention_serializes(self):
        net = self.make()
        first = net.request(0, 0, now=0)
        second = net.request(0, 1, now=0)  # same injection port
        assert second > first - 1  # delayed behind the first message
        assert net.stats.contention_cycles > 0

    def test_distinct_ports_parallel(self):
        net = self.make()
        a = net.request(0, 0, now=0)
        b = net.request(1, 1, now=0)
        assert b == a  # symmetric paths, no shared port

    def test_stats_accumulate(self):
        net = self.make()
        net.request(0, 0, 0, store_bytes=128)
        net.response(0, 0, 100)
        assert net.stats.messages == 2
        assert net.stats.bytes > 256
        assert net.stats.average_latency > 0

    def test_bad_config_rejected(self):
        with pytest.raises(ValueError):
            NoCConfig(topology="ring")
        with pytest.raises(ValueError):
            NoCConfig(channel_bytes=0)
