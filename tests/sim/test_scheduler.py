"""Tests for warp scheduler policies."""

import random

import pytest

from repro.sim.scheduler import (
    GreedyThenOldest,
    LooseRoundRobin,
    OldestFirst,
    TwoLevel,
    build_scheduler,
)


class FakeWarp:
    """Minimal stand-in with the attributes schedulers read."""

    def __init__(self, age):
        self.age = age
        self.exited = False
        self.in_ready = True

    def __repr__(self):
        return f"W{self.age}"


def mark_ready(warps, ready):
    """Set ``in_ready`` flags the way the SM's ready list would."""
    ready_ids = {id(w) for w in ready}
    for w in warps:
        w.in_ready = id(w) in ready_ids
    return ready


@pytest.fixture
def warps():
    return [FakeWarp(i) for i in range(4)]


class TestBuildScheduler:
    @pytest.mark.parametrize("name,cls", [
        ("lrr", LooseRoundRobin),
        ("gto", GreedyThenOldest),
        ("old", OldestFirst),
        ("2lv", TwoLevel),
    ])
    def test_registry(self, name, cls):
        assert isinstance(build_scheduler(name), cls)

    def test_unknown(self):
        with pytest.raises(ValueError):
            build_scheduler("fifo")


class TestLRR:
    def test_rotates_through_ready_warps(self, warps):
        sched = LooseRoundRobin()
        picks = [sched.select(warps) for _ in range(8)]
        counts = {w.age: picks.count(w) for w in warps}
        assert all(count == 2 for count in counts.values())


class TestGTO:
    def test_greedy_sticks_with_last(self, warps):
        sched = GreedyThenOldest()
        first = sched.select(warps)
        sched.issued(first)
        assert sched.select(warps) is first

    def test_falls_back_to_oldest(self, warps):
        sched = GreedyThenOldest()
        sched.issued(warps[3])
        ready = warps[:3]  # last-issued warp not ready
        assert sched.select(ready) is warps[0]

    def test_retired_warp_not_chased(self, warps):
        sched = GreedyThenOldest()
        sched.issued(warps[2])
        sched.retired(warps[2])
        assert sched.select(warps) is warps[0]


class TestOldestFirst:
    def test_always_oldest(self, warps):
        sched = OldestFirst()
        assert sched.select(list(reversed(warps))) is warps[0]
        assert sched.select(warps[2:]) is warps[2]


class TestTwoLevel:
    def test_prefers_active_set(self):
        warps = [FakeWarp(i) for i in range(12)]
        sched = TwoLevel(active_size=4)
        picks = {sched.select(warps).age for _ in range(20)}
        assert picks <= {0, 1, 2, 3}

    def test_refills_when_active_warps_stall(self):
        warps = [FakeWarp(i) for i in range(12)]
        sched = TwoLevel(active_size=4)
        sched.select(warps)
        # The whole active set stalls: only 8..11 remain ready.
        ready = mark_ready(warps, warps[8:])
        pick = sched.select(ready)
        assert pick.age >= 8

    def test_order_identical_to_rebuild_implementation(self):
        """The persistent active set must reproduce the original
        rebuild-per-decision algorithm decision for decision."""

        class RebuildTwoLevel:
            # The pre-event-core implementation, verbatim.
            def __init__(self, active_size=8):
                self.active_size = active_size
                self._active = []
                self._pointer = 0

            def select(self, ready):
                ready_set = set(id(w) for w in ready)
                self._active = [
                    w for w in self._active if id(w) in ready_set
                ]
                if len(self._active) < self.active_size:
                    for warp in ready:
                        if warp not in self._active:
                            self._active.append(warp)
                            if len(self._active) == self.active_size:
                                break
                self._pointer = (self._pointer + 1) % len(self._active)
                return self._active[self._pointer]

        rng = random.Random(1234)
        warps = [FakeWarp(i) for i in range(24)]
        new = TwoLevel(active_size=8)
        old = RebuildTwoLevel(active_size=8)
        for _ in range(500):
            k = rng.randint(1, len(warps))
            ready = mark_ready(warps, sorted(
                rng.sample(warps, k), key=lambda w: w.age
            ))
            assert new.select(ready) is old.select(ready)

    def test_select_sole_matches_select(self):
        warps = [FakeWarp(i) for i in range(12)]
        a, b = TwoLevel(active_size=4), TwoLevel(active_size=4)
        a.select(warps)
        b.select(warps)
        sole = mark_ready(warps, [warps[5]])[0]
        assert a.select(list(sole for _ in range(1))) is b.select_sole(sole)
        assert a._active == b._active
        assert a._pointer == b._pointer
        # Idempotent: a monopolizing warp issues many times per call.
        assert b.select_sole(sole) is sole
        assert b._active == [sole]


class TestSelectSole:
    @pytest.mark.parametrize("name", ["lrr", "gto", "old", "2lv"])
    def test_state_equivalent_to_select(self, name, warps):
        """select_sole(w) must leave the policy exactly where
        select([w]) would, so decision streams stay identical."""
        a, b = build_scheduler(name), build_scheduler(name)
        # Put both policies in a non-trivial state first.
        for sched in (a, b):
            pick = sched.select(warps)
            sched.issued(pick)
        sole = mark_ready(warps, [warps[2]])[0]
        assert a.select([sole]) is b.select_sole(sole)
        assert a.__dict__ == b.__dict__
