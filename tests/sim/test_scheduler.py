"""Tests for warp scheduler policies."""

import pytest

from repro.sim.scheduler import (
    GreedyThenOldest,
    LooseRoundRobin,
    OldestFirst,
    TwoLevel,
    build_scheduler,
)


class FakeWarp:
    """Minimal stand-in with the attributes schedulers read."""

    def __init__(self, age):
        self.age = age
        self.exited = False

    def __repr__(self):
        return f"W{self.age}"


@pytest.fixture
def warps():
    return [FakeWarp(i) for i in range(4)]


class TestBuildScheduler:
    @pytest.mark.parametrize("name,cls", [
        ("lrr", LooseRoundRobin),
        ("gto", GreedyThenOldest),
        ("old", OldestFirst),
        ("2lv", TwoLevel),
    ])
    def test_registry(self, name, cls):
        assert isinstance(build_scheduler(name), cls)

    def test_unknown(self):
        with pytest.raises(ValueError):
            build_scheduler("fifo")


class TestLRR:
    def test_rotates_through_ready_warps(self, warps):
        sched = LooseRoundRobin()
        picks = [sched.select(warps) for _ in range(8)]
        counts = {w.age: picks.count(w) for w in warps}
        assert all(count == 2 for count in counts.values())


class TestGTO:
    def test_greedy_sticks_with_last(self, warps):
        sched = GreedyThenOldest()
        first = sched.select(warps)
        sched.issued(first)
        assert sched.select(warps) is first

    def test_falls_back_to_oldest(self, warps):
        sched = GreedyThenOldest()
        sched.issued(warps[3])
        ready = warps[:3]  # last-issued warp not ready
        assert sched.select(ready) is warps[0]

    def test_retired_warp_not_chased(self, warps):
        sched = GreedyThenOldest()
        sched.issued(warps[2])
        sched.retired(warps[2])
        assert sched.select(warps) is warps[0]


class TestOldestFirst:
    def test_always_oldest(self, warps):
        sched = OldestFirst()
        assert sched.select(list(reversed(warps))) is warps[0]
        assert sched.select(warps[2:]) is warps[2]


class TestTwoLevel:
    def test_prefers_active_set(self):
        warps = [FakeWarp(i) for i in range(12)]
        sched = TwoLevel(active_size=4)
        picks = {sched.select(warps).age for _ in range(20)}
        assert picks <= {0, 1, 2, 3}

    def test_refills_when_active_warps_stall(self):
        warps = [FakeWarp(i) for i in range(12)]
        sched = TwoLevel(active_size=4)
        sched.select(warps)
        # The whole active set stalls: only 8..11 remain ready.
        ready = warps[8:]
        pick = sched.select(ready)
        assert pick.age >= 8
