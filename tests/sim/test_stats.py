"""Tests for RunStats bookkeeping and derived metrics."""

import pytest

from repro.isa.instructions import MemSpace, OpClass
from repro.sim.stats import (
    OCCUPANCY_BUCKETS,
    RunStats,
    StallReason,
    occupancy_bucket,
)


class TestOccupancyBucket:
    @pytest.mark.parametrize("lanes,bucket", [
        (1, "W1-4"), (4, "W1-4"), (5, "W5-8"),
        (16, "W13-16"), (29, "W29-32"), (32, "W29-32"),
    ])
    def test_boundaries(self, lanes, bucket):
        assert occupancy_bucket(lanes) == bucket

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            occupancy_bucket(0)
        with pytest.raises(ValueError):
            occupancy_bucket(33)

    def test_eight_buckets(self):
        assert len(OCCUPANCY_BUCKETS) == 8


class TestCounting:
    def test_count_instruction_with_repeat(self):
        stats = RunStats()
        stats.count_instruction(OpClass.INT, 32, repeat=5)
        assert stats.instructions == 5
        assert stats.op_mix["int"] == 5
        assert stats.warp_occupancy["W29-32"] == 5

    def test_count_memory(self):
        stats = RunStats()
        stats.count_memory(MemSpace.GLOBAL, 3)
        stats.count_memory(MemSpace.SHARED, 1)
        assert stats.mem_fractions() == {"global": 0.75, "shared": 0.25}

    def test_add_stall_ignores_nonpositive(self):
        stats = RunStats()
        stats.add_stall(StallReason.MEMORY, 0)
        stats.add_stall(StallReason.MEMORY, -5)
        assert stats.stalls == {}

    def test_stall_breakdown_normalized(self):
        stats = RunStats()
        stats.add_stall(StallReason.MEMORY, 30)
        stats.add_stall(StallReason.IDLE, 10)
        breakdown = stats.stall_breakdown()
        assert breakdown["long_memory_latency"] == 0.75
        assert sum(breakdown.values()) == pytest.approx(1.0)


class TestDerivedMetrics:
    def test_ipc(self):
        stats = RunStats(cycles=100, instructions=250)
        assert stats.ipc == 2.5

    def test_ipc_zero_cycles(self):
        assert RunStats().ipc == 0.0

    def test_empty_fractions(self):
        stats = RunStats()
        assert stats.op_fractions() == {}
        assert stats.mem_fractions() == {}
        assert stats.stall_breakdown() == {}
        assert sum(stats.occupancy_fractions().values()) == 0.0

    def test_times(self):
        stats = RunStats(
            kernel_cycles=100, pci_cycles=50, launch_overhead_cycles=20
        )
        assert stats.device_time() == 120
        assert stats.total_time() == 170

    def test_dram_utilization_capped(self):
        stats = RunStats(cycles=10)
        stats.dram.data_cycles = 100
        assert stats.dram_utilization() == 1.0


class TestMerge:
    def test_merge_accumulates_everything(self):
        a = RunStats(cycles=10, instructions=5)
        a.count_instruction(OpClass.FP, 8)
        a.add_stall(StallReason.SYNC, 3)
        a.kernel_timeline.append({"kernel": "k", "start": 0, "end": 5,
                                  "ctas": 1, "origin": "host"})
        b = RunStats(cycles=20, instructions=7)
        b.count_instruction(OpClass.FP, 8)
        b.add_stall(StallReason.SYNC, 7)
        a.merge(b)
        assert a.cycles == 30
        assert a.op_mix["fp"] == 2
        assert a.stalls["synchronization"] == 10
        assert len(a.kernel_timeline) == 1


class TestKernelProfileReport:
    def test_profile_from_timeline(self):
        from repro.core.report import format_kernel_profile

        stats = RunStats()
        stats.kernel_timeline = [
            {"kernel": "a", "start": 0, "end": 10, "ctas": 1,
             "origin": "host"},
            {"kernel": "a", "start": 20, "end": 26, "ctas": 1,
             "origin": "host"},
            {"kernel": "b", "start": 5, "end": 105, "ctas": 2,
             "origin": "device"},
        ]
        text = format_kernel_profile(stats)
        lines = text.split("\n")
        # Sorted by total time: b (100) before a (16).
        assert lines[2].startswith("b")
        assert "device" in lines[2]
        assert "2" in lines[3]  # kernel a: 2 calls

    def test_empty_timeline(self):
        from repro.core.report import format_kernel_profile

        assert "no kernels" in format_kernel_profile(RunStats())
