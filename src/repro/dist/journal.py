"""On-disk progress records: the chunk journal and results files.

Chunk journal
-------------
The coordinator appends one JSON line per *completed* chunk (its
point-identity keys plus the serialized stats), headed by a line that
fingerprints the whole sweep — the ordered chunk/key structure.  An
interrupted sweep re-opened against the same grid replays the journal
and only re-runs what is missing; a journal written for a *different*
grid (or chunking) fails loudly instead of resuming into a mismatched
merge.  Appends are single ``write`` calls of whole lines, so a crash
mid-append leaves at most one truncated tail line, which replay
skips — a journaled chunk is either fully trusted or ignored.

Results files
-------------
``write_results_file`` / ``load_results_file`` persist a (possibly
partial) ``{label: RunStats}`` mapping keyed by
:func:`repro.core.sweep.point_key` — the same identity keys the
journal uses — which is what ``repro sweep --resume`` and ``repro
dsweep --resume/--results`` exchange.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

from repro.core.sweep import SweepPoint, point_key
from repro.sim.stats import RunStats, stats_from_dict

JOURNAL_KIND = "repro-dsweep-journal"
JOURNAL_VERSION = 1
RESULTS_KIND = "repro-sweep-results"
RESULTS_VERSION = 1


class JournalMismatch(RuntimeError):
    """An existing journal belongs to a different sweep or chunking."""


def sweep_fingerprint(chunk_keys: list[list[str]]) -> str:
    """Identity of one (grid, chunking) pair: ordered chunk key lists."""
    material = json.dumps(chunk_keys, sort_keys=True)
    return hashlib.sha256(material.encode()).hexdigest()[:16]


class ChunkJournal:
    """Append-only record of completed chunks for one sweep."""

    def __init__(self, path: str | os.PathLike):
        self.path = Path(path)
        self._fingerprint: str | None = None

    def open(self, chunk_keys: list[list[str]]) -> dict[int, list[RunStats]]:
        """Bind the journal to a sweep; returns the replayed results.

        A fresh path writes the header and returns ``{}``.  An existing
        journal for the same fingerprint replays its completed chunks
        as ``{chunk_id: [RunStats, ...]}``; one for a different sweep
        raises :class:`JournalMismatch` (delete the file or pick
        another path to start over).
        """
        self._fingerprint = sweep_fingerprint(chunk_keys)
        if not self.path.exists():
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._append({
                "kind": JOURNAL_KIND,
                "version": JOURNAL_VERSION,
                "sweep": self._fingerprint,
                "chunks": len(chunk_keys),
            })
            return {}
        return self._replay(chunk_keys)

    def record(self, chunk_id: int, keys: list[str], stats: list) -> None:
        """Journal one completed chunk (stats: ``RunStats`` list)."""
        self._append({
            "chunk": chunk_id,
            "keys": list(keys),
            "stats": [s.to_dict() for s in stats],
        })

    # -- internals -----------------------------------------------------------
    def _append(self, record: dict) -> None:
        line = json.dumps(record, sort_keys=True) + "\n"
        # O_APPEND + one write: concurrent/interrupted appends never
        # interleave inside a line, and a crash truncates at most the
        # tail line, which _replay skips.
        with open(self.path, "a", encoding="utf-8") as fp:
            fp.write(line)
            fp.flush()
            os.fsync(fp.fileno())

    def _replay(self, chunk_keys: list[list[str]]) -> dict[int, list[RunStats]]:
        completed: dict[int, list[RunStats]] = {}
        header_seen = False
        for raw in self.path.read_text(encoding="utf-8").splitlines():
            try:
                record = json.loads(raw)
            except ValueError:
                continue  # truncated tail line from an interrupt
            if not isinstance(record, dict):
                continue
            if record.get("kind") == JOURNAL_KIND:
                if record.get("sweep") != self._fingerprint:
                    raise JournalMismatch(
                        f"{self.path} was written for sweep "
                        f"{record.get('sweep')!r}, this grid/chunking is "
                        f"{self._fingerprint!r}; delete the journal or "
                        "pass a fresh path"
                    )
                header_seen = True
                continue
            chunk_id = record.get("chunk")
            if (
                not header_seen
                or not isinstance(chunk_id, int)
                or not 0 <= chunk_id < len(chunk_keys)
                or record.get("keys") != chunk_keys[chunk_id]
            ):
                continue  # corrupt or stale record: re-run that chunk
            try:
                stats = [stats_from_dict(d) for d in record["stats"]]
            except Exception:
                continue
            if len(stats) != len(chunk_keys[chunk_id]):
                continue
            completed[chunk_id] = stats
        if not header_seen:
            raise JournalMismatch(
                f"{self.path} exists but carries no journal header; "
                "refusing to resume from an unrelated file"
            )
        return completed


# -- results files -----------------------------------------------------------


def write_results_file(
    path: str | os.PathLike,
    points: list[SweepPoint],
    results: dict[str, RunStats],
) -> None:
    """Persist ``{label: RunStats}`` keyed by point identity (atomic)."""
    payload = {
        "kind": RESULTS_KIND,
        "version": RESULTS_VERSION,
        "results": {
            point_key(point): {
                "label": point.label,
                "stats": results[point.label].to_dict(),
            }
            for point in points
            if point.label in results
        },
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    tmp.write_text(json.dumps(payload, sort_keys=True) + "\n")
    os.replace(tmp, path)


def load_results_file(path: str | os.PathLike) -> dict[str, RunStats]:
    """A results file back into ``{point_key: RunStats}``.

    The mapping plugs straight into ``run_sweep(..., resume=...)`` and
    ``run_dsweep(..., resume=...)``.  Raises ``ValueError`` for files
    that are not results files; individual corrupt entries are dropped
    (they simply re-run).
    """
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except ValueError as exc:
        raise ValueError(f"{path} is not a results file: {exc}") from exc
    if (
        not isinstance(payload, dict)
        or payload.get("kind") != RESULTS_KIND
    ):
        raise ValueError(
            f"{path} is not a sweep results file (kind != {RESULTS_KIND!r})"
        )
    out: dict[str, RunStats] = {}
    for key, entry in payload.get("results", {}).items():
        try:
            out[key] = stats_from_dict(entry["stats"])
        except Exception:
            continue
    return out
