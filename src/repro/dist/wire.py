"""Wire format of the distributed sweep engine.

Everything that crosses a host boundary is JSON: sweep points
serialize through the config *file* format
(:func:`repro.sim.configfile.save_config` round-trips every
``GPUConfig`` knob exactly), and results travel as
:meth:`repro.sim.stats.RunStats.to_dict` payloads, which
:func:`repro.sim.stats.stats_from_dict` rebuilds bit-identically (the
service layer's established contract).  A decoded point is a real
:class:`~repro.core.sweep.SweepPoint`, so workers run it through the
exact same :func:`~repro.core.sweep.run_point` path a local sweep
uses — bit-identity of distributed results is inherited, not
re-implemented.

Frames
------
The local subprocess protocol exchanges length-prefixed JSON frames
(``<u32 length><payload>``) over the worker's stdin/stdout.  A frame
boundary is also the failure boundary: a worker that dies mid-chunk
leaves a truncated stream, which the reader surfaces as ``None``
(EOF) so the launcher can declare the worker dead.
"""

from __future__ import annotations

import json
import struct

from repro.core.sweep import SweepPoint, _wire_value, point_key, sweep_point
from repro.data.datasets import DatasetSize
from repro.sim.configfile import parse_config, save_config
from repro.sim.stats import stats_from_dict

#: Bump on incompatible frame/point encoding changes; both ends of the
#: worker protocol verify it during the hello exchange.
WIRE_VERSION = 1

#: Upper bound on one frame (a chunk of stats payloads is well under
#: this; anything bigger is stream corruption, not data).
MAX_FRAME_BYTES = 1 << 30


def encode_point(point: SweepPoint) -> dict:
    """One sweep point as a JSON-safe dict (see :func:`decode_point`)."""
    return {
        "label": point.label,
        "abbr": point.abbr,
        "cdp": point.cdp,
        "size": point.size.value,
        "options": [
            [name, _wire_value(name, value)]
            for name, value in point.options
        ],
        "config": save_config(point.config),
        "key": point_key(point),
    }


def decode_point(data: dict) -> SweepPoint:
    """Rebuild a :class:`SweepPoint` from :func:`encode_point` output.

    Raises ``ValueError`` on malformed payloads — including a ``key``
    that does not match the decoded point, which catches any
    encode/decode asymmetry before it can corrupt a result merge.
    """
    try:
        point = sweep_point(
            str(data["label"]),
            str(data["abbr"]),
            parse_config(data["config"]),
            cdp=bool(data["cdp"]),
            size=DatasetSize(data["size"]),
            **{str(name): value for name, value in data.get("options", [])},
        )
    except (KeyError, TypeError) as exc:
        raise ValueError(f"malformed sweep point payload: {exc}") from exc
    expected = data.get("key")
    if expected is not None and point_key(point) != expected:
        raise ValueError(
            f"point {point.label!r} decoded to a different identity "
            f"({point_key(point)} != {expected}); wire corruption or "
            "version skew"
        )
    return point


def decode_stats(data: dict):
    """A results payload back into a live ``RunStats``."""
    return stats_from_dict(data)


# -- frame IO ----------------------------------------------------------------


def write_frame(stream, payload: dict) -> None:
    """Write one length-prefixed JSON frame and flush."""
    raw = json.dumps(payload, sort_keys=True).encode()
    stream.write(struct.pack("<I", len(raw)) + raw)
    stream.flush()


def read_frame(stream) -> dict | None:
    """Read one frame; ``None`` on clean or mid-frame EOF (dead peer)."""
    header = _read_exact(stream, 4)
    if header is None:
        return None
    (length,) = struct.unpack("<I", header)
    if length > MAX_FRAME_BYTES:
        raise ValueError(f"frame of {length} bytes exceeds the wire limit")
    raw = _read_exact(stream, length)
    if raw is None:
        return None
    try:
        payload = json.loads(raw)
    except ValueError as exc:
        raise ValueError(f"undecodable frame: {exc}") from exc
    if not isinstance(payload, dict):
        raise ValueError(f"frame must be an object, got {payload!r}")
    return payload


def _read_exact(stream, n: int) -> bytes | None:
    chunks = []
    remaining = n
    while remaining:
        chunk = stream.read(remaining)
        if not chunk:
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)
