"""The subprocess end of the local dsweep protocol.

``python -m repro.dist.worker`` reads length-prefixed JSON frames from
stdin and answers on stdout (see :mod:`repro.dist.wire`): a ``hello``
version handshake, then ``chunk`` frames carrying encoded sweep
points, each answered by a ``result`` frame (the points' stats, in
order, tagged with their identity keys) or an ``error`` frame when a
simulation raises.  EOF or an ``exit`` frame ends the worker.

The worker keeps one warm :class:`~repro.core.sweep.TraceCache`
(backed by ``REPRO_TRACE_STORE`` when set) across every chunk it runs,
so same-application points replay materialized traces exactly like a
local ``run_sweep`` worker does.

Failure injection (tests only): ``REPRO_DIST_DIE_AFTER=N`` makes the
worker exit hard — no reply, no cleanup, exactly like a SIGKILL —
upon receiving its ``N``-th chunk frame, and ``REPRO_DIST_STALL_S=X``
sleeps ``X`` seconds before answering each chunk (a deterministic
straggler).
"""

from __future__ import annotations

import os
import sys
import time

from repro.core.sweep import TraceCache, point_key, run_point
from repro.dist.wire import WIRE_VERSION, decode_point, read_frame, write_frame
from repro.sim.trace_store import TraceStore


def serve(proto_in, proto_out) -> int:
    """The frame loop (split out so tests can drive it over pipes)."""
    die_after = int(os.environ.get("REPRO_DIST_DIE_AFTER", "0"))
    stall_s = float(os.environ.get("REPRO_DIST_STALL_S", "0"))
    cache = TraceCache(store=TraceStore.from_env())
    chunks_seen = 0
    while True:
        frame = read_frame(proto_in)
        if frame is None:
            return 0
        kind = frame.get("type")
        if kind == "exit":
            return 0
        if kind == "hello":
            write_frame(proto_out, {
                "type": "hello",
                "wire": WIRE_VERSION,
                "pid": os.getpid(),
            })
            continue
        if kind != "chunk":
            write_frame(proto_out, {
                "type": "error",
                "chunk": frame.get("chunk"),
                "error": f"unknown frame type {kind!r}",
            })
            continue
        chunks_seen += 1
        if die_after and chunks_seen >= die_after:
            os._exit(13)  # simulate SIGKILL mid-chunk: no reply, no cleanup
        if stall_s:
            time.sleep(stall_s)
        try:
            points = [decode_point(data) for data in frame["points"]]
            stats = [run_point(point, cache) for point in points]
            write_frame(proto_out, {
                "type": "result",
                "chunk": frame["chunk"],
                "keys": [point_key(point) for point in points],
                "stats": [s.to_dict() for s in stats],
            })
        except Exception as exc:  # noqa: BLE001 - report, stay alive
            write_frame(proto_out, {
                "type": "error",
                "chunk": frame.get("chunk"),
                "error": f"{type(exc).__name__}: {exc}",
            })


def main() -> int:
    # Own the protocol fds, then point fd 1 at stderr so any stray
    # print inside the simulator cannot corrupt the frame stream.
    proto_in = os.fdopen(os.dup(0), "rb")
    proto_out = os.fdopen(os.dup(1), "wb")
    os.dup2(2, 1)
    sys.stdout = sys.stderr
    try:
        return serve(proto_in, proto_out)
    except (BrokenPipeError, KeyboardInterrupt):
        return 1


if __name__ == "__main__":
    sys.exit(main())
