"""Worker pools the sweep coordinator dispatches chunks to.

A launcher owns ``workers`` slots and exposes one blocking primitive::

    run_chunk(worker_id, chunk_id, points, timeout) -> [RunStats, ...]

raising :class:`WorkerDied` (the worker is gone — respawned lazily on
the next call), :class:`ChunkTimeout` (deadline passed; the worker is
killed so a wedged simulation cannot poison later chunks), or
:class:`ChunkFailed` (the worker is healthy but the chunk's simulation
raised).  The coordinator treats all three identically — re-queue and
retry elsewhere — so launchers stay dumb pipes and every robustness
decision lives in one place.

Two implementations:

- :class:`LocalProcessLauncher` — persistent ``python -m
  repro.dist.worker`` subprocesses speaking the length-prefixed frame
  protocol of :mod:`repro.dist.wire` over stdin/stdout.
- :class:`ServiceLauncher` — one remote ``repro serve`` instance per
  slot, driven through :class:`repro.service.client.ServiceClient`
  using the sweep endpoint's explicit-points mode.
"""

from __future__ import annotations

import os
import select
import struct
import subprocess
import sys
import time

from repro.core.sweep import SweepPoint, point_key
from repro.dist.wire import (
    MAX_FRAME_BYTES,
    WIRE_VERSION,
    decode_stats,
    encode_point,
    write_frame,
)

#: How long a freshly spawned worker gets to answer the hello exchange
#: (it imports the simulator, which dominates).
SPAWN_TIMEOUT_S = 60.0


class WorkerDied(RuntimeError):
    """A worker disappeared (EOF, broken pipe, dead connection)."""


class ChunkTimeout(RuntimeError):
    """A chunk blew its deadline; the worker running it was killed."""


class ChunkFailed(RuntimeError):
    """The worker is fine but the chunk's simulation raised."""


class _Worker:
    """One live subprocess plus its read buffer."""

    def __init__(self, proc: subprocess.Popen):
        self.proc = proc
        self.buffer = b""


def _worker_env(store, extra: dict | None) -> dict:
    """The child environment: repro importable + the shared store."""
    import repro

    env = dict(os.environ)
    src = str(os.path.dirname(os.path.dirname(os.path.abspath(
        repro.__file__))))
    parts = [src] + [
        p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p
    ]
    env["PYTHONPATH"] = os.pathsep.join(dict.fromkeys(parts))
    if store is not None:
        env["REPRO_TRACE_STORE"] = str(store)
    if extra:
        env.update({k: str(v) for k, v in extra.items()})
    return env


class LocalProcessLauncher:
    """A pool of persistent local worker subprocesses.

    Workers spawn lazily and are respawned transparently after a death
    or a timeout kill; each keeps a warm in-process
    :class:`~repro.core.sweep.TraceCache` (plus the shared on-disk
    store when ``store`` is set) across all the chunks it runs.

    ``worker_env`` maps worker ids to extra environment variables for
    that worker only — the failure-injection hook the tests use to make
    exactly one worker die deterministically mid-sweep.
    """

    def __init__(
        self,
        workers: int = 2,
        store=None,
        extra_env: dict | None = None,
        worker_env: dict[int, dict] | None = None,
    ):
        if workers < 1:
            raise ValueError("need at least one worker")
        self.workers = workers
        self.store = store
        self.extra_env = dict(extra_env or {})
        self.worker_env = {k: dict(v) for k, v in (worker_env or {}).items()}
        self._live: dict[int, _Worker] = {}
        self.spawns = 0

    # -- lifecycle -----------------------------------------------------------
    def _spawn(self, worker_id: int) -> _Worker:
        env = _worker_env(self.store, self.extra_env)
        env.update(
            {k: str(v) for k, v in self.worker_env.get(worker_id, {}).items()}
        )
        proc = subprocess.Popen(
            [sys.executable, "-u", "-m", "repro.dist.worker"],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            env=env,
        )
        worker = _Worker(proc)
        self.spawns += 1
        try:
            write_frame(proc.stdin, {"type": "hello", "wire": WIRE_VERSION})
            reply = self._read_frame(
                worker, time.monotonic() + SPAWN_TIMEOUT_S, chunk_id=None
            )
        except (WorkerDied, ChunkTimeout, OSError) as exc:
            self._kill(worker)
            raise WorkerDied(
                f"worker {worker_id} died during startup: {exc}"
            ) from exc
        if reply.get("type") != "hello" or reply.get("wire") != WIRE_VERSION:
            self._kill(worker)
            raise WorkerDied(
                f"worker {worker_id} spoke wire version "
                f"{reply.get('wire')!r}, expected {WIRE_VERSION}"
            )
        self._live[worker_id] = worker
        return worker

    def _ensure(self, worker_id: int) -> _Worker:
        worker = self._live.get(worker_id)
        if worker is not None and worker.proc.poll() is None:
            return worker
        if worker is not None:
            self._drop(worker_id)
        return self._spawn(worker_id)

    def _kill(self, worker: _Worker) -> None:
        try:
            worker.proc.kill()
        except OSError:
            pass
        worker.proc.wait()
        for stream in (worker.proc.stdin, worker.proc.stdout):
            try:
                stream.close()
            except OSError:
                pass

    def _drop(self, worker_id: int) -> None:
        worker = self._live.pop(worker_id, None)
        if worker is not None:
            self._kill(worker)

    def pids(self) -> dict[int, int]:
        """Live worker pids (the SIGKILL tests aim at these)."""
        return {
            worker_id: worker.proc.pid
            for worker_id, worker in self._live.items()
            if worker.proc.poll() is None
        }

    def close(self) -> None:
        """Politely stop every worker (kill the ones that won't)."""
        for worker_id in list(self._live):
            worker = self._live[worker_id]
            try:
                write_frame(worker.proc.stdin, {"type": "exit"})
                worker.proc.wait(timeout=5)
            except (OSError, ValueError, subprocess.TimeoutExpired):
                pass
            self._drop(worker_id)

    def __enter__(self) -> "LocalProcessLauncher":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- the coordinator-facing primitive ------------------------------------
    def run_chunk(
        self,
        worker_id: int,
        chunk_id: int,
        points: list[SweepPoint],
        timeout: float | None = None,
    ) -> list:
        """Run one chunk on one worker; blocking.  See module docstring
        for the failure contract."""
        worker = self._ensure(worker_id)
        deadline = None if timeout is None else time.monotonic() + timeout
        try:
            write_frame(worker.proc.stdin, {
                "type": "chunk",
                "chunk": chunk_id,
                "points": [encode_point(point) for point in points],
            })
        except (OSError, ValueError) as exc:
            self._drop(worker_id)
            raise WorkerDied(
                f"worker {worker_id} unreachable: {exc}"
            ) from exc
        try:
            frame = self._read_frame(worker, deadline, chunk_id)
        except ChunkTimeout:
            # The worker is wedged on this chunk; kill it so the slot
            # comes back clean for the retry (wherever that lands).
            self._drop(worker_id)
            raise ChunkTimeout(
                f"chunk {chunk_id} exceeded {timeout}s on worker "
                f"{worker_id}; worker killed"
            ) from None
        except WorkerDied as exc:
            self._drop(worker_id)
            raise WorkerDied(
                f"worker {worker_id} died running chunk {chunk_id}: {exc}"
            ) from exc
        if frame.get("type") == "error":
            raise ChunkFailed(
                f"chunk {chunk_id} failed on worker {worker_id}: "
                f"{frame.get('error')}"
            )
        expected = [point_key(point) for point in points]
        if (
            frame.get("type") != "result"
            or frame.get("chunk") != chunk_id
            or frame.get("keys") != expected
        ):
            self._drop(worker_id)
            raise WorkerDied(
                f"worker {worker_id} answered chunk {chunk_id} with a "
                f"mismatched frame ({frame.get('type')!r} for chunk "
                f"{frame.get('chunk')!r}); protocol desync"
            )
        return [decode_stats(payload) for payload in frame["stats"]]

    # -- frame IO with a deadline --------------------------------------------
    def _read_frame(self, worker: _Worker, deadline, chunk_id) -> dict:
        fd = worker.proc.stdout.fileno()
        while True:
            frame, worker.buffer = _try_parse(worker.buffer)
            if frame is not None:
                return frame
            remaining = None
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise ChunkTimeout(f"chunk {chunk_id}")
            ready, _, _ = select.select([fd], [], [], remaining)
            if not ready:
                raise ChunkTimeout(f"chunk {chunk_id}")
            data = os.read(fd, 1 << 16)
            if not data:
                raise WorkerDied("EOF on the worker's result stream")
            worker.buffer += data


def _try_parse(buffer: bytes):
    """One complete frame off ``buffer``: ``(payload|None, rest)``."""
    import json

    if len(buffer) < 4:
        return None, buffer
    (length,) = struct.unpack("<I", buffer[:4])
    if length > MAX_FRAME_BYTES:
        raise WorkerDied(f"frame of {length} bytes exceeds the wire limit")
    if len(buffer) < 4 + length:
        return None, buffer
    try:
        payload = json.loads(buffer[4:4 + length])
    except ValueError as exc:
        raise WorkerDied(f"undecodable frame: {exc}") from exc
    if not isinstance(payload, dict):
        raise WorkerDied(f"frame must be an object, got {payload!r}")
    return payload, buffer[4 + length:]


class ServiceLauncher:
    """One sweep-service endpoint per worker slot.

    Each chunk becomes a ``POST /v1/sweep`` with the chunk's explicit
    encoded points; the remote end runs them through the exact
    ``run_point`` path a local sweep uses, so bit-identity is inherited
    from the wire contract.  Remote result caches are an optimization
    the determinism contract already covers (cached payloads are the
    verbatim bytes a fresh run produced).
    """

    def __init__(self, endpoints: list, timeout: float = 30.0,
                 use_cache: bool = True, poll_s: float = 0.05):
        from repro.service.client import ServiceClient

        if not endpoints:
            raise ValueError("need at least one service endpoint")
        self._clients = []
        for endpoint in endpoints:
            if isinstance(endpoint, str):
                host, _, port = endpoint.rpartition(":")
                self._clients.append(
                    ServiceClient(host or "127.0.0.1", int(port),
                                  timeout=timeout)
                )
            else:  # an existing client (tests inject doubles)
                self._clients.append(endpoint)
        self.workers = len(self._clients)
        self.use_cache = use_cache
        self.poll_s = poll_s

    def pids(self) -> dict[int, int]:
        return {}  # remote processes; nothing SIGKILL-able from here

    def close(self) -> None:
        pass  # servers outlive their clients by design

    def __enter__(self) -> "ServiceLauncher":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def run_chunk(
        self,
        worker_id: int,
        chunk_id: int,
        points: list[SweepPoint],
        timeout: float | None = None,
    ) -> list:
        from repro.service.client import FINAL_STATES, ServiceError

        client = self._clients[worker_id % self.workers]
        deadline = None if timeout is None else time.monotonic() + timeout
        try:
            view = client.sweep(
                points=[encode_point(point) for point in points],
                use_cache=self.use_cache,
            )
        except ServiceError as exc:
            raise ChunkFailed(
                f"chunk {chunk_id} rejected by worker {worker_id}: {exc}"
            ) from exc
        except OSError as exc:
            raise WorkerDied(
                f"service worker {worker_id} unreachable: {exc}"
            ) from exc
        envelope = view.get("result")
        if envelope is None:
            envelope = self._await(client, view["id"], chunk_id,
                                   worker_id, deadline)
        try:
            results = envelope["results"]
            return [decode_stats(results[point.label]) for point in points]
        except (KeyError, TypeError, ValueError) as exc:
            raise ChunkFailed(
                f"chunk {chunk_id}: service worker {worker_id} returned "
                f"an incomplete result envelope ({exc})"
            ) from exc

    def _await(self, client, job_id, chunk_id, worker_id, deadline) -> dict:
        from repro.service.client import FINAL_STATES, ServiceError

        while True:
            if deadline is not None and time.monotonic() >= deadline:
                try:
                    client.cancel(job_id)
                except (ServiceError, OSError):
                    pass
                raise ChunkTimeout(
                    f"chunk {chunk_id} (job {job_id}) timed out on "
                    f"service worker {worker_id}; job cancelled"
                )
            try:
                view = client.job(job_id)
            except OSError as exc:
                raise WorkerDied(
                    f"service worker {worker_id} unreachable while "
                    f"chunk {chunk_id} ran: {exc}"
                ) from exc
            if view["state"] in FINAL_STATES:
                break
            time.sleep(self.poll_s)
        if view["state"] != "done":
            raise ChunkFailed(
                f"chunk {chunk_id} {view['state']} on service worker "
                f"{worker_id}: {view.get('error')}"
            )
        try:
            return client.result(job_id)["result"]
        except (ServiceError, OSError) as exc:
            raise WorkerDied(
                f"service worker {worker_id} lost the result of chunk "
                f"{chunk_id}: {exc}"
            ) from exc
