"""The sweep coordinator: chunk, dispatch, retry, merge.

:func:`run_dsweep` turns one point grid into the same ``{label:
RunStats}`` mapping a local :func:`~repro.core.sweep.run_sweep`
returns — bit-identically — by chunking the grid into work units and
dispatching them across a launcher's worker slots
(:mod:`repro.dist.launchers`).

Determinism contract
--------------------
Results are merged by *input position*, never arrival order, and the
merge is checked against the full grid
(:func:`~repro.core.sweep.assert_merge_complete`) before anything is
returned.  Workers run points through the exact ``run_point`` path a
local sweep uses and stats cross the wire through the bit-exact
``to_dict``/``stats_from_dict`` round trip, so where a point ran can
never change what it returned.

Robustness
----------
Failures re-queue the chunk for any other worker, bounded by
``max_retries`` attempts; only when a chunk exhausts its retries —
i.e. the work could not be re-run elsewhere either — does the sweep
fail, loudly, naming the lost point identities
(:class:`DistSweepError`).  A dead worker is respawned by its
launcher; a chunk that blows ``chunk_timeout`` gets its worker killed
first so a wedged simulation cannot absorb retries.  When every
pending chunk is taken, idle workers re-dispatch the slowest in-flight
straggler (elapsed > ``straggler_factor`` x the median completed-chunk
duration); whichever copy finishes first wins and the duplicate result
is dropped.  With a ``journal``, completed chunks are persisted as
they land, so an interrupted sweep re-run with the same grid resumes
instead of recomputing (:mod:`repro.dist.journal`).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field, replace

from repro.core.sweep import (
    SweepPoint,
    app_key,
    assert_merge_complete,
    point_key,
)
from repro.dist.journal import ChunkJournal
from repro.dist.launchers import ChunkFailed, ChunkTimeout, WorkerDied

#: Default ceiling on points per chunk: small enough that retries and
#: journal increments stay cheap, big enough to amortize dispatch.
DEFAULT_CHUNK_SIZE = 4

#: A straggler must also have run at least this long before an idle
#: worker duplicates it (guards against thrashing on tiny chunks).
MIN_STRAGGLER_S = 0.5


class DistSweepError(RuntimeError):
    """The sweep lost points it could not re-run anywhere.

    Raised only after the retry budget is exhausted; carries the lost
    point identities (``label [point_key]``) and the last failure.
    """

    def __init__(self, lost: list[str], cause: str):
        self.lost = list(lost)
        self.cause = cause
        super().__init__(
            f"lost {len(self.lost)} point(s) after exhausting retries: "
            f"{self.lost} (last failure: {cause})"
        )


@dataclass
class _Chunk:
    """One work unit: a contiguous same-application slice of the grid."""

    id: int
    indices: list[int]  # positions in the (todo) point list
    points: list[SweepPoint]
    keys: list[str] = field(default_factory=list)
    attempts: int = 0  # dispatches that have *failed*
    running: int = 0  # live dispatches right now (straggler dup <= 2)
    started: float = 0.0  # monotonic start of the oldest live dispatch

    def __post_init__(self):
        if not self.keys:
            self.keys = [point_key(point) for point in self.points]


def make_chunks(
    points: list[SweepPoint], chunk_size: int = DEFAULT_CHUNK_SIZE
) -> list[list[int]]:
    """Index chunks: same-application groups, sliced to ``chunk_size``.

    Grouping by :func:`~repro.core.sweep.app_key` first keeps trace
    reuse intact — a worker that materializes an application's traces
    replays them for every other point of the chunk — and slicing
    bounds the retry/journal granularity.  Order inside a chunk follows
    input order, so the merge is position-stable.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    groups: dict[tuple, list[int]] = {}
    for index, point in enumerate(points):
        groups.setdefault(app_key(point), []).append(index)
    chunks = []
    for indices in groups.values():
        for start in range(0, len(indices), chunk_size):
            chunks.append(indices[start:start + chunk_size])
    return chunks


class _State:
    """Shared coordinator state; every mutation holds ``cond``."""

    def __init__(self, chunks: list[_Chunk], max_retries: int,
                 straggler_factor: float | None, workers: int):
        self.cond = threading.Condition()
        self.pending: deque[_Chunk] = deque(chunks)
        self.results: dict[int, list] = {}
        self.durations: list[float] = []
        self.duplicates = 0  # results dropped by first-wins
        self.redispatches = 0  # straggler duplications issued
        self.retries = 0  # failure re-queues
        self.retired = 0  # worker slots quarantined for repeat deaths
        self.max_retries = max_retries
        self.straggler_factor = straggler_factor
        self.fatal: DistSweepError | None = None
        self.inflight: dict[int, _Chunk] = {}
        self.active = workers

    def done(self) -> bool:
        return self.fatal is not None or (
            not self.pending and not self.inflight
        )

    # -- dispatch ------------------------------------------------------------
    def next_chunk(self) -> _Chunk | None:
        """Pop fresh work, or duplicate a straggler; None = wait/exit."""
        while self.pending:
            chunk = self.pending.popleft()
            if chunk.id in self.results:
                continue  # a straggler duplicate beat the retry to it
            return chunk
        return self._steal_straggler()

    def _steal_straggler(self) -> _Chunk | None:
        if self.straggler_factor is None or not self.durations:
            return None
        ordered = sorted(self.durations)
        median = ordered[len(ordered) // 2]
        threshold = max(self.straggler_factor * median, MIN_STRAGGLER_S)
        now = time.monotonic()
        slowest = None
        for chunk in self.inflight.values():
            if chunk.running != 1 or chunk.id in self.results:
                continue  # already duplicated (or already answered)
            elapsed = now - chunk.started
            if elapsed > threshold and (
                slowest is None
                or elapsed > now - slowest.started
            ):
                slowest = chunk
        if slowest is not None:
            self.redispatches += 1
        return slowest

    def begin(self, chunk: _Chunk) -> None:
        if chunk.running == 0:
            chunk.started = time.monotonic()
        chunk.running += 1
        self.inflight[chunk.id] = chunk

    def _settle(self, chunk: _Chunk) -> None:
        chunk.running -= 1
        if chunk.running <= 0:
            self.inflight.pop(chunk.id, None)

    # -- outcomes ------------------------------------------------------------
    def complete(self, chunk: _Chunk, stats: list) -> bool:
        """Record a result; False when a duplicate already landed."""
        with self.cond:
            self._settle(chunk)
            if chunk.id in self.results:
                self.duplicates += 1
                self.cond.notify_all()
                return False
            self.results[chunk.id] = stats
            self.durations.append(time.monotonic() - chunk.started)
            self.cond.notify_all()
            return True

    def fail(self, chunk: _Chunk, exc: Exception) -> None:
        """Re-queue a failed dispatch, or declare the sweep lost."""
        with self.cond:
            self._settle(chunk)
            if chunk.id in self.results:
                # The other copy of this straggler already answered;
                # this failure cost nothing.
                self.cond.notify_all()
                return
            chunk.attempts += 1
            if chunk.attempts > self.max_retries:
                if self.fatal is None:
                    self.fatal = DistSweepError(
                        lost=[
                            f"{point.label} [{key}]"
                            for point, key in zip(chunk.points, chunk.keys)
                        ],
                        cause=f"{type(exc).__name__}: {exc}",
                    )
            else:
                self.retries += 1
                self.pending.append(chunk)
            self.cond.notify_all()

    def retire_worker(self) -> None:
        """A slot quarantined itself after repeated deaths.

        The sweep survives as long as one slot remains; losing the last
        one with work outstanding is fatal — naming everything still
        unfinished — because nothing is left to re-run it on.
        """
        with self.cond:
            self.active -= 1
            self.retired += 1
            if self.active == 0 and self.fatal is None and not self.done():
                remaining = [
                    f"{point.label} [{key}]"
                    for chunk in list(self.pending)
                    + list(self.inflight.values())
                    if chunk.id not in self.results
                    for point, key in zip(chunk.points, chunk.keys)
                ]
                self.fatal = DistSweepError(
                    lost=remaining,
                    cause="every worker slot died repeatedly",
                )
            self.cond.notify_all()


def _worker_loop(worker_id: int, launcher, state: _State,
                 chunk_timeout, journal, on_progress,
                 worker_failure_limit: int) -> None:
    consecutive_deaths = 0
    while True:
        with state.cond:
            while True:
                if state.done():
                    return
                chunk = state.next_chunk()
                if chunk is not None:
                    state.begin(chunk)
                    break
                # Nothing to take yet: wake on completions/failures,
                # or on a timer so straggler checks keep happening.
                state.cond.wait(timeout=0.05)
        try:
            stats = launcher.run_chunk(
                worker_id, chunk.id, chunk.points, timeout=chunk_timeout
            )
        except ChunkFailed as exc:
            # The worker is healthy; the failure belongs to the chunk.
            consecutive_deaths = 0
            state.fail(chunk, exc)
            continue
        except (WorkerDied, ChunkTimeout) as exc:
            state.fail(chunk, exc)
            consecutive_deaths += 1
            if consecutive_deaths >= worker_failure_limit:
                # This slot keeps dying (bad host, poisoned respawn):
                # quarantine it so it stops bleeding chunk retries.
                state.retire_worker()
                return
            continue
        consecutive_deaths = 0
        if state.complete(chunk, stats):
            if journal is not None:
                journal.record(chunk.id, chunk.keys, stats)
            if on_progress is not None:
                with state.cond:
                    done = sum(len(v) for v in state.results.values())
                on_progress(done)


def run_dsweep(
    points: list[SweepPoint],
    launcher,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    chunk_timeout: float | None = None,
    max_retries: int = 2,
    worker_failure_limit: int = 2,
    straggler_factor: float | None = 4.0,
    journal=None,
    resume=None,
    telemetry_interval: int | None = None,
    on_progress=None,
):
    """Run every point across ``launcher``'s workers; returns
    ``{point.label: RunStats}`` in input order, bit-identical to
    ``run_sweep(points)``.

    ``journal`` (a path or :class:`~repro.dist.journal.ChunkJournal`)
    persists completed chunks and replays them on a re-run of the same
    grid.  ``resume`` is a ``{point_key: RunStats}`` mapping (e.g. from
    :func:`~repro.dist.journal.load_results_file`) applied before
    chunking, exactly like ``run_sweep``'s.  ``straggler_factor=None``
    disables tail re-dispatch; ``on_progress`` (when given) receives
    the running count of completed points.

    Failure budgets compose: each chunk survives ``max_retries``
    failed dispatches, and each worker slot survives
    ``worker_failure_limit`` *consecutive* deaths/timeouts before it
    is quarantined (a slot that dies on every chunk it touches would
    otherwise drain the whole grid's retry budget by itself).  Keep
    ``worker_failure_limit <= max_retries`` so one bad slot can never
    exhaust a chunk alone.
    """
    if telemetry_interval is not None:
        points = [
            replace(point, config=point.config.with_(
                telemetry_interval=telemetry_interval))
            for point in points
        ]
    labels = [point.label for point in points]
    if len(set(labels)) != len(labels):
        raise ValueError("sweep point labels must be unique")
    if max_retries < 0:
        raise ValueError("max_retries must be >= 0")

    hits: dict[int, object] = {}
    if resume:
        for index, point in enumerate(points):
            known = resume.get(point_key(point))
            if known is not None:
                hits[index] = known
    todo = [p for i, p in enumerate(points) if i not in hits]

    merged: list = [None] * len(todo)
    if todo:
        chunks = [
            _Chunk(id=i, indices=indices,
                   points=[todo[j] for j in indices])
            for i, indices in enumerate(make_chunks(todo, chunk_size))
        ]
        if journal is not None and not isinstance(journal, ChunkJournal):
            journal = ChunkJournal(journal)
        replayed: dict[int, list] = {}
        if journal is not None:
            replayed = journal.open([chunk.keys for chunk in chunks])

        workers = max(1, getattr(launcher, "workers", 1))
        state = _State(
            [c for c in chunks if c.id not in replayed],
            max_retries=max_retries,
            straggler_factor=straggler_factor,
            workers=workers,
        )
        state.results.update(replayed)
        threads = [
            threading.Thread(
                target=_worker_loop,
                args=(worker_id, launcher, state, chunk_timeout,
                      journal, on_progress, worker_failure_limit),
                name=f"repro-dsweep-{worker_id}",
                daemon=True,
            )
            for worker_id in range(workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if state.fatal is not None:
            raise state.fatal

        for chunk in chunks:
            stats = state.results.get(chunk.id)
            if stats is None:
                continue  # assert_merge_complete names it below
            for position, one in zip(chunk.indices, stats):
                merged[position] = one
        run_dsweep.last_stats = {  # introspection for tests/benchmarks
            "chunks": len(chunks),
            "replayed": len(replayed),
            "retries": state.retries,
            "redispatches": state.redispatches,
            "duplicates_dropped": state.duplicates,
            "workers_retired": state.retired,
        }
    else:
        run_dsweep.last_stats = {
            "chunks": 0, "replayed": 0, "retries": 0,
            "redispatches": 0, "duplicates_dropped": 0,
            "workers_retired": 0,
        }
    assert_merge_complete(todo, merged)

    fresh = iter(merged)
    return {
        point.label: (hits[index] if index in hits else next(fresh))
        for index, point in enumerate(points)
    }


#: Stats of the most recent ``run_dsweep`` call (single-threaded use).
run_dsweep.last_stats = {}
