"""Distributed sweep engine: run one point grid across many workers.

The coordinator (:mod:`repro.dist.coordinator`) chunks a
``(benchmark, cdp, size, config)`` point grid into work units,
dispatches them to a launcher-managed worker pool — local subprocesses
(:class:`~repro.dist.launchers.LocalProcessLauncher`) or remote
``repro serve`` instances
(:class:`~repro.dist.launchers.ServiceLauncher`) — and merges the
results back in input order, bit-identical to a local
:func:`~repro.core.sweep.run_sweep` of the same grid.  Robustness is
structural: per-chunk timeouts with bounded retry, straggler
re-dispatch, worker-death detection that only fails the sweep after
the work could not be re-run elsewhere, and an on-disk journal
(:mod:`repro.dist.journal`) so an interrupted sweep resumes without
recomputation.
"""

from repro.dist.coordinator import DistSweepError, make_chunks, run_dsweep
from repro.dist.journal import ChunkJournal, load_results_file, write_results_file
from repro.dist.launchers import (
    ChunkFailed,
    ChunkTimeout,
    LocalProcessLauncher,
    ServiceLauncher,
    WorkerDied,
)

__all__ = [
    "ChunkFailed",
    "ChunkJournal",
    "ChunkTimeout",
    "DistSweepError",
    "LocalProcessLauncher",
    "ServiceLauncher",
    "WorkerDied",
    "load_results_file",
    "make_chunks",
    "run_dsweep",
    "write_results_file",
]
