"""Every table and figure of the paper as a runnable experiment.

Conventions:

- Each function accepts a ``config`` (default: the RTX 3070 baseline)
  and returns a list of row dicts ready for
  :func:`repro.core.report.format_table`.
- Benchmarks default to the SMALL datasets so a full figure finishes
  in seconds; pass ``size=DatasetSize.MEDIUM``/``LARGE`` to scale up.
- Per-figure benchmark subsets match the paper (Fig 2 uses SW/NW/STAR;
  Fig 7 uses NW/PairHMM; everything else runs the full suite with CDP
  variants).
"""

from __future__ import annotations

from dataclasses import asdict

from repro.core.config_presets import (
    CACHE_SWEEP,
    CTA_SCALING,
    MEM_CONTROLLERS,
    NOC_BANDWIDTH_SWEEP,
    NOC_LATENCY_SWEEP,
    SCHEDULERS,
    TOPOLOGIES,
    baseline_config,
    scale_cta_resources,
    with_cache_sizes,
    with_controller,
    with_topology,
)
from repro.core.runner import run_benchmark, variant_name
from repro.core.suite import BenchmarkSuite
from repro.core.sweep import run_sweep, sweep_point
from repro.cpu.timing import cpu_cycles
from repro.data.datasets import DatasetSize, dataset_for
from repro.kernels import benchmark_names
from repro.sim.config import GPUConfig
from repro.sim.stats import RunStats


def suite_variants() -> list[tuple[str, bool]]:
    """All 20 (benchmark, cdp) variants in Table III order."""
    return [(abbr, cdp) for abbr in benchmark_names() for cdp in (False, True)]


def _sweep_variants(
    benchmarks: list[str] | None = None,
) -> list[tuple[str, bool]]:
    """``suite_variants`` filtered to an optional benchmark subset."""
    return [
        (abbr, cdp) for abbr, cdp in suite_variants()
        if not benchmarks or abbr in benchmarks
    ]


# ---------------------------------------------------------------------------
# Tables
# ---------------------------------------------------------------------------

def table1_configs() -> list[dict]:
    """Table I: the hardware configuration space (baseline bolded)."""
    from repro.core import config_presets as presets

    base = baseline_config()
    return [
        {"configuration": "Shader Cores", "baseline": base.num_sms,
         "sweep": [base.num_sms]},
        {"configuration": "Warp Size", "baseline": base.warp_size,
         "sweep": [base.warp_size]},
        {"configuration": "Registers / Core",
         "baseline": base.registers_per_sm, "sweep": presets.REGISTER_SWEEP},
        {"configuration": "CTAs / Core", "baseline": base.max_ctas_per_sm,
         "sweep": presets.CTA_SWEEP},
        {"configuration": "Threads / Core",
         "baseline": base.max_threads_per_sm, "sweep": presets.THREAD_SWEEP},
        {"configuration": "Shared Memory / Core (KB)",
         "baseline": base.shared_mem_per_sm // 1024,
         "sweep": presets.SHARED_MEM_SWEEP_KB},
        {"configuration": "L1 Cache", "baseline": base.l1.size_bytes,
         "sweep": [l1 for l1, _ in CACHE_SWEEP]},
        {"configuration": "L2 Cache", "baseline": base.l2.size_bytes,
         "sweep": [l2 for _, l2 in CACHE_SWEEP]},
        {"configuration": "Memory Controller",
         "baseline": base.dram.controller, "sweep": MEM_CONTROLLERS},
        {"configuration": "Scheduler", "baseline": base.scheduler,
         "sweep": SCHEDULERS},
    ]


def table2_configs() -> list[dict]:
    """Table II: the interconnect configuration space."""
    base = baseline_config()
    return [
        {"configuration": "Topology", "baseline": base.noc.topology,
         "sweep": TOPOLOGIES},
        {"configuration": "Routing Mechanism", "baseline": "per topology",
         "sweep": ["dimension order", "destination tag",
                   "nearest common ancestor"]},
        {"configuration": "Routing delay", "baseline": base.noc.router_delay,
         "sweep": NOC_LATENCY_SWEEP},
        {"configuration": "Flit size (Bytes)",
         "baseline": base.noc.channel_bytes, "sweep": NOC_BANDWIDTH_SWEEP},
    ]


def table3_properties(config: GPUConfig | None = None) -> list[dict]:
    """Table III: benchmark properties plus the model's CTA/core."""
    suite = BenchmarkSuite(config or baseline_config())
    return [asdict(suite.properties(abbr)) for abbr in suite.names()]


# ---------------------------------------------------------------------------
# Figures
# ---------------------------------------------------------------------------

def fig2_cpu_gpu(
    config: GPUConfig | None = None, size: DatasetSize = DatasetSize.SMALL
) -> list[dict]:
    """Fig 2: CPU vs GPU vs GPU+CDP for SW, NW, STAR (normalized to CPU)."""
    config = config or baseline_config()
    rows = []
    for abbr in ("SW", "NW", "STAR"):
        workload = dataset_for(abbr, size)
        cpu = cpu_cycles(abbr, workload)
        gpu = run_benchmark(
            abbr, cdp=False, size=size, config=config, workload=workload
        ).device_time()
        gpu_cdp = run_benchmark(
            abbr, cdp=True, size=size, config=config, workload=workload
        ).device_time()
        rows.append({
            "benchmark": abbr,
            "cpu_cycles": cpu,
            "gpu_cycles": gpu,
            "gpu_cdp_cycles": gpu_cdp,
            "gpu_norm": gpu / cpu,
            "gpu_cdp_norm": gpu_cdp / cpu,
            "gpu_speedup": cpu / gpu,
            "gpu_cdp_speedup": cpu / gpu_cdp,
        })
    return rows


def fig3_cdp(
    config: GPUConfig | None = None, size: DatasetSize = DatasetSize.SMALL
) -> list[dict]:
    """Fig 3: kernel execution time, CDP vs non-CDP, per benchmark."""
    config = config or baseline_config()
    rows = []
    for abbr in benchmark_names():
        base = run_benchmark(abbr, cdp=False, size=size, config=config)
        cdp = run_benchmark(abbr, cdp=True, size=size, config=config)
        rows.append({
            "benchmark": abbr,
            "noncdp_cycles": base.device_time(),
            "cdp_cycles": cdp.device_time(),
            "improvement": 1.0 - cdp.device_time() / base.device_time(),
        })
    return rows


def fig4_kernel_pci(
    config: GPUConfig | None = None, size: DatasetSize = DatasetSize.SMALL
) -> list[dict]:
    """Fig 4: kernel/PCI call counts and total/average times."""
    config = config or baseline_config()
    rows = []
    for abbr, cdp in suite_variants():
        stats = run_benchmark(abbr, cdp=cdp, size=size, config=config)
        launches = stats.kernel_launches + stats.device_launches
        rows.append({
            "benchmark": variant_name(abbr, cdp),
            "kernel_count": launches,
            "pci_count": stats.memcpy_calls,
            "kernel_cycles": stats.kernel_cycles,
            "pci_cycles": stats.pci_cycles,
            "avg_kernel_cycles": stats.kernel_cycles / max(1, launches),
            "avg_pci_cycles": stats.pci_cycles / max(1, stats.memcpy_calls),
        })
    return rows


def fig5_stalls(
    config: GPUConfig | None = None, size: DatasetSize = DatasetSize.SMALL
) -> list[dict]:
    """Fig 5: pipeline-stall breakdown per benchmark."""
    config = config or baseline_config()
    rows = []
    for abbr, cdp in suite_variants():
        stats = run_benchmark(abbr, cdp=cdp, size=size, config=config)
        row = {"benchmark": variant_name(abbr, cdp)}
        row.update(stats.stall_breakdown())
        rows.append(row)
    return rows


def fig6_sram(config: GPUConfig | None = None) -> list[dict]:
    """Fig 6: register / shared / constant utilization per benchmark."""
    config = config or baseline_config()
    suite = BenchmarkSuite(config)
    from repro.kernels import build_application
    from repro.sim.occupancy import occupancy_report

    rows = []
    for abbr in suite.names():
        app = build_application(abbr)
        kernel = getattr(app, "kernel", None)
        if kernel is None:
            for op in app.host_program():
                if hasattr(op, "launch"):
                    kernel = op.launch.kernel
                    break
        report = occupancy_report(config, kernel)
        rows.append({
            "benchmark": abbr,
            "registers": report.register_utilization,
            "shared_memory": report.shared_utilization,
            "constant": report.constant_utilization,
            "ctas_per_core": report.ctas_per_sm,
            "limiter": report.limiter,
        })
    return rows


def fig7_shared_memory(
    config: GPUConfig | None = None, size: DatasetSize = DatasetSize.SMALL
) -> list[dict]:
    """Fig 7: NW and PairHMM with vs without shared memory."""
    config = config or baseline_config()
    rows = []
    for abbr in ("NW", "PairHMM"):
        with_smem = run_benchmark(
            abbr, size=size, config=config, use_shared=True
        ).device_time()
        without = run_benchmark(
            abbr, size=size, config=config, use_shared=False
        ).device_time()
        rows.append({
            "benchmark": abbr,
            "with_shared_cycles": with_smem,
            "without_shared_cycles": without,
            "slowdown_without": without / with_smem,
        })
    return rows


def fig8_instruction_mix(
    config: GPUConfig | None = None, size: DatasetSize = DatasetSize.SMALL
) -> list[dict]:
    """Fig 8: dynamic instruction-class distribution."""
    config = config or baseline_config()
    rows = []
    for abbr, cdp in suite_variants():
        stats = run_benchmark(abbr, cdp=cdp, size=size, config=config)
        row = {"benchmark": variant_name(abbr, cdp)}
        row.update(stats.op_fractions())
        rows.append(row)
    return rows


def fig9_memory_mix(
    config: GPUConfig | None = None, size: DatasetSize = DatasetSize.SMALL
) -> list[dict]:
    """Fig 9: memory-space distribution of memory instructions."""
    config = config or baseline_config()
    rows = []
    for abbr, cdp in suite_variants():
        stats = run_benchmark(abbr, cdp=cdp, size=size, config=config)
        row = {"benchmark": variant_name(abbr, cdp)}
        row.update(stats.mem_fractions())
        rows.append(row)
    return rows


def fig10_warp_occupancy(
    config: GPUConfig | None = None, size: DatasetSize = DatasetSize.SMALL
) -> list[dict]:
    """Fig 10: warp-occupancy histogram (W1-4 .. W29-32)."""
    config = config or baseline_config()
    rows = []
    for abbr, cdp in suite_variants():
        stats = run_benchmark(abbr, cdp=cdp, size=size, config=config)
        row = {"benchmark": variant_name(abbr, cdp)}
        row.update(stats.occupancy_fractions())
        rows.append(row)
    return rows


def fig11_cta_sweep(
    config: GPUConfig | None = None,
    size: DatasetSize = DatasetSize.SMALL,
    benchmarks: list[str] | None = None,
    num_sms: int = 4,
    jobs: int | None = 0,
) -> list[dict]:
    """Fig 11: speedup when CTA/core (and linked resources) scale.

    Resident-CTA capacity only binds when grids oversubscribe the
    machine, so this sweep runs on a small ``num_sms`` device (the
    paper's 32K-scale inputs oversubscribe all 78 SMs; the SMALL
    datasets would leave them idle).  PairHMM uses the MEDIUM batch for
    the same reason — its CTA demand must exceed baseline capacity for
    the paper's PairHMM-CDP scaling trend to be visible.
    """
    config = (config or baseline_config()).with_(num_sms=num_sms)
    variants = _sweep_variants(benchmarks)
    points = [
        sweep_point(
            f"{variant_name(abbr, cdp)}|x{factor}",
            abbr,
            scale_cta_resources(config, factor),
            cdp=cdp,
            size=DatasetSize.MEDIUM if abbr == "PairHMM" else size,
        )
        for abbr, cdp in variants
        for factor in CTA_SCALING
    ]
    stats = run_sweep(points, jobs=jobs)
    rows = []
    for abbr, cdp in variants:
        name = variant_name(abbr, cdp)
        row = {"benchmark": name}
        for factor in CTA_SCALING:
            row[f"x{factor}"] = stats[f"{name}|x{factor}"].device_time()
        base_time = row["x1.0"]
        for factor in CTA_SCALING:
            row[f"speedup_x{factor}"] = base_time / row[f"x{factor}"]
        rows.append(row)
    return rows


def cache_sweep_results(
    config: GPUConfig | None = None,
    size: DatasetSize = DatasetSize.SMALL,
    benchmarks: list[str] | None = None,
    jobs: int | None = 0,
) -> list[dict]:
    """Shared sweep behind Figs 12-14: one row per (variant, cache pair)."""
    config = config or baseline_config()
    variants = _sweep_variants(benchmarks)
    points = [
        sweep_point(
            f"{variant_name(abbr, cdp)}|l1={l1_bytes}|l2={l2_bytes}",
            abbr,
            with_cache_sizes(config, l1_bytes, l2_bytes),
            cdp=cdp,
            size=size,
        )
        for abbr, cdp in variants
        for l1_bytes, l2_bytes in CACHE_SWEEP
    ]
    results = run_sweep(points, jobs=jobs)
    rows = []
    for abbr, cdp in variants:
        name = variant_name(abbr, cdp)
        for l1_bytes, l2_bytes in CACHE_SWEEP:
            stats = results[f"{name}|l1={l1_bytes}|l2={l2_bytes}"]
            rows.append({
                "benchmark": name,
                "l1_bytes": l1_bytes,
                "l2_bytes": l2_bytes,
                "cycles": stats.device_time(),
                "ipc": stats.ipc,
                "l1_miss_rate": stats.l1.miss_rate,
                "l2_miss_rate": stats.l2.miss_rate,
            })
    return rows


def _baseline_key(row: dict) -> bool:
    return row["l1_bytes"] == 128 * 1024 and row["l2_bytes"] == 4 * 1024 * 1024


def fig12_cache_speedup(sweep: list[dict] | None = None, **kwargs) -> list[dict]:
    """Fig 12: IPC speedup per cache configuration vs the baseline."""
    sweep = sweep or cache_sweep_results(**kwargs)
    baselines = {
        row["benchmark"]: row["ipc"] for row in sweep if _baseline_key(row)
    }
    return [
        {
            "benchmark": row["benchmark"],
            "l1_bytes": row["l1_bytes"],
            "l2_bytes": row["l2_bytes"],
            "speedup": row["ipc"] / baselines[row["benchmark"]]
            if baselines[row["benchmark"]]
            else 0.0,
        }
        for row in sweep
    ]


def fig13_l1_miss(sweep: list[dict] | None = None, **kwargs) -> list[dict]:
    """Fig 13: L1 miss rate per cache configuration."""
    sweep = sweep or cache_sweep_results(**kwargs)
    return [
        {k: row[k] for k in ("benchmark", "l1_bytes", "l2_bytes", "l1_miss_rate")}
        for row in sweep
    ]


def fig14_l2_miss(sweep: list[dict] | None = None, **kwargs) -> list[dict]:
    """Fig 14: L2 miss rate per cache configuration."""
    sweep = sweep or cache_sweep_results(**kwargs)
    return [
        {k: row[k] for k in ("benchmark", "l1_bytes", "l2_bytes", "l2_miss_rate")}
        for row in sweep
    ]


def fig15_perfect_memory(
    config: GPUConfig | None = None,
    size: DatasetSize = DatasetSize.SMALL,
    jobs: int | None = 0,
) -> list[dict]:
    """Fig 15: speedup with a zero-latency memory system."""
    config = config or baseline_config()
    perfect_config = config.with_(perfect_memory=True)
    variants = _sweep_variants()
    points = []
    for abbr, cdp in variants:
        name = variant_name(abbr, cdp)
        points.append(sweep_point(f"{name}|base", abbr, config,
                                  cdp=cdp, size=size))
        points.append(sweep_point(f"{name}|perfect", abbr, perfect_config,
                                  cdp=cdp, size=size))
    results = run_sweep(points, jobs=jobs)
    rows = []
    for abbr, cdp in variants:
        name = variant_name(abbr, cdp)
        base = results[f"{name}|base"].device_time()
        perfect = results[f"{name}|perfect"].device_time()
        rows.append({
            "benchmark": name,
            "baseline_cycles": base,
            "perfect_cycles": perfect,
            "speedup": base / perfect,
        })
    return rows


def _controller_sweep(
    config: GPUConfig, size: DatasetSize, jobs: int | None
) -> dict[str, RunStats]:
    """Shared Figs 16/17 sweep: variant x controller, one run each."""
    points = [
        sweep_point(
            f"{variant_name(abbr, cdp)}|{controller}",
            abbr,
            with_controller(config, controller),
            cdp=cdp,
            size=size,
        )
        for abbr, cdp in _sweep_variants()
        for controller in MEM_CONTROLLERS
    ]
    return run_sweep(points, jobs=jobs)


def fig16_mem_controller(
    config: GPUConfig | None = None,
    size: DatasetSize = DatasetSize.SMALL,
    jobs: int | None = 0,
) -> list[dict]:
    """Fig 16: FR-FCFS vs FIFO vs OoO-128 memory controllers."""
    config = config or baseline_config()
    results = _controller_sweep(config, size, jobs)
    rows = []
    for abbr, cdp in _sweep_variants():
        name = variant_name(abbr, cdp)
        row = {"benchmark": name}
        times = {
            controller: results[f"{name}|{controller}"].device_time()
            for controller in MEM_CONTROLLERS
        }
        row.update(times)
        for controller in MEM_CONTROLLERS:
            row[f"norm_{controller}"] = times["frfcfs"] / times[controller]
        rows.append(row)
    return rows


def fig17_dram_efficiency(
    config: GPUConfig | None = None,
    size: DatasetSize = DatasetSize.SMALL,
    jobs: int | None = 0,
) -> list[dict]:
    """Fig 17: DRAM efficiency per benchmark and controller."""
    config = config or baseline_config()
    results = _controller_sweep(config, size, jobs)
    rows = []
    for abbr, cdp in _sweep_variants():
        name = variant_name(abbr, cdp)
        row = {"benchmark": name}
        for controller in MEM_CONTROLLERS:
            row[controller] = results[f"{name}|{controller}"].dram.efficiency
        rows.append(row)
    return rows


def fig18_dram_utilization(
    config: GPUConfig | None = None, size: DatasetSize = DatasetSize.SMALL
) -> list[dict]:
    """Fig 18: fraction of execution time the DRAM pins move data."""
    config = config or baseline_config()
    rows = []
    for abbr, cdp in suite_variants():
        stats = run_benchmark(abbr, cdp=cdp, size=size, config=config)
        rows.append({
            "benchmark": variant_name(abbr, cdp),
            "utilization": stats.dram_utilization(),
        })
    return rows


def _axis_sweep(
    config: GPUConfig,
    size: DatasetSize,
    jobs: int | None,
    axis: list,
    make_config,
    key,
    norm_value,
) -> list[dict]:
    """One-knob sweeps behind Figs 19-22: variant rows, axis columns.

    ``make_config(value)`` builds the config for one axis value,
    ``key(value)`` names its column, and ``norm_value`` is the axis
    value every other one is normalized against.
    """
    variants = _sweep_variants()
    points = [
        sweep_point(
            f"{variant_name(abbr, cdp)}|{key(value)}",
            abbr,
            make_config(value),
            cdp=cdp,
            size=size,
        )
        for abbr, cdp in variants
        for value in axis
    ]
    results = run_sweep(points, jobs=jobs)
    rows = []
    for abbr, cdp in variants:
        name = variant_name(abbr, cdp)
        row = {"benchmark": name}
        times = {
            value: results[f"{name}|{key(value)}"].device_time()
            for value in axis
        }
        for value in axis:
            row[key(value)] = times[value]
        for value in axis:
            row[f"norm_{key(value)}"] = times[norm_value] / times[value]
        rows.append(row)
    return rows


def fig19_scheduler(
    config: GPUConfig | None = None,
    size: DatasetSize = DatasetSize.SMALL,
    jobs: int | None = 0,
) -> list[dict]:
    """Fig 19: warp-scheduler sensitivity (normalized to LRR)."""
    config = config or baseline_config()
    return _axis_sweep(
        config, size, jobs, SCHEDULERS,
        lambda sched: config.with_(scheduler=sched),
        lambda sched: sched,
        "lrr",
    )


def fig20_topology(
    config: GPUConfig | None = None,
    size: DatasetSize = DatasetSize.SMALL,
    jobs: int | None = 0,
) -> list[dict]:
    """Fig 20: interconnect topology (normalized to the local crossbar)."""
    config = config or baseline_config()
    return _axis_sweep(
        config, size, jobs, TOPOLOGIES,
        lambda topology: with_topology(config, topology),
        lambda topology: topology,
        "xbar",
    )


def fig21_noc_latency(
    config: GPUConfig | None = None,
    size: DatasetSize = DatasetSize.SMALL,
    jobs: int | None = 0,
) -> list[dict]:
    """Fig 21: router latency +0/4/8/16 cycles on a mesh."""
    config = config or baseline_config()
    return _axis_sweep(
        config, size, jobs, NOC_LATENCY_SWEEP,
        lambda delay: with_topology(config, "mesh", router_delay=delay),
        lambda delay: f"delay{delay}",
        0,
    )


def fig22_noc_bandwidth(
    config: GPUConfig | None = None,
    size: DatasetSize = DatasetSize.SMALL,
    jobs: int | None = 0,
) -> list[dict]:
    """Fig 22: channel width 8/16/32/40B on a mesh (normalized to 40B)."""
    config = config or baseline_config()
    return _axis_sweep(
        config, size, jobs, NOC_BANDWIDTH_SWEEP,
        lambda width: with_topology(config, "mesh", channel_bytes=width),
        lambda width: f"bw{width}",
        40,
    )
