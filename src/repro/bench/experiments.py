"""Every table and figure of the paper as a runnable experiment.

Conventions:

- Each function accepts a ``config`` (default: the RTX 3070 baseline)
  and returns a list of row dicts ready for
  :func:`repro.core.report.format_table`.
- Benchmarks default to the SMALL datasets so a full figure finishes
  in seconds; pass ``size=DatasetSize.MEDIUM``/``LARGE`` to scale up.
- Per-figure benchmark subsets match the paper (Fig 2 uses SW/NW/STAR;
  Fig 7 uses NW/PairHMM; everything else runs the full suite with CDP
  variants).
"""

from __future__ import annotations

from dataclasses import asdict

from repro.core.config_presets import (
    CACHE_SWEEP,
    CTA_SCALING,
    MEM_CONTROLLERS,
    NOC_BANDWIDTH_SWEEP,
    NOC_LATENCY_SWEEP,
    SCHEDULERS,
    TOPOLOGIES,
    baseline_config,
    scale_cta_resources,
    with_cache_sizes,
    with_controller,
    with_topology,
)
from repro.core.runner import run_benchmark, variant_name
from repro.core.suite import BenchmarkSuite
from repro.cpu.timing import cpu_cycles
from repro.data.datasets import DatasetSize, dataset_for
from repro.kernels import BENCHMARKS, benchmark_names
from repro.sim.config import GPUConfig
from repro.sim.stats import OCCUPANCY_BUCKETS


def suite_variants() -> list[tuple[str, bool]]:
    """All 20 (benchmark, cdp) variants in Table III order."""
    return [(abbr, cdp) for abbr in benchmark_names() for cdp in (False, True)]


def _run_all(config: GPUConfig, size: DatasetSize):
    """Run every variant once; returns {variant_name: RunStats}."""
    return {
        variant_name(abbr, cdp): run_benchmark(abbr, cdp=cdp, size=size, config=config)
        for abbr, cdp in suite_variants()
    }


# ---------------------------------------------------------------------------
# Tables
# ---------------------------------------------------------------------------

def table1_configs() -> list[dict]:
    """Table I: the hardware configuration space (baseline bolded)."""
    from repro.core import config_presets as presets

    base = baseline_config()
    return [
        {"configuration": "Shader Cores", "baseline": base.num_sms,
         "sweep": [base.num_sms]},
        {"configuration": "Warp Size", "baseline": base.warp_size,
         "sweep": [base.warp_size]},
        {"configuration": "Registers / Core",
         "baseline": base.registers_per_sm, "sweep": presets.REGISTER_SWEEP},
        {"configuration": "CTAs / Core", "baseline": base.max_ctas_per_sm,
         "sweep": presets.CTA_SWEEP},
        {"configuration": "Threads / Core",
         "baseline": base.max_threads_per_sm, "sweep": presets.THREAD_SWEEP},
        {"configuration": "Shared Memory / Core (KB)",
         "baseline": base.shared_mem_per_sm // 1024,
         "sweep": presets.SHARED_MEM_SWEEP_KB},
        {"configuration": "L1 Cache", "baseline": base.l1.size_bytes,
         "sweep": [l1 for l1, _ in CACHE_SWEEP]},
        {"configuration": "L2 Cache", "baseline": base.l2.size_bytes,
         "sweep": [l2 for _, l2 in CACHE_SWEEP]},
        {"configuration": "Memory Controller",
         "baseline": base.dram.controller, "sweep": MEM_CONTROLLERS},
        {"configuration": "Scheduler", "baseline": base.scheduler,
         "sweep": SCHEDULERS},
    ]


def table2_configs() -> list[dict]:
    """Table II: the interconnect configuration space."""
    base = baseline_config()
    return [
        {"configuration": "Topology", "baseline": base.noc.topology,
         "sweep": TOPOLOGIES},
        {"configuration": "Routing Mechanism", "baseline": "per topology",
         "sweep": ["dimension order", "destination tag",
                   "nearest common ancestor"]},
        {"configuration": "Routing delay", "baseline": base.noc.router_delay,
         "sweep": NOC_LATENCY_SWEEP},
        {"configuration": "Flit size (Bytes)",
         "baseline": base.noc.channel_bytes, "sweep": NOC_BANDWIDTH_SWEEP},
    ]


def table3_properties(config: GPUConfig | None = None) -> list[dict]:
    """Table III: benchmark properties plus the model's CTA/core."""
    suite = BenchmarkSuite(config or baseline_config())
    return [asdict(suite.properties(abbr)) for abbr in suite.names()]


# ---------------------------------------------------------------------------
# Figures
# ---------------------------------------------------------------------------

def fig2_cpu_gpu(
    config: GPUConfig | None = None, size: DatasetSize = DatasetSize.SMALL
) -> list[dict]:
    """Fig 2: CPU vs GPU vs GPU+CDP for SW, NW, STAR (normalized to CPU)."""
    config = config or baseline_config()
    rows = []
    for abbr in ("SW", "NW", "STAR"):
        workload = dataset_for(abbr, size)
        cpu = cpu_cycles(abbr, workload)
        gpu = run_benchmark(
            abbr, cdp=False, size=size, config=config, workload=workload
        ).device_time()
        gpu_cdp = run_benchmark(
            abbr, cdp=True, size=size, config=config, workload=workload
        ).device_time()
        rows.append({
            "benchmark": abbr,
            "cpu_cycles": cpu,
            "gpu_cycles": gpu,
            "gpu_cdp_cycles": gpu_cdp,
            "gpu_norm": gpu / cpu,
            "gpu_cdp_norm": gpu_cdp / cpu,
            "gpu_speedup": cpu / gpu,
            "gpu_cdp_speedup": cpu / gpu_cdp,
        })
    return rows


def fig3_cdp(
    config: GPUConfig | None = None, size: DatasetSize = DatasetSize.SMALL
) -> list[dict]:
    """Fig 3: kernel execution time, CDP vs non-CDP, per benchmark."""
    config = config or baseline_config()
    rows = []
    for abbr in benchmark_names():
        base = run_benchmark(abbr, cdp=False, size=size, config=config)
        cdp = run_benchmark(abbr, cdp=True, size=size, config=config)
        rows.append({
            "benchmark": abbr,
            "noncdp_cycles": base.device_time(),
            "cdp_cycles": cdp.device_time(),
            "improvement": 1.0 - cdp.device_time() / base.device_time(),
        })
    return rows


def fig4_kernel_pci(
    config: GPUConfig | None = None, size: DatasetSize = DatasetSize.SMALL
) -> list[dict]:
    """Fig 4: kernel/PCI call counts and total/average times."""
    config = config or baseline_config()
    rows = []
    for abbr, cdp in suite_variants():
        stats = run_benchmark(abbr, cdp=cdp, size=size, config=config)
        launches = stats.kernel_launches + stats.device_launches
        rows.append({
            "benchmark": variant_name(abbr, cdp),
            "kernel_count": launches,
            "pci_count": stats.memcpy_calls,
            "kernel_cycles": stats.kernel_cycles,
            "pci_cycles": stats.pci_cycles,
            "avg_kernel_cycles": stats.kernel_cycles / max(1, launches),
            "avg_pci_cycles": stats.pci_cycles / max(1, stats.memcpy_calls),
        })
    return rows


def fig5_stalls(
    config: GPUConfig | None = None, size: DatasetSize = DatasetSize.SMALL
) -> list[dict]:
    """Fig 5: pipeline-stall breakdown per benchmark."""
    config = config or baseline_config()
    rows = []
    for abbr, cdp in suite_variants():
        stats = run_benchmark(abbr, cdp=cdp, size=size, config=config)
        row = {"benchmark": variant_name(abbr, cdp)}
        row.update(stats.stall_breakdown())
        rows.append(row)
    return rows


def fig6_sram(config: GPUConfig | None = None) -> list[dict]:
    """Fig 6: register / shared / constant utilization per benchmark."""
    config = config or baseline_config()
    suite = BenchmarkSuite(config)
    from repro.kernels import build_application
    from repro.sim.occupancy import occupancy_report

    rows = []
    for abbr in suite.names():
        app = build_application(abbr)
        kernel = getattr(app, "kernel", None)
        if kernel is None:
            for op in app.host_program():
                if hasattr(op, "launch"):
                    kernel = op.launch.kernel
                    break
        report = occupancy_report(config, kernel)
        rows.append({
            "benchmark": abbr,
            "registers": report.register_utilization,
            "shared_memory": report.shared_utilization,
            "constant": report.constant_utilization,
            "ctas_per_core": report.ctas_per_sm,
            "limiter": report.limiter,
        })
    return rows


def fig7_shared_memory(
    config: GPUConfig | None = None, size: DatasetSize = DatasetSize.SMALL
) -> list[dict]:
    """Fig 7: NW and PairHMM with vs without shared memory."""
    config = config or baseline_config()
    rows = []
    for abbr in ("NW", "PairHMM"):
        with_smem = run_benchmark(
            abbr, size=size, config=config, use_shared=True
        ).device_time()
        without = run_benchmark(
            abbr, size=size, config=config, use_shared=False
        ).device_time()
        rows.append({
            "benchmark": abbr,
            "with_shared_cycles": with_smem,
            "without_shared_cycles": without,
            "slowdown_without": without / with_smem,
        })
    return rows


def fig8_instruction_mix(
    config: GPUConfig | None = None, size: DatasetSize = DatasetSize.SMALL
) -> list[dict]:
    """Fig 8: dynamic instruction-class distribution."""
    config = config or baseline_config()
    rows = []
    for abbr, cdp in suite_variants():
        stats = run_benchmark(abbr, cdp=cdp, size=size, config=config)
        row = {"benchmark": variant_name(abbr, cdp)}
        row.update(stats.op_fractions())
        rows.append(row)
    return rows


def fig9_memory_mix(
    config: GPUConfig | None = None, size: DatasetSize = DatasetSize.SMALL
) -> list[dict]:
    """Fig 9: memory-space distribution of memory instructions."""
    config = config or baseline_config()
    rows = []
    for abbr, cdp in suite_variants():
        stats = run_benchmark(abbr, cdp=cdp, size=size, config=config)
        row = {"benchmark": variant_name(abbr, cdp)}
        row.update(stats.mem_fractions())
        rows.append(row)
    return rows


def fig10_warp_occupancy(
    config: GPUConfig | None = None, size: DatasetSize = DatasetSize.SMALL
) -> list[dict]:
    """Fig 10: warp-occupancy histogram (W1-4 .. W29-32)."""
    config = config or baseline_config()
    rows = []
    for abbr, cdp in suite_variants():
        stats = run_benchmark(abbr, cdp=cdp, size=size, config=config)
        row = {"benchmark": variant_name(abbr, cdp)}
        row.update(stats.occupancy_fractions())
        rows.append(row)
    return rows


def fig11_cta_sweep(
    config: GPUConfig | None = None,
    size: DatasetSize = DatasetSize.SMALL,
    benchmarks: list[str] | None = None,
    num_sms: int = 4,
) -> list[dict]:
    """Fig 11: speedup when CTA/core (and linked resources) scale.

    Resident-CTA capacity only binds when grids oversubscribe the
    machine, so this sweep runs on a small ``num_sms`` device (the
    paper's 32K-scale inputs oversubscribe all 78 SMs; the SMALL
    datasets would leave them idle).  PairHMM uses the MEDIUM batch for
    the same reason — its CTA demand must exceed baseline capacity for
    the paper's PairHMM-CDP scaling trend to be visible.
    """
    config = (config or baseline_config()).with_(num_sms=num_sms)
    rows = []
    for abbr, cdp in suite_variants():
        if benchmarks and abbr not in benchmarks:
            continue
        bench_size = DatasetSize.MEDIUM if abbr == "PairHMM" else size
        base_time = None
        row = {"benchmark": variant_name(abbr, cdp)}
        for factor in CTA_SCALING:
            cfg = scale_cta_resources(config, factor)
            time = run_benchmark(
                abbr, cdp=cdp, size=bench_size, config=cfg
            ).device_time()
            if factor == 1.0:
                base_time = time
            row[f"x{factor}"] = time
        for factor in CTA_SCALING:
            row[f"speedup_x{factor}"] = base_time / row[f"x{factor}"]
        rows.append(row)
    return rows


def cache_sweep_results(
    config: GPUConfig | None = None,
    size: DatasetSize = DatasetSize.SMALL,
    benchmarks: list[str] | None = None,
) -> list[dict]:
    """Shared sweep behind Figs 12-14: one row per (variant, cache pair)."""
    config = config or baseline_config()
    rows = []
    for abbr, cdp in suite_variants():
        if benchmarks and abbr not in benchmarks:
            continue
        for l1_bytes, l2_bytes in CACHE_SWEEP:
            cfg = with_cache_sizes(config, l1_bytes, l2_bytes)
            stats = run_benchmark(abbr, cdp=cdp, size=size, config=cfg)
            rows.append({
                "benchmark": variant_name(abbr, cdp),
                "l1_bytes": l1_bytes,
                "l2_bytes": l2_bytes,
                "cycles": stats.device_time(),
                "ipc": stats.ipc,
                "l1_miss_rate": stats.l1.miss_rate,
                "l2_miss_rate": stats.l2.miss_rate,
            })
    return rows


def _baseline_key(row: dict) -> bool:
    return row["l1_bytes"] == 128 * 1024 and row["l2_bytes"] == 4 * 1024 * 1024


def fig12_cache_speedup(sweep: list[dict] | None = None, **kwargs) -> list[dict]:
    """Fig 12: IPC speedup per cache configuration vs the baseline."""
    sweep = sweep or cache_sweep_results(**kwargs)
    baselines = {
        row["benchmark"]: row["ipc"] for row in sweep if _baseline_key(row)
    }
    return [
        {
            "benchmark": row["benchmark"],
            "l1_bytes": row["l1_bytes"],
            "l2_bytes": row["l2_bytes"],
            "speedup": row["ipc"] / baselines[row["benchmark"]]
            if baselines[row["benchmark"]]
            else 0.0,
        }
        for row in sweep
    ]


def fig13_l1_miss(sweep: list[dict] | None = None, **kwargs) -> list[dict]:
    """Fig 13: L1 miss rate per cache configuration."""
    sweep = sweep or cache_sweep_results(**kwargs)
    return [
        {k: row[k] for k in ("benchmark", "l1_bytes", "l2_bytes", "l1_miss_rate")}
        for row in sweep
    ]


def fig14_l2_miss(sweep: list[dict] | None = None, **kwargs) -> list[dict]:
    """Fig 14: L2 miss rate per cache configuration."""
    sweep = sweep or cache_sweep_results(**kwargs)
    return [
        {k: row[k] for k in ("benchmark", "l1_bytes", "l2_bytes", "l2_miss_rate")}
        for row in sweep
    ]


def fig15_perfect_memory(
    config: GPUConfig | None = None, size: DatasetSize = DatasetSize.SMALL
) -> list[dict]:
    """Fig 15: speedup with a zero-latency memory system."""
    config = config or baseline_config()
    rows = []
    for abbr, cdp in suite_variants():
        base = run_benchmark(abbr, cdp=cdp, size=size, config=config)
        perfect = run_benchmark(
            abbr, cdp=cdp, size=size, config=config.with_(perfect_memory=True)
        )
        rows.append({
            "benchmark": variant_name(abbr, cdp),
            "baseline_cycles": base.device_time(),
            "perfect_cycles": perfect.device_time(),
            "speedup": base.device_time() / perfect.device_time(),
        })
    return rows


def fig16_mem_controller(
    config: GPUConfig | None = None, size: DatasetSize = DatasetSize.SMALL
) -> list[dict]:
    """Fig 16: FR-FCFS vs FIFO vs OoO-128 memory controllers."""
    config = config or baseline_config()
    rows = []
    for abbr, cdp in suite_variants():
        row = {"benchmark": variant_name(abbr, cdp)}
        times = {}
        for controller in MEM_CONTROLLERS:
            cfg = with_controller(config, controller)
            times[controller] = run_benchmark(
                abbr, cdp=cdp, size=size, config=cfg
            ).device_time()
            row[controller] = times[controller]
        for controller in MEM_CONTROLLERS:
            row[f"norm_{controller}"] = times["frfcfs"] / times[controller]
        rows.append(row)
    return rows


def fig17_dram_efficiency(
    config: GPUConfig | None = None, size: DatasetSize = DatasetSize.SMALL
) -> list[dict]:
    """Fig 17: DRAM efficiency per benchmark and controller."""
    config = config or baseline_config()
    rows = []
    for abbr, cdp in suite_variants():
        row = {"benchmark": variant_name(abbr, cdp)}
        for controller in MEM_CONTROLLERS:
            cfg = with_controller(config, controller)
            stats = run_benchmark(abbr, cdp=cdp, size=size, config=cfg)
            row[controller] = stats.dram.efficiency
        rows.append(row)
    return rows


def fig18_dram_utilization(
    config: GPUConfig | None = None, size: DatasetSize = DatasetSize.SMALL
) -> list[dict]:
    """Fig 18: fraction of execution time the DRAM pins move data."""
    config = config or baseline_config()
    rows = []
    for abbr, cdp in suite_variants():
        stats = run_benchmark(abbr, cdp=cdp, size=size, config=config)
        rows.append({
            "benchmark": variant_name(abbr, cdp),
            "utilization": stats.dram_utilization(),
        })
    return rows


def fig19_scheduler(
    config: GPUConfig | None = None, size: DatasetSize = DatasetSize.SMALL
) -> list[dict]:
    """Fig 19: warp-scheduler sensitivity (normalized to LRR)."""
    config = config or baseline_config()
    rows = []
    for abbr, cdp in suite_variants():
        row = {"benchmark": variant_name(abbr, cdp)}
        times = {}
        for sched in SCHEDULERS:
            cfg = config.with_(scheduler=sched)
            times[sched] = run_benchmark(
                abbr, cdp=cdp, size=size, config=cfg
            ).device_time()
            row[sched] = times[sched]
        for sched in SCHEDULERS:
            row[f"norm_{sched}"] = times["lrr"] / times[sched]
        rows.append(row)
    return rows


def fig20_topology(
    config: GPUConfig | None = None, size: DatasetSize = DatasetSize.SMALL
) -> list[dict]:
    """Fig 20: interconnect topology (normalized to the local crossbar)."""
    config = config or baseline_config()
    rows = []
    for abbr, cdp in suite_variants():
        row = {"benchmark": variant_name(abbr, cdp)}
        times = {}
        for topology in TOPOLOGIES:
            cfg = with_topology(config, topology)
            times[topology] = run_benchmark(
                abbr, cdp=cdp, size=size, config=cfg
            ).device_time()
            row[topology] = times[topology]
        for topology in TOPOLOGIES:
            row[f"norm_{topology}"] = times["xbar"] / times[topology]
        rows.append(row)
    return rows


def fig21_noc_latency(
    config: GPUConfig | None = None, size: DatasetSize = DatasetSize.SMALL
) -> list[dict]:
    """Fig 21: router latency +0/4/8/16 cycles on a mesh."""
    config = config or baseline_config()
    rows = []
    for abbr, cdp in suite_variants():
        row = {"benchmark": variant_name(abbr, cdp)}
        times = {}
        for delay in NOC_LATENCY_SWEEP:
            cfg = with_topology(config, "mesh", router_delay=delay)
            times[delay] = run_benchmark(
                abbr, cdp=cdp, size=size, config=cfg
            ).device_time()
            row[f"delay{delay}"] = times[delay]
        for delay in NOC_LATENCY_SWEEP:
            row[f"norm_delay{delay}"] = times[0] / times[delay]
        rows.append(row)
    return rows


def fig22_noc_bandwidth(
    config: GPUConfig | None = None, size: DatasetSize = DatasetSize.SMALL
) -> list[dict]:
    """Fig 22: channel width 8/16/32/40B on a mesh (normalized to 40B)."""
    config = config or baseline_config()
    rows = []
    for abbr, cdp in suite_variants():
        row = {"benchmark": variant_name(abbr, cdp)}
        times = {}
        for width in NOC_BANDWIDTH_SWEEP:
            cfg = with_topology(config, "mesh", channel_bytes=width)
            times[width] = run_benchmark(
                abbr, cdp=cdp, size=size, config=cfg
            ).device_time()
            row[f"bw{width}"] = times[width]
        for width in NOC_BANDWIDTH_SWEEP:
            row[f"norm_bw{width}"] = times[40] / times[width]
        rows.append(row)
    return rows
