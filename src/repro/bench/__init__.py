"""Experiment harnesses: one function per table/figure of the paper.

Each ``figNN_*`` / ``tableN_*`` function runs the relevant benchmarks
on the simulator and returns the rows/series the paper's figure
reports.  The pytest-benchmark wrappers in ``benchmarks/`` time these
and print their output; EXPERIMENTS.md records paper-vs-measured.
"""

from repro.bench.experiments import (
    table1_configs,
    table2_configs,
    table3_properties,
    fig2_cpu_gpu,
    fig3_cdp,
    fig4_kernel_pci,
    fig5_stalls,
    fig6_sram,
    fig7_shared_memory,
    fig8_instruction_mix,
    fig9_memory_mix,
    fig10_warp_occupancy,
    fig11_cta_sweep,
    fig12_cache_speedup,
    fig13_l1_miss,
    fig14_l2_miss,
    fig15_perfect_memory,
    fig16_mem_controller,
    fig17_dram_efficiency,
    fig18_dram_utilization,
    fig19_scheduler,
    fig20_topology,
    fig21_noc_latency,
    fig22_noc_bandwidth,
    cache_sweep_results,
    suite_variants,
)

__all__ = [
    "table1_configs",
    "table2_configs",
    "table3_properties",
    "fig2_cpu_gpu",
    "fig3_cdp",
    "fig4_kernel_pci",
    "fig5_stalls",
    "fig6_sram",
    "fig7_shared_memory",
    "fig8_instruction_mix",
    "fig9_memory_mix",
    "fig10_warp_occupancy",
    "fig11_cta_sweep",
    "fig12_cache_speedup",
    "fig13_l1_miss",
    "fig14_l2_miss",
    "fig15_perfect_memory",
    "fig16_mem_controller",
    "fig17_dram_efficiency",
    "fig18_dram_utilization",
    "fig19_scheduler",
    "fig20_topology",
    "fig21_noc_latency",
    "fig22_noc_bandwidth",
    "cache_sweep_results",
    "suite_variants",
]
