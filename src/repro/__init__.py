"""Genomics-GPU: a GPU genome-analysis benchmark suite, reproduced.

A from-scratch Python implementation of the ISPASS 2023 paper
"Genomics-GPU: A Benchmark Suite for GPU-accelerated Genome Analysis":
ten genomics benchmarks (with CUDA-Dynamic-Parallelism variants)
characterized on a cycle-level GPU timing model.

Layers:

- :mod:`repro.genomics` / :mod:`repro.data` — the algorithms and
  datasets (alignment, MSA, clustering, Pair-HMM, FM-index mapping).
- :mod:`repro.isa` / :mod:`repro.sim` — the warp-level ISA and the GPU
  timing model (SMs, schedulers, caches, DRAM, interconnect, CDP).
- :mod:`repro.kernels` — the ten benchmarks binding both layers.
- :mod:`repro.core` — the public run/characterize API.
- :mod:`repro.bench` — one experiment per table/figure of the paper.

Quick start::

    from repro.core import BenchmarkSuite, baseline_config
    stats = BenchmarkSuite(baseline_config()).run("NW", cdp=True)
    print(stats.stall_breakdown())

Command line: ``python -m repro --help``.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
