"""Datasets for the benchmark suite: file I/O and synthetic generators.

The paper's inputs (hg19 + SRR493095 reads, protein.txt,
query_batch.fasta, testData.fasta) are proprietary-scale downloads; per
the reproduction plan they are replaced by synthetic generators with
controlled length, divergence, and error-rate knobs
(:mod:`repro.data.synth`), exposed through the registry in
:mod:`repro.data.datasets` at S/M/L scales.
"""

from repro.data.fasta import read_fasta, write_fasta, parse_fasta
from repro.data.fastq import FastqRecord, read_fastq, write_fastq, parse_fastq
from repro.data.synth import (
    random_dna,
    random_protein,
    mutate,
    sequence_family,
    sample_reads,
)
from repro.data.datasets import DatasetSize, dataset_for
from repro.data.workloads import (
    PairwiseWorkload,
    BatchAlignmentWorkload,
    MSAWorkload,
    ClusterWorkload,
    PairHMMWorkload,
    ReadMappingWorkload,
)

__all__ = [
    "read_fasta",
    "write_fasta",
    "parse_fasta",
    "FastqRecord",
    "read_fastq",
    "write_fastq",
    "parse_fastq",
    "random_dna",
    "random_protein",
    "mutate",
    "sequence_family",
    "sample_reads",
    "DatasetSize",
    "dataset_for",
    "PairwiseWorkload",
    "BatchAlignmentWorkload",
    "MSAWorkload",
    "ClusterWorkload",
    "PairHMMWorkload",
    "ReadMappingWorkload",
]
