"""Synthetic sequence generators.

All generators are deterministic given a seed (or an explicit
``random.Random``), so every experiment in the suite is reproducible
bit-for-bit.  The mutation model applies substitutions, insertions and
deletions at independent per-base rates — the standard way to dial in a
target divergence/identity for alignment and clustering workloads.
"""

from __future__ import annotations

import random

from repro.data.fastq import FastqRecord
from repro.genomics.sequence import DNA, PROTEIN, Sequence


def _rng(seed_or_rng) -> random.Random:
    if isinstance(seed_or_rng, random.Random):
        return seed_or_rng
    return random.Random(seed_or_rng)


def random_dna(length: int, seed=0, gc: float = 0.5) -> str:
    """Random DNA of ``length`` residues with the given GC fraction."""
    if length < 0:
        raise ValueError("length must be non-negative")
    if not 0.0 <= gc <= 1.0:
        raise ValueError("gc must be in [0, 1]")
    rng = _rng(seed)
    weights = [(1 - gc) / 2, gc / 2, gc / 2, (1 - gc) / 2]  # A C G T
    return "".join(rng.choices("ACGT", weights=weights, k=length))


def random_protein(length: int, seed=0) -> str:
    """Random protein of ``length`` residues, uniform over 20 amino acids."""
    if length < 0:
        raise ValueError("length must be non-negative")
    rng = _rng(seed)
    return "".join(rng.choices(PROTEIN.letters, k=length))


def mutate(
    residues: str,
    seed=0,
    substitution_rate: float = 0.01,
    insertion_rate: float = 0.0,
    deletion_rate: float = 0.0,
    alphabet_letters: str = "ACGT",
) -> str:
    """Apply independent per-base substitutions / insertions / deletions."""
    for name, rate in (
        ("substitution_rate", substitution_rate),
        ("insertion_rate", insertion_rate),
        ("deletion_rate", deletion_rate),
    ):
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"{name} must be in [0, 1]")
    rng = _rng(seed)
    out: list[str] = []
    for ch in residues:
        if rng.random() < deletion_rate:
            continue
        if rng.random() < substitution_rate:
            choices = [c for c in alphabet_letters if c != ch]
            ch = rng.choice(choices) if choices else ch
        out.append(ch)
        if rng.random() < insertion_rate:
            out.append(rng.choice(alphabet_letters))
    return "".join(out)


def sequence_family(
    count: int,
    ancestor_length: int,
    divergence: float = 0.05,
    seed=0,
    protein: bool = False,
    name_prefix: str = "seq",
    indel_fraction: float = 0.2,
) -> list[Sequence]:
    """``count`` sequences descended from one random ancestor.

    ``divergence`` is the total per-base mutation rate applied to each
    descendant; ``indel_fraction`` of it is spent on indels (split
    evenly between insertions and deletions).  This produces the kind
    of related-family input the STAR and CLUSTER workloads need.
    """
    if count <= 0:
        raise ValueError("count must be positive")
    rng = _rng(seed)
    alphabet = PROTEIN if protein else DNA
    letters = alphabet.letters
    if protein:
        ancestor = random_protein(ancestor_length, rng)
    else:
        ancestor = random_dna(ancestor_length, rng)
    indel_each = divergence * indel_fraction / 2.0
    sub = divergence * (1.0 - indel_fraction)
    family = []
    for i in range(count):
        if i == 0:
            residues = ancestor
        else:
            residues = mutate(
                ancestor,
                rng,
                substitution_rate=sub,
                insertion_rate=indel_each,
                deletion_rate=indel_each,
                alphabet_letters=letters,
            )
        family.append(Sequence(f"{name_prefix}{i}", residues, alphabet))
    return family


def sample_paired_reads(
    reference: Sequence,
    count: int,
    read_length: int,
    insert_size: int = 300,
    insert_stddev: int = 30,
    seed=0,
    error_rate: float = 0.005,
    base_quality: int = 30,
    name_prefix: str = "pair",
) -> list[tuple[FastqRecord, FastqRecord]]:
    """Sample Illumina-style paired-end reads (FR orientation).

    Each pair brackets one fragment: read 1 is the fragment's 5' end on
    the forward strand, read 2 the 3' end reverse-complemented.  The
    fragment length is drawn from N(insert_size, insert_stddev), clamped
    to at least ``read_length``.
    """
    if insert_size < read_length:
        raise ValueError("insert_size must be >= read_length")
    if read_length <= 0:
        raise ValueError("read_length must be positive")
    rng = _rng(seed)
    pairs: list[tuple[FastqRecord, FastqRecord]] = []
    for i in range(count):
        fragment_len = max(
            read_length, int(rng.gauss(insert_size, insert_stddev))
        )
        fragment_len = min(fragment_len, len(reference))
        start = rng.randint(0, len(reference) - fragment_len)
        fragment = reference.residues[start : start + fragment_len]

        r1_res = mutate(
            fragment[:read_length], rng, substitution_rate=error_rate
        )
        r2_seq = Sequence("f", fragment[-read_length:]).reverse_complement()
        r2_res = mutate(r2_seq.residues, rng, substitution_rate=error_rate)

        quality = tuple([base_quality] * read_length)
        r1 = FastqRecord(
            Sequence(f"{name_prefix}{i}/1", r1_res, DNA,
                     description=f"pos={start} strand=+"),
            quality,
        )
        r2 = FastqRecord(
            Sequence(
                f"{name_prefix}{i}/2", r2_res, DNA,
                description=(
                    f"pos={start + fragment_len - read_length} strand=-"
                ),
            ),
            quality,
        )
        pairs.append((r1, r2))
    return pairs


def sample_reads(
    reference: Sequence,
    count: int,
    read_length: int,
    seed=0,
    error_rate: float = 0.005,
    reverse_fraction: float = 0.5,
    base_quality: int = 30,
    name_prefix: str = "read",
) -> list[FastqRecord]:
    """Sample error-injected reads from a reference (Illumina-style).

    Reads are drawn uniformly over valid start positions; a
    ``reverse_fraction`` of them come from the reverse strand.
    """
    if read_length <= 0:
        raise ValueError("read_length must be positive")
    if read_length > len(reference):
        raise ValueError("read_length exceeds reference length")
    rng = _rng(seed)
    records: list[FastqRecord] = []
    max_start = len(reference) - read_length
    for i in range(count):
        start = rng.randint(0, max_start)
        fragment = reference.residues[start : start + read_length]
        strand = "-" if rng.random() < reverse_fraction else "+"
        seq = Sequence(f"{name_prefix}{i}", fragment)
        if strand == "-":
            seq = seq.reverse_complement()
        residues = mutate(seq.residues, rng, substitution_rate=error_rate)
        records.append(
            FastqRecord(
                Sequence(
                    f"{name_prefix}{i}",
                    residues,
                    DNA,
                    description=f"pos={start} strand={strand}",
                ),
                tuple([base_quality] * len(residues)),
            )
        )
    return records
