"""FASTQ reading and writing (Sanger/Phred+33 qualities)."""

from __future__ import annotations

import io
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, TextIO

from repro.genomics.sequence import DNA, Sequence

PHRED_OFFSET = 33


@dataclass(frozen=True)
class FastqRecord:
    """One FASTQ read: sequence plus per-base Phred qualities."""

    sequence: Sequence
    qualities: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.qualities) != len(self.sequence):
            raise ValueError("quality string length must match sequence")
        if any(q < 0 or q > 93 for q in self.qualities):
            raise ValueError("Phred qualities must be in [0, 93]")

    @property
    def name(self) -> str:
        return self.sequence.name

    def error_probabilities(self) -> list[float]:
        """Per-base error probability ``10**(-q/10)``."""
        return [10 ** (-q / 10) for q in self.qualities]

    def quality_string(self) -> str:
        return "".join(chr(q + PHRED_OFFSET) for q in self.qualities)


def parse_fastq(stream: TextIO) -> Iterator[FastqRecord]:
    """Yield records from an open FASTQ stream (4-line records)."""
    while True:
        header = stream.readline()
        if not header:
            return
        header = header.strip()
        if not header:
            continue
        if not header.startswith("@"):
            raise ValueError(f"expected '@' header, got {header!r}")
        residues = stream.readline().strip()
        plus = stream.readline().strip()
        quality = stream.readline().strip()
        if not plus.startswith("+"):
            raise ValueError("malformed FASTQ record: missing '+' line")
        if len(quality) != len(residues):
            raise ValueError("quality length differs from sequence length")
        name, _, description = header[1:].partition(" ")
        yield FastqRecord(
            Sequence(name, residues, DNA, description),
            tuple(ord(c) - PHRED_OFFSET for c in quality),
        )


def read_fastq(path: str | Path) -> list[FastqRecord]:
    """Read all records from a FASTQ file."""
    with open(path) as stream:
        return list(parse_fastq(stream))


def write_fastq(
    records: Iterable[FastqRecord], path: str | Path | None = None
) -> str:
    """Write records in FASTQ format; returns the text, optionally saving it."""
    buffer = io.StringIO()
    for record in records:
        seq = record.sequence
        header = seq.name + (f" {seq.description}" if seq.description else "")
        buffer.write(f"@{header}\n{seq.residues}\n+\n{record.quality_string()}\n")
    text = buffer.getvalue()
    if path is not None:
        Path(path).write_text(text)
    return text
