"""Workload containers handed from the dataset registry to the kernels.

Each benchmark kernel consumes one of these: they bundle the functional
inputs (sequences, reads, haplotypes) together with the batch shape the
GPU grid is sized from.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.fastq import FastqRecord
from repro.genomics.sequence import Sequence


@dataclass(frozen=True)
class PairwiseWorkload:
    """One query/target pair (the SW and NW benchmarks)."""

    query: Sequence
    target: Sequence

    @property
    def cells(self) -> int:
        """DP matrix size."""
        return len(self.query) * len(self.target)


@dataclass(frozen=True)
class BatchAlignmentWorkload:
    """A batch of query/target pairs (the GASAL2 benchmarks).

    GASAL2 processes reads against same-length targets in large
    batches; one GPU thread owns one pair.
    """

    queries: tuple[Sequence, ...]
    targets: tuple[Sequence, ...]

    def __post_init__(self) -> None:
        if len(self.queries) != len(self.targets):
            raise ValueError("queries and targets must pair up 1:1")
        if not self.queries:
            raise ValueError("batch must not be empty")

    def __len__(self) -> int:
        return len(self.queries)

    @property
    def pairs(self) -> list[tuple[Sequence, Sequence]]:
        return list(zip(self.queries, self.targets))

    @property
    def total_cells(self) -> int:
        return sum(len(q) * len(t) for q, t in self.pairs)


@dataclass(frozen=True)
class MSAWorkload:
    """Sequences for multiple alignment (the STAR benchmark)."""

    sequences: tuple[Sequence, ...]

    def __post_init__(self) -> None:
        if len(self.sequences) < 2:
            raise ValueError("MSA needs at least two sequences")

    def __len__(self) -> int:
        return len(self.sequences)


@dataclass(frozen=True)
class ClusterWorkload:
    """Sequences to cluster (the CLUSTER benchmark)."""

    sequences: tuple[Sequence, ...]
    identity: float = 0.9
    word_length: int = 5

    def __len__(self) -> int:
        return len(self.sequences)


@dataclass(frozen=True)
class PairHMMWorkload:
    """Read/haplotype batch for the PairHMM benchmark."""

    reads: tuple[str, ...]
    haplotypes: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.reads or not self.haplotypes:
            raise ValueError("need at least one read and one haplotype")

    @property
    def pairs(self) -> int:
        return len(self.reads) * len(self.haplotypes)


@dataclass(frozen=True)
class ReadMappingWorkload:
    """Reference plus short reads for the NvB benchmark."""

    reference: Sequence
    reads: tuple[FastqRecord, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.reads:
            raise ValueError("need at least one read")

    def __len__(self) -> int:
        return len(self.reads)

    @property
    def read_sequences(self) -> list[Sequence]:
        return [record.sequence for record in self.reads]
