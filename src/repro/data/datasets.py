"""Dataset registry: the Table III inputs at S/M/L scales.

The paper ships fixed inputs (32K-base pairs for SW/NW, protein.txt for
STAR, query_batch.fasta for GASAL2, testData.fasta for CLUSTER, the
128x128 synthetic set for PairHMM, hg19 + SRR493095 for NvB) "of
different sizes".  Each entry here synthesizes the same-shaped workload
deterministically; ``SMALL`` keeps full-suite simulation interactive,
``LARGE`` approaches the paper's scales where Python run time allows.
"""

from __future__ import annotations

import enum
import random

from repro.data.synth import random_dna, mutate, sample_reads, sequence_family
from repro.data.workloads import (
    BatchAlignmentWorkload,
    ClusterWorkload,
    MSAWorkload,
    PairHMMWorkload,
    PairwiseWorkload,
    ReadMappingWorkload,
)
from repro.genomics.sequence import DNA, Sequence


class DatasetSize(enum.Enum):
    """Input scale; the paper provides "input datasets of different sizes"."""

    SMALL = "small"
    MEDIUM = "medium"
    LARGE = "large"


#: (pairwise length) per size for SW/NW; the paper uses 32K bases.
_PAIRWISE_LENGTH = {
    DatasetSize.SMALL: 512,
    DatasetSize.MEDIUM: 1024,
    DatasetSize.LARGE: 4096,
}

#: (count, length) of protein sequences for STAR (protein.txt).
_STAR_SHAPE = {
    DatasetSize.SMALL: (8, 96),
    DatasetSize.MEDIUM: (12, 192),
    DatasetSize.LARGE: (24, 320),
}

#: (pairs, read length) per size for the GASAL2 batch (query_batch.fasta).
_GASAL_SHAPE = {
    DatasetSize.SMALL: (256, 128),
    DatasetSize.MEDIUM: (512, 160),
    DatasetSize.LARGE: (1024, 200),
}

#: (sequences, mean length) for CLUSTER (testData.fasta).
_CLUSTER_SHAPE = {
    DatasetSize.SMALL: (48, 120),
    DatasetSize.MEDIUM: (160, 160),
    DatasetSize.LARGE: (480, 200),
}

#: (reads, haplotypes, read length, hap length) for PairHMM; paper: 128x128.
_PAIRHMM_SHAPE = {
    DatasetSize.SMALL: (12, 6, 48, 64),
    DatasetSize.MEDIUM: (24, 12, 96, 128),
    DatasetSize.LARGE: (48, 16, 128, 160),
}

#: (reference length, reads, read length) for NvB (hg19 + SRR493095).
_NVB_SHAPE = {
    DatasetSize.SMALL: (20_000, 64, 80),
    DatasetSize.MEDIUM: (100_000, 256, 100),
    DatasetSize.LARGE: (400_000, 1024, 100),
}


def pairwise_dataset(
    size: DatasetSize = DatasetSize.SMALL, seed: int = 1, divergence: float = 0.1
) -> PairwiseWorkload:
    """A diverged DNA pair for SW/NW."""
    length = _PAIRWISE_LENGTH[size]
    rng = random.Random(seed)
    target = random_dna(length, rng)
    query = mutate(
        target,
        rng,
        substitution_rate=divergence * 0.8,
        insertion_rate=divergence * 0.1,
        deletion_rate=divergence * 0.1,
    )
    return PairwiseWorkload(
        Sequence("query", query), Sequence("target", target)
    )


def star_dataset(
    size: DatasetSize = DatasetSize.SMALL, seed: int = 2
) -> MSAWorkload:
    """A related protein family for STAR (protein.txt stand-in)."""
    count, length = _STAR_SHAPE[size]
    family = sequence_family(
        count, length, divergence=0.08, seed=seed, protein=True,
        name_prefix="prot",
    )
    return MSAWorkload(tuple(family))


def gasal_dataset(
    size: DatasetSize = DatasetSize.SMALL, seed: int = 3, divergence: float = 0.05
) -> BatchAlignmentWorkload:
    """Read-vs-target batch for the four GASAL2 kernels."""
    pairs, length = _GASAL_SHAPE[size]
    rng = random.Random(seed)
    queries: list[Sequence] = []
    targets: list[Sequence] = []
    for i in range(pairs):
        target = random_dna(length, rng)
        query = mutate(
            target,
            rng,
            substitution_rate=divergence,
            insertion_rate=divergence / 10,
            deletion_rate=divergence / 10,
        )
        targets.append(Sequence(f"target{i}", target))
        queries.append(Sequence(f"query{i}", query))
    return BatchAlignmentWorkload(tuple(queries), tuple(targets))


def cluster_dataset(
    size: DatasetSize = DatasetSize.SMALL, seed: int = 4, families: int | None = None
) -> ClusterWorkload:
    """A mixture of sequence families for CLUSTER (testData.fasta stand-in)."""
    count, length = _CLUSTER_SHAPE[size]
    families = families or max(4, count // 12)
    rng = random.Random(seed)
    sequences: list[Sequence] = []
    per_family = count // families
    for f in range(families):
        fam = sequence_family(
            per_family,
            length + rng.randint(-length // 8, length // 8),
            divergence=0.04,
            seed=rng.randrange(2**31),
            name_prefix=f"fam{f}_",
        )
        sequences.extend(fam)
    # Top up with singletons so the total matches the shape.
    while len(sequences) < count:
        i = len(sequences)
        sequences.append(
            Sequence(f"single{i}", random_dna(length, rng), DNA)
        )
    return ClusterWorkload(tuple(sequences), identity=0.9, word_length=5)


def pairhmm_dataset(
    size: DatasetSize = DatasetSize.SMALL, seed: int = 5
) -> PairHMMWorkload:
    """Read/haplotype batch (Synthetic_data(128_128) stand-in)."""
    n_reads, n_haps, read_len, hap_len = _PAIRHMM_SHAPE[size]
    rng = random.Random(seed)
    base = random_dna(hap_len, rng)
    haplotypes = [base] + [
        mutate(base, rng, substitution_rate=0.02, insertion_rate=0.002,
               deletion_rate=0.002)
        for _ in range(n_haps - 1)
    ]
    reads: list[str] = []
    for _ in range(n_reads):
        hap = rng.choice(haplotypes)
        # Trimmed/clipped reads: lengths vary between 50% and 100% of
        # the nominal read length, as in real HaplotypeCaller batches.
        length = rng.randint(read_len // 2, read_len)
        start = rng.randint(0, max(0, len(hap) - length))
        fragment = hap[start : start + length]
        reads.append(mutate(fragment, rng, substitution_rate=0.01))
    return PairHMMWorkload(tuple(reads), tuple(haplotypes))


def nvb_dataset(
    size: DatasetSize = DatasetSize.SMALL, seed: int = 6
) -> ReadMappingWorkload:
    """Reference + sampled reads (hg19 + SRR493095 stand-in)."""
    ref_len, n_reads, read_len = _NVB_SHAPE[size]
    reference = Sequence("ref", random_dna(ref_len, seed))
    reads = sample_reads(
        reference, n_reads, read_len, seed=seed + 1, error_rate=0.005
    )
    return ReadMappingWorkload(reference, tuple(reads))


#: Benchmark abbreviation -> dataset builder.  GASAL2 kernels share one
#: builder (they differ in the alignment mode, not the input).
_BUILDERS = {
    "SW": pairwise_dataset,
    "NW": pairwise_dataset,
    "STAR": star_dataset,
    "GG": gasal_dataset,
    "GL": gasal_dataset,
    "GKSW": gasal_dataset,
    "GSG": gasal_dataset,
    "CLUSTER": cluster_dataset,
    "PairHMM": pairhmm_dataset,
    "NvB": nvb_dataset,
}


def dataset_for(benchmark: str, size: DatasetSize = DatasetSize.SMALL, seed: int | None = None):
    """Build the input workload for a benchmark abbreviation (Table III)."""
    try:
        builder = _BUILDERS[benchmark]
    except KeyError:
        raise ValueError(
            f"unknown benchmark {benchmark!r}; known: {sorted(_BUILDERS)}"
        ) from None
    if seed is None:
        return builder(size)
    return builder(size, seed=seed)
