"""FASTA reading and writing."""

from __future__ import annotations

import io
from pathlib import Path
from typing import Iterable, Iterator, TextIO

from repro.genomics.sequence import Alphabet, DNA, Sequence


def parse_fasta(stream: TextIO, alphabet: Alphabet = DNA) -> Iterator[Sequence]:
    """Yield :class:`Sequence` records from an open FASTA stream."""
    name: str | None = None
    description = ""
    chunks: list[str] = []
    for raw in stream:
        line = raw.strip()
        if not line:
            continue
        if line.startswith(">"):
            if name is not None:
                yield Sequence(name, "".join(chunks), alphabet, description)
            header = line[1:].strip()
            name, _, description = header.partition(" ")
            if not name:
                raise ValueError("FASTA record with empty header")
            chunks = []
        else:
            if name is None:
                raise ValueError("FASTA data before first header")
            chunks.append(line)
    if name is not None:
        yield Sequence(name, "".join(chunks), alphabet, description)


def read_fasta(path: str | Path, alphabet: Alphabet = DNA) -> list[Sequence]:
    """Read all records from a FASTA file."""
    with open(path) as stream:
        return list(parse_fasta(stream, alphabet))


def write_fasta(
    sequences: Iterable[Sequence],
    path: str | Path | None = None,
    line_width: int = 70,
) -> str:
    """Write sequences in FASTA format; returns the text, optionally saving it."""
    if line_width <= 0:
        raise ValueError("line_width must be positive")
    buffer = io.StringIO()
    for seq in sequences:
        header = seq.name + (f" {seq.description}" if seq.description else "")
        buffer.write(f">{header}\n")
        residues = seq.residues
        for i in range(0, len(residues), line_width):
            buffer.write(residues[i : i + line_width] + "\n")
    text = buffer.getvalue()
    if path is not None:
        Path(path).write_text(text)
    return text
