"""Simulation-as-a-service: async job API over the benchmark suite.

The suite's heavy entry points (simulate, sweep, profile, estimate)
become HTTP endpoints backed by an async job queue
(:mod:`repro.service.jobs`) and a content-addressed result cache
(:mod:`repro.service.result_cache`): repeat requests — the common case
under production traffic, where the same (app, trace fingerprint,
config) tuples recur — are answered from the cache without dispatching
a worker.  Typed request/response schemas live in
:mod:`repro.service.schemas`, the stdlib HTTP layer in
:mod:`repro.service.server`, and a small client in
:mod:`repro.service.client` (used by ``tests/service/``).

Start a server with ``repro serve`` or programmatically::

    from repro.service import SimulationService, make_server

    service = SimulationService(cache_root="~/.cache/repro-results")
    server = make_server("127.0.0.1", 8777, service)
    server.serve_forever()
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import Job, JobQueue, JobState
from repro.service.result_cache import ResultCache
from repro.service.schemas import SCHEMA_VERSION, SchemaError, parse_request
from repro.service.service import SimulationService
from repro.service.server import make_server, serve

__all__ = [
    "SCHEMA_VERSION",
    "Job",
    "JobQueue",
    "JobState",
    "ResultCache",
    "SchemaError",
    "ServiceClient",
    "ServiceError",
    "SimulationService",
    "make_server",
    "parse_request",
    "serve",
]
