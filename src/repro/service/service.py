"""The service facade: schemas -> cache -> queue, plus observability.

:class:`SimulationService` is the transport-independent core the HTTP
layer (and the tests) drive:

- ``submit`` validates the payload, consults the result cache
  (simulate / estimate / sweep — profile jobs exist for their per-job
  artifacts and never cache), coalesces duplicate in-flight requests
  onto the already-running job, and only then dispatches a worker.
- Completed jobs publish their payload back to the cache from the
  worker's completion hook, so the next identical request is a pure
  read.
- :class:`Metrics` aggregates the observability fields the
  ``/metrics`` endpoint reports: request counters, cache
  hit/miss/coalesce counts, jobs by terminal state, and per-stage
  latency aggregates (queue wait, trace load, sim, serialize).
"""

from __future__ import annotations

import threading

from repro.service.execute import EXECUTORS
from repro.service.jobs import JobQueue, JobState
from repro.service.result_cache import ResultCache, cache_key
from repro.service.schemas import SCHEMA_VERSION, parse_request

#: Request kinds whose results are content-addressable.
CACHEABLE = ("simulate", "estimate", "sweep")


class Metrics:
    """Thread-safe counters + latency aggregates for ``/metrics``."""

    _STAGES = ("queue_wait_s", "run_s", "trace_load_s", "sim_s",
               "serialize_s")

    def __init__(self):
        self._lock = threading.Lock()
        self.requests: dict[str, int] = {}
        self.cache = {"hits": 0, "misses": 0, "coalesced": 0, "stores": 0}
        self.jobs: dict[str, int] = {}
        self.stages: dict[str, dict] = {
            stage: {"count": 0, "total_s": 0.0, "max_s": 0.0}
            for stage in self._STAGES
        }

    def count_request(self, endpoint: str) -> None:
        with self._lock:
            self.requests[endpoint] = self.requests.get(endpoint, 0) + 1

    def count_cache(self, outcome: str) -> None:
        with self._lock:
            self.cache[outcome] += 1

    def count_job(self, state: str, timings: dict) -> None:
        with self._lock:
            self.jobs[state] = self.jobs.get(state, 0) + 1
            for stage, value in timings.items():
                agg = self.stages.get(stage)
                if agg is None:
                    continue
                agg["count"] += 1
                agg["total_s"] += value
                agg["max_s"] = max(agg["max_s"], value)

    def to_dict(self) -> dict:
        with self._lock:
            stages = {
                stage: {
                    "count": agg["count"],
                    "total_s": round(agg["total_s"], 6),
                    "max_s": round(agg["max_s"], 6),
                    "mean_s": round(agg["total_s"] / agg["count"], 6)
                    if agg["count"]
                    else 0.0,
                }
                for stage, agg in self.stages.items()
            }
            return {
                "requests": dict(self.requests),
                "cache": dict(self.cache),
                "jobs": dict(self.jobs),
                "stage_latency": stages,
            }


class SimulationService:
    """Job submission with a content-addressed read-through cache."""

    def __init__(
        self,
        cache_root=None,
        workers: int | None = None,
        artifact_root=None,
        use_processes: bool = True,
        start: bool = True,
        cache_max_entries: int | None = None,
        cache_max_bytes: int | None = None,
    ):
        self.cache = (
            ResultCache(
                cache_root,
                max_entries=cache_max_entries,
                max_bytes=cache_max_bytes,
            )
            if cache_root
            else None
        )
        self.metrics = Metrics()
        self.queue = JobQueue(
            EXECUTORS,
            workers=workers,
            artifact_root=artifact_root,
            on_complete=self._on_complete,
            use_processes=use_processes,
            start=start,
        )
        self._inflight_lock = threading.Lock()
        self._inflight: dict[str, str] = {}  # cache key -> job id

    # -- API ----------------------------------------------------------------
    def submit(self, kind: str, payload: dict, request_id: str | None = None):
        """Validate and route one request; returns the job record.

        Raises :class:`~repro.service.schemas.SchemaError` on a
        malformed payload.  Cache hits return an already-``done`` job
        carrying the stored result — no worker is touched.  A request
        identical to one still in flight attaches to that job instead
        of queueing a duplicate.
        """
        self.metrics.count_request(kind)
        request = parse_request(kind, payload)
        if (
            self.cache is None
            or kind not in CACHEABLE
            or not getattr(request, "use_cache", False)
        ):
            return self.queue.submit(
                kind,
                request,
                priority=request.priority,
                timeout_s=request.timeout_s,
                request_id=request_id,
            )
        key = cache_key(kind, request.identity(), request.resolved_config())
        # One lock spans hit-check, in-flight check and enqueue, and
        # the completion hook publishes to the cache *before* clearing
        # the in-flight mark — together that makes identical concurrent
        # requests execute exactly once (the stress test's invariant).
        with self._inflight_lock:
            hit = self.cache.get(key)
            if hit is not None:
                self.metrics.count_cache("hits")
                job = self.queue.record_completed(
                    kind, hit, cached=True, request_id=request_id,
                    cache_key=key,
                )
                # Stage aggregates track real executions; a hit's
                # zeros would only dilute the means.
                self.metrics.count_job("cache_hit", {})
                return job
            self.metrics.count_cache("misses")
            running_id = self._inflight.get(key)
            if running_id is not None:
                job = self.queue.get(running_id)
                if job is not None and not job.finished:
                    self.metrics.count_cache("coalesced")
                    job.coalesced = True
                    return job
            job = self.queue.submit(
                kind,
                request,
                priority=request.priority,
                timeout_s=request.timeout_s,
                request_id=request_id,
                cache_key=key,
            )
            self._inflight[key] = job.id
        return job

    def job(self, job_id: str):
        return self.queue.get(job_id)

    def cancel(self, job_id: str) -> bool:
        return self.queue.cancel(job_id)

    def wait(self, job_id: str, timeout: float = 60.0):
        return self.queue.wait(job_id, timeout=timeout)

    def metrics_dict(self) -> dict:
        data = self.metrics.to_dict()
        data["schema_version"] = SCHEMA_VERSION
        data["queue"] = self.queue.depth()
        data["running"] = self.queue.running_progress()
        data["jobs_executed"] = self.queue.executed
        if self.cache is not None:
            data["result_cache"] = {
                "root": str(self.cache.root),
                "entries": len(self.cache),
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "stores": self.cache.stores,
                "evictions": self.cache.evictions,
                "max_entries": self.cache.max_entries,
                "max_bytes": self.cache.max_bytes,
            }
        return data

    def shutdown(self) -> None:
        self.queue.shutdown()

    # -- hooks ---------------------------------------------------------------
    def _on_complete(self, job) -> None:
        """Worker-thread hook: publish the result, then clear in-flight.

        Publish-before-clear keeps the submit-path invariant: at every
        instant an identical request either sees the key in flight or
        finds its payload in the cache.
        """
        if job.cache_key is not None:
            if (
                job.state == JobState.DONE
                and job.result is not None
                and self.cache is not None
            ):
                self.cache.put(
                    job.cache_key,
                    job.result,
                    meta={"kind": job.kind, "job": job.id},
                )
                self.metrics.count_cache("stores")
            with self._inflight_lock:
                if self._inflight.get(job.cache_key) == job.id:
                    del self._inflight[job.cache_key]
        self.metrics.count_job(job.state, job.timings)
