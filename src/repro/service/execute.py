"""Job executors: the bridge from request schemas to the simulator.

Each executor runs inside a forked worker child (see
:mod:`repro.service.jobs`) and returns ``(result_payload,
stage_timings)``.  Payloads are plain JSON-safe dicts — stats travel
as :meth:`repro.sim.stats.RunStats.to_dict` payloads, which the result
cache persists verbatim and :func:`repro.sim.stats.stats_from_dict`
rebuilds bit-identically.  Stage timings split the work the way the
``/metrics`` endpoint reports it: ``trace_load_s`` (application /
trace construction), ``sim_s`` (the simulation proper) and
``serialize_s`` (stats -> wire payload).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.core.runner import variant_name
from repro.data.datasets import DatasetSize
from repro.kernels import build_application
from repro.sim.gpu import GPUSimulator

#: Executors rewrite ``progress.json`` at most this often (the file is
#: re-read on every job-status poll, so finer granularity buys nothing).
PROGRESS_MIN_INTERVAL_S = 0.1


def _stamp(timings: dict, stage: str, since: float) -> float:
    now = time.monotonic()
    timings[stage] = now - since
    return now


def write_progress(artifact_dir, payload: dict) -> None:
    """Atomically publish ``progress.json`` into the job's artifact dir.

    Runs inside the forked executor child; the parent's
    :meth:`~repro.service.jobs.Job.view` reads it back while the job is
    running, which is how percent-complete reaches the job-status
    response and ``/metrics`` without any extra IPC channel.
    """
    if artifact_dir is None:
        return
    path = Path(artifact_dir) / "progress.json"
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    try:
        tmp.write_text(json.dumps(payload, sort_keys=True))
        os.replace(tmp, path)
    except OSError:
        pass  # progress is best-effort; never fail the job over it


def _telemetry_progress(artifact_dir):
    """A ``Telemetry.progress`` hook publishing interval-counter progress.

    Single runs have no known total (cycles-to-completion is the thing
    being simulated), so ``percent`` stays ``None`` — the payload
    reports honest monotone counters instead.
    """
    state = {"last": 0.0}

    def hook(index: int, interval: int) -> None:
        now = time.monotonic()
        if now - state["last"] < PROGRESS_MIN_INTERVAL_S:
            return
        state["last"] = now
        write_progress(artifact_dir, {
            "unit": "cycles",
            "done": (index + 1) * interval,
            "intervals": index + 1,
            "total": None,
            "percent": None,
        })

    return hook


def _attach_progress(sim: GPUSimulator, artifact_dir) -> None:
    if artifact_dir is not None and sim.telemetry is not None:
        sim.telemetry.progress = _telemetry_progress(artifact_dir)


def execute_simulate(request, artifact_dir: str | None):
    """Exact cycle-accurate run of one benchmark variant."""
    config = request.resolved_config()
    timings: dict = {}
    t = time.monotonic()
    app = build_application(
        request.benchmark, cdp=request.cdp, size=DatasetSize(request.size)
    )
    t = _stamp(timings, "trace_load_s", t)
    sim = GPUSimulator(config)
    _attach_progress(sim, artifact_dir)
    stats = sim.run_application(app)
    t = _stamp(timings, "sim_s", t)
    payload = {
        "kind": request.KIND,
        "label": variant_name(request.benchmark, request.cdp),
        "stats": stats.to_dict(),
    }
    _stamp(timings, "serialize_s", t)
    return payload, timings


def execute_estimate(request, artifact_dir: str | None):
    """Warp-sampled estimation (stats carry confidence intervals)."""
    from repro.sim.replay import CachedApplication
    from repro.sim.sampled import estimate_application

    config = request.resolved_config()
    timings: dict = {}
    t = time.monotonic()
    cached = CachedApplication(
        build_application(
            request.benchmark, cdp=request.cdp, size=DatasetSize(request.size)
        )
    )
    t = _stamp(timings, "trace_load_s", t)
    stats = estimate_application(cached, config)
    t = _stamp(timings, "sim_s", t)
    payload = {
        "kind": request.KIND,
        "label": variant_name(request.benchmark, request.cdp),
        "stats": stats.to_dict(),
    }
    _stamp(timings, "serialize_s", t)
    return payload, timings


def execute_sweep(request, artifact_dir: str | None):
    """The suite (or a subset) at the request's config.

    With ``request.points`` set (a dsweep chunk), the wire-encoded
    points are decoded and run verbatim — each carries its own full
    config — instead of building the suite grid.

    Runs in-process (``jobs=0`` semantics): the job queue already
    bounds process-level concurrency to the shared core budget, so
    nesting a pool inside a worker child would oversubscribe the host.
    The in-process path still gets full trace reuse through its
    :class:`~repro.core.sweep.TraceCache` (and the persistent store
    when ``REPRO_TRACE_STORE`` is set).  Per-point completion counts
    are published as job progress — exact percent, which is also what
    the distributed coordinator's straggler detection reads.
    """
    from repro.core.sweep import TraceCache, run_point, suite_points
    from repro.sim.trace_store import TraceStore

    config = request.resolved_config()
    timings: dict = {}
    t = time.monotonic()
    if request.points:
        from repro.dist.wire import decode_point

        points = [decode_point(entry) for entry in request.points]
    else:
        points = suite_points(
            benchmarks=list(request.benchmarks) or None,
            cdp_variants=request.cdp_variants,
            size=DatasetSize(request.size),
            config=config,
        )
    labels = [point.label for point in points]
    if len(set(labels)) != len(labels):
        raise ValueError("sweep point labels must be unique")
    cache = TraceCache(store=TraceStore.from_env())
    total = len(points)
    results = {}
    write_progress(artifact_dir, {
        "unit": "points", "done": 0, "total": total, "percent": 0.0,
    })
    for done, point in enumerate(points, start=1):
        results[point.label] = run_point(point, cache)
        write_progress(artifact_dir, {
            "unit": "points",
            "done": done,
            "total": total,
            "percent": round(100.0 * done / total, 2),
        })
    t = _stamp(timings, "sim_s", t)
    payload = {
        "kind": request.KIND,
        "results": {
            label: stats.to_dict() for label, stats in results.items()
        },
    }
    _stamp(timings, "serialize_s", t)
    return payload, timings


def execute_profile(request, artifact_dir: str | None):
    """Telemetry run; exports become downloadable per-job artifacts."""
    from repro.sim.telemetry import write_chrome_trace, write_jsonl

    config = request.resolved_config()
    timings: dict = {}
    t = time.monotonic()
    app = build_application(
        request.benchmark, cdp=request.cdp, size=DatasetSize(request.size)
    )
    t = _stamp(timings, "trace_load_s", t)
    sim = GPUSimulator(config)
    _attach_progress(sim, artifact_dir)
    stats = sim.run_application(app)
    t = _stamp(timings, "sim_s", t)
    artifacts = []
    out = Path(artifact_dir) if artifact_dir else None
    if out is not None and stats.telemetry is not None:
        if "jsonl" in request.artifacts:
            write_jsonl(stats.telemetry, out / "telemetry.jsonl")
            artifacts.append("telemetry.jsonl")
        if "chrome_trace" in request.artifacts:
            write_chrome_trace(stats.telemetry, out / "trace.json")
            artifacts.append("trace.json")
    payload = {
        "kind": request.KIND,
        "label": variant_name(request.benchmark, request.cdp),
        "stats": stats.to_dict(),
        "artifacts": artifacts,
    }
    _stamp(timings, "serialize_s", t)
    return payload, timings


#: kind -> executor, the registry a :class:`repro.service.jobs.JobQueue`
#: is built from.
EXECUTORS = {
    "simulate": execute_simulate,
    "estimate": execute_estimate,
    "sweep": execute_sweep,
    "profile": execute_profile,
}
