"""Job executors: the bridge from request schemas to the simulator.

Each executor runs inside a forked worker child (see
:mod:`repro.service.jobs`) and returns ``(result_payload,
stage_timings)``.  Payloads are plain JSON-safe dicts — stats travel
as :meth:`repro.sim.stats.RunStats.to_dict` payloads, which the result
cache persists verbatim and :func:`repro.sim.stats.stats_from_dict`
rebuilds bit-identically.  Stage timings split the work the way the
``/metrics`` endpoint reports it: ``trace_load_s`` (application /
trace construction), ``sim_s`` (the simulation proper) and
``serialize_s`` (stats -> wire payload).
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.core.runner import variant_name
from repro.data.datasets import DatasetSize
from repro.kernels import build_application
from repro.sim.gpu import GPUSimulator


def _stamp(timings: dict, stage: str, since: float) -> float:
    now = time.monotonic()
    timings[stage] = now - since
    return now


def execute_simulate(request, artifact_dir: str | None):
    """Exact cycle-accurate run of one benchmark variant."""
    config = request.resolved_config()
    timings: dict = {}
    t = time.monotonic()
    app = build_application(
        request.benchmark, cdp=request.cdp, size=DatasetSize(request.size)
    )
    t = _stamp(timings, "trace_load_s", t)
    stats = GPUSimulator(config).run_application(app)
    t = _stamp(timings, "sim_s", t)
    payload = {
        "kind": request.KIND,
        "label": variant_name(request.benchmark, request.cdp),
        "stats": stats.to_dict(),
    }
    _stamp(timings, "serialize_s", t)
    return payload, timings


def execute_estimate(request, artifact_dir: str | None):
    """Warp-sampled estimation (stats carry confidence intervals)."""
    from repro.sim.replay import CachedApplication
    from repro.sim.sampled import estimate_application

    config = request.resolved_config()
    timings: dict = {}
    t = time.monotonic()
    cached = CachedApplication(
        build_application(
            request.benchmark, cdp=request.cdp, size=DatasetSize(request.size)
        )
    )
    t = _stamp(timings, "trace_load_s", t)
    stats = estimate_application(cached, config)
    t = _stamp(timings, "sim_s", t)
    payload = {
        "kind": request.KIND,
        "label": variant_name(request.benchmark, request.cdp),
        "stats": stats.to_dict(),
    }
    _stamp(timings, "serialize_s", t)
    return payload, timings


def execute_sweep(request, artifact_dir: str | None):
    """The suite (or a subset) at the request's config.

    Runs in-process (``jobs=0``): the job queue already bounds
    process-level concurrency to the shared core budget, so nesting a
    pool inside a worker child would oversubscribe the host.  The
    in-process path still gets full trace reuse through its
    :class:`~repro.core.sweep.TraceCache` (and the persistent store
    when ``REPRO_TRACE_STORE`` is set).
    """
    from repro.core.sweep import run_sweep, suite_points

    config = request.resolved_config()
    timings: dict = {}
    t = time.monotonic()
    points = suite_points(
        benchmarks=list(request.benchmarks) or None,
        cdp_variants=request.cdp_variants,
        size=DatasetSize(request.size),
        config=config,
    )
    results = run_sweep(points, jobs=0)
    t = _stamp(timings, "sim_s", t)
    payload = {
        "kind": request.KIND,
        "results": {
            label: stats.to_dict() for label, stats in results.items()
        },
    }
    _stamp(timings, "serialize_s", t)
    return payload, timings


def execute_profile(request, artifact_dir: str | None):
    """Telemetry run; exports become downloadable per-job artifacts."""
    from repro.sim.telemetry import write_chrome_trace, write_jsonl

    config = request.resolved_config()
    timings: dict = {}
    t = time.monotonic()
    app = build_application(
        request.benchmark, cdp=request.cdp, size=DatasetSize(request.size)
    )
    t = _stamp(timings, "trace_load_s", t)
    stats = GPUSimulator(config).run_application(app)
    t = _stamp(timings, "sim_s", t)
    artifacts = []
    out = Path(artifact_dir) if artifact_dir else None
    if out is not None and stats.telemetry is not None:
        if "jsonl" in request.artifacts:
            write_jsonl(stats.telemetry, out / "telemetry.jsonl")
            artifacts.append("telemetry.jsonl")
        if "chrome_trace" in request.artifacts:
            write_chrome_trace(stats.telemetry, out / "trace.json")
            artifacts.append("trace.json")
    payload = {
        "kind": request.KIND,
        "label": variant_name(request.benchmark, request.cdp),
        "stats": stats.to_dict(),
        "artifacts": artifacts,
    }
    _stamp(timings, "serialize_s", t)
    return payload, timings


#: kind -> executor, the registry a :class:`repro.service.jobs.JobQueue`
#: is built from.
EXECUTORS = {
    "simulate": execute_simulate,
    "estimate": execute_estimate,
    "sweep": execute_sweep,
    "profile": execute_profile,
}
