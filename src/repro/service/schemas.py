"""Typed, versioned request/response schemas for the service API.

Every endpoint body is validated into a frozen dataclass before any
work is scheduled; malformed payloads raise :class:`SchemaError` with
the offending field's name, which the HTTP layer maps to a 400.  The
schemas are deliberately plain data (strings, numbers, dicts) so a
request round-trips ``to_dict -> json -> from_dict`` unchanged —
``tests/service/test_schemas.py`` locks that property.

``SCHEMA_VERSION`` stamps every response envelope.  Additive changes
(new optional fields) keep the version; renames/removals bump it so
clients can detect incompatibility instead of silently misparsing.

Config overrides travel as a flat dotted-key mapping in the config
file's key space (``{"num_sms": 8, "dram.controller": "fifo"}``) and
are resolved through :func:`repro.sim.configfile.apply_overrides`, so
the HTTP API rejects exactly the typos the file format rejects.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields
from typing import Any

from repro.data.datasets import DatasetSize
from repro.kernels import benchmark_names
from repro.sim.config import GPUConfig
from repro.sim.configfile import apply_overrides

#: Version of the wire format; stamped on every response envelope.
SCHEMA_VERSION = 1

#: Telemetry artifact kinds a profile job can export.
PROFILE_ARTIFACTS = ("jsonl", "chrome_trace")

_SIZES = tuple(size.value for size in DatasetSize)


class SchemaError(ValueError):
    """A request payload failed validation.

    ``field`` names the offending key (dotted for nested config keys)
    so clients can surface the error next to the right input.
    """

    def __init__(self, field_name: str, message: str):
        self.field = field_name
        super().__init__(
            f"{field_name}: {message}" if field_name else message
        )


# -- field validators -------------------------------------------------------


def _require(payload: dict, name: str):
    if name not in payload:
        raise SchemaError(name, "required field is missing")
    return payload[name]


def _str(name: str, value) -> str:
    if not isinstance(value, str):
        raise SchemaError(name, f"expected a string, got {value!r}")
    return value


def _bool(name: str, value) -> bool:
    if not isinstance(value, bool):
        raise SchemaError(name, f"expected a boolean, got {value!r}")
    return value


def _int(name: str, value) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise SchemaError(name, f"expected an integer, got {value!r}")
    return value


def _float(name: str, value) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise SchemaError(name, f"expected a number, got {value!r}")
    return float(value)


def _benchmark(name: str, value) -> str:
    value = _str(name, value)
    if value not in benchmark_names():
        raise SchemaError(
            name,
            f"unknown benchmark {value!r}; choose from {benchmark_names()}",
        )
    return value


def _size(name: str, value) -> str:
    value = _str(name, value)
    if value not in _SIZES:
        raise SchemaError(name, f"unknown size {value!r}; one of {_SIZES}")
    return value


def _config_overrides(name: str, value) -> dict:
    if not isinstance(value, dict):
        raise SchemaError(name, f"expected an object, got {value!r}")
    try:
        apply_overrides(GPUConfig(), value)
    except ValueError as exc:
        raise SchemaError(name, str(exc)) from exc
    return dict(value)


def _timeout(name: str, value) -> float | None:
    if value is None:
        return None
    value = _float(name, value)
    if value <= 0:
        raise SchemaError(name, "timeout must be positive")
    return value


def _reject_unknown(cls, payload: dict) -> None:
    known = {f.name for f in fields(cls)}
    unknown = sorted(set(payload) - known)
    if unknown:
        raise SchemaError(
            unknown[0], f"unknown field for {cls.KIND!r} requests"
        )


# -- request schemas --------------------------------------------------------


@dataclass(frozen=True)
class SimulateRequest:
    """``POST /v1/simulate``: one exact cycle-accurate run."""

    KIND = "simulate"

    benchmark: str
    cdp: bool = False
    size: str = DatasetSize.SMALL.value
    config: dict = field(default_factory=dict)
    priority: int = 0
    timeout_s: float | None = None
    use_cache: bool = True

    @classmethod
    def from_dict(cls, payload: dict) -> "SimulateRequest":
        _reject_unknown(cls, payload)
        return cls(
            benchmark=_benchmark("benchmark", _require(payload, "benchmark")),
            cdp=_bool("cdp", payload.get("cdp", False)),
            size=_size("size", payload.get("size", DatasetSize.SMALL.value)),
            config=_config_overrides("config", payload.get("config", {})),
            priority=_int("priority", payload.get("priority", 0)),
            timeout_s=_timeout("timeout_s", payload.get("timeout_s")),
            use_cache=_bool("use_cache", payload.get("use_cache", True)),
        )

    def to_dict(self) -> dict:
        return asdict(self)

    def resolved_config(self) -> GPUConfig:
        return apply_overrides(GPUConfig(), self.config)

    def identity(self) -> dict:
        """The result-defining fields (cache-key material).

        Scheduling knobs (priority, timeout, cache opt-out) are
        excluded: they change *when* a result arrives, never its bytes.
        """
        return {
            "benchmark": self.benchmark,
            "cdp": self.cdp,
            "size": self.size,
        }


@dataclass(frozen=True)
class EstimateRequest:
    """``POST /v1/estimate``: warp-sampled estimation with CIs."""

    KIND = "estimate"

    benchmark: str
    cdp: bool = False
    size: str = DatasetSize.SMALL.value
    config: dict = field(default_factory=dict)
    sample_fraction: float = 0.1
    sample_seed: int = 0
    priority: int = 0
    timeout_s: float | None = None
    use_cache: bool = True

    @classmethod
    def from_dict(cls, payload: dict) -> "EstimateRequest":
        _reject_unknown(cls, payload)
        fraction = _float(
            "sample_fraction", payload.get("sample_fraction", 0.1)
        )
        if not 0.0 < fraction <= 1.0:
            raise SchemaError("sample_fraction", "must be in (0, 1]")
        return cls(
            benchmark=_benchmark("benchmark", _require(payload, "benchmark")),
            cdp=_bool("cdp", payload.get("cdp", False)),
            size=_size("size", payload.get("size", DatasetSize.SMALL.value)),
            config=_config_overrides("config", payload.get("config", {})),
            sample_fraction=fraction,
            sample_seed=_int("sample_seed", payload.get("sample_seed", 0)),
            priority=_int("priority", payload.get("priority", 0)),
            timeout_s=_timeout("timeout_s", payload.get("timeout_s")),
            use_cache=_bool("use_cache", payload.get("use_cache", True)),
        )

    def to_dict(self) -> dict:
        return asdict(self)

    def resolved_config(self) -> GPUConfig:
        # The sample knobs are GPUConfig fields, so the resolved config
        # (not just the overrides) is the complete cache-key material.
        return apply_overrides(GPUConfig(), self.config).with_(
            sample_fraction=self.sample_fraction,
            sample_seed=self.sample_seed,
        )

    def identity(self) -> dict:
        return {
            "benchmark": self.benchmark,
            "cdp": self.cdp,
            "size": self.size,
        }


def _points(name: str, value) -> tuple:
    """Validate and canonicalize explicit sweep points.

    Each element must round-trip through the dsweep wire codec
    (:mod:`repro.dist.wire`); the stored form is the canonical
    re-encoding, so the ``key`` fields are always present and correct.
    """
    if not isinstance(value, (list, tuple)):
        raise SchemaError(name, f"expected a list, got {value!r}")
    from repro.dist.wire import decode_point, encode_point

    canonical = []
    for index, entry in enumerate(value):
        if not isinstance(entry, dict):
            raise SchemaError(
                f"{name}[{index}]", f"expected an object, got {entry!r}"
            )
        try:
            canonical.append(encode_point(decode_point(entry)))
        except ValueError as exc:
            raise SchemaError(f"{name}[{index}]", str(exc)) from exc
    labels = [entry["label"] for entry in canonical]
    if len(set(labels)) != len(labels):
        raise SchemaError(name, "point labels must be unique")
    return tuple(canonical)


@dataclass(frozen=True)
class SweepRequest:
    """``POST /v1/sweep``: the suite (or a subset) at one config.

    Alternatively, ``points`` carries an explicit list of wire-encoded
    sweep points (each its own full config) — the mode the distributed
    coordinator's :class:`~repro.dist.launchers.ServiceLauncher` uses
    to run one chunk per request.  The two modes are mutually
    exclusive: with ``points``, the grid fields
    (``benchmarks``/``cdp_variants``/``size``/``config``) must stay at
    their defaults.
    """

    KIND = "sweep"

    benchmarks: tuple = ()  # empty = the whole suite
    cdp_variants: bool = True
    size: str = DatasetSize.SMALL.value
    config: dict = field(default_factory=dict)
    points: tuple = ()  # wire-encoded explicit points (dsweep chunks)
    priority: int = 0
    timeout_s: float | None = None
    use_cache: bool = True

    @classmethod
    def from_dict(cls, payload: dict) -> "SweepRequest":
        _reject_unknown(cls, payload)
        raw = payload.get("benchmarks", [])
        if not isinstance(raw, (list, tuple)):
            raise SchemaError("benchmarks", f"expected a list, got {raw!r}")
        points = _points("points", payload.get("points", []))
        if points and (
            raw
            or payload.get("config")
            or "cdp_variants" in payload
            or "size" in payload
        ):
            raise SchemaError(
                "points",
                "explicit points carry their own configs; do not combine "
                "with benchmarks/cdp_variants/size/config",
            )
        return cls(
            benchmarks=tuple(
                _benchmark("benchmarks", abbr) for abbr in raw
            ),
            cdp_variants=_bool(
                "cdp_variants", payload.get("cdp_variants", True)
            ),
            size=_size("size", payload.get("size", DatasetSize.SMALL.value)),
            config=_config_overrides("config", payload.get("config", {})),
            points=points,
            priority=_int("priority", payload.get("priority", 0)),
            timeout_s=_timeout("timeout_s", payload.get("timeout_s")),
            use_cache=_bool("use_cache", payload.get("use_cache", True)),
        )

    def to_dict(self) -> dict:
        data = asdict(self)
        data["benchmarks"] = list(self.benchmarks)
        data["points"] = [dict(entry) for entry in self.points]
        return data

    def resolved_config(self) -> GPUConfig:
        return apply_overrides(GPUConfig(), self.config)

    def identity(self) -> dict:
        if self.points:
            # Point keys already hash each point's full config, so they
            # are the complete cache-key material for this mode.
            return {"points": [entry["key"] for entry in self.points]}
        return {
            "benchmarks": list(self.benchmarks),
            "cdp_variants": self.cdp_variants,
            "size": self.size,
        }


@dataclass(frozen=True)
class ProfileRequest:
    """``POST /v1/profile``: a telemetry run with downloadable exports.

    Never cached: the job's value is its per-job artifact files
    (JSONL / Chrome trace), which live in the job's artifact dir.
    """

    KIND = "profile"

    benchmark: str
    cdp: bool = False
    size: str = DatasetSize.SMALL.value
    config: dict = field(default_factory=dict)
    interval: int = 10_000
    artifacts: tuple = PROFILE_ARTIFACTS
    priority: int = 0
    timeout_s: float | None = None

    @classmethod
    def from_dict(cls, payload: dict) -> "ProfileRequest":
        _reject_unknown(cls, payload)
        interval = _int("interval", payload.get("interval", 10_000))
        if interval <= 0:
            raise SchemaError("interval", "must be a positive cycle count")
        raw = payload.get("artifacts", list(PROFILE_ARTIFACTS))
        if not isinstance(raw, (list, tuple)):
            raise SchemaError("artifacts", f"expected a list, got {raw!r}")
        for kind in raw:
            if kind not in PROFILE_ARTIFACTS:
                raise SchemaError(
                    "artifacts",
                    f"unknown artifact {kind!r}; one of {PROFILE_ARTIFACTS}",
                )
        return cls(
            benchmark=_benchmark("benchmark", _require(payload, "benchmark")),
            cdp=_bool("cdp", payload.get("cdp", False)),
            size=_size("size", payload.get("size", DatasetSize.SMALL.value)),
            config=_config_overrides("config", payload.get("config", {})),
            interval=interval,
            artifacts=tuple(raw),
            priority=_int("priority", payload.get("priority", 0)),
            timeout_s=_timeout("timeout_s", payload.get("timeout_s")),
        )

    def to_dict(self) -> dict:
        data = asdict(self)
        data["artifacts"] = list(self.artifacts)
        return data

    def resolved_config(self) -> GPUConfig:
        return apply_overrides(GPUConfig(), self.config).with_(
            telemetry_interval=self.interval
        )


#: endpoint kind -> request schema
REQUEST_TYPES = {
    cls.KIND: cls
    for cls in (SimulateRequest, EstimateRequest, SweepRequest,
                ProfileRequest)
}


def parse_request(kind: str, payload: Any):
    """Validate ``payload`` into the request dataclass for ``kind``."""
    if kind not in REQUEST_TYPES:
        raise SchemaError(
            "", f"unknown request kind {kind!r}; one of {sorted(REQUEST_TYPES)}"
        )
    if not isinstance(payload, dict):
        raise SchemaError("", f"request body must be an object, got {payload!r}")
    return REQUEST_TYPES[kind].from_dict(payload)


# -- response schemas -------------------------------------------------------


@dataclass(frozen=True)
class JobView:
    """The wire representation of a job's state.

    ``progress`` is populated while the job runs (when its executor
    reports any): sweep jobs count completed points, telemetry runs
    count simulated interval rows — both carry ``percent`` when a
    total is known.  Additive optional field; same schema version.
    """

    id: str
    kind: str
    state: str
    priority: int
    cached: bool
    coalesced: bool
    request_id: str | None
    submitted_at: float
    started_at: float | None
    finished_at: float | None
    timings: dict
    error: str | None
    artifacts: tuple
    progress: dict | None = None
    schema_version: int = SCHEMA_VERSION

    @classmethod
    def from_dict(cls, payload: dict) -> "JobView":
        version = payload.get("schema_version")
        if version != SCHEMA_VERSION:
            raise SchemaError(
                "schema_version",
                f"server speaks version {version}, client {SCHEMA_VERSION}",
            )
        known = {f.name for f in fields(cls)}
        data = {k: v for k, v in payload.items() if k in known}
        data["artifacts"] = tuple(data.get("artifacts", ()))
        return cls(**data)

    def to_dict(self) -> dict:
        data = asdict(self)
        data["artifacts"] = list(self.artifacts)
        return data


def error_body(message: str, request_id: str | None = None,
               field_name: str | None = None) -> dict:
    """The uniform error envelope every non-2xx response carries."""
    body = {
        "schema_version": SCHEMA_VERSION,
        "error": message,
        "request_id": request_id,
    }
    if field_name:
        body["field"] = field_name
    return body
