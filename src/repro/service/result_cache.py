"""Content-addressed result cache: repeat requests skip the workers.

Under serving traffic most requests repeat the same (application,
trace fingerprint, config) tuple, so finished results are worth far
more than recomputation.  A cache entry is addressed by
:func:`cache_key`::

    sha256( json({kind, identity, config-file text}) + source_fingerprint() )

- ``identity`` is the request's result-defining fields (benchmark,
  CDP, dataset size...) — scheduling knobs are excluded.
- The config contributes through its *full* serialized form
  (:func:`repro.sim.configfile.save_config`), which covers every knob
  including ``sample_fraction`` / ``sample_seed`` and
  ``telemetry_interval`` — two requests differing in any config field
  never share an entry.
- ``source_fingerprint()`` is :mod:`repro.sim.trace_store`'s hash of
  every trace-producing source tree, so editing a kernel silently
  retires every stale result (old entries are just never addressed
  again), exactly like the trace store.

Layout (in the style of :mod:`repro.sim.trace_store`): one
``<key>.json`` payload file per entry, published by atomic rename so
readers never see partial writes; an ``index.json`` with per-entry
metadata, serialized under a single-writer ``index.lock``
(``O_CREAT | O_EXCL``; locks older than ``stale_lock_s`` are presumed
dead and broken).  A corrupt payload or index is retired on read, not
raised.

Eviction: optional ``max_entries`` / ``max_bytes`` budgets evict the
oldest entries (by the index's ``created`` timestamps) inside the
same locked index transaction that publishes a new entry, so a
long-running server's cache directory stays bounded.  The entry being
published always survives — a budget smaller than one payload must
not turn the cache into a thrash loop.  ``repro serve
--cache-max-bytes`` wires this up; evictions are counted in
``/metrics``.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from pathlib import Path

from repro.sim.configfile import save_config
from repro.sim.trace_store import _default_stale_lock_s, source_fingerprint

#: Version stamp inside every payload file and the index.
CACHE_VERSION = 1

#: Poll interval while another writer holds the index lock.
_POLL_S = 0.005


def cache_key(kind: str, identity: dict, config) -> str:
    """The content address of one request's result."""
    material = json.dumps(
        {
            "version": CACHE_VERSION,
            "kind": kind,
            "identity": identity,
            "config": save_config(config),
        },
        sort_keys=True,
    )
    return hashlib.sha256(
        (material + source_fingerprint()).encode()
    ).hexdigest()


class ResultCache:
    """On-disk result cache rooted at a directory."""

    def __init__(
        self,
        root: str | os.PathLike,
        stale_lock_s: float | None = None,
        max_entries: int | None = None,
        max_bytes: int | None = None,
    ):
        self.root = Path(root).expanduser()
        self.stale_lock_s = (
            _default_stale_lock_s() if stale_lock_s is None else stale_lock_s
        )
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self.index().get("entries", {}))

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.json"

    # -- payloads -----------------------------------------------------------
    def get(self, key: str) -> dict | None:
        """The cached result payload for ``key``; None on miss.

        Corrupt entries (truncated writes from killed processes,
        foreign files) are unlinked and reported as misses, so callers
        always fall back to computing and overwriting.
        """
        path = self.path_for(key)
        try:
            data = json.loads(path.read_bytes())
            if data.get("version") != CACHE_VERSION or "payload" not in data:
                raise ValueError("foreign result-cache entry")
        except OSError:
            self.misses += 1
            return None
        except ValueError:
            try:
                path.unlink()
            except OSError:
                pass
            self.misses += 1
            return None
        self.hits += 1
        return data["payload"]

    def put(self, key: str, payload: dict, meta: dict | None = None) -> Path:
        """Publish ``payload`` under ``key`` (atomic, idempotent).

        Concurrent writers of the same key are harmless: the payload
        is content-addressed, so both renames publish identical bytes.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(key)
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        encoded = json.dumps(
            {"version": CACHE_VERSION, "key": key, "payload": payload}
        )
        tmp.write_text(encoded)
        os.replace(tmp, path)
        self._index_put(key, {**(meta or {}), "bytes": len(encoded)})
        self.stores += 1
        return path

    # -- index --------------------------------------------------------------
    def index(self) -> dict:
        """The JSON index (``{"version", "entries": {key: meta}}``)."""
        try:
            data = json.loads((self.root / "index.json").read_bytes())
            if data.get("version") != CACHE_VERSION:
                raise ValueError("foreign index")
            return data
        except (OSError, ValueError):
            return {"version": CACHE_VERSION, "entries": {}}

    def _index_put(self, key: str, meta: dict) -> None:
        lock = self.root / "index.lock"
        self._acquire(lock)
        try:
            data = self.index()
            data["entries"][key] = {
                **meta,
                "file": f"{key}.json",
                "created": time.time(),
            }
            self._evict_locked(data, keep=key)
            tmp = self.root / f"index.json.{os.getpid()}.tmp"
            tmp.write_text(json.dumps(data, indent=1, sort_keys=True))
            os.replace(tmp, self.root / "index.json")
        finally:
            try:
                os.unlink(lock)
            except OSError:
                pass

    def _entry_bytes(self, meta: dict) -> int:
        size = meta.get("bytes")
        if isinstance(size, int):
            return size
        try:  # entries written before the budgets existed
            return (self.root / meta.get("file", "")).stat().st_size
        except OSError:
            return 0

    def _evict_locked(self, data: dict, keep: str) -> None:
        """Drop oldest entries past the budgets (caller holds the lock).

        ``keep`` (the entry being published) is never evicted, so one
        oversized payload degrades to a single-entry cache rather than
        an unwritable one.
        """
        if self.max_entries is None and self.max_bytes is None:
            return
        entries = data["entries"]
        total = sum(self._entry_bytes(meta) for meta in entries.values())
        oldest = sorted(
            (k for k in entries if k != keep),
            key=lambda k: (entries[k].get("created", 0.0), k),
        )
        for key in oldest:
            over_count = (
                self.max_entries is not None
                and len(entries) > self.max_entries
            )
            over_bytes = (
                self.max_bytes is not None and total > self.max_bytes
            )
            if not over_count and not over_bytes:
                break
            meta = entries.pop(key)
            total -= self._entry_bytes(meta)
            try:
                (self.root / meta.get("file", f"{key}.json")).unlink()
            except OSError:
                pass
            self.evictions += 1

    def _acquire(self, lock: Path) -> None:
        """Single-writer lockfile with stale-age takeover."""
        while True:
            try:
                fd = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                try:
                    age = time.time() - lock.stat().st_mtime
                except OSError:
                    continue  # released between EXCL failure and stat
                if age > self.stale_lock_s:
                    # Writer died holding the lock: break it and retry.
                    try:
                        os.unlink(lock)
                    except OSError:
                        pass
                    continue
                time.sleep(_POLL_S)
                continue
            os.write(fd, str(os.getpid()).encode())
            os.close(fd)
            return
