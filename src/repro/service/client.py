"""A small blocking client for the service API (stdlib only).

Used by ``tests/service/`` and scriptable from user code::

    from repro.service.client import ServiceClient

    client = ServiceClient("127.0.0.1", 8777)
    job = client.simulate("NW", config={"num_sms": 8})
    view = client.wait(job["id"])
    stats = client.stats(job["id"])       # a real RunStats again
    print(stats.ipc)

Every call opens a fresh connection (the server is HTTP/1.1 but jobs
outlive connections anyway), so one client instance is safe to share
across threads — the stress tests hammer a single instance.
"""

from __future__ import annotations

import json
import time
from http.client import HTTPConnection

from repro.sim.stats import RunStats, stats_from_dict

#: Job states that end a :meth:`ServiceClient.wait` poll loop.
FINAL_STATES = ("done", "failed", "cancelled", "timeout")


class ServiceError(RuntimeError):
    """A non-2xx response; carries the server's error envelope."""

    def __init__(self, status: int, body):
        self.status = status
        self.body = body
        message = (
            body.get("error") if isinstance(body, dict) else None
        ) or f"HTTP {status}"
        super().__init__(f"{message} (HTTP {status})")


class ServiceClient:
    def __init__(self, host: str = "127.0.0.1", port: int = 8777,
                 timeout: float = 120.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- transport ----------------------------------------------------------
    def _request(self, method: str, path: str, payload: dict | None = None,
                 raw: bool = False):
        conn = HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            body = (
                json.dumps(payload).encode() if payload is not None else None
            )
            headers = {"Content-Type": "application/json"} if body else {}
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            data = response.read()
            status = response.status
        finally:
            conn.close()
        if raw and status < 400:
            return data
        try:
            parsed = json.loads(data) if data else {}
        except ValueError:
            parsed = {"error": data.decode(errors="replace")}
        if status >= 400:
            raise ServiceError(status, parsed)
        return parsed

    # -- submission ---------------------------------------------------------
    def submit(self, kind: str, **payload) -> dict:
        """POST one request; returns the job view (result inline on a
        cache hit — check ``view.get("result")``)."""
        return self._request("POST", f"/v1/{kind}", payload)

    def simulate(self, benchmark: str, **payload) -> dict:
        return self.submit("simulate", benchmark=benchmark, **payload)

    def estimate(self, benchmark: str, **payload) -> dict:
        return self.submit("estimate", benchmark=benchmark, **payload)

    def profile(self, benchmark: str, **payload) -> dict:
        return self.submit("profile", benchmark=benchmark, **payload)

    def sweep(self, **payload) -> dict:
        return self.submit("sweep", **payload)

    # -- lifecycle ----------------------------------------------------------
    def job(self, job_id: str) -> dict:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def jobs(self) -> list:
        return self._request("GET", "/v1/jobs")["jobs"]

    def result(self, job_id: str) -> dict:
        """The full result envelope (409 -> ServiceError until done)."""
        return self._request("GET", f"/v1/jobs/{job_id}/result")

    def stats(self, job_id: str) -> RunStats:
        """The job's stats payload, rebuilt into a live ``RunStats``."""
        return stats_from_dict(self.result(job_id)["result"]["stats"])

    def cancel(self, job_id: str) -> dict:
        return self._request("DELETE", f"/v1/jobs/{job_id}")

    def wait(self, job_id: str, timeout: float = 120.0,
             poll: float = 0.05) -> dict:
        """Poll until the job is terminal; returns the final view."""
        deadline = time.monotonic() + timeout
        while True:
            view = self.job(job_id)
            if view["state"] in FINAL_STATES:
                return view
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {view['state']} after {timeout}s"
                )
            time.sleep(poll)

    def run(self, kind: str, timeout: float = 120.0, **payload) -> dict:
        """Submit and block until done; returns the result envelope.

        Raises :class:`ServiceError` when the job fails/cancels/times
        out (the 409 from the result route carries the job's error).
        """
        view = self.submit(kind, **payload)
        if view.get("result") is not None:  # cache hit answered inline
            return {"job": view, "result": view["result"]}
        self.wait(view["id"], timeout=timeout)
        return self.result(view["id"])

    # -- observability ------------------------------------------------------
    def metrics(self) -> dict:
        return self._request("GET", "/metrics")

    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def artifact(self, job_id: str, name: str) -> bytes:
        return self._request(
            "GET", f"/v1/jobs/{job_id}/artifacts/{name}", raw=True
        )
