"""Stdlib HTTP layer over :class:`~repro.service.service.SimulationService`.

Endpoints (all JSON unless noted)::

    POST   /v1/simulate | /v1/estimate | /v1/sweep | /v1/profile
               -> 200 job view (cache hit, result inline)
               -> 202 job view (queued / coalesced)
    GET    /v1/jobs                    -> job list (most recent first)
    GET    /v1/jobs/<id>               -> job view
    GET    /v1/jobs/<id>/result        -> {job, result} (409 until done)
    DELETE /v1/jobs/<id>               -> cancel; view + "cancelled" flag
    GET    /v1/jobs/<id>/artifacts/<name>  -> raw artifact bytes
    GET    /metrics                    -> observability counters
    GET    /healthz                    -> {"ok": true}

Every response carries ``X-Request-Id`` (echoing the request header or
minting one) and one structured log line goes to stderr per request:
``[repro.serve] rid=... method path status dur_ms``.  Errors use the
uniform envelope from :func:`repro.service.schemas.error_body`.

Built on ``ThreadingHTTPServer`` — one thread per connection, no
third-party dependencies — which is plenty: the heavy lifting happens
in the job queue's bounded workers, and cache hits are dict lookups.
"""

from __future__ import annotations

import errno
import json
import re
import sys
import time
import uuid
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.service.schemas import (
    SCHEMA_VERSION,
    REQUEST_TYPES,
    SchemaError,
    error_body,
)
from repro.service.service import SimulationService

_JOB_ROUTE = re.compile(r"^/v1/jobs/([0-9a-f]+)$")
_RESULT_ROUTE = re.compile(r"^/v1/jobs/([0-9a-f]+)/result$")
_ARTIFACT_ROUTE = re.compile(
    r"^/v1/jobs/([0-9a-f]+)/artifacts/([A-Za-z0-9._-]+)$"
)

#: Upper bound on accepted request bodies (1 MiB is generous for
#: config overrides; anything larger is a client bug or abuse).
MAX_BODY_BYTES = 1 << 20


class ServiceHTTPServer(ThreadingHTTPServer):
    """HTTP server bound to one :class:`SimulationService`."""

    daemon_threads = True

    def __init__(self, address, service: SimulationService):
        self.service = service
        super().__init__(address, _Handler)

    def shutdown(self) -> None:  # also stops the workers
        super().shutdown()
        self.service.shutdown()


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server: ServiceHTTPServer

    # -- plumbing -----------------------------------------------------------
    def _begin(self) -> None:
        self.request_id = (
            self.headers.get("X-Request-Id") or uuid.uuid4().hex[:12]
        )
        self._started = time.monotonic()

    def _send_json(self, status: int, body: dict) -> None:
        data = json.dumps(body).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.send_header("X-Request-Id", self.request_id)
        self.end_headers()
        self.wfile.write(data)
        self._log(status)

    def _send_error(self, status: int, message: str,
                    field: str | None = None) -> None:
        self._send_json(
            status, error_body(message, self.request_id, field)
        )

    def _send_bytes(self, data: bytes, content_type: str) -> None:
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.send_header("X-Request-Id", self.request_id)
        self.end_headers()
        self.wfile.write(data)
        self._log(200)

    def _log(self, status: int) -> None:
        dur_ms = (time.monotonic() - self._started) * 1000.0
        print(
            f"[repro.serve] rid={self.request_id} {self.command} "
            f"{self.path} {status} {dur_ms:.1f}ms",
            file=sys.stderr,
            flush=True,
        )

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # replaced by the structured _log line

    def _read_body(self):
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise SchemaError("", f"request body over {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            return json.loads(raw)
        except ValueError as exc:
            raise SchemaError("", f"invalid JSON body: {exc}") from exc

    # -- verbs --------------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        self._begin()
        kind = self.path.rstrip("/").rpartition("/")[2]
        if not self.path.startswith("/v1/") or kind not in REQUEST_TYPES:
            self._send_error(404, f"no such endpoint {self.path!r}")
            return
        try:
            payload = self._read_body()
            job = self.server.service.submit(
                kind, payload, request_id=self.request_id
            )
        except SchemaError as exc:
            self._send_error(400, str(exc), field=exc.field or None)
            return
        body = job.view().to_dict()
        if job.state == "done":
            body["result"] = job.result
            self._send_json(200, body)
        else:
            self._send_json(202, body)

    def do_GET(self) -> None:  # noqa: N802
        self._begin()
        service = self.server.service
        path = self.path.split("?", 1)[0]
        if path == "/healthz":
            self._send_json(
                200, {"ok": True, "schema_version": SCHEMA_VERSION}
            )
            return
        if path == "/metrics":
            self._send_json(200, service.metrics_dict())
            return
        if path == "/v1/jobs":
            jobs = sorted(
                service.queue.jobs.values(),
                key=lambda job: job.submitted_at,
                reverse=True,
            )
            self._send_json(
                200,
                {
                    "schema_version": SCHEMA_VERSION,
                    "jobs": [job.view().to_dict() for job in jobs[:200]],
                },
            )
            return
        match = _JOB_ROUTE.match(path)
        if match:
            job = service.job(match.group(1))
            if job is None:
                self._send_error(404, f"unknown job {match.group(1)!r}")
            else:
                self._send_json(200, job.view().to_dict())
            return
        match = _RESULT_ROUTE.match(path)
        if match:
            self._send_result(service, match.group(1))
            return
        match = _ARTIFACT_ROUTE.match(path)
        if match:
            self._send_artifact(service, match.group(1), match.group(2))
            return
        self._send_error(404, f"no such endpoint {path!r}")

    def do_DELETE(self) -> None:  # noqa: N802
        self._begin()
        match = _JOB_ROUTE.match(self.path)
        if not match:
            self._send_error(404, f"no such endpoint {self.path!r}")
            return
        job = self.server.service.job(match.group(1))
        if job is None:
            self._send_error(404, f"unknown job {match.group(1)!r}")
            return
        cancelled = self.server.service.cancel(job.id)
        body = job.view().to_dict()
        body["cancelled"] = cancelled
        self._send_json(200, body)

    # -- route bodies -------------------------------------------------------
    def _send_result(self, service, job_id: str) -> None:
        job = service.job(job_id)
        if job is None:
            self._send_error(404, f"unknown job {job_id!r}")
            return
        if job.state != "done":
            self._send_error(
                409,
                f"job {job_id} is {job.state}"
                + (f": {job.error}" if job.error else ""),
            )
            return
        self._send_json(
            200,
            {
                "schema_version": SCHEMA_VERSION,
                "job": job.view().to_dict(),
                "result": job.result,
            },
        )

    def _send_artifact(self, service, job_id: str, name: str) -> None:
        job = service.job(job_id)
        if job is None:
            self._send_error(404, f"unknown job {job_id!r}")
            return
        if name not in job.artifacts or job.artifact_dir is None:
            self._send_error(
                404, f"job {job_id} has no artifact {name!r}"
            )
            return
        try:
            data = (job.artifact_dir / name).read_bytes()
        except OSError:
            self._send_error(404, f"artifact {name!r} is gone")
            return
        content_type = (
            "application/json" if name.endswith(".json")
            else "application/x-ndjson" if name.endswith(".jsonl")
            else "application/octet-stream"
        )
        self._send_bytes(data, content_type)


def make_server(
    host: str,
    port: int,
    service: SimulationService | None = None,
    **service_kwargs,
) -> ServiceHTTPServer:
    """Bind a server (``port=0`` picks a free port; see
    ``server.server_address``).  Raises ``OSError`` (``EADDRINUSE``)
    when the port is taken — callers own the friendly message."""
    if service is None:
        service = SimulationService(**service_kwargs)
    return ServiceHTTPServer((host, port), service)


def serve(
    host: str = "127.0.0.1",
    port: int = 8777,
    workers: int | None = None,
    cache_root=None,
    artifact_root=None,
    cache_max_entries: int | None = None,
    cache_max_bytes: int | None = None,
) -> None:
    """Blocking entry point for ``repro serve``."""
    server = make_server(
        host,
        port,
        workers=workers,
        cache_root=cache_root,
        artifact_root=artifact_root,
        cache_max_entries=cache_max_entries,
        cache_max_bytes=cache_max_bytes,
    )
    bound = server.server_address
    cache = cache_root or "off"
    print(
        f"[repro.serve] listening on http://{bound[0]}:{bound[1]} "
        f"(workers={server.service.queue.workers}, result cache: {cache})",
        file=sys.stderr,
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        pass
    finally:
        server.shutdown()
        server.server_close()


def is_port_in_use_error(exc: OSError) -> bool:
    """True for the bind failures ``repro serve`` reports as exit 2."""
    return exc.errno in (errno.EADDRINUSE, errno.EACCES)
