"""Async job queue: priorities, cancellation, timeouts, bounded workers.

Jobs are executed by a fixed pool of worker *threads* whose size
defaults to the repo-wide core budget
(:func:`repro.core.sweep.default_jobs`), so one server never
oversubscribes the host even when sweeps and single runs mix.  The
budget is *weighted*: a job whose resolved config runs with
``parallel_shards = N`` forks N shard workers of its own, so it
occupies ``min(N, workers)`` slots rather than one — without the
weighting, a server with W workers each running an N-shard job would
put ``W x N`` runnable processes on W cores.  Each
worker runs its job's executor in a forked child *process* (when the
platform offers ``fork``): a blocking simulation can then be genuinely
killed — cancellation of a running job and per-job timeouts both
``terminate()`` the child rather than waiting politely for code that
never checks a flag.  Hosts without ``fork`` degrade to inline
execution (documented: running jobs become uncancellable there;
queued jobs still cancel).

State machine::

    queued -> running -> done | failed | timeout | cancelled
    queued -> cancelled                  (never dispatched)

Every transition stamps wall-clock times and per-stage latencies
(``queue_wait_s``, ``run_s``, plus executor-reported sub-stages like
``trace_load_s`` / ``sim_s`` / ``serialize_s``) — the observability
fields ``/metrics`` aggregates.
"""

from __future__ import annotations

import heapq
import itertools
import json
import multiprocessing
import shutil
import tempfile
import threading
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.sweep import default_jobs
from repro.service.schemas import SCHEMA_VERSION, JobView

#: How often a worker re-checks cancellation/timeout while its child runs.
_POLL_S = 0.02

#: Terminal job states.
_FINAL = ("done", "failed", "cancelled", "timeout")


class JobState:
    """String constants for job states (JSON-friendly on the wire)."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"
    TIMEOUT = "timeout"


@dataclass
class Job:
    """One submitted unit of work and its lifecycle record."""

    id: str
    kind: str
    request: object
    priority: int = 0
    timeout_s: float | None = None
    state: str = JobState.QUEUED
    cached: bool = False
    coalesced: bool = False
    request_id: str | None = None
    cache_key: str | None = None
    submitted_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    error: str | None = None
    result: dict | None = None
    artifacts: tuple = ()
    artifact_dir: Path | None = None
    timings: dict = field(default_factory=dict)
    _cancel: bool = field(default=False, repr=False)
    _mono_submitted: float = field(default=0.0, repr=False)

    @property
    def finished(self) -> bool:
        return self.state in _FINAL

    def progress(self) -> dict | None:
        """The executor child's latest ``progress.json``, if any.

        Only meaningful while running (a finished job's percent is its
        terminal state); reading the file fresh per status poll keeps
        the parent free of any progress IPC.
        """
        if self.state != JobState.RUNNING or self.artifact_dir is None:
            return None
        try:
            raw = (self.artifact_dir / "progress.json").read_text()
            payload = json.loads(raw)
        except (OSError, ValueError):
            return None
        return payload if isinstance(payload, dict) else None

    def view(self) -> JobView:
        return JobView(
            id=self.id,
            kind=self.kind,
            state=self.state,
            priority=self.priority,
            cached=self.cached,
            coalesced=self.coalesced,
            request_id=self.request_id,
            submitted_at=self.submitted_at,
            started_at=self.started_at,
            finished_at=self.finished_at,
            timings=dict(self.timings),
            error=self.error,
            artifacts=tuple(self.artifacts),
            progress=self.progress(),
            schema_version=SCHEMA_VERSION,
        )


def _child_entry(executor, request, artifact_dir, conn) -> None:
    """Forked child: run the executor, ship (status, payload, stages)."""
    try:
        result, stages = executor(request, artifact_dir)
        conn.send(("ok", result, stages))
    except BaseException as exc:  # noqa: BLE001 - report, don't crash silent
        conn.send(("error", f"{type(exc).__name__}: {exc}", {}))
    finally:
        conn.close()


class JobQueue:
    """Priority queue + bounded worker pool with kill-based control.

    ``executors`` maps job kinds to ``fn(request, artifact_dir) ->
    (result_dict, stage_timings)`` callables; see
    :mod:`repro.service.execute` for the simulation executors.
    ``on_complete`` (when given) runs in the worker thread after every
    terminal transition — the service layer uses it to publish results
    into the cache.

    ``start=False`` builds the queue paused: jobs accumulate (useful
    for deterministic priority tests) until :meth:`start` spawns the
    workers.  ``use_processes=False`` forces inline execution.
    """

    def __init__(
        self,
        executors: dict,
        workers: int | None = None,
        artifact_root: str | Path | None = None,
        on_complete=None,
        start: bool = True,
        use_processes: bool = True,
    ):
        self.executors = dict(executors)
        self.workers = workers if workers is not None else default_jobs()
        if self.workers < 1:
            raise ValueError("need at least one worker")
        self.on_complete = on_complete
        self._owns_artifact_root = artifact_root is None
        self.artifact_root = Path(
            artifact_root
            if artifact_root is not None
            else tempfile.mkdtemp(prefix="repro-service-")
        )
        self._ctx = None
        if use_processes and "fork" in multiprocessing.get_all_start_methods():
            self._ctx = multiprocessing.get_context("fork")
        self.jobs: dict[str, Job] = {}
        self._heap: list = []
        self._seq = itertools.count()
        self._cond = threading.Condition()
        self._threads: list[threading.Thread] = []
        self._stop = False
        self._in_use = 0  # weighted slots held by running jobs
        self.executed = 0  # jobs a worker actually ran (cache bypasses)
        if start:
            self.start()

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> None:
        """Spawn the worker threads (idempotent)."""
        with self._cond:
            missing = self.workers - len(self._threads)
        for _ in range(max(0, missing)):
            thread = threading.Thread(
                target=self._worker, name="repro-service-worker", daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def shutdown(self, cancel_pending: bool = True) -> None:
        """Stop the workers; optionally cancel everything still queued."""
        with self._cond:
            self._stop = True
            if cancel_pending:
                for job in self.jobs.values():
                    if job.state == JobState.QUEUED:
                        self._finish(job, JobState.CANCELLED,
                                     error="server shutting down")
                    elif job.state == JobState.RUNNING:
                        job._cancel = True
            self._cond.notify_all()
        for thread in self._threads:
            thread.join(timeout=10)
        if self._owns_artifact_root:
            shutil.rmtree(self.artifact_root, ignore_errors=True)

    # -- submission / inspection -------------------------------------------
    def submit(
        self,
        kind: str,
        request,
        priority: int = 0,
        timeout_s: float | None = None,
        request_id: str | None = None,
        cache_key: str | None = None,
    ) -> Job:
        """Enqueue a job; higher ``priority`` dispatches first."""
        if kind not in self.executors:
            raise KeyError(f"no executor registered for kind {kind!r}")
        job = Job(
            id=uuid.uuid4().hex[:12],
            kind=kind,
            request=request,
            priority=priority,
            timeout_s=timeout_s,
            request_id=request_id,
            cache_key=cache_key,
            submitted_at=time.time(),
        )
        job._mono_submitted = time.monotonic()
        with self._cond:
            if self._stop:
                raise RuntimeError("job queue is shut down")
            self.jobs[job.id] = job
            heapq.heappush(
                self._heap, (-priority, next(self._seq), job.id)
            )
            self._cond.notify()
        return job

    def record_completed(
        self,
        kind: str,
        result: dict,
        cached: bool = False,
        request_id: str | None = None,
        cache_key: str | None = None,
    ) -> Job:
        """Register an already-answered job (cache hit): no dispatch.

        The job materializes directly in the ``done`` state so the
        lifecycle API (status, result download) works uniformly for
        cached and computed answers.
        """
        now = time.time()
        job = Job(
            id=uuid.uuid4().hex[:12],
            kind=kind,
            request=None,
            state=JobState.DONE,
            cached=cached,
            request_id=request_id,
            cache_key=cache_key,
            submitted_at=now,
            started_at=now,
            finished_at=now,
            result=result,
            timings={"queue_wait_s": 0.0, "run_s": 0.0},
        )
        with self._cond:
            self.jobs[job.id] = job
        return job

    def get(self, job_id: str) -> Job | None:
        return self.jobs.get(job_id)

    def cancel(self, job_id: str) -> bool:
        """Cancel a job: queued jobs die instantly, running jobs are
        killed at the next poll tick.  False if unknown or finished."""
        with self._cond:
            job = self.jobs.get(job_id)
            if job is None or job.finished:
                return False
            if job.state == JobState.QUEUED:
                self._finish(job, JobState.CANCELLED,
                             error="cancelled while queued")
                return True
            job._cancel = True
            return True

    def wait(self, job_id: str, timeout: float = 60.0) -> Job:
        """Block until ``job_id`` reaches a terminal state."""
        deadline = time.monotonic() + timeout
        with self._cond:
            while True:
                job = self.jobs.get(job_id)
                if job is None:
                    raise KeyError(f"unknown job {job_id!r}")
                if job.finished:
                    return job
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError(f"job {job_id} still {job.state}")
                self._cond.wait(remaining)

    def depth(self) -> dict:
        """Live gauges for ``/metrics``."""
        with self._cond:
            states: dict[str, int] = {}
            for job in self.jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
            return {
                "queued": states.get(JobState.QUEUED, 0),
                "running": states.get(JobState.RUNNING, 0),
                "states": states,
                "workers": self.workers,
                "slots_in_use": self._in_use,
            }

    def running_progress(self) -> list:
        """Per-running-job progress snapshots for ``/metrics``."""
        with self._cond:
            running = [
                job for job in self.jobs.values()
                if job.state == JobState.RUNNING
            ]
        # progress() reads each job's progress.json — do the file IO
        # outside the queue lock.
        return [
            {"id": job.id, "kind": job.kind, "progress": job.progress()}
            for job in running
        ]

    # -- execution ----------------------------------------------------------
    def _job_weight(self, job: Job) -> int:
        """Worker slots one job occupies: its run's shard count.

        A job whose resolved config forks ``parallel_shards`` shard
        workers uses that many cores, not one, so it must hold that
        many slots of the core budget.  Capped at ``self.workers`` so
        a single over-sharded job can always run (alone).  Requests
        without a resolvable config (profile jobs, test doubles) weigh
        one.
        """
        resolver = getattr(job.request, "resolved_config", None)
        if resolver is None:
            return 1
        try:
            config = resolver()
        except Exception:
            return 1
        shards = getattr(config, "parallel_shards", 1)
        return max(1, min(int(shards), self.workers))

    def _worker(self) -> None:
        while True:
            with self._cond:
                while not self._heap and not self._stop:
                    self._cond.wait()
                if self._stop:
                    return
                _, _, job_id = heapq.heappop(self._heap)
                job = self.jobs[job_id]
                if job.state != JobState.QUEUED:
                    continue  # cancelled while queued
                # Weighted admission: wait until the job's slots fit.
                # Other workers keep draining lighter jobs meanwhile;
                # cancellation while we wait still wins (state check).
                weight = self._job_weight(job)
                while (
                    self._in_use + weight > self.workers
                    and not self._stop
                    and job.state == JobState.QUEUED
                ):
                    self._cond.wait()
                if self._stop:
                    return
                if job.state != JobState.QUEUED:
                    continue  # cancelled while waiting for slots
                self._in_use += weight
                job.state = JobState.RUNNING
                job.started_at = time.time()
                job.timings["queue_wait_s"] = (
                    time.monotonic() - job._mono_submitted
                )
            try:
                self._run(job)
            except Exception as exc:  # pragma: no cover - worker never dies
                with self._cond:
                    if not job.finished:
                        self._finish(job, JobState.FAILED,
                                     error=f"{type(exc).__name__}: {exc}")
            finally:
                with self._cond:
                    self._in_use -= weight
                    self._cond.notify_all()
            callback = self.on_complete
            if callback is not None:
                try:
                    callback(job)
                except Exception:  # pragma: no cover - observer must not kill
                    pass

    def _run(self, job: Job) -> None:
        executor = self.executors[job.kind]
        artifact_dir = self.artifact_root / job.id
        artifact_dir.mkdir(parents=True, exist_ok=True)
        job.artifact_dir = artifact_dir
        started = time.monotonic()
        if self._ctx is None:
            self._run_inline(job, executor, artifact_dir, started)
        else:
            self._run_forked(job, executor, artifact_dir, started)

    def _run_inline(self, job, executor, artifact_dir, started) -> None:
        """No-fork fallback: run in the worker thread (unkillable)."""
        try:
            result, stages = executor(job.request, str(artifact_dir))
        except Exception as exc:
            self._settle(job, JobState.FAILED, started,
                         error=f"{type(exc).__name__}: {exc}")
            return
        if job._cancel:
            self._settle(job, JobState.CANCELLED, started,
                         error="cancelled while running")
            return
        self._settle(job, JobState.DONE, started, result=result,
                     stages=stages)

    def _run_forked(self, job, executor, artifact_dir, started) -> None:
        recv, send = self._ctx.Pipe(duplex=False)
        proc = self._ctx.Process(
            target=_child_entry,
            args=(executor, job.request, str(artifact_dir), send),
            daemon=True,
        )
        proc.start()
        send.close()
        deadline = (
            started + job.timeout_s if job.timeout_s is not None else None
        )
        message = None
        outcome = None
        while True:
            if job._cancel:
                outcome = JobState.CANCELLED
                break
            now = time.monotonic()
            if deadline is not None and now >= deadline:
                outcome = JobState.TIMEOUT
                break
            if recv.poll(_POLL_S):
                try:
                    message = recv.recv()
                except EOFError:
                    message = ("error", "worker process died mid-result", {})
                break
            if not proc.is_alive() and not recv.poll(0):
                message = (
                    "error",
                    f"worker process exited (code {proc.exitcode}) "
                    "without a result",
                    {},
                )
                break
        if outcome is not None:
            proc.terminate()
            proc.join(timeout=10)
            recv.close()
            error = (
                "cancelled while running"
                if outcome == JobState.CANCELLED
                else f"killed after exceeding timeout_s={job.timeout_s}"
            )
            self._settle(job, outcome, started, error=error)
            return
        proc.join(timeout=10)
        recv.close()
        status, payload, stages = message
        if status == "ok":
            self._settle(job, JobState.DONE, started, result=payload,
                         stages=stages)
        else:
            self._settle(job, JobState.FAILED, started, error=payload)

    def _settle(self, job, state, started, result=None, error=None,
                stages=None) -> None:
        with self._cond:
            if job.finished:  # cancelled concurrently; first writer wins
                return
            job.timings["run_s"] = time.monotonic() - started
            if stages:
                job.timings.update(stages)
            if result is not None:
                job.result = result
                job.artifacts = tuple(result.get("artifacts", ()))
                self.executed += 1
            self._finish(job, state, error=error)

    def _finish(self, job: Job, state: str, error: str | None = None) -> None:
        """Terminal transition; caller holds ``self._cond``."""
        job.state = state
        job.error = error
        job.finished_at = time.time()
        self._cond.notify_all()
