"""Command-line interface: ``python -m repro <command>``.

Commands
--------
list
    Table III: the ten benchmarks and their properties.
run ABBR
    Run one benchmark on the GPU model and print its characterization
    (``--estimate`` switches to the sampled estimator and reports
    confidence intervals instead of exact counts).
suite
    Run every benchmark (with CDP variants) and print a summary table.
sweep AXIS
    Run a config sweep across the suite through the sweep engine
    (``--jobs N`` fans points out over worker processes; ``--store
    DIR`` persists materialized traces across invocations;
    ``--estimate`` routes every point through the sampled estimator
    for 10x+ config-space exploration; the ``benchmark`` axis runs
    the whole suite at one config with per-variant rank columns).
dsweep
    Run the benchmark sweep through the distributed coordinator:
    chunked dispatch over local subprocess workers (``--dist-workers``)
    or remote ``repro serve`` instances (``--endpoints``), with
    straggler re-dispatch, bounded retry, a resumable completion
    journal (``--journal``) and a merge bit-identical to ``sweep
    benchmark``.
warm
    Materialize benchmark traces into the persistent trace store so
    later runs (sweeps, CI jobs, other processes) start warm
    (``--shard I/N`` warms one host's deterministic slice).
store
    Pack the trace store into a CRC-checked archive, or unpack one
    produced on another host (fingerprint-validated).
figure NAME
    Regenerate one of the paper's tables/figures (e.g. ``fig3``).
profile ABBR
    Run one benchmark with the interval sampler on and print the
    per-interval time series (``--trace``/``--jsonl`` export files).
dataset ABBR
    Write a benchmark's synthetic input dataset to FASTA/FASTQ files.
align QUERY TARGET
    Align two sequences from the command line.
serve
    Run the simulation service: typed simulate/sweep/profile/estimate
    HTTP endpoints over an async job queue with a content-addressed
    result cache (see :mod:`repro.service`).
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

from repro.core import (
    BenchmarkSuite,
    baseline_config,
    format_breakdown,
    format_kernel_profile,
    format_table,
)
from repro.data.datasets import DatasetSize
from repro.kernels import benchmark_names


def _size(value: str) -> DatasetSize:
    return DatasetSize(value)


def _add_machine_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--sms", type=int, default=None,
        help="number of SMs (default: the paper's 78)",
    )
    parser.add_argument(
        "--size", type=_size, default=DatasetSize.SMALL,
        choices=list(DatasetSize), help="dataset scale",
    )
    parser.add_argument(
        "--config", default=None, metavar="FILE",
        help="simulator config file (see repro.sim.configfile)",
    )


def _add_parallel_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="shard the SM array across N window-barrier workers "
             "(default: 1, sequential)",
    )
    parser.add_argument(
        "--window", type=int, default=None, metavar="W",
        help="window size in cycles (default: auto from the minimum "
             "cross-SM latency)",
    )
    parser.add_argument(
        "--relaxed", action="store_true",
        help="allow windows beyond the safe bound (results may differ "
             "from the sequential core)",
    )
    parser.add_argument(
        "--backend", default=None,
        choices=("auto", "threads", "processes", "inline"),
        help="shard execution backend (default: auto — forked worker "
             "processes when eligible and >1 CPU, else threads/inline; "
             "all backends are bit-identical)",
    )


def _fraction(text: str) -> float:
    value = float(text)
    if not 0.0 < value <= 1.0:
        raise argparse.ArgumentTypeError("must be in (0, 1]")
    return value


def _add_estimate_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--estimate", action="store_true",
        help="sampled-estimation mode: simulate a stratified warp "
             "sample and report estimates with confidence intervals "
             "(exact simulation stays the default)",
    )
    parser.add_argument(
        "--sample-fraction", type=_fraction, default=0.1, metavar="F",
        help="fraction of work to simulate under --estimate "
             "(default: 0.1)",
    )
    parser.add_argument(
        "--sample-seed", type=int, default=0, metavar="S",
        help="deterministic sampling seed (default: 0)",
    )


def _estimate_config(args, config):
    """Apply the ``--estimate`` sampling knobs to ``config``."""
    return config.with_(
        sample_fraction=args.sample_fraction,
        sample_seed=args.sample_seed,
    )


def _parallel_overrides(args) -> dict:
    overrides = {}
    workers = getattr(args, "workers", None)
    if workers is not None:
        overrides["parallel_shards"] = workers
    window = getattr(args, "window", None)
    if window is not None:
        overrides["window_cycles"] = window
    if getattr(args, "relaxed", False):
        overrides["parallel_relaxed"] = True
    backend = getattr(args, "backend", None)
    if backend is not None:
        overrides["parallel_executor"] = backend
    return overrides


def _config(args):
    if getattr(args, "config", None):
        from repro.sim.configfile import load_config

        config = load_config(args.config)
        if args.sms is not None:
            config = config.with_(num_sms=args.sms)
    else:
        overrides = {}
        if args.sms is not None:
            overrides["num_sms"] = args.sms
        config = baseline_config(**overrides)
    parallel = _parallel_overrides(args)
    if parallel:
        config = config.with_(**parallel)
    return config


def cmd_list(args) -> int:
    suite = BenchmarkSuite(_config(args))
    rows = []
    for abbr in suite.names():
        props = suite.properties(abbr)
        rows.append({
            "abbr": props.abbr,
            "name": props.full_name,
            "grid": props.grid[0],
            "cta": props.cta[0],
            "shared": "yes" if props.uses_shared else "no",
            "cta/core": props.cta_per_core_model,
            "limiter": props.limiter,
        })
    print(format_table(rows))
    return 0


def cmd_run(args) -> int:
    if args.benchmark not in benchmark_names():
        print(f"unknown benchmark {args.benchmark!r}; "
              f"choose from {benchmark_names()}", file=sys.stderr)
        return 2
    if args.estimate:
        # The estimator replays a miniature machine of its own: the
        # exact core's per-kernel profile and shard knobs don't apply,
        # and silently ignoring them would misreport what ran.
        exact_only = [
            flag for flag, given in (
                ("--profile", args.profile),
                ("--workers", args.workers is not None),
                ("--window", args.window is not None),
                ("--relaxed", args.relaxed),
                ("--backend", args.backend is not None),
            ) if given
        ]
        if exact_only:
            print("--estimate cannot be combined with exact-only flags: "
                  + ", ".join(exact_only), file=sys.stderr)
            return 2
        return _run_estimate(args)
    suite = BenchmarkSuite(_config(args), size=args.size)
    stats = suite.run(args.benchmark, cdp=args.cdp)
    name = suite.variant_name(args.benchmark, args.cdp)
    print(f"{name}: {stats.instructions} instructions, "
          f"{stats.cycles} kernel cycles (IPC {stats.ipc:.3f})")
    print(f"kernel launches: {stats.kernel_launches} host"
          f" + {stats.device_launches} device; "
          f"memcpys: {stats.memcpy_calls}")
    print(f"device time: {stats.device_time()} cycles; "
          f"PCI time: {stats.pci_cycles} cycles")
    print(f"L1 miss {stats.l1.miss_rate:.3f}  L2 miss {stats.l2.miss_rate:.3f}  "
          f"DRAM util {stats.dram_utilization():.3f}")
    print("\nStall breakdown:")
    print(format_breakdown(stats.stall_breakdown()))
    if args.profile:
        print("\nPer-kernel profile:")
        print(format_kernel_profile(stats))
    return 0


def _run_estimate(args) -> int:
    """``repro run --estimate``: sampled estimates with error bounds."""
    from repro.core.report import format_estimate, format_sample_note
    from repro.core.runner import estimate_benchmark, variant_name

    config = _estimate_config(args, _config(args))
    stats = estimate_benchmark(
        args.benchmark, cdp=args.cdp, size=args.size, config=config
    )
    name = variant_name(args.benchmark, args.cdp)
    mode = "estimated" if stats.estimated else "estimated (exact fallback)"
    print(f"{name} ({mode}): {stats.instructions} instructions, "
          f"~{stats.cycles} kernel cycles (IPC {stats.ipc:.3f})")
    print(format_sample_note(stats))
    print()
    print(format_estimate(stats))
    print("\nStall breakdown (estimated):")
    print(format_breakdown(stats.stall_breakdown()))
    return 0


def cmd_profile(args) -> int:
    """Run one benchmark with telemetry on; print/export the series."""
    from repro.core.report import format_interval_profile
    from repro.core.runner import run_benchmark, variant_name
    from repro.sim.telemetry import write_chrome_trace, write_jsonl

    if args.benchmark not in benchmark_names():
        print(f"unknown benchmark {args.benchmark!r}; "
              f"choose from {benchmark_names()}", file=sys.stderr)
        return 2
    config = _config(args).with_(telemetry_interval=args.interval)
    stats = run_benchmark(
        args.benchmark, cdp=args.cdp, size=args.size, config=config
    )
    summary = stats.telemetry
    name = variant_name(args.benchmark, args.cdp)
    meta = summary["meta"]
    rows = summary["rows"]
    # meta["cycles"] is kernel-device cycles; the sampled timeline also
    # covers host phases (memcpys, launch gaps), so report both spans.
    timeline = rows[-1]["end"] if rows else 0
    print(f"{name}: {meta['instructions']} instructions, "
          f"{meta['cycles']} kernel cycles on a {timeline}-cycle "
          f"timeline, sampled every {meta['interval']} cycles "
          f"({len(rows)} intervals, "
          f"{len(summary['events'])} events)")
    print(format_interval_profile(summary, max_rows=args.max_rows))
    if args.trace:
        write_chrome_trace(summary, args.trace)
        print(f"chrome trace (Perfetto / chrome://tracing): {args.trace}")
    if args.jsonl:
        write_jsonl(summary, args.jsonl)
        print(f"jsonl time series: {args.jsonl}")
    return 0


def cmd_suite(args) -> int:
    suite = BenchmarkSuite(_config(args), size=args.size)
    results = suite.run_all(cdp_variants=not args.no_cdp)
    rows = []
    for name, stats in results.items():
        rows.append({
            "benchmark": name,
            "device_time": stats.device_time(),
            "ipc": round(stats.ipc, 3),
            "launches": stats.kernel_launches + stats.device_launches,
            "l1_miss": round(stats.l1.miss_rate, 3),
            "l2_miss": round(stats.l2.miss_rate, 3),
            "top_stall": max(stats.stall_breakdown(),
                             key=stats.stall_breakdown().get)
            if stats.stalls else "-",
        })
    print(format_table(rows))
    return 0


#: ``repro sweep`` axes -> the figure harness that runs them.
SWEEP_AXES = {
    "cache": "cache_sweep_results",
    "cta": "fig11_cta_sweep",
    "memory": "fig15_perfect_memory",
    "controller": "fig16_mem_controller",
    "scheduler": "fig19_scheduler",
    "topology": "fig20_topology",
    "noc-latency": "fig21_noc_latency",
    "noc-bandwidth": "fig22_noc_bandwidth",
}


def _nonneg_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError("must be >= 0")
    return value


def cmd_sweep(args) -> int:
    from repro import bench
    from repro.core.sweep import default_jobs

    if args.store:
        # The sweep engine's default store resolution reads the
        # environment, so one assignment threads the store through
        # every harness down to the pool workers.
        os.environ["REPRO_TRACE_STORE"] = args.store
    config = _config(args)
    if args.estimate:
        # run_point routes every sampled point through the estimator;
        # traces are still shared with exact sweeps (sample knobs are
        # not part of the trace signature).
        config = _estimate_config(args, config)
    # One core budget for the whole invocation: each sweep job may run
    # --workers shards, so the process count shrinks to compensate.
    jobs = (
        default_jobs(workers_per_job=config.parallel_shards)
        if args.jobs is None else args.jobs
    )
    if args.axis == "benchmark":
        return _sweep_benchmark(args, config, jobs)
    if args.resume or args.results:
        print("--resume/--results only apply to the benchmark axis",
              file=sys.stderr)
        return 2
    func = getattr(bench, SWEEP_AXES[args.axis])
    rows = func(config=config, size=args.size, jobs=jobs)
    print(format_table(rows))
    return 0


def _print_benchmark_table(results) -> None:
    """One row per variant: cycles, CI, IPC, rank by cycles.

    Shared by ``sweep benchmark`` and ``dsweep`` so the two commands
    emit byte-identical tables for the same grid — the CI
    ``dist-smoke`` job literally ``cmp``'s them.
    """
    order = sorted(results, key=lambda name: (results[name].cycles, name))
    ranks = {name: i + 1 for i, name in enumerate(order)}
    rows = []
    for name, stats in results.items():
        lo, hi = getattr(stats, "intervals", {}).get(
            "cycles", (stats.cycles, stats.cycles)
        )
        rows.append({
            "benchmark": name,
            "cycles": stats.cycles,
            "ci_lo": int(lo),
            "ci_hi": int(hi),
            "ipc": round(stats.ipc, 3),
            "rank": ranks[name],
        })
    print(format_table(rows))


def _load_resume(path: str | None):
    """``--resume FILE`` into a ``{point_key: RunStats}`` mapping."""
    if not path:
        return None
    from repro.dist.journal import load_results_file

    return load_results_file(path)


def _sweep_benchmark(args, config, jobs: int) -> int:
    """The ``benchmark`` axis: the whole suite at one config.

    The table is the view the CI ``sampled-smoke`` job diffs against
    the committed exact baseline (estimation must preserve the exact
    mode's ranking).  ``--resume FILE`` skips points already present
    in a partial results file (matched by content identity, the
    coordinator's point keys); ``--results FILE`` writes one.
    """
    from repro.core.sweep import run_sweep, suite_points

    points = suite_points(cdp_variants=not args.no_cdp, size=args.size,
                          config=config)
    results = run_sweep(points, jobs=jobs,
                        resume=_load_resume(getattr(args, "resume", None)))
    if getattr(args, "results", None):
        from repro.dist.journal import write_results_file

        write_results_file(args.results, points, results)
    _print_benchmark_table(results)
    return 0


def _shard(text: str) -> tuple[int, int]:
    """Parse ``--shard I/N`` (0-based shard index of N)."""
    try:
        index, _, count = text.partition("/")
        index, count = int(index), int(count)
    except ValueError:
        raise argparse.ArgumentTypeError("expected I/N, e.g. 0/4") from None
    if count < 1 or not 0 <= index < count:
        raise argparse.ArgumentTypeError(
            f"shard index must be in [0, {count}) for {text!r}"
        )
    return index, count


def cmd_warm(args) -> int:
    """Materialize application traces into the persistent store."""
    from repro.core.runner import variant_name
    from repro.core.sweep import TraceCache, sweep_point
    from repro.sim.trace_store import TraceStore

    root = args.store or os.environ.get("REPRO_TRACE_STORE")
    if not root:
        print("no trace store: pass --store DIR or set REPRO_TRACE_STORE",
              file=sys.stderr)
        return 2
    store = TraceStore(root)
    config = _config(args)
    benchmarks = args.benchmarks or benchmark_names()
    unknown = [b for b in benchmarks if b not in benchmark_names()]
    if unknown:
        print(f"unknown benchmarks {unknown}; "
              f"choose from {benchmark_names()}", file=sys.stderr)
        return 2
    variants = [
        (abbr, cdp)
        for abbr in benchmarks
        for cdp in ((False,) if args.no_cdp else (False, True))
    ]
    if args.shard is not None:
        # Deterministic round-robin slice of the variant list: N hosts
        # running shards 0/N..N-1/N materialize disjoint subsets that
        # union to the whole warm set (then sync via `repro store
        # pack`/`unpack`).
        index, count = args.shard
        variants = variants[index::count]
        print(f"shard {index}/{count}: {len(variants)} variant(s)")
    cache = TraceCache(store=store)
    for abbr, cdp in variants:
        name = variant_name(abbr, cdp)
        hits, builds = store.hits, store.builds
        point = sweep_point(name, abbr, config, cdp=cdp,
                            size=args.size)
        entry = cache.get(point)
        if entry is None:
            state = "not replayable, skipped"
        elif store.hits > hits:
            state = "already stored"
        elif store.builds > builds:
            state = "materialized"
        else:  # pragma: no cover - in-memory duplicate
            state = "cached"
        print(f"{name}: {state}")
    print(f"store: {store.root} ({store.builds} built, "
          f"{store.hits} already present)")
    return 0


def cmd_store(args) -> int:
    """Pack/unpack trace-store entries for host-to-host sync."""
    from repro.sim.trace_store import TraceStore

    root = args.store or os.environ.get("REPRO_TRACE_STORE")
    if not root:
        print("no trace store: pass --store DIR or set REPRO_TRACE_STORE",
              file=sys.stderr)
        return 2
    store = TraceStore(root)
    if args.action == "pack":
        count = store.pack(args.archive)
        print(f"packed {count} entr{'y' if count == 1 else 'ies'} "
              f"from {store.root} into {args.archive}")
        return 0
    try:
        count = store.unpack(args.archive)
    except (OSError, ValueError) as exc:
        print(f"unpack failed: {exc}", file=sys.stderr)
        return 1
    print(f"unpacked {count} entr{'y' if count == 1 else 'ies'} "
          f"into {store.root}")
    return 0


def cmd_dsweep(args) -> int:
    """The benchmark axis through the distributed sweep coordinator."""
    from repro.core.sweep import suite_points
    from repro.dist import LocalProcessLauncher, ServiceLauncher, run_dsweep

    if args.store:
        os.environ["REPRO_TRACE_STORE"] = args.store
    config = _config(args)
    if args.estimate:
        config = _estimate_config(args, config)
    points = suite_points(cdp_variants=not args.no_cdp, size=args.size,
                          config=config)
    if args.endpoints:
        launcher = ServiceLauncher(
            [e for e in args.endpoints.split(",") if e]
        )
    else:
        launcher = LocalProcessLauncher(
            workers=args.dist_workers,
            store=args.store or os.environ.get("REPRO_TRACE_STORE") or None,
        )
    try:
        results = run_dsweep(
            points,
            launcher,
            chunk_size=args.chunk_size,
            chunk_timeout=args.chunk_timeout,
            max_retries=args.max_retries,
            journal=args.journal,
            resume=_load_resume(args.resume),
        )
    finally:
        launcher.close()
    if args.results:
        from repro.dist.journal import write_results_file

        write_results_file(args.results, points, results)
    _print_benchmark_table(results)
    stats = run_dsweep.last_stats
    print(
        f"# dsweep: {stats['chunks']} chunk(s), "
        f"{stats['replayed']} replayed from journal, "
        f"{stats['retries']} retried, "
        f"{stats['redispatches']} straggler re-dispatches",
        file=sys.stderr,
    )
    return 0


def cmd_roofline(args) -> int:
    from repro.core import roofline_report
    from repro.core.runner import run_suite

    config = _config(args)
    benchmarks = args.benchmarks or None
    results = run_suite(
        benchmarks, cdp_variants=not args.no_cdp,
        size=args.size, config=config,
    )
    print(format_table(roofline_report(results, config)))
    return 0


def cmd_figure(args) -> int:
    from repro import bench

    name = args.name.lower()
    candidates = [
        attr for attr in dir(bench)
        if attr.startswith((f"{name}_", name)) and not attr.endswith("_")
    ]
    exact = [c for c in candidates if c == name or c.startswith(f"{name}_")]
    if not exact:
        known = sorted(
            a for a in dir(bench) if a.startswith(("fig", "table"))
        )
        print(f"unknown figure {args.name!r}; known: {known}",
              file=sys.stderr)
        return 2
    func = getattr(bench, exact[0])
    kwargs = {}
    if name.startswith("fig"):
        kwargs["config"] = _config(args)
    rows = func(**kwargs)
    if args.chart:
        from repro.core.report import format_bar_chart

        label = next(iter(rows[0]))
        numeric = [
            key for key, value in rows[0].items()
            if key != label and isinstance(value, (int, float))
        ]
        print(format_bar_chart(rows, label, numeric[:4]))
    else:
        print(format_table(rows))
    return 0


def cmd_dataset(args) -> int:
    from repro.data import write_fasta, write_fastq
    from repro.data.datasets import dataset_for
    from repro.data.workloads import (
        BatchAlignmentWorkload,
        ClusterWorkload,
        MSAWorkload,
        PairHMMWorkload,
        PairwiseWorkload,
        ReadMappingWorkload,
    )
    from repro.genomics.sequence import DNA, Sequence

    workload = dataset_for(args.benchmark, args.size)
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []

    def save_fasta(name, sequences):
        path = out / f"{args.benchmark.lower()}_{name}.fasta"
        write_fasta(sequences, path)
        written.append(path)

    if isinstance(workload, PairwiseWorkload):
        save_fasta("pair", [workload.query, workload.target])
    elif isinstance(workload, BatchAlignmentWorkload):
        save_fasta("queries", workload.queries)
        save_fasta("targets", workload.targets)
    elif isinstance(workload, (MSAWorkload, ClusterWorkload)):
        save_fasta("sequences", workload.sequences)
    elif isinstance(workload, PairHMMWorkload):
        save_fasta("reads", [
            Sequence(f"read{i}", r, DNA)
            for i, r in enumerate(workload.reads)
        ])
        save_fasta("haplotypes", [
            Sequence(f"hap{i}", h, DNA)
            for i, h in enumerate(workload.haplotypes)
        ])
    elif isinstance(workload, ReadMappingWorkload):
        save_fasta("reference", [workload.reference])
        path = out / f"{args.benchmark.lower()}_reads.fastq"
        write_fastq(workload.reads, path)
        written.append(path)
    for path in written:
        print(path)
    return 0


def cmd_trace(args) -> int:
    """Capture a benchmark's first kernel launch to a trace file."""
    from repro.kernels import build_application
    from repro.sim.launch import HostLaunch as HostLaunchOp
    from repro.sim.tracefile import capture_trace

    app = build_application(args.benchmark, size=args.size)
    for op in app.host_program():
        if isinstance(op, HostLaunchOp):
            capture_trace(op.launch, args.out)
            print(f"captured {op.launch.kernel.name} "
                  f"({op.launch.num_ctas} CTAs) -> {args.out}")
            return 0
    print("application never launched a kernel", file=sys.stderr)
    return 1


def cmd_replay(args) -> int:
    """Re-simulate a captured trace file."""
    from repro.sim import GPUSimulator
    from repro.sim.launch import Application as AppBase, HostLaunch as HL
    from repro.sim.tracefile import load_trace

    launch = load_trace(Path(args.trace))

    class ReplayApp(AppBase):
        name = f"replay:{launch.kernel.name}"

        def host_program(self):
            yield HL(launch)

    stats = GPUSimulator(_config(args)).run_application(ReplayApp())
    print(f"replayed {launch.kernel.name}: {stats.instructions} "
          f"instructions, {stats.kernel_cycles} cycles "
          f"(IPC {stats.ipc:.3f})")
    print(format_breakdown(stats.stall_breakdown()))
    return 0


def cmd_serve(args) -> int:
    """Run the simulation service (blocking)."""
    from repro.service.server import is_port_in_use_error, serve

    try:
        serve(
            host=args.host,
            port=args.port,
            workers=args.workers,
            cache_root=args.cache,
            artifact_root=args.artifacts,
            cache_max_bytes=args.cache_max_bytes,
            cache_max_entries=args.cache_max_entries,
        )
    except OSError as exc:
        if is_port_in_use_error(exc):
            print(f"cannot bind {args.host}:{args.port}: {exc.strerror} "
                  "(is another server running? pass --port to move)",
                  file=sys.stderr)
            return 2
        raise
    return 0


def cmd_align(args) -> int:
    from repro.genomics.align import (
        banded_global,
        needleman_wunsch,
        semi_global,
        smith_waterman,
    )

    aligners = {
        "global": needleman_wunsch,
        "local": smith_waterman,
        "semiglobal": semi_global,
        "banded": lambda q, t: banded_global(q, t, band=args.band),
    }
    result = aligners[args.mode](args.query.upper(), args.target.upper())
    print(result.aligned_query)
    print("".join(
        "|" if a == b and a != "-" else " "
        for a, b in zip(result.aligned_query, result.aligned_target)
    ))
    print(result.aligned_target)
    print(f"score={result.score} cigar={result.cigar} "
          f"identity={result.identity():.2f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Genomics-GPU benchmark suite (ISPASS 2023 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="Table III benchmark properties")
    _add_machine_args(p_list)
    p_list.set_defaults(func=cmd_list)

    p_run = sub.add_parser("run", help="run one benchmark")
    p_run.add_argument("benchmark")
    p_run.add_argument("--cdp", action="store_true",
                       help="run the CDP variant")
    p_run.add_argument("--profile", action="store_true",
                       help="print an nvprof-style per-kernel profile")
    _add_machine_args(p_run)
    _add_parallel_args(p_run)
    _add_estimate_args(p_run)
    p_run.set_defaults(func=cmd_run)

    p_prof = sub.add_parser(
        "profile", help="run one benchmark with the interval sampler on"
    )
    p_prof.add_argument("benchmark")
    p_prof.add_argument("--cdp", action="store_true",
                        help="profile the CDP variant")
    p_prof.add_argument(
        "--interval", type=int, default=10_000, metavar="N",
        help="sampling interval in cycles (default: 10000)",
    )
    p_prof.add_argument(
        "--trace", default=None, metavar="FILE",
        help="write a Chrome trace_event file (Perfetto-viewable)",
    )
    p_prof.add_argument(
        "--jsonl", default=None, metavar="FILE",
        help="write the interval rows and events as JSONL",
    )
    p_prof.add_argument(
        "--max-rows", type=int, default=40, metavar="N",
        help="intervals to print (default: 40; exports are never clipped)",
    )
    _add_machine_args(p_prof)
    p_prof.set_defaults(func=cmd_profile)

    p_suite = sub.add_parser("suite", help="run the whole suite")
    p_suite.add_argument("--no-cdp", action="store_true",
                         help="skip the CDP variants")
    _add_machine_args(p_suite)
    _add_parallel_args(p_suite)
    p_suite.set_defaults(func=cmd_suite)

    p_sweep = sub.add_parser(
        "sweep", help="run a config sweep through the sweep engine"
    )
    p_sweep.add_argument(
        "axis", choices=sorted(SWEEP_AXES) + ["benchmark"],
        help="which config axis to sweep ('benchmark' runs the whole "
             "suite at one config, with per-variant rank columns)",
    )
    p_sweep.add_argument(
        "--jobs", type=_nonneg_int, default=None, metavar="N",
        help="worker processes (default: one per CPU; 0 = in-process)",
    )
    p_sweep.add_argument(
        "--store", default=None, metavar="DIR",
        help="persistent trace store directory "
             "(default: $REPRO_TRACE_STORE when set)",
    )
    p_sweep.add_argument(
        "--no-cdp", action="store_true",
        help="benchmark axis: skip the CDP variants",
    )
    p_sweep.add_argument(
        "--resume", default=None, metavar="FILE",
        help="benchmark axis: skip points already present in a results "
             "file (matched by content identity)",
    )
    p_sweep.add_argument(
        "--results", default=None, metavar="FILE",
        help="benchmark axis: write a results file usable by --resume",
    )
    _add_machine_args(p_sweep)
    _add_parallel_args(p_sweep)
    _add_estimate_args(p_sweep)
    p_sweep.set_defaults(func=cmd_sweep)

    p_dsweep = sub.add_parser(
        "dsweep",
        help="run the benchmark sweep through the distributed coordinator",
    )
    p_dsweep.add_argument(
        "--dist-workers", type=int, default=2, metavar="N",
        help="local subprocess workers (default: 2; ignored with "
             "--endpoints)",
    )
    p_dsweep.add_argument(
        "--endpoints", default=None, metavar="HOST:PORT,...",
        help="dispatch chunks to remote `repro serve` instances "
             "instead of local subprocesses",
    )
    p_dsweep.add_argument(
        "--chunk-size", type=int, default=4, metavar="N",
        help="points per work unit (default: 4)",
    )
    p_dsweep.add_argument(
        "--chunk-timeout", type=float, default=None, metavar="S",
        help="per-chunk deadline in seconds (default: none)",
    )
    p_dsweep.add_argument(
        "--max-retries", type=int, default=2, metavar="N",
        help="re-dispatch attempts per chunk before failing the sweep "
             "(default: 2)",
    )
    p_dsweep.add_argument(
        "--journal", default=None, metavar="FILE",
        help="chunk-completion journal; rerunning with the same grid "
             "replays finished chunks instead of re-simulating",
    )
    p_dsweep.add_argument(
        "--resume", default=None, metavar="FILE",
        help="skip points already present in a results file",
    )
    p_dsweep.add_argument(
        "--results", default=None, metavar="FILE",
        help="write a results file usable by --resume",
    )
    p_dsweep.add_argument(
        "--store", default=None, metavar="DIR",
        help="persistent trace store directory, exported to workers "
             "(default: $REPRO_TRACE_STORE when set)",
    )
    p_dsweep.add_argument(
        "--no-cdp", action="store_true",
        help="skip the CDP variants",
    )
    _add_machine_args(p_dsweep)
    _add_estimate_args(p_dsweep)
    p_dsweep.set_defaults(func=cmd_dsweep)

    p_warm = sub.add_parser(
        "warm", help="materialize traces into the persistent store"
    )
    p_warm.add_argument("benchmarks", nargs="*",
                        help="benchmark subset (default: all)")
    p_warm.add_argument("--no-cdp", action="store_true",
                        help="skip the CDP variants")
    p_warm.add_argument(
        "--store", default=None, metavar="DIR",
        help="store directory (default: $REPRO_TRACE_STORE)",
    )
    p_warm.add_argument(
        "--shard", type=_shard, default=None, metavar="I/N",
        help="warm only this host's deterministic slice of the variant "
             "list (N hosts run shards 0/N..N-1/N)",
    )
    _add_machine_args(p_warm)
    p_warm.set_defaults(func=cmd_warm)

    p_store = sub.add_parser(
        "store", help="pack/unpack the trace store for host-to-host sync"
    )
    p_store.add_argument("action", choices=("pack", "unpack"))
    p_store.add_argument("archive", help="archive file (RPAK format)")
    p_store.add_argument(
        "--store", default=None, metavar="DIR",
        help="store directory (default: $REPRO_TRACE_STORE)",
    )
    p_store.set_defaults(func=cmd_store)

    p_roof = sub.add_parser("roofline", help="roofline analysis of the suite")
    p_roof.add_argument("benchmarks", nargs="*",
                        help="benchmark subset (default: all)")
    p_roof.add_argument("--no-cdp", action="store_true")
    _add_machine_args(p_roof)
    p_roof.set_defaults(func=cmd_roofline)

    p_fig = sub.add_parser("figure", help="regenerate a table/figure")
    p_fig.add_argument("name", help="e.g. fig3, fig12, table3")
    p_fig.add_argument("--chart", action="store_true",
                       help="render as grouped bars instead of a table")
    _add_machine_args(p_fig)
    p_fig.set_defaults(func=cmd_figure)

    p_data = sub.add_parser("dataset", help="export a synthetic dataset")
    p_data.add_argument("benchmark")
    p_data.add_argument("--out", default="datasets")
    _add_machine_args(p_data)
    p_data.set_defaults(func=cmd_dataset)

    p_trace = sub.add_parser("trace", help="capture a kernel trace file")
    p_trace.add_argument("benchmark")
    p_trace.add_argument("--out", default="kernel.trace")
    _add_machine_args(p_trace)
    p_trace.set_defaults(func=cmd_trace)

    p_replay = sub.add_parser("replay", help="re-simulate a trace file")
    p_replay.add_argument("trace")
    _add_machine_args(p_replay)
    p_replay.set_defaults(func=cmd_replay)

    p_serve = sub.add_parser(
        "serve", help="run the simulation service (HTTP job API)"
    )
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address (default: 127.0.0.1)")
    p_serve.add_argument("--port", type=int, default=8777,
                         help="bind port (default: 8777)")
    p_serve.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="job-queue worker slots (default: the core budget, "
             "one per available CPU)",
    )
    p_serve.add_argument(
        "--cache", default=None, metavar="DIR",
        help="content-addressed result cache directory "
             "(default: cache disabled)",
    )
    p_serve.add_argument(
        "--artifacts", default=None, metavar="DIR",
        help="per-job artifact directory (default: a temp dir)",
    )
    p_serve.add_argument(
        "--cache-max-bytes", type=int, default=None, metavar="B",
        help="evict oldest result-cache entries past this payload "
             "budget (default: unbounded)",
    )
    p_serve.add_argument(
        "--cache-max-entries", type=int, default=None, metavar="N",
        help="evict oldest result-cache entries past this count "
             "(default: unbounded)",
    )
    p_serve.set_defaults(func=cmd_serve)

    p_align = sub.add_parser("align", help="align two sequences")
    p_align.add_argument("query")
    p_align.add_argument("target")
    p_align.add_argument("--mode", default="global",
                         choices=["global", "local", "semiglobal", "banded"])
    p_align.add_argument("--band", type=int, default=32)
    p_align.set_defaults(func=cmd_align)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
