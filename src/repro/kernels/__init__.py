"""The ten Genomics-GPU benchmark kernels and their CDP variants.

Every benchmark binds a functional algorithm from
:mod:`repro.genomics` to a GPU trace model with the Table III launch
geometry.  :func:`build_application` is the registry entry point:

>>> app = build_application("NW", cdp=False)
>>> stats = GPUSimulator(config).run_application(app)
"""

from repro.kernels.base import GenomicsApplication, BENCHMARKS
from repro.kernels.registry import build_application, benchmark_names

__all__ = [
    "GenomicsApplication",
    "BENCHMARKS",
    "build_application",
    "benchmark_names",
]
