"""Benchmark registry: abbreviation -> application builder."""

from __future__ import annotations

from repro.data.datasets import DatasetSize, dataset_for
from repro.kernels.base import GenomicsApplication
from repro.kernels.cluster_kernel import ClusterApplication
from repro.kernels.gasal2 import (
    GGApplication,
    GKSWApplication,
    GLApplication,
    GSGApplication,
)
from repro.kernels.nvb_kernel import NvbApplication
from repro.kernels.nw_kernel import NWApplication
from repro.kernels.pairhmm_kernel import PairHMMApplication
from repro.kernels.star_kernel import StarApplication
from repro.kernels.sw_kernel import SWApplication

_APPLICATIONS = {
    "SW": SWApplication,
    "NW": NWApplication,
    "STAR": StarApplication,
    "GG": GGApplication,
    "GL": GLApplication,
    "GKSW": GKSWApplication,
    "GSG": GSGApplication,
    "CLUSTER": ClusterApplication,
    "PairHMM": PairHMMApplication,
    "NvB": NvbApplication,
}


def benchmark_names() -> list[str]:
    """The ten benchmark abbreviations in Table III order."""
    return list(_APPLICATIONS)


def build_application(
    abbr: str,
    cdp: bool = False,
    size: DatasetSize = DatasetSize.SMALL,
    workload=None,
    **options,
) -> GenomicsApplication:
    """Instantiate a benchmark application.

    ``workload`` overrides the registry dataset (must match the
    benchmark's workload type); extra ``options`` are forwarded to the
    application constructor (e.g. ``use_shared=False`` for the Fig 7
    ablations of NW and PairHMM).
    """
    try:
        cls = _APPLICATIONS[abbr]
    except KeyError:
        raise ValueError(
            f"unknown benchmark {abbr!r}; known: {benchmark_names()}"
        ) from None
    if workload is None:
        workload = dataset_for(abbr, size)
    return cls(workload, cdp=cdp, **options)
