"""GASAL2 benchmarks: GG, GL, GKSW, GSG.

GASAL2 assigns one query/target pair to one thread; DP rows live in
per-thread *local memory* arrays — which is why Fig 9 shows local
accesses dominating all four kernels.  The host side transfers packed
batches with several cudaMemcpy calls per kernel launch (queries,
targets, offsets, lengths in; scores, start/end positions out), giving
the PCI-count > kernel-count signature of Fig 4.

Variant differences:

- **GG** (global): full-matrix DP, runs every row.
- **GL** (local): Smith-Waterman with early exit — lanes whose scores
  decay drop out, trimming rows and adding divergence.
- **GSG** (semi-global): skips the free end-gap boundary work; slightly
  fewer integer ops per row.
- **GKSW** (tile-based banded with traceback): additionally streams a
  traceback matrix through global memory and re-reads it backwards,
  making it the suite's most bandwidth- and cache-sensitive kernel
  (Fig 12's 7x, Fig 15's 5x, Fig 18's DRAM utilization).

The CDP variants launch the per-batch alignment kernel from a small
device-side dispatcher (one launch per batch), following Listing 1.
"""

from __future__ import annotations

import math
from typing import Iterator

from repro.genomics.align import (
    banded_global,
    needleman_wunsch,
    semi_global,
    smith_waterman,
)
from repro.isa import TraceBuilder
from repro.isa.instructions import WarpInstruction
from repro.kernels.base import (
    CONST_BASE,
    GLOBAL_BASE,
    GenomicsApplication,
    local_line,
)
from repro.sim.kernel import KernelProgram, WarpContext
from repro.sim.launch import HostLaunch, HostMemcpy, KernelLaunch

#: Pairs per host batch (one kernel launch per batch).
BATCH_PAIRS = 256

#: Integer ops per DP row per thread (packed 8-cell inner loop).
INTS_PER_ROW = 10

#: Base of the GKSW traceback matrix region in global memory.
TRACEBACK_REGION = GLOBAL_BASE + (1 << 16)

#: Traceback lines written per DP row per warp (GKSW only): 32 lanes
#: each producing ~64B of uncompressed traceback state per row.
TB_LINES_PER_ROW = 16


class GasalKernel(KernelProgram):
    """One batch of pairwise alignments, one thread per pair.

    ``args``: ``lengths`` — per-pair query lengths for this batch;
    ``batch_index``; optional ``finalize_child`` — a
    :class:`KernelLaunch` the CDP variant fires from warp 0 instead of
    the host launching the finalize kernel separately (Listing 1).
    """

    def __init__(self, mode: str, cta_threads: int = 128):
        super().__init__(
            f"gasal_{mode}",
            cta_threads=cta_threads,
            regs_per_thread=42,
            smem_per_cta=0,
            const_bytes=1024,
        )
        self.mode = mode

    #: local lines per warp: the H/E row ring buffer for 32 threads.
    #: GASAL2 keeps only the active row window live, so the footprint
    #: is small and L1-resident — the paper's "very low" GASAL2 L1
    #: miss rates come from exactly this reuse.
    LOCAL_LINES = 64

    def trace_template(self, ctx: WarpContext):
        if (
            ctx.args.get("finalize_child") is not None
            and ctx.global_warp == 0
        ):
            return None  # CDP dispatcher warp issues a device launch
        lengths = ctx.args["lengths"]
        gw = ctx.global_warp
        warp_pairs = lengths[gw * 32 : (gw + 1) * 32]
        if not warp_pairs:
            return ("empty",), ()
        batch_index = ctx.args.get("batch_index", 0)
        key = (len(warp_pairs), max(warp_pairs))
        bases = (
            GLOBAL_BASE + batch_index * 4096 + gw * 16,  # packed batch
            local_line(gw, self.LOCAL_LINES, 0),  # H/E ring buffer
            TRACEBACK_REGION
            + (batch_index + gw * 8) * 256 * TB_LINES_PER_ROW,
            GLOBAL_BASE + 2048 + gw,  # score slot
        )
        return key, bases

    def warp_trace(self, ctx: WarpContext) -> Iterator[WarpInstruction]:
        b = TraceBuilder()
        lengths = ctx.args["lengths"]
        batch_index = ctx.args.get("batch_index", 0)
        warp_pairs = lengths[ctx.global_warp * 32 : (ctx.global_warp + 1) * 32]
        if not warp_pairs:
            yield b.exit()
            return

        gw = ctx.global_warp
        mode = self.mode
        lanes = len(warp_pairs)
        b.set_lanes(lanes)

        yield b.ld_param([CONST_BASE + 130])
        yield b.ld_const([CONST_BASE + 2])
        yield b.ints(6)  # offsets, lengths, packing setup
        # Stream in the packed query/target batch (coalesced).
        seq_base = GLOBAL_BASE + batch_index * 4096 + gw * 16
        yield b.ld_global([seq_base, seq_base + 1])
        yield b.ld_global([seq_base + 8, seq_base + 9])

        rows = max(warp_pairs)
        if mode == "gl":
            # Early exit: the warp runs until the last surviving lane
            # finishes; lanes drop out as their local maxima decay.
            rows = max(1, int(rows * 0.8))
        tb_base = TRACEBACK_REGION + (batch_index + gw * 8) * 256 * TB_LINES_PER_ROW
        for row in range(rows):
            if mode == "gl" and row and row % 48 == 0 and lanes > 29:
                # Mild tail divergence: a few lanes finish early, but
                # GL stays in the paper's high-occupancy group.
                lanes -= 3
                b.set_lanes(lanes)
                yield b.branch()
            # Previous H/E row from the local-memory ring buffer; the
            # new row overwrites the slot two rows back.
            yield b.ld_local([local_line(gw, self.LOCAL_LINES, 2 * row)])
            yield b.ld_local([local_line(gw, self.LOCAL_LINES, 2 * row + 1)])
            yield b.ints(INTS_PER_ROW - (2 if mode == "gsg" else 0))
            yield b.st_local([local_line(gw, self.LOCAL_LINES, 2 * row + 2)])
            if row % 16 == 15:
                yield b.ld_global([seq_base + 2 + row // 16])
            if mode == "gksw":
                # Stream the row's uncompressed traceback state out.
                row_base = tb_base + row * TB_LINES_PER_ROW
                yield b.st_global(
                    range(row_base, row_base + TB_LINES_PER_ROW)
                )
        if mode == "gksw":
            # Traceback: walk the streamed matrix backwards.
            b.set_lanes(max(1, lanes // 2))
            yield b.branch()
            for row in reversed(range(rows)):
                row_base = tb_base + row * TB_LINES_PER_ROW
                yield b.ld_global(
                    range(row_base, row_base + TB_LINES_PER_ROW)
                )
                yield b.ints(3)
        b.set_lanes(len(warp_pairs))
        yield b.st_global([GLOBAL_BASE + 2048 + gw])  # scores out
        finalize = ctx.args.get("finalize_child")
        if finalize is not None and ctx.global_warp == 0:
            # Listing 1: the parent evaluates the condition and fires
            # the second-stage kernel on-device.
            yield b.ints(4)
            yield b.branch()
            yield b.launch(finalize)
            yield b.device_sync()
        yield b.exit()


class GasalFinalizeKernel(KernelProgram):
    """Second pipeline stage: start/end recovery and score selection.

    GASAL2 runs a short follow-up kernel per batch that converts raw DP
    maxima into alignment coordinates; the host launches it separately
    in the non-CDP build.  ``args``: ``pairs`` (count), ``batch_index``.
    """

    def __init__(self, cta_threads: int = 128):
        super().__init__(
            "gasal_finalize", cta_threads=cta_threads, regs_per_thread=24,
            const_bytes=256,
        )

    def trace_template(self, ctx: WarpContext):
        pairs = ctx.args["pairs"]
        my_pairs = max(0, min(32, pairs - ctx.global_warp * 32))
        if my_pairs <= 0:
            return ("empty",), ()
        key = (my_pairs,)
        bases = (
            GLOBAL_BASE + 2048 + ctx.global_warp,  # raw scores
            GLOBAL_BASE + 3072 + ctx.global_warp,  # coordinates out
        )
        return key, bases

    def warp_trace(self, ctx: WarpContext) -> Iterator[WarpInstruction]:
        b = TraceBuilder()
        pairs = ctx.args["pairs"]
        my_pairs = max(0, min(32, pairs - ctx.global_warp * 32))
        if my_pairs <= 0:
            yield b.exit()
            return
        b.set_lanes(my_pairs)
        yield b.ld_param([CONST_BASE + 131])
        yield b.ld_global([GLOBAL_BASE + 2048 + ctx.global_warp])
        yield b.ints(12)  # coordinate recovery arithmetic
        yield b.branch()
        yield b.st_global([GLOBAL_BASE + 3072 + ctx.global_warp])
        yield b.exit()


_ALIGNERS = {
    "gg": needleman_wunsch,
    "gl": smith_waterman,
    "gsg": semi_global,
    "gksw": lambda q, t: banded_global(q, t, band=32),
}


class GasalApplication(GenomicsApplication):
    """Base for the four GASAL2 applications; subclasses fix ``mode``."""

    mode = "gg"

    def __init__(self, workload, cdp: bool = False):
        super().__init__(workload, cdp)
        self.kernel = GasalKernel(self.mode, self.info.cta_threads)

    def _batches(self) -> list[list[int]]:
        lengths = [len(q) for q in self.workload.queries]
        return [
            lengths[i : i + BATCH_PAIRS]
            for i in range(0, len(lengths), BATCH_PAIRS)
        ]

    def host_program(self):
        info = self.info
        for batch_index, lengths in enumerate(self._batches()):
            batch_bytes = sum(lengths)
            # GASAL2's per-batch transfers: packed bases, offsets and
            # lengths for both query and target batches.
            yield HostMemcpy(batch_bytes // 2, "h2d")  # packed queries
            yield HostMemcpy(batch_bytes // 2, "h2d")  # packed targets
            yield HostMemcpy(4 * len(lengths), "h2d")  # query offsets
            yield HostMemcpy(4 * len(lengths), "h2d")  # target offsets
            yield HostMemcpy(4 * len(lengths), "h2d")  # lengths
            num_ctas = min(
                info.num_ctas,
                max(1, math.ceil(len(lengths) / info.cta_threads)),
            )
            finalize = GasalFinalizeKernel(info.cta_threads)
            finalize_launch = KernelLaunch(
                finalize,
                num_ctas=num_ctas,
                args={"pairs": len(lengths), "batch_index": batch_index},
            )
            args = {"lengths": lengths, "batch_index": batch_index}
            if self.cdp:
                # CDP: the align kernel launches the finalize stage
                # on-device — one host launch per batch instead of two.
                args["finalize_child"] = finalize_launch
                yield HostLaunch(
                    KernelLaunch(self.kernel, num_ctas=num_ctas, args=args)
                )
            else:
                yield HostLaunch(
                    KernelLaunch(self.kernel, num_ctas=num_ctas, args=args)
                )
                yield HostLaunch(finalize_launch)
            yield HostMemcpy(4 * len(lengths), "d2h")  # scores
            yield HostMemcpy(8 * len(lengths), "d2h")  # start/end positions
        yield HostMemcpy(64, "d2h")  # summary

    def run_functional(self):
        aligner = _ALIGNERS[self.mode]
        return [
            aligner(q, t) for q, t in self.workload.pairs
        ]


class GGApplication(GasalApplication):
    """GASAL2 global alignment."""

    abbr = "GG"
    mode = "gg"


class GLApplication(GasalApplication):
    """GASAL2 local alignment."""

    abbr = "GL"
    mode = "gl"


class GKSWApplication(GasalApplication):
    """GASAL2 KSW banded alignment with traceback."""

    abbr = "GKSW"
    mode = "gksw"


class GSGApplication(GasalApplication):
    """GASAL2 semi-global alignment."""

    abbr = "GSG"
    mode = "gsg"
