"""nGIA greedy clustering benchmark (CLUSTER).

Each warp screens one candidate sequence against the representative
list.  Representative k-mer profiles are staged in shared memory; the
pre-filter and short-word filter are branchy scalar loops in which most
lanes fail early — the paper's Fig 10 shows CLUSTER dominated by W1-4
warps (>50%), and Fig 15 shows it gains nothing from perfect memory:
it is divergence/compute bound, not memory bound.

The trace is derived from the *actual* clustering run: the functional
algorithm records, per sequence, how many representatives each filter
rejected and how many full alignments ran
(:attr:`repro.genomics.cluster.ngia.ClusteringResult.trail`).

The CDP variant launches a full-width child alignment kernel for just
the survivors (DiMarco-style dynamic parallelism for clustering),
recovering warp occupancy.
"""

from __future__ import annotations

import math
from typing import Iterator

from repro.genomics.cluster import greedy_cluster
from repro.isa import TraceBuilder
from repro.isa.instructions import WarpInstruction
from repro.kernels.base import CONST_BASE, GLOBAL_BASE, GenomicsApplication
from repro.sim.kernel import KernelProgram, WarpContext
from repro.sim.launch import HostLaunch, HostMemcpy, KernelLaunch

#: Integer ops per filter check (profile intersect step).
INTS_PER_FILTER = 4

#: Integer ops per banded DP row chunk.
INTS_PER_ROW = 6


class ClusterKernel(KernelProgram):
    """Filter + align pass over all candidates.

    ``args``: ``trail`` (per-sequence filter/alignment counts),
    ``cdp_children`` — optional list of prepared child launches; when
    present, alignments are delegated to them (the CDP variant).
    """

    def __init__(self, cta_threads: int = 128, cdp: bool = False):
        super().__init__(
            "cluster_cdp" if cdp else "cluster",
            cta_threads=cta_threads,
            regs_per_thread=40,
            smem_per_cta=8 * 1024,  # staged representative profiles
            const_bytes=1024,
        )
        self.cdp = cdp

    def trace_template(self, ctx: WarpContext):
        if ctx.args.get("cdp_children") is not None:
            return None  # aligned records issue device launches
        trail = ctx.args["trail"]
        total_warps = ctx.num_ctas * ctx.warps_per_cta
        mine = trail[ctx.global_warp :: total_warps]
        key = tuple(
            (
                record["prefilter"] + record["shortword"],
                bool(record["aligned"]),
                record["align_rows"] if record["aligned"] else 0,
            )
            for record in mine
        )
        bases = tuple(
            GLOBAL_BASE + record["index"] * 4 for record in mine
        )
        return key, bases

    def warp_trace(self, ctx: WarpContext) -> Iterator[WarpInstruction]:
        b = TraceBuilder()
        trail = ctx.args["trail"]
        children = ctx.args.get("cdp_children")
        total_warps = ctx.num_ctas * ctx.warps_per_cta
        mine = trail[ctx.global_warp :: total_warps]
        if not mine:
            yield b.exit()
            return

        yield b.ld_param([CONST_BASE + 132])
        yield b.ld_const([CONST_BASE + 3])
        for record in mine:
            seq_base = GLOBAL_BASE + record["index"] * 4
            # Load and pack the candidate, build its k-mer profile in
            # shared memory (cooperative, full warp).
            yield b.ld_global([seq_base, seq_base + 1])
            yield b.ints(8)
            yield b.st_shared()
            yield b.barrier()

            # Pre-filter: one length compare per representative; lanes
            # peel off as candidates fail (modelled as a shrinking
            # mask over the filter loop).
            checks = record["prefilter"] + record["shortword"]
            lanes = 32
            for chunk in range(max(1, math.ceil(checks / 8))):
                b.set_lanes(lanes)
                yield b.ld_shared()  # representative profile tile
                if chunk % 4 == 0:
                    # Representative profiles live in a shared global
                    # table; every candidate revisits the same lines.
                    yield b.ld_global([GLOBAL_BASE + 8192 + chunk % 64])
                yield b.ints(INTS_PER_FILTER)
                yield b.branch()
                lanes = max(2, lanes - 6)  # most lanes fail the filters

            # Survivors run the banded alignment: only the lanes of the
            # surviving candidates stay live, wasting most of the warp.
            if record["aligned"]:
                if children is not None:
                    yield b.launch(children[record["index"]])
                else:
                    b.set_lanes(4)
                    yield b.branch()
                    for row in range(max(1, record["align_rows"])):
                        yield b.ints(INTS_PER_ROW)
                        if row % 8 == 7:
                            yield b.ld_shared()
            b.set_lanes(32)
            yield b.st_global([seq_base])  # cluster assignment
        if children is not None:
            yield b.device_sync()
        yield b.exit()


class ClusterChildKernel(KernelProgram):
    """CDP child: one survivor's banded alignment at full warp width.

    ``args``: ``rows``, ``base``.
    """

    def __init__(self):
        super().__init__(
            "cluster_child", cta_threads=32, regs_per_thread=40,
            const_bytes=512,
        )

    def trace_template(self, ctx: WarpContext):
        return (ctx.args["rows"],), (ctx.args["base"],)

    def warp_trace(self, ctx: WarpContext) -> Iterator[WarpInstruction]:
        b = TraceBuilder()
        yield b.ld_param([CONST_BASE + 133])
        yield b.ld_global([ctx.args["base"]])
        # The child spreads the band across the full warp, covering in
        # one instruction what the 4-lane parent path needs 8 for.
        for row in range(max(1, ctx.args["rows"] // 8)):
            yield b.ints(INTS_PER_ROW)
        yield b.st_global([ctx.args["base"]])
        yield b.exit()


class ClusterApplication(GenomicsApplication):
    """nGIA greedy incremental clustering."""

    abbr = "CLUSTER"

    def __init__(self, workload, cdp: bool = False):
        super().__init__(workload, cdp)
        self._functional = None

    def run_functional(self):
        if self._functional is None:
            self._functional = greedy_cluster(
                list(self.workload.sequences),
                identity=self.workload.identity,
                word_length=self.workload.word_length,
            )
        return self._functional

    def host_program(self):
        result = self.run_functional()
        info = self.info
        total_bytes = sum(len(s) for s in self.workload.sequences)

        yield HostMemcpy(total_bytes // 2, "h2d")  # packed sequences
        yield HostMemcpy(4 * len(self.workload.sequences), "h2d")  # offsets

        args = {"trail": result.trail}
        if self.cdp:
            child = ClusterChildKernel()
            args["cdp_children"] = {
                record["index"]: KernelLaunch(
                    child,
                    num_ctas=1,
                    args={
                        "rows": max(32, record["align_rows"]),
                        "base": GLOBAL_BASE + record["index"] * 4,
                    },
                )
                for record in result.trail
                if record["aligned"]
            }
        kernel = ClusterKernel(info.cta_threads, cdp=self.cdp)
        num_ctas = min(
            info.num_ctas,
            max(1, math.ceil(len(result.trail) / kernel.warps_per_cta)),
        )
        yield HostLaunch(KernelLaunch(kernel, num_ctas=num_ctas, args=args))
        yield HostMemcpy(4 * len(self.workload.sequences), "d2h")
