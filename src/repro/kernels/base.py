"""Shared infrastructure for benchmark kernels.

Address-space layout, the benchmark descriptor (Table III row), and the
application base class every benchmark derives from.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.launch import Application

#: Line-index bases partitioning the flat device address space.  Lines
#: are 128 bytes, so these correspond to 128MB-aligned regions — far
#: larger than any workload, guaranteeing regions never collide.
CONST_BASE = 0
GLOBAL_BASE = 1 << 20
LOCAL_BASE = 1 << 24
TEX_BASE = 1 << 28


def local_line(global_warp: int, lines_per_warp: int, offset: int) -> int:
    """Local-memory line for a warp-uniform per-thread array access.

    Local memory is lane-interleaved by the hardware, so when all 32
    lanes touch element ``offset`` of their private array the access
    coalesces into one line per 32 words.  Each warp owns a private
    window of ``lines_per_warp`` lines.
    """
    return LOCAL_BASE + global_warp * lines_per_warp + (offset % lines_per_warp)


@dataclass(frozen=True)
class BenchmarkInfo:
    """One Table III row."""

    abbr: str
    full_name: str
    input_description: str
    grid: tuple[int, int, int]
    cta: tuple[int, int, int]
    uses_shared: bool
    uses_constant: bool
    cta_per_core_paper: int  # the value the paper reports

    @property
    def cta_threads(self) -> int:
        x, y, z = self.cta
        return x * y * z

    @property
    def num_ctas(self) -> int:
        x, y, z = self.grid
        return x * y * z


#: Table III, verbatim from the paper.
BENCHMARKS: dict[str, BenchmarkInfo] = {
    info.abbr: info
    for info in [
        BenchmarkInfo("SW", "Smith-Waterman", "32K bases with 4 types (A/C/G/T)",
                      (3, 1, 1), (64, 1, 1), False, True, 30),
        BenchmarkInfo("NW", "Needleman-Wunsch", "32K bases with 4 types (A/C/G/T)",
                      (500, 1, 1), (128, 1, 1), True, True, 6),
        BenchmarkInfo("STAR", "Center Star Algorithm", "protein.txt",
                      (12, 1, 1), (256, 1, 1), False, True, 4),
        BenchmarkInfo("GG", "GASAL2 GLOBAL", "query_batch.fasta",
                      (40, 1, 1), (128, 1, 1), False, True, 12),
        BenchmarkInfo("GL", "GASAL2 LOCAL", "query_batch.fasta",
                      (40, 1, 1), (128, 1, 1), False, True, 12),
        BenchmarkInfo("GKSW", "GASAL2 KSW", "query_batch.fasta",
                      (40, 1, 1), (128, 1, 1), False, True, 12),
        BenchmarkInfo("GSG", "GASAL2 SEMI-GLOBAL", "query_batch.fasta",
                      (40, 1, 1), (128, 1, 1), False, True, 12),
        BenchmarkInfo("CLUSTER", "Greedy Incremental Alignment-based",
                      "testData.fasta", (128, 1, 1), (128, 1, 1), True, True, 12),
        BenchmarkInfo("PairHMM", "Pair Hidden Markov Model",
                      "Synthetic_data(128_128)", (150, 1, 1), (128, 1, 1),
                      True, True, 10),
        BenchmarkInfo("NvB", "NVBIO", "hg19.fa, SRR493095.fastq",
                      (2048, 1, 1), (256, 1, 1), False, True, 6),
    ]
}


class GenomicsApplication(Application):
    """Base class for the ten benchmark applications.

    Subclasses set ``abbr`` and implement :meth:`host_program` (plus a
    CDP variant when ``cdp=True``) and :meth:`run_functional`, which
    executes the real algorithm and returns its result.
    """

    abbr: str = ""

    #: The sweep-engine contract (``repro.core.sweep``): warp traces are
    #: a deterministic function of (workload, launch geometry, args), so
    #: the engine may materialize them once and replay them across the
    #: timing configs of a sweep.  All ten benchmarks satisfy this; an
    #: application whose traces depend on simulated timing must set
    #: ``replayable = False`` and will be run fresh at every point.
    replayable: bool = True

    def __init__(self, workload, cdp: bool = False):
        self.workload = workload
        self.cdp = cdp
        self.name = f"{self.abbr}-CDP" if cdp else self.abbr
        # Only the CDP variants build parent kernels that launch
        # children; the plain variants never device-launch, which lets
        # the simulator run SM-local work ahead of the event order.
        self.may_device_launch = cdp

    @property
    def info(self) -> BenchmarkInfo:
        """This benchmark's Table III row."""
        return BENCHMARKS[self.abbr]

    def run_functional(self):
        """Execute the underlying algorithm on the workload."""
        raise NotImplementedError

    def describe(self) -> str:
        return f"{self.info.full_name} ({self.name})"
