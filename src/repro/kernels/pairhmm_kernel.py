"""Pair-HMM forward benchmark (PairHMM).

One warp evaluates one (read, haplotype) cell of the likelihood batch,
sweeping the forward recurrence row by row with the M/X/Y state rows
staged in shared memory (>95% of memory instructions are shared,
Fig 9) and heavy floating-point work (Fig 8 shows PairHMM as the most
FP-rich kernel).  Read/haplotype bases stream from global memory with a
batch-strided pattern that has essentially no reuse — the paper
observes PairHMM's L1/L2 miss rates stay high at every cache size
(Figs 13/14).

``use_shared=False`` is the Fig 7 ablation: the state rows move to
global memory with per-lane column-strided (uncoalesced) accesses,
which is what makes the naive port 36.9x slower on real hardware.

The CDP variant launches one child kernel per read row of the batch
(Ren et al.'s intertask scheme), which both removes the lockstep over
reads of different lengths and scales with more resident CTAs
(Fig 11's PairHMM-CDP trend).
"""

from __future__ import annotations

import math
from typing import Iterator

from repro.genomics.hmm import likelihood_matrix
from repro.isa import TraceBuilder
from repro.isa.instructions import WarpInstruction
from repro.kernels.base import CONST_BASE, GLOBAL_BASE, GenomicsApplication
from repro.sim.kernel import KernelProgram, WarpContext
from repro.sim.launch import HostLaunch, HostMemcpy, KernelLaunch

#: FP ops per DP row chunk (M/X/Y updates for 32 columns).
FPS_PER_ROW = 6

#: Large stride (in lines) between successive base-stream accesses,
#: chosen to defeat reuse the way the real batch layout does.
STREAM_STRIDE = 97


class PairHMMKernel(KernelProgram):
    """Forward-algorithm batch kernel.

    ``args``: ``pairs`` — list of (read_len, hap_len, pair_id);
    ``padded_rows`` — optional lockstep row bound.  The non-CDP batch
    kernel runs every pair to the batch's longest read (grid-stride
    lockstep); CDP children omit it and loop their pair's real length.
    """

    def __init__(self, cta_threads: int = 128, use_shared: bool = True):
        super().__init__(
            "pairhmm" if use_shared else "pairhmm_noshared",
            cta_threads=cta_threads,
            regs_per_thread=48,
            smem_per_cta=10 * 1024 if use_shared else 0,
            const_bytes=2 * 1024,  # transition tables
        )
        self.use_shared = use_shared

    def trace_template(self, ctx: WarpContext):
        if not self.use_shared:
            # The naive-port ablation streams its matrix accesses
            # through a mutable per-warp cursor (``_stream``), so
            # regeneration is not idempotent and relocation cannot
            # express the moving window.
            return None
        pairs = ctx.args["pairs"]
        total_warps = ctx.num_ctas * ctx.warps_per_cta
        mine = pairs[ctx.global_warp :: total_warps]
        padded_rows = ctx.args.get("padded_rows")
        key = tuple(
            (
                padded_rows if padded_rows is not None else read_len,
                max(1, hap_len // 32),
            )
            for read_len, hap_len, _ in mine
        )
        bases = []
        for _, _, pair_id in mine:
            bases.append(GLOBAL_BASE + (pair_id << 10))  # base stream
            bases.append(GLOBAL_BASE + (1 << 19) + pair_id)  # result slot
        return key, tuple(bases)

    def warp_trace(self, ctx: WarpContext) -> Iterator[WarpInstruction]:
        b = TraceBuilder()
        pairs = ctx.args["pairs"]
        total_warps = ctx.num_ctas * ctx.warps_per_cta
        mine = pairs[ctx.global_warp :: total_warps]
        if not mine:
            yield b.exit()
            return

        yield b.ld_param([CONST_BASE + 134])
        yield b.ld_const([CONST_BASE + 4, CONST_BASE + 5])
        yield b.ints(4)
        padded_rows = ctx.args.get("padded_rows")
        for read_len, hap_len, pair_id in mine:
            cols = max(1, hap_len // 32)
            rows = padded_rows if padded_rows is not None else read_len
            # Per-pair base window: the batch layout interleaves reads
            # and haplotypes so consecutive fetches land on distinct
            # lines — no reuse, the high flat miss rate of Figs 13/14.
            base = GLOBAL_BASE + (pair_id << 10)
            yield b.ld_global([base, base + STREAM_STRIDE])  # bases in
            for row in range(rows):
                if row % 8 == 0:
                    # Stream the next read-base block; batch-strided.
                    yield b.ld_global(
                        [base + (row // 8 + 2) * STREAM_STRIDE]
                    )
                for col_chunk in range(cols):
                    if self.use_shared:
                        yield b.ld_shared()  # previous M/X/Y row
                        yield b.ld_shared()
                        yield b.fps(FPS_PER_ROW)
                        yield b.st_shared()
                    else:
                        # Naive port: the full M/X/Y matrices live in
                        # global memory, column-major per lane, so
                        # every access is 32 uncoalesced transactions
                        # and the combined working set of the resident
                        # warps defeats both cache levels — on real
                        # hardware this streams from DRAM, which is
                        # modelled here as compulsory-miss lines.
                        stream = ctx.args.setdefault("_stream", {})
                        offset = stream.get(ctx.global_warp, 0)
                        mat_base = (
                            GLOBAL_BASE
                            + (1 << 20)
                            + ctx.global_warp * (1 << 14)
                        )
                        span = 1 << 14
                        for access in range(2):
                            lines = [
                                mat_base + (offset + access * 9 + j) % span
                                for j in range(9)
                            ]
                            yield b.ld_global(lines)
                        yield b.fps(FPS_PER_ROW)
                        yield b.st_global(
                            [mat_base + (offset + j) % span for j in range(8)]
                        )
                        stream[ctx.global_warp] = offset + 18
            yield b.fps(3)  # final row reduction
            yield b.st_global([GLOBAL_BASE + (1 << 19) + pair_id])
        yield b.exit()


class PairHMMParentKernel(KernelProgram):
    """CDP parent: one child launch per read row of the batch."""

    def __init__(self, plan: list[KernelLaunch]):
        super().__init__(
            "pairhmm_parent", cta_threads=128, regs_per_thread=40,
            const_bytes=512,
        )
        self.plan = plan

    def warp_trace(self, ctx: WarpContext) -> Iterator[WarpInstruction]:
        b = TraceBuilder()
        total_warps = ctx.num_ctas * ctx.warps_per_cta
        mine = self.plan[ctx.global_warp :: total_warps]
        if not mine:
            yield b.exit()
            return
        yield b.ld_param([CONST_BASE + 135])
        for launch in mine:
            yield b.ints(3)
            yield b.launch(launch)
        yield b.device_sync()
        yield b.exit()


class PairHMMApplication(GenomicsApplication):
    """Pair-HMM forward likelihoods over a read/haplotype batch."""

    abbr = "PairHMM"

    def __init__(self, workload, cdp: bool = False, use_shared: bool = True):
        super().__init__(workload, cdp)
        self.use_shared = use_shared
        self.kernel = PairHMMKernel(self.info.cta_threads, use_shared)

    def _pairs(self) -> list[tuple[int, int, int]]:
        reads = self.workload.reads
        haps = self.workload.haplotypes
        return [
            (len(read), len(hap), i * len(haps) + j)
            for i, read in enumerate(reads)
            for j, hap in enumerate(haps)
        ]

    def host_program(self):
        reads = self.workload.reads
        haps = self.workload.haplotypes
        pairs = self._pairs()
        info = self.info

        yield HostMemcpy(sum(len(r) for r in reads), "h2d")
        yield HostMemcpy(sum(len(h) for h in haps), "h2d")
        yield HostMemcpy(4 * len(pairs), "h2d")  # pair index table
        if self.cdp:
            per_read = len(haps)
            plan = []
            for i, read in enumerate(reads):
                chunk = pairs[i * per_read : (i + 1) * per_read]
                # One warp per pair within the child, no lockstep.
                child_ctas = max(
                    1, math.ceil(len(chunk) / self.kernel.warps_per_cta)
                )
                plan.append(
                    KernelLaunch(
                        self.kernel,
                        num_ctas=child_ctas,
                        args={"pairs": chunk},
                    )
                )
            parent = PairHMMParentKernel(plan)
            parent_ctas = min(
                info.num_ctas,
                max(1, math.ceil(len(plan) / parent.warps_per_cta)),
            )
            yield HostLaunch(KernelLaunch(parent, num_ctas=parent_ctas))
        else:
            # Region-streamed batches: the host launches one padded
            # lockstep kernel per read group (GATK active regions),
            # which is exactly the launch traffic CDP folds away.
            per_group = 6 * len(haps)
            for start in range(0, len(pairs), per_group):
                group = pairs[start : start + per_group]
                padded = max(read_len for read_len, _, _ in group)
                group_ctas = min(
                    info.num_ctas,
                    max(1, math.ceil(len(group) / self.kernel.warps_per_cta)),
                )
                yield HostLaunch(
                    KernelLaunch(
                        self.kernel,
                        num_ctas=group_ctas,
                        args={"pairs": group, "padded_rows": padded},
                    )
                )
        yield HostMemcpy(8 * len(pairs), "d2h")  # log-likelihoods

    def run_functional(self):
        return likelihood_matrix(
            list(self.workload.reads), list(self.workload.haplotypes)
        )
