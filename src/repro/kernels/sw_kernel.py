"""Smith-Waterman benchmark (SW).

The GPU structure follows CUDAlign-style tiled wavefront processing:
the DP matrix is split into TILE x TILE tiles; tiles on one
anti-diagonal are independent and are computed by one kernel launch, so
the host relaunches the kernel once per tile anti-diagonal.  That is
why Fig 4 shows kernel calls vastly outnumbering cudaMemcpy calls for
SW.  DP rows live in registers and tile boundaries in global memory
(Table III: no shared memory); the substitution matrix sits in constant
memory.

The CDP variant launches the per-diagonal child kernels from a small
parent kernel with a ``cudaDeviceSynchronize`` between diagonals,
trading ~3000-cycle host launches for ~1000-cycle device launches.
"""

from __future__ import annotations

import math
from typing import Iterator

from repro.genomics.align import smith_waterman
from repro.isa import TraceBuilder
from repro.isa.instructions import WarpInstruction
from repro.kernels.base import CONST_BASE, GLOBAL_BASE, GenomicsApplication
from repro.sim.kernel import KernelProgram, WarpContext
from repro.sim.launch import HostLaunch, HostMemcpy, KernelLaunch

#: Tile edge in DP cells; one warp computes a tile row per instruction
#: block (32 lanes = 32 columns).
TILE = 32

#: Integer ops per tile row of cells (max/add/compare per lane).
INTS_PER_ROW = 6


def tile_grid(m: int, n: int) -> tuple[int, int]:
    """Tile counts along the query and target dimensions."""
    return math.ceil(m / TILE), math.ceil(n / TILE)


def diagonal_tiles(diag: int, tiles_m: int, tiles_n: int) -> list[tuple[int, int]]:
    """Tiles (ti, tj) on anti-diagonal ``diag`` (ti + tj == diag)."""
    tiles = []
    for ti in range(tiles_m):
        tj = diag - ti
        if 0 <= tj < tiles_n:
            tiles.append((ti, tj))
    return tiles


class SWDiagonalKernel(KernelProgram):
    """Computes all tiles of one anti-diagonal.

    ``args``: ``tiles`` (list of (ti, tj)), ``tiles_n`` (tiles per
    matrix row, for addressing).
    """

    def __init__(self, cta_threads: int = 64):
        super().__init__(
            "sw_diag",
            cta_threads=cta_threads,
            regs_per_thread=32,
            smem_per_cta=0,
            const_bytes=2 * 1024,  # 4x4 scores + gap params + LUTs
        )

    def trace_template(self, ctx: WarpContext):
        tiles = ctx.args["tiles"]
        tiles_n = ctx.args["tiles_n"]
        total_warps = ctx.num_ctas * ctx.warps_per_cta
        mine = tiles[ctx.global_warp :: total_warps]
        # Structure depends only on which boundary loads each tile
        # performs; every line is an offset from its tile's H-tile
        # window (or a neighbour's, for the boundary rows).
        key = tuple((ti > 0, tj > 0) for ti, tj in mine)
        tile_lines = (TILE * TILE * 4) // 128
        bases = []
        for ti, tj in mine:
            tile_id = ti * tiles_n + tj
            bases.append(GLOBAL_BASE + tile_id * tile_lines)
            bases.append(GLOBAL_BASE + (tile_id - tiles_n) * tile_lines)
            bases.append(GLOBAL_BASE + (tile_id - 1) * tile_lines)
        return key, tuple(bases)

    def warp_trace(self, ctx: WarpContext) -> Iterator[WarpInstruction]:
        b = TraceBuilder()
        tiles = ctx.args["tiles"]
        tiles_n = ctx.args["tiles_n"]
        total_warps = ctx.num_ctas * ctx.warps_per_cta
        mine = tiles[ctx.global_warp :: total_warps]
        if not mine:
            yield b.exit()
            return

        # Kernel prologue: read launch params and the substitution
        # matrix into registers (constant memory, Table III).
        yield b.ld_param([CONST_BASE + 128])
        yield b.ld_const([CONST_BASE, CONST_BASE + 1])
        yield b.ints(4)

        tile_lines = (TILE * TILE * 4) // 128  # H-tile footprint: 32 lines
        for ti, tj in mine:
            tile_id = ti * tiles_n + tj
            base = GLOBAL_BASE + tile_id * tile_lines
            up_base = GLOBAL_BASE + (tile_id - tiles_n) * tile_lines
            left_base = GLOBAL_BASE + (tile_id - 1) * tile_lines
            # Load boundary rows/columns written by the neighbouring
            # tiles on the previous diagonal.
            if ti > 0:
                yield b.ld_global([up_base + tile_lines - 1])
            if tj > 0:
                yield b.ld_global([left_base + tile_lines - 1])
            yield b.ld_const([CONST_BASE])  # scores stay resident
            # Wavefront ramp-up and ramp-down: the anti-diagonal only
            # fills the warp in the middle of the tile, so a large
            # share of issued warps run partially occupied (SW is not
            # in the paper's high-occupancy group).
            ramp = (4, 8, 12, 16, 20, 24, 28)
            for lanes in ramp:
                b.set_lanes(lanes)
                yield b.branch()
                yield b.ints(INTS_PER_ROW)
            b.set_lanes(32)
            for row in range(len(ramp), TILE - len(ramp)):
                yield b.ints(INTS_PER_ROW)
                if row % 8 == 7:
                    # Spill a block of H rows, then read it straight
                    # back for the next wavefront step — the register
                    # tiling keeps SW's load hit rate very high.
                    yield b.st_global([base + (row // 8) * 8])
                    yield b.ld_global([base + (row // 8) * 8])
            for lanes in reversed(ramp):
                b.set_lanes(lanes)
                yield b.ints(INTS_PER_ROW)
            b.set_lanes(32)
            # Tile epilogue: boundary column + running maximum.
            yield b.ints(3)
            yield b.st_global([base + tile_lines - 1])
        yield b.exit()


class SWParentKernel(KernelProgram):
    """CDP parent: one launcher warp walks the diagonals."""

    def __init__(self, child: SWDiagonalKernel, plan: list[KernelLaunch]):
        super().__init__(
            "sw_parent",
            cta_threads=64,
            regs_per_thread=40,
            const_bytes=512,
        )
        self.child = child
        self.plan = plan

    def warp_trace(self, ctx: WarpContext) -> Iterator[WarpInstruction]:
        b = TraceBuilder()
        if ctx.global_warp != 0:
            yield b.exit()
            return
        yield b.ld_param([CONST_BASE + 128])
        for launch in self.plan:
            yield b.ints(4)  # compute diagonal bounds
            yield b.launch(launch)
            yield b.device_sync()
        yield b.exit()


class SWApplication(GenomicsApplication):
    """Smith-Waterman on one diverged DNA pair."""

    abbr = "SW"

    def __init__(self, workload, cdp: bool = False):
        super().__init__(workload, cdp)
        self.kernel = SWDiagonalKernel(self.info.cta_threads)

    def _launch_plan(self) -> list[KernelLaunch]:
        m, n = len(self.workload.query), len(self.workload.target)
        tiles_m, tiles_n = tile_grid(m, n)
        plan = []
        for diag in range(tiles_m + tiles_n - 1):
            tiles = diagonal_tiles(diag, tiles_m, tiles_n)
            plan.append(
                KernelLaunch(
                    self.kernel,
                    num_ctas=self.info.num_ctas,
                    args={"tiles": tiles, "tiles_n": tiles_n},
                )
            )
        return plan

    def host_program(self):
        m, n = len(self.workload.query), len(self.workload.target)
        yield HostMemcpy(m, "h2d")  # packed query
        yield HostMemcpy(n, "h2d")  # packed target
        plan = self._launch_plan()
        if self.cdp:
            parent = SWParentKernel(self.kernel, plan)
            yield HostLaunch(KernelLaunch(parent, num_ctas=self.info.num_ctas))
        else:
            for launch in plan:
                yield HostLaunch(launch)
        yield HostMemcpy(64, "d2h")  # best score + position

    def run_functional(self):
        return smith_waterman(self.workload.query, self.workload.target)
