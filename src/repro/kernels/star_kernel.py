"""Center-Star MSA benchmark (STAR).

The CMSA/HAlign GPU design co-runs CPU and GPU: pairwise DP sweeps run
on the GPU in *chunks* while the CPU merges finished chunks, so the
non-CDP host program is a loop of (upload chunk, kernel, download
scores) round trips — two passes of it: all-pairs scoring to pick the
center, then align-to-center.  The GPU kernel is lockstep: each pair
occupies a half-warp slot (the paper observes "only half of the number
of threads are active in STAR") and loops to the chunk's padded bound.

The CDP variant keeps everything on the GPU: one parent kernel per
phase launches a child per pair, sized to that pair's real length and
running on a narrow 4-lane band slice — Fig 10's STAR-CDP outlier
(>80% of warps under 5 active lanes).  Removing the per-chunk host
round trips is what cuts STAR's time by more than half in Fig 2/Fig 3.
"""

from __future__ import annotations

from typing import Iterator

from repro.genomics.msa import center_star
from repro.genomics.scoring import ScoringScheme
from repro.isa import TraceBuilder
from repro.isa.instructions import WarpInstruction
from repro.kernels.base import CONST_BASE, GLOBAL_BASE, GenomicsApplication
from repro.sim.kernel import KernelProgram, WarpContext
from repro.sim.launch import HostLaunch, HostMemcpy, KernelLaunch

#: Integer ops per DP row (the banded row fits one instruction block).
INTS_PER_ROW = 6

#: Pairs per CPU/GPU co-run chunk (non-CDP host round-trip unit).
CHUNK_PAIRS = 14

#: Lanes doing useful work per pair slot in the lockstep kernel.
LOCKSTEP_LANES = 16


def _pair_rows(len_a: int, len_b: int) -> int:
    """DP rows for one pair (row-per-base banded sweep)."""
    return max(1, min(len_a, len_b))


class StarChunkKernel(KernelProgram):
    """Lockstep scoring of one chunk of pairs.

    ``args``: ``pairs`` — (len_a, len_b) list; ``padded_rows`` — loop
    bound applied to every slot (the chunk maximum); ``chunk`` index.
    """

    def __init__(self, cta_threads: int = 256):
        super().__init__(
            "star_chunk",
            cta_threads=cta_threads,
            regs_per_thread=64,
            smem_per_cta=0,
            const_bytes=4 * 1024,  # BLOSUM62 in constant memory
        )

    def trace_template(self, ctx: WarpContext):
        pairs = ctx.args["pairs"]
        total_warps = ctx.num_ctas * ctx.warps_per_cta
        mine = pairs[ctx.global_warp :: total_warps]
        if not mine:
            return ("empty",), ()
        chunk = ctx.args.get("chunk", 0)
        key = (len(mine), ctx.args["padded_rows"])
        bases = (GLOBAL_BASE + chunk * 512 + ctx.global_warp * 16,)
        return key, bases

    def warp_trace(self, ctx: WarpContext) -> Iterator[WarpInstruction]:
        b = TraceBuilder()
        pairs = ctx.args["pairs"]
        padded_rows = ctx.args["padded_rows"]
        chunk = ctx.args.get("chunk", 0)
        total_warps = ctx.num_ctas * ctx.warps_per_cta
        mine = pairs[ctx.global_warp :: total_warps]
        if not mine:
            yield b.exit()
            return

        yield b.ld_param([CONST_BASE + 128])
        yield b.ld_const([CONST_BASE + 8, CONST_BASE + 9])
        yield b.ints(4)
        for pair_index, _ in enumerate(mine):
            seq_base = GLOBAL_BASE + chunk * 512 + ctx.global_warp * 16
            yield b.ld_global([seq_base, seq_base + 1])
            b.set_lanes(LOCKSTEP_LANES)
            # Lockstep: every slot loops to the chunk's padded bound.
            for row in range(padded_rows):
                yield b.ints(INTS_PER_ROW)
                if row % 16 == 15:
                    yield b.ld_const([CONST_BASE + 8])
                if row % 32 == 31:
                    # Packed residue blocks are revisited as the band
                    # slides, so roughly every other fetch is a re-read.
                    yield b.ld_global([seq_base + 2 + row // 64])
            b.set_lanes(32)
            yield b.st_global([seq_base + pair_index % 8])
        yield b.exit()


class StarChildKernel(KernelProgram):
    """CDP child: one pair's DP on a narrow band slice.

    ``args``: ``rows`` (the pair's actual length), ``pair_base``.
    """

    def __init__(self):
        super().__init__(
            "star_child",
            cta_threads=32,
            regs_per_thread=48,
            const_bytes=4 * 1024,
        )

    def trace_template(self, ctx: WarpContext):
        return (ctx.args["rows"],), (ctx.args["pair_base"],)

    def warp_trace(self, ctx: WarpContext) -> Iterator[WarpInstruction]:
        b = TraceBuilder()
        rows = ctx.args["rows"]
        base = ctx.args["pair_base"]
        yield b.ld_param([CONST_BASE + 128])
        yield b.ld_global([base])
        b.set_lanes(4)  # anti-diagonal band slice: 2-4 useful lanes
        for row in range(rows):
            yield b.ints(INTS_PER_ROW)
            if row % 16 == 15:
                yield b.ld_const([CONST_BASE + 8])
        b.set_lanes(32)
        yield b.st_global([base])
        yield b.exit()


class StarParentKernel(KernelProgram):
    """CDP parent: launches one child per pair, then synchronizes."""

    def __init__(self, plan: list[KernelLaunch]):
        super().__init__(
            "star_parent", cta_threads=256, regs_per_thread=40,
            const_bytes=512,
        )
        self.plan = plan

    def warp_trace(self, ctx: WarpContext) -> Iterator[WarpInstruction]:
        b = TraceBuilder()
        total_warps = ctx.num_ctas * ctx.warps_per_cta
        mine = self.plan[ctx.global_warp :: total_warps]
        if not mine:
            yield b.exit()
            return
        yield b.ld_param([CONST_BASE + 128])
        for launch in mine:
            yield b.ints(3)
            yield b.launch(launch)
        yield b.device_sync()
        yield b.exit()


class StarApplication(GenomicsApplication):
    """Center-Star MSA on a protein family."""

    abbr = "STAR"

    def __init__(self, workload, cdp: bool = False):
        super().__init__(workload, cdp)
        self._scheme = ScoringScheme.protein_default()

    def _phase_pairs(self) -> list[list[tuple[int, int]]]:
        seqs = self.workload.sequences
        k = len(seqs)
        all_pairs = [
            (len(seqs[a]), len(seqs[b]))
            for a in range(k)
            for b in range(a + 1, k)
        ]
        center_pairs = [(len(seqs[0]), len(seqs[i])) for i in range(1, k)]
        return [all_pairs, center_pairs]

    def host_program(self):
        seqs = self.workload.sequences
        total_bytes = sum(len(s) for s in seqs)
        info = self.info
        kernel = StarChunkKernel(info.cta_threads)

        yield HostMemcpy(total_bytes, "h2d")  # packed sequences
        yield HostMemcpy(4 * len(seqs), "h2d")  # offsets
        for phase_index, pairs in enumerate(self._phase_pairs()):
            if self.cdp:
                child = StarChildKernel()
                plan = [
                    KernelLaunch(
                        child,
                        num_ctas=1,
                        args={
                            "rows": _pair_rows(a, b),
                            "pair_base": GLOBAL_BASE + 4096 + i * 4,
                        },
                    )
                    for i, (a, b) in enumerate(pairs)
                ]
                parent = StarParentKernel(plan)
                yield HostLaunch(
                    KernelLaunch(parent, num_ctas=info.num_ctas)
                )
                yield HostMemcpy(4 * len(pairs), "d2h")  # phase scores
            else:
                # CPU/GPU co-run: one host round trip per chunk.
                for chunk_start in range(0, len(pairs), CHUNK_PAIRS):
                    chunk = pairs[chunk_start : chunk_start + CHUNK_PAIRS]
                    padded = max(_pair_rows(a, b) for a, b in chunk)
                    yield HostMemcpy(4 * len(chunk), "h2d")  # chunk table
                    yield HostLaunch(
                        KernelLaunch(
                            kernel,
                            num_ctas=info.num_ctas,
                            args={
                                "pairs": chunk,
                                "padded_rows": padded,
                                "chunk": phase_index * 1000
                                + chunk_start // CHUNK_PAIRS,
                            },
                        )
                    )
                    yield HostMemcpy(4 * len(chunk), "d2h")  # chunk scores
        yield HostMemcpy(2 * total_bytes, "d2h")  # merged alignment

    def run_functional(self):
        return center_star(list(self.workload.sequences), self._scheme)
