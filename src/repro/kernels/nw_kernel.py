"""Needleman-Wunsch benchmark (NW).

Shared-memory tiled wavefront: each CTA stages one 64x64 tile of the
DP matrix in shared memory, its four warps sweep the tile with
``__syncthreads`` between row blocks, and only the tile boundaries
touch global memory.  That is why Fig 9 shows >95% of NW's memory
instructions going to shared memory, and why the suite's Fig 7
ablation (``use_shared=False``) is so costly: the naive port keeps the
DP rows in global memory with column-strided (uncoalesced) accesses.

Like SW, the host relaunches the kernel once per tile anti-diagonal
(kernel calls >> memcpy calls in Fig 4); the CDP variant launches the
diagonals from a parent kernel.
"""

from __future__ import annotations

import math
from typing import Iterator

from repro.genomics.align import needleman_wunsch
from repro.isa import TraceBuilder, lines_for_stride
from repro.isa.instructions import WarpInstruction
from repro.kernels.base import CONST_BASE, GLOBAL_BASE, GenomicsApplication
from repro.sim.kernel import KernelProgram, WarpContext
from repro.sim.launch import HostLaunch, HostMemcpy, KernelLaunch

#: Tile edge in DP cells; one CTA owns one tile.
TILE = 64

#: Rows each of the 4 warps computes per tile.
ROWS_PER_WARP = TILE // 4

#: Integer ops per row of 32 cells.
INTS_PER_ROW = 5


def tile_grid(m: int, n: int) -> tuple[int, int]:
    return math.ceil(m / TILE), math.ceil(n / TILE)


def diagonal_tiles(diag: int, tiles_m: int, tiles_n: int) -> list[tuple[int, int]]:
    return [
        (ti, diag - ti)
        for ti in range(tiles_m)
        if 0 <= diag - ti < tiles_n
    ]


class NWDiagonalKernel(KernelProgram):
    """One anti-diagonal of shared-memory tiles; one CTA per tile.

    ``args``: ``tiles``, ``tiles_n``, ``row_lines`` (full-matrix row
    footprint, used by the no-shared-memory ablation), ``use_shared``.
    """

    def __init__(self, cta_threads: int = 128, use_shared: bool = True):
        super().__init__(
            "nw_diag" if use_shared else "nw_diag_noshared",
            cta_threads=cta_threads,
            regs_per_thread=84,
            smem_per_cta=12 * 1024 if use_shared else 0,
            const_bytes=2 * 1024,
        )
        self.use_shared = use_shared

    def trace_template(self, ctx: WarpContext):
        tiles = ctx.args["tiles"]
        if ctx.cta_id >= len(tiles):
            return ("empty",), ()
        ti, tj = tiles[ctx.cta_id]
        tiles_n = ctx.args["tiles_n"]
        tile_id = ti * tiles_n + tj
        tile_lines = (TILE * TILE * 4) // 128
        base = GLOBAL_BASE + tile_id * tile_lines
        # The no-shared ablation's strided rows reach ``row_lines``
        # past the base per lane, so that footprint is structural.
        key = (
            ti > 0,
            tj > 0,
            None if self.use_shared else ctx.args["row_lines"],
        )
        bases = (
            base,
            base - tiles_n * tile_lines,  # up neighbour
            base - tile_lines,  # left neighbour
        )
        return key, bases

    def warp_trace(self, ctx: WarpContext) -> Iterator[WarpInstruction]:
        b = TraceBuilder()
        tiles = ctx.args["tiles"]
        tiles_n = ctx.args["tiles_n"]
        if ctx.cta_id >= len(tiles):
            yield b.exit()
            return
        ti, tj = tiles[ctx.cta_id]
        tile_id = ti * tiles_n + tj
        tile_lines = (TILE * TILE * 4) // 128
        base = GLOBAL_BASE + tile_id * tile_lines

        yield b.ld_param([CONST_BASE + 128])
        yield b.ld_const([CONST_BASE, CONST_BASE + 1])
        yield b.ints(4)
        # Stage boundary rows from the neighbour tiles.
        if ti > 0:
            yield b.ld_global([base - tiles_n * tile_lines + tile_lines - 1])
        if tj > 0:
            yield b.ld_global([base - tile_lines + tile_lines - 1])
        if self.use_shared:
            yield b.st_shared()
            yield b.barrier()
            for row in range(ROWS_PER_WARP):
                yield b.ld_shared()
                yield b.ld_shared()
                yield b.ints(INTS_PER_ROW)
                yield b.st_shared()
                if row % 4 == 3:
                    yield b.barrier()  # wavefront step between warp groups
        else:
            # Naive port: DP rows live in global memory and the
            # column-neighbour access is stride-n, i.e. uncoalesced —
            # one transaction per lane.
            row_bytes = ctx.args["row_lines"] * 128
            yield b.barrier()
            for row in range(ROWS_PER_WARP):
                row_base = (base + row) * 128
                yield b.ld_global(
                    lines_for_stride(row_base, row_bytes, lanes=32)
                )
                yield b.ld_global([base + row % tile_lines])
                yield b.ints(INTS_PER_ROW)
                yield b.st_global(
                    lines_for_stride(row_base + 4, row_bytes, lanes=32)
                )
                if row % 4 == 3:
                    yield b.barrier()  # wavefront sync, same as tiled
        # Publish the tile's boundary for the next diagonal.
        yield b.st_global([base + tile_lines - 1])
        yield b.exit()


class NWParentKernel(KernelProgram):
    """CDP parent walking the tile diagonals."""

    def __init__(self, plan: list[KernelLaunch]):
        super().__init__(
            "nw_parent", cta_threads=128, regs_per_thread=40, const_bytes=512
        )
        self.plan = plan

    def warp_trace(self, ctx: WarpContext) -> Iterator[WarpInstruction]:
        b = TraceBuilder()
        if ctx.global_warp != 0:
            yield b.exit()
            return
        yield b.ld_param([CONST_BASE + 128])
        for launch in self.plan:
            yield b.ints(4)
            yield b.launch(launch)
            yield b.device_sync()
        yield b.exit()


class NWApplication(GenomicsApplication):
    """Needleman-Wunsch on one diverged DNA pair.

    ``use_shared=False`` selects the Fig 7 ablation variant.
    """

    abbr = "NW"

    def __init__(self, workload, cdp: bool = False, use_shared: bool = True):
        super().__init__(workload, cdp)
        self.use_shared = use_shared
        self.kernel = NWDiagonalKernel(self.info.cta_threads, use_shared)

    def _launch_plan(self) -> list[KernelLaunch]:
        m, n = len(self.workload.query), len(self.workload.target)
        tiles_m, tiles_n = tile_grid(m, n)
        row_lines = max(1, (n * 4) // 128)
        plan = []
        for diag in range(tiles_m + tiles_n - 1):
            tiles = diagonal_tiles(diag, tiles_m, tiles_n)
            plan.append(
                KernelLaunch(
                    self.kernel,
                    num_ctas=min(self.info.num_ctas, len(tiles)),
                    args={
                        "tiles": tiles,
                        "tiles_n": tiles_n,
                        "row_lines": row_lines,
                    },
                )
            )
        return plan

    def host_program(self):
        m, n = len(self.workload.query), len(self.workload.target)
        yield HostMemcpy(m, "h2d")
        yield HostMemcpy(n, "h2d")
        plan = self._launch_plan()
        if self.cdp:
            parent = NWParentKernel(plan)
            yield HostLaunch(KernelLaunch(parent, num_ctas=1))
        else:
            for launch in plan:
                yield HostLaunch(launch)
        yield HostMemcpy(max(64, (m + n) * 2), "d2h")  # score + alignment

    def run_functional(self):
        return needleman_wunsch(self.workload.query, self.workload.target)
