"""NVBIO / NvBowtie benchmark (NvB).

NvBowtie runs reads through a multi-stage pipeline — seed extraction,
FM-index backward search, locate, extension, traceback, selection —
and launches each stage as its own kernel per read batch.  The kernels
are short and numerous, so the dominant cost is kernel-switch time:
Fig 5 shows "functional done" causing over 90% of NvB's stalls, and
Fig 4 shows its large launch count.

The FM-index stages perform data-dependent random lookups across the
occurrence/suffix-array structures, giving the high, size-insensitive
L1/L2 miss rates of Figs 13/14.  Loop bounds are derived from the
*actual* aligner run on the workload (seed counts, LF steps, extension
candidates from :class:`repro.genomics.index.bowtie.AlignerStats`).

The CDP variant launches the per-batch stage kernels from a driver
kernel on the device (one host launch per batch instead of one per
stage).
"""

from __future__ import annotations

import math
from typing import Iterator

from repro.genomics.index import ReadAligner
from repro.isa import TraceBuilder
from repro.isa.instructions import WarpInstruction
from repro.kernels.base import CONST_BASE, GLOBAL_BASE, GenomicsApplication
from repro.sim.kernel import KernelProgram, WarpContext
from repro.sim.launch import HostLaunch, HostMemcpy, KernelLaunch

#: Reads per pipeline batch.  NvBowtie streams small ring-buffer
#: batches through the pipeline, so the launch count is large and the
#: per-kernel work small — the source of its "functional done" stalls.
BATCH_READS = 4

#: Index region base (BWT + occurrence checkpoints + SA samples).
INDEX_BASE = GLOBAL_BASE + (1 << 20)


def _scatter(seed: int, index_lines: int) -> int:
    """Deterministic pseudo-random index line (splitmix-style hash)."""
    x = (seed * 0x9E3779B97F4A7C15) & (2**64 - 1)
    x ^= x >> 31
    return INDEX_BASE + x % max(1, index_lines)


class NvbStageKernel(KernelProgram):
    """One pipeline stage over one read batch.

    ``args``: ``stage`` name, ``batch`` index, ``reads`` in the batch,
    ``work`` — per-read loop bound for this stage, ``index_lines``.
    """

    def __init__(self, stage: str, cta_threads: int = 256):
        super().__init__(
            f"nvb_{stage}",
            cta_threads=cta_threads,
            regs_per_thread=40,
            smem_per_cta=0,
            const_bytes=1024,
        )
        self.stage = stage

    def trace_template(self, ctx: WarpContext):
        if self.stage in ("search", "locate", "extend"):
            # FM-index walks hash (batch, salt, warp, step) into the
            # index: genuinely data-dependent scatter, not an affine
            # relocation of any base.
            return None
        reads = ctx.args["reads"]
        my_reads = max(0, min(32, reads - ctx.global_warp * 32))
        if my_reads <= 0:
            return ("empty",), ()
        key = (my_reads, ctx.args["work"])
        batch = ctx.args["batch"]
        bases = (GLOBAL_BASE + batch * 256 + ctx.global_warp * 4,)
        return key, bases

    def warp_trace(self, ctx: WarpContext) -> Iterator[WarpInstruction]:
        b = TraceBuilder()
        reads = ctx.args["reads"]
        work = ctx.args["work"]
        batch = ctx.args["batch"]
        index_lines = ctx.args["index_lines"]
        total_warps = ctx.num_ctas * ctx.warps_per_cta
        # One thread per read: only the first ceil(reads/32) warps are
        # populated; a warp's lane count follows its read share.
        my_reads = max(0, min(32, reads - ctx.global_warp * 32))
        if my_reads <= 0 or ctx.global_warp >= total_warps:
            yield b.exit()
            return
        b.set_lanes(my_reads)

        yield b.ld_param([CONST_BASE + 136])
        yield b.ints(4)
        read_base = GLOBAL_BASE + batch * 256 + ctx.global_warp * 4
        yield b.ld_global([read_base])

        salt = ctx.args.get("salt", 0)
        if self.stage in ("search", "locate"):
            # FM-index walks: every step is two dependent random
            # lookups into the occurrence structure; each pipeline
            # stage continues the walk from where the last left off,
            # so no stage revisits another's lines.
            for step in range(work):
                key = (
                    batch * 131071
                    + salt * 524287
                    + ctx.global_warp * 8191
                    + step
                ) * 64
                # Each lane walks its own suffix-array interval, so the
                # warp's load is fully divergent, and each rank lookup
                # touches three structures (occ checkpoint, BWT chunk,
                # count table): 3 transactions per active read.
                yield b.ld_global(
                    [_scatter(key + 3 * lane + j, index_lines)
                     for lane in range(my_reads) for j in range(3)]
                )
                yield b.ld_global(
                    [_scatter(key + 96 + 3 * lane + j, index_lines)
                     for lane in range(my_reads) for j in range(3)]
                )
                yield b.ints(4)
                if step % 8 == 7:
                    yield b.branch()  # range-empty early exits diverge
        elif self.stage == "extend":
            for row in range(work):
                yield b.ld_global(
                    [_scatter(
                        batch * 31 + salt * 524287 + ctx.global_warp * 7 + row,
                        index_lines,
                    )]
                )
                yield b.ints(6)
        else:  # seed extraction / select / traceback: short scalar loops
            for step in range(work):
                yield b.ints(5)
                if step % 4 == 3:
                    yield b.ld_global([read_base + 1 + step // 4])
        yield b.st_global([read_base])
        yield b.exit()


class NvbDriverKernel(KernelProgram):
    """CDP driver: launches the batch's stage kernels on-device."""

    def __init__(self, plan: list[KernelLaunch]):
        super().__init__(
            "nvb_driver", cta_threads=32, regs_per_thread=32, const_bytes=256
        )
        self.plan = plan

    def warp_trace(self, ctx: WarpContext) -> Iterator[WarpInstruction]:
        b = TraceBuilder()
        yield b.ld_param([CONST_BASE + 137])
        for launch in self.plan:
            yield b.ints(3)
            yield b.launch(launch)
            yield b.device_sync()  # stages are sequentially dependent
        yield b.exit()


#: Functional-run cache: building the FM-index and mapping every read
#: is the expensive part; it only depends on the workload.
_FUNCTIONAL_CACHE: dict = {}


class NvbApplication(GenomicsApplication):
    """NvBowtie-style short-read alignment."""

    abbr = "NvB"

    def run_functional(self):
        cached = _FUNCTIONAL_CACHE.get(self.workload)
        if cached is None:
            aligner = ReadAligner(self.workload.reference)
            mappings = aligner.map_reads(self.workload.read_sequences)
            cached = (mappings, aligner.stats, aligner.index)
            _FUNCTIONAL_CACHE[self.workload] = cached
        return cached

    def _stage_plan(self, batch_reads: int) -> list[tuple[str, int]]:
        """(stage, per-read work) for one batch, from aligner stats."""
        _, stats, index = self.run_functional()
        reads = max(1, stats.reads)
        seeds_per_read = max(1, stats.seeds_extracted // reads)
        # LF steps per read across all its seeds; the occurrence table
        # is texture-cached 8 steps per fetch in NvBio's layout.
        lf_per_read = max(
            1, (stats.seed_searches * 16 + index.lf_steps) // reads // 24
        )
        candidates_per_read = max(1, stats.candidates_extended // reads)
        per_round = max(1, lf_per_read // 4)
        return [
            ("seed", seeds_per_read),
            ("search", per_round),
            ("search", per_round),
            ("search", per_round),
            ("search", per_round),
            ("locate", max(1, candidates_per_read // 2)),
            ("extend", max(1, candidates_per_read)),
            ("traceback", 4),
            ("select", 2),
        ]

    def host_program(self):
        workload = self.workload
        _, _, index = self.run_functional()
        # The functional index is built on the synthetic reference, but
        # the trace addresses the hg19-scale FM-index footprint the
        # paper's input implies (BWT + occ + SA over ~3.2 Gbp): random
        # lookups in it never fit any cache level, which is what makes
        # NvB's miss rates high and size-insensitive (Figs 13/14).
        index_lines = max(len(index) * 3 // 128, 1 << 22)
        info = self.info
        n_reads = len(workload.reads)
        read_len = len(workload.reads[0].sequence)

        yield HostMemcpy(len(workload.reference), "h2d")  # index upload
        for batch_start in range(0, n_reads, BATCH_READS):
            batch = batch_start // BATCH_READS
            batch_reads = min(BATCH_READS, n_reads - batch_start)
            yield HostMemcpy(batch_reads * read_len * 2, "h2d")
            num_ctas = min(
                info.num_ctas,
                max(1, math.ceil(batch_reads / info.cta_threads)),
            )
            launches = [
                KernelLaunch(
                    NvbStageKernel(stage, info.cta_threads),
                    num_ctas=num_ctas,
                    args={
                        "stage": stage,
                        "batch": batch,
                        "reads": batch_reads,
                        "work": work,
                        "index_lines": index_lines,
                        "salt": stage_index,
                    },
                )
                for stage_index, (stage, work) in enumerate(
                    self._stage_plan(batch_reads)
                )
            ]
            if self.cdp:
                yield HostLaunch(
                    KernelLaunch(NvbDriverKernel(launches), num_ctas=1)
                )
            else:
                for launch in launches:
                    yield HostLaunch(launch)
            yield HostMemcpy(batch_reads * 16, "d2h")  # mappings out
