"""Scalar CPU baseline cost model (the Fig 2 comparison)."""

from repro.cpu.timing import CPUModel, cpu_cycles

__all__ = ["CPUModel", "cpu_cycles"]
