"""Scalar CPU cost model — the Fig 2 baseline.

The paper's Fig 2 compares CPU implementations against GPU and GPU+CDP
for SW, NW and STAR on Lonestar 6 and reports relative times (GPU up
to ~20x faster; STAR's CDP version more than 2x faster again).  We
model the CPU as a scalar core executing the same algorithm the GPU
kernels model, with a per-unit cycle cost calibrated against published
CPU/GPU gaps:

- pairwise DP (SW/NW): ``CELL_CYCLES`` cycles per DP cell — an affine
  gap cell is ~12 scalar ops on a superscalar core at IPC ~2.5.
- STAR: ``ROW_CYCLES`` per banded DP row over all pairs, matching the
  work unit the STAR kernel trace models.

Cycle counts are directly comparable to the simulator's device cycles
(same nominal clock).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.workloads import (
    BatchAlignmentWorkload,
    MSAWorkload,
    PairHMMWorkload,
    PairwiseWorkload,
)

#: Scalar cycles per pairwise-DP cell (SW / NW / GASAL2-style kernels).
CELL_CYCLES = 5.0

#: Scalar cycles per banded DP row in the STAR work model.
ROW_CYCLES = 55.0

#: Scalar cycles per Pair-HMM DP cell (three FP states).
HMM_CELL_CYCLES = 18.0


@dataclass(frozen=True)
class CPUModel:
    """CPU baseline with adjustable constants (defaults calibrated)."""

    cell_cycles: float = CELL_CYCLES
    row_cycles: float = ROW_CYCLES
    hmm_cell_cycles: float = HMM_CELL_CYCLES

    def pairwise(self, workload: PairwiseWorkload) -> int:
        """Cycles for a full-matrix pairwise alignment."""
        return int(workload.cells * self.cell_cycles)

    def batch(self, workload: BatchAlignmentWorkload) -> int:
        """Cycles for a GASAL2-style batch, pair after pair."""
        return int(workload.total_cells * self.cell_cycles)

    def center_star(self, workload: MSAWorkload) -> int:
        """Cycles for both STAR phases (all-pairs + align-to-center)."""
        seqs = workload.sequences
        k = len(seqs)
        rows = 0
        for a in range(k):
            for b in range(a + 1, k):
                rows += min(len(seqs[a]), len(seqs[b]))
        for i in range(1, k):
            rows += min(len(seqs[0]), len(seqs[i]))
        return int(rows * self.row_cycles)

    def pairhmm(self, workload: PairHMMWorkload) -> int:
        """Cycles for the full likelihood batch."""
        cells = sum(
            len(read) * len(hap)
            for read in workload.reads
            for hap in workload.haplotypes
        )
        return int(cells * self.hmm_cell_cycles)


def cpu_cycles(abbr: str, workload) -> int:
    """CPU cycles for a benchmark workload (Fig 2 baselines)."""
    model = CPUModel()
    if abbr in ("SW", "NW"):
        return model.pairwise(workload)
    if abbr == "STAR":
        return model.center_star(workload)
    if abbr in ("GG", "GL", "GKSW", "GSG"):
        return model.batch(workload)
    if abbr == "PairHMM":
        return model.pairhmm(workload)
    raise ValueError(f"no CPU baseline model for benchmark {abbr!r}")
