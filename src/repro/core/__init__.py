"""Public API of the Genomics-GPU suite.

Typical use:

>>> from repro.core import run_benchmark, rtx3070_baseline
>>> stats = run_benchmark("NW", cdp=True)
>>> stats.ipc, stats.stall_breakdown()

The suite object wraps the registry for bulk runs:

>>> from repro.core import BenchmarkSuite
>>> suite = BenchmarkSuite()
>>> results = suite.run_all(cdp_variants=True)
"""

from repro.core.runner import (
    estimate_benchmark,
    run_benchmark,
    run_suite,
    variant_name,
)
from repro.core.suite import BenchmarkSuite
from repro.core.sweep import (
    SweepPoint,
    TraceCache,
    default_jobs,
    run_point,
    run_sweep,
    suite_points,
    sweep_point,
    trace_signature,
)
from repro.core.config_presets import (
    CACHE_SWEEP,
    CTA_SCALING,
    MEM_CONTROLLERS,
    NOC_BANDWIDTH_SWEEP,
    NOC_LATENCY_SWEEP,
    SCHEDULERS,
    TOPOLOGIES,
    baseline_config,
    scale_cta_resources,
)
from repro.core.report import (
    format_table,
    format_breakdown,
    format_bar_chart,
    format_estimate,
    format_interval_profile,
    format_kernel_profile,
    format_sample_note,
)
from repro.core.analysis import (
    RooflinePoint,
    machine_peaks,
    roofline_point,
    roofline_report,
)
from repro.sim.config import a100_config, rtx3070_baseline, rtx3090_config

__all__ = [
    "estimate_benchmark",
    "run_benchmark",
    "run_suite",
    "variant_name",
    "BenchmarkSuite",
    "SweepPoint",
    "TraceCache",
    "default_jobs",
    "run_point",
    "run_sweep",
    "suite_points",
    "sweep_point",
    "trace_signature",
    "CACHE_SWEEP",
    "CTA_SCALING",
    "MEM_CONTROLLERS",
    "NOC_BANDWIDTH_SWEEP",
    "NOC_LATENCY_SWEEP",
    "SCHEDULERS",
    "TOPOLOGIES",
    "baseline_config",
    "scale_cta_resources",
    "format_table",
    "format_breakdown",
    "format_bar_chart",
    "format_estimate",
    "format_interval_profile",
    "format_kernel_profile",
    "format_sample_note",
    "RooflinePoint",
    "machine_peaks",
    "roofline_point",
    "roofline_report",
    "rtx3070_baseline",
    "rtx3090_config",
    "a100_config",
]
