"""The benchmark-suite facade."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.runner import run_benchmark, run_suite, variant_name
from repro.data.datasets import DatasetSize
from repro.kernels import BENCHMARKS, benchmark_names, build_application
from repro.sim.config import GPUConfig
from repro.sim.occupancy import OccupancyReport, occupancy_report
from repro.sim.stats import RunStats


@dataclass(frozen=True)
class BenchmarkProperties:
    """Table III row plus the model's occupancy analysis."""

    abbr: str
    full_name: str
    input_description: str
    grid: tuple[int, int, int]
    cta: tuple[int, int, int]
    uses_shared: bool
    uses_constant: bool
    cta_per_core_paper: int
    cta_per_core_model: int
    limiter: str


class BenchmarkSuite:
    """All ten benchmarks behind one object.

    >>> suite = BenchmarkSuite()
    >>> suite.names()
    ['SW', 'NW', ..., 'NvB']
    """

    def __init__(self, config: GPUConfig | None = None,
                 size: DatasetSize = DatasetSize.SMALL):
        self.config = config or GPUConfig()
        self.size = size

    def names(self) -> list[str]:
        """Benchmark abbreviations in Table III order."""
        return benchmark_names()

    def properties(self, abbr: str) -> BenchmarkProperties:
        """Table III properties + occupancy for one benchmark.

        Occupancy is analysed on the *main* (non-CDP) kernel of the
        application.
        """
        info = BENCHMARKS[abbr]
        app = build_application(abbr, size=self.size)
        kernel = getattr(app, "kernel", None)
        if kernel is None:
            # Applications building kernels per launch expose the main
            # kernel through a probe launch of the host program.
            for op in app.host_program():
                if hasattr(op, "launch"):
                    kernel = op.launch.kernel
                    break
        report: OccupancyReport = occupancy_report(self.config, kernel)
        return BenchmarkProperties(
            abbr=info.abbr,
            full_name=info.full_name,
            input_description=info.input_description,
            grid=info.grid,
            cta=info.cta,
            uses_shared=info.uses_shared,
            uses_constant=info.uses_constant,
            cta_per_core_paper=info.cta_per_core_paper,
            cta_per_core_model=report.ctas_per_sm,
            limiter=report.limiter,
        )

    def run(self, abbr: str, cdp: bool = False, **options) -> RunStats:
        """Run one benchmark with the suite's config and size."""
        return run_benchmark(
            abbr, cdp=cdp, size=self.size, config=self.config, **options
        )

    def run_all(
        self,
        benchmarks: list[str] | None = None,
        cdp_variants: bool = True,
        jobs: int | None = None,
    ) -> dict[str, RunStats]:
        """Run every benchmark (and CDP variant); keys are variant names.

        ``jobs`` is forwarded to :func:`repro.core.runner.run_suite`:
        ``0`` reuses traces in-process, ``N`` fans out over worker
        processes, ``None`` keeps the direct serial path.
        """
        return run_suite(
            benchmarks=benchmarks,
            cdp_variants=cdp_variants,
            size=self.size,
            config=self.config,
            jobs=jobs,
        )

    @staticmethod
    def variant_name(abbr: str, cdp: bool) -> str:
        return variant_name(abbr, cdp)
