"""Sweep execution engine: run many simulation points fast.

The figure harnesses re-simulate each benchmark across large config
grids (Figs 11-22 are 20 variants x 3-6 configs each).  Two properties
make those sweeps embarrassingly accelerable:

1. Points are independent — a ``(benchmark, cdp, size, config)`` tuple
   fully determines its :class:`RunStats` — so they fan out across a
   :class:`~concurrent.futures.ProcessPoolExecutor` (``jobs=N``).
2. Instruction traces depend only on the *application*, never on the
   timing config being swept, so each worker materializes a
   benchmark's traces once (:mod:`repro.sim.replay`) and replays them
   at every config point that shares the application.

Both paths return results bit-identical to a fresh serial
:func:`~repro.core.runner.run_benchmark` per point
(``tests/core/test_sweep.py``).

Cache keying
------------
A materialized application is reused across points whose
:func:`app_key` matches: ``(abbr, cdp, size, options, trace_signature(config))``.
``trace_signature`` is the explicit invalidation path: any config knob
that changes *trace shape* (not timing) must be listed there, so two
configs differing in such a knob never share traces.  Today that is
only ``warp_size``; timing knobs (cache geometry, schedulers, DRAM,
NoC, CTA limits, ``perfect_memory``...) deliberately do not invalidate.
The sampled-estimation knobs (``sample_fraction``, ``sample_seed``...)
are timing-side too: an ``--estimate`` sweep replays the very traces
an exact sweep materialized, and :func:`run_point` routes such points
through :mod:`repro.sim.sampled` instead of the cycle-exact replay.
"""

from __future__ import annotations

import hashlib
import json
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace

from repro.data.datasets import DatasetSize
from repro.kernels import build_application
from repro.sim.config import GPUConfig
from repro.sim.gpu import GPUSimulator
from repro.sim.replay import CachedApplication, replay_application
from repro.sim.stats import RunStats
from repro.sim.trace_store import TraceStore


def default_jobs(workers_per_job: int = 1) -> int:
    """The ``--jobs`` default: the CPU-affinity budget per job.

    The budget is the CPUs this process may actually run on
    (``os.sched_getaffinity``, which respects cgroup/taskset limits),
    not the machine-wide ``cpu_count``.  ``workers_per_job`` divides
    the budget when each job itself runs shard workers
    (``GPUConfig.parallel_shards``), so ``jobs × workers`` never
    oversubscribes the cores.  This is the single core-budget source
    for all three consumers of the host's cores: ``sweep --jobs``
    (pool processes), ``run --workers`` (per-run shard workers, now
    real forked processes under ``--backend processes``), and the
    service's worker pool — whose :class:`~repro.service.jobs.JobQueue`
    additionally *weights* each job by its shard count so the three
    never multiply together.
    """
    try:
        cpus = len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux
        cpus = os.cpu_count() or 1
    return max(1, cpus // max(1, workers_per_job))


@dataclass(frozen=True)
class SweepPoint:
    """One independent simulation point of a sweep.

    Everything here crosses the process-pool boundary, so every field
    must pickle cheaply: plain benchmark identity plus a
    :class:`GPUConfig` (a frozen dataclass tree).  ``options`` are the
    extra :func:`repro.kernels.build_application` keyword arguments as
    a sorted ``(name, value)`` tuple — use :func:`sweep_point` instead
    of spelling that by hand.
    """

    label: str
    abbr: str
    cdp: bool = False
    size: DatasetSize = DatasetSize.SMALL
    config: GPUConfig = field(default_factory=GPUConfig)
    options: tuple = ()


def sweep_point(
    label: str,
    abbr: str,
    config: GPUConfig,
    cdp: bool = False,
    size: DatasetSize = DatasetSize.SMALL,
    **options,
) -> SweepPoint:
    """Build a :class:`SweepPoint`, normalizing ``options`` for keying."""
    return SweepPoint(
        label=label,
        abbr=abbr,
        cdp=cdp,
        size=size,
        config=config,
        options=tuple(sorted(options.items())),
    )


def trace_signature(config: GPUConfig) -> tuple:
    """The config knobs that change *trace shape* (not timing).

    This is the cache-invalidation contract: a materialized trace is
    shared between two configs iff their signatures match.  Add any new
    knob here the moment a kernel's ``warp_trace`` starts reading it —
    timing-only knobs must stay out, or sweeps lose all trace reuse.
    """
    return (("warp_size", config.warp_size),)


class SweepMergeError(RuntimeError):
    """The reassembled result list does not cover the input point grid.

    Carries the offending point identities so a failed distributed (or
    pooled) sweep names exactly what was lost instead of silently
    returning a partial grid.
    """

    def __init__(self, missing: list[str], duplicated: list[str] = ()):
        self.missing = list(missing)
        self.duplicated = list(duplicated)
        parts = []
        if self.missing:
            parts.append(f"missing results for {len(self.missing)} "
                         f"point(s): {self.missing}")
        if self.duplicated:
            parts.append(f"duplicate results for: {self.duplicated}")
        super().__init__("; ".join(parts) or "inconsistent sweep merge")


def _wire_value(name: str, value):
    """Validate an application option as wire/key material."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(
        f"sweep option {name}={value!r} is not a JSON scalar; "
        "distributed sweeps and resume keys require plain option values"
    )


def point_key(point: SweepPoint) -> str:
    """A stable content identity for one sweep point.

    Hashes everything that determines the point's ``RunStats`` — the
    benchmark identity plus the *full* serialized config — and nothing
    that doesn't (the display label).  This is the shared identity key
    of the distributed coordinator's chunk journal, ``repro sweep
    --resume`` partial-results files, and the dsweep wire protocol:
    a result computed anywhere can be matched to its point everywhere.
    """
    from repro.sim.configfile import save_config

    material = json.dumps(
        {
            "abbr": point.abbr,
            "cdp": point.cdp,
            "size": point.size.value,
            "options": [
                [name, _wire_value(name, value)]
                for name, value in point.options
            ],
            "config": save_config(point.config),
        },
        sort_keys=True,
    )
    return hashlib.sha256(material.encode()).hexdigest()[:16]


def assert_merge_complete(points: list[SweepPoint], results: list) -> None:
    """Verify ``results`` covers exactly the input point grid.

    ``results`` is the reassembled per-point list (aligned with
    ``points``); a ``None`` entry is a dropped point.  Raises
    :class:`SweepMergeError` naming the missing point identities — the
    merge contract every fan-out path (process pool, distributed
    coordinator) must satisfy before returning.
    """
    if len(results) != len(points):
        raise SweepMergeError(
            missing=[
                f"{p.label} [{point_key(p)}]" for p in points[len(results):]
            ]
            or [f"<{len(results) - len(points)} extra results>"],
        )
    missing = [
        f"{point.label} [{point_key(point)}]"
        for point, stats in zip(points, results)
        if stats is None
    ]
    if missing:
        raise SweepMergeError(missing=missing)


def app_key(point: SweepPoint) -> tuple:
    """The trace-cache key of a point's application."""
    return (
        point.abbr,
        point.cdp,
        point.size,
        point.options,
        trace_signature(point.config),
    )


class TraceCache:
    """Materialized applications, keyed by :func:`app_key`.

    With a :class:`~repro.sim.trace_store.TraceStore` attached, misses
    first consult the on-disk store (cross-process / cross-session
    reuse) and cold builds are published back to it — coordinated so
    concurrent workers build each application exactly once.
    """

    def __init__(self, store: TraceStore | None = None):
        self._entries: dict[tuple, CachedApplication] = {}
        self.store = store
        self.hits = 0
        self.misses = 0
        self.store_hits = 0

    def __len__(self) -> int:
        return len(self._entries)

    def _build(self, point: SweepPoint) -> CachedApplication | None:
        app = build_application(
            point.abbr,
            cdp=point.cdp,
            size=point.size,
            **dict(point.options),
        )
        if not getattr(app, "replayable", True):
            return None
        return CachedApplication(app)

    def get(self, point: SweepPoint) -> CachedApplication | None:
        """The cached application for ``point``, building it on miss.

        Returns ``None`` when the application declares
        ``replayable = False`` (see ``repro.kernels.base``) — such
        points must be simulated fresh.
        """
        key = app_key(point)
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            return entry
        self.misses += 1
        if self.store is None:
            entry = self._build(point)
        else:
            before = self.store.hits
            entry = self.store.get_or_build(
                key, lambda: self._build(point)
            )
            if self.store.hits > before:
                self.store_hits += 1
        if entry is not None:
            self._entries[key] = entry
        return entry

    def invalidate(self, abbr: str | None = None) -> int:
        """Drop entries (all, or one benchmark's); returns the count."""
        if abbr is None:
            dropped = len(self._entries)
            self._entries.clear()
            return dropped
        stale = [key for key in self._entries if key[0] == abbr]
        for key in stale:
            del self._entries[key]
        return len(stale)


def run_point(point: SweepPoint, cache: TraceCache | None = None) -> RunStats:
    """Simulate one sweep point (through ``cache`` when given).

    A point whose config sets ``sample_fraction > 0`` is routed to the
    sampled estimator (:mod:`repro.sim.sampled`) and returns an
    :class:`~repro.sim.sampled.EstimatedRunStats`.  Sample knobs are
    deliberately absent from :func:`trace_signature`, so exact and
    estimated points of the same application share materialized
    traces.  Applications that opt out of trace replay cannot be
    sampled (estimation is built on the replay equivalence classes);
    they fall back to an exact fresh simulation.
    """
    if point.config.sample_fraction > 0.0:
        from repro.sim.sampled import estimate_application

        entry = (cache or TraceCache()).get(point)
        if entry is not None:
            return estimate_application(entry, point.config)
        # Not replayable -> not estimable; run the exact core instead.
        point = replace(point, config=point.config.with_(sample_fraction=0.0))
    if cache is None:
        from repro.core.runner import run_benchmark

        return run_benchmark(
            point.abbr,
            cdp=point.cdp,
            size=point.size,
            config=point.config,
            **dict(point.options),
        )
    entry = cache.get(point)
    if entry is None:  # application opted out of trace replay
        return run_point(point)
    return replay_application(entry, GPUSimulator(point.config))


def _resolve_store(store) -> TraceStore | None:
    """Normalize ``run_sweep``'s ``store`` argument.

    ``"env"`` reads ``REPRO_TRACE_STORE`` (None when unset), a path
    opens a store there, None disables the store, and an existing
    :class:`TraceStore` passes through.
    """
    if store == "env":
        return TraceStore.from_env()
    if store is None or isinstance(store, TraceStore):
        return store
    return TraceStore(store)


# Per-worker caches, one per store root: fork gives each pool worker
# its own copy, and a worker processes whole same-application groups,
# so every point after a group's first replays materialized traces.
# The shared on-disk store (when configured) removes the remaining
# cold-start redundancy *across* workers.
_worker_caches: dict = {}


def _run_group(
    points: tuple[SweepPoint, ...], store_root: str | None = None
) -> list[RunStats]:
    """Pool task: run one same-application group of points, in order."""
    cache = _worker_caches.get(store_root)
    if cache is None:
        store = TraceStore(store_root) if store_root else None
        cache = _worker_caches[store_root] = TraceCache(store=store)
    return [run_point(point, cache) for point in points]


def _group_by_app(points: list[SweepPoint]) -> list[list[int]]:
    """Indices of ``points`` grouped by application key, order kept."""
    groups: dict[tuple, list[int]] = {}
    for index, point in enumerate(points):
        groups.setdefault(app_key(point), []).append(index)
    return list(groups.values())


def run_sweep(
    points: list[SweepPoint],
    jobs: int | None = 0,
    cache: TraceCache | None = None,
    telemetry_interval: int | None = None,
    store="env",
    resume=None,
) -> dict[str, RunStats]:
    """Run every point; returns ``{point.label: RunStats}`` in input order.

    ``jobs=0`` runs in-process (sharing ``cache``, or a private one);
    ``jobs=N`` fans same-application groups out over ``N`` worker
    processes; ``jobs=None`` uses one worker per CPU.  Results are
    bit-identical across all three paths.  If a process pool cannot be
    created (restricted environments), the sweep falls back to the
    in-process path rather than failing.

    ``store`` selects the persistent trace store (see
    :func:`_resolve_store`): the default ``"env"`` honours the
    ``REPRO_TRACE_STORE`` environment variable.  When a ``cache`` is
    passed for the in-process path, its own store setting wins.

    ``telemetry_interval`` opts every point into time-resolved sampling
    (overriding each point's config): the resulting
    ``RunStats.telemetry`` summaries are plain dicts, so they survive
    the process-pool pickle boundary unchanged.  Sampling never alters
    a point's trace-cache key — the interval is not part of
    :func:`trace_signature` — so sweeps keep full trace reuse.

    ``resume`` is a ``{point_key: RunStats}`` mapping of already-known
    results (a partial results file, a dsweep journal replay): matching
    points are filled from it without simulating, the rest run normally
    (``repro.dist.journal`` loads the file format).  Keys are matched on
    each point's *final* config — after the ``telemetry_interval``
    override — so a resumed result always carries the payload the live
    run would have produced.
    """
    if telemetry_interval is not None:
        points = [
            replace(
                point,
                config=point.config.with_(
                    telemetry_interval=telemetry_interval
                ),
            )
            for point in points
        ]
    labels = [point.label for point in points]
    if len(set(labels)) != len(labels):
        raise ValueError("sweep point labels must be unique")
    if resume:
        hits = {}
        for index, point in enumerate(points):
            known = resume.get(point_key(point))
            if known is not None:
                hits[index] = known
        if hits:
            todo = [
                point for index, point in enumerate(points)
                if index not in hits
            ]
            fresh = run_sweep(todo, jobs=jobs, cache=cache, store=store)
            return {
                point.label: (
                    hits[index] if index in hits else fresh[point.label]
                )
                for index, point in enumerate(points)
            }
    if jobs is None:
        workers = max(
            (point.config.parallel_shards for point in points), default=1
        )
        jobs = default_jobs(workers_per_job=workers)
    if jobs < 0:
        raise ValueError("jobs must be >= 0")

    resolved = _resolve_store(store)
    if jobs == 0:
        local = cache if cache is not None else TraceCache(store=resolved)
        return {
            point.label: run_point(point, local) for point in points
        }

    store_root = str(resolved.root) if resolved is not None else None
    groups = _group_by_app(points)
    results: list[RunStats | None] = [None] * len(points)
    try:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = [
                (indices, pool.submit(
                    _run_group,
                    tuple(points[i] for i in indices),
                    store_root,
                ))
                for indices in groups
            ]
            for indices, future in futures:
                group = future.result()
                if len(group) != len(indices):  # pragma: no cover - guard
                    raise SweepMergeError(
                        missing=[
                            f"{points[i].label} [{point_key(points[i])}]"
                            for i in indices[len(group):]
                        ]
                    )
                for i, stats in zip(indices, group):
                    results[i] = stats
    except (OSError, PermissionError):
        # No process pool available (sandboxed /dev/shm, fork limits):
        # degrade to the in-process cached path, same results.
        return run_sweep(points, jobs=0, cache=cache, store=resolved)
    # Merge integrity: the reassembled list must cover exactly the
    # input grid — a worker failure must fail loudly with the lost
    # point identities, never return a silently partial grid.
    assert_merge_complete(points, results)
    return {
        point.label: stats
        for point, stats in zip(points, results)
    }


def suite_points(
    benchmarks: list[str] | None = None,
    cdp_variants: bool = True,
    size: DatasetSize = DatasetSize.SMALL,
    config: GPUConfig | None = None,
) -> list[SweepPoint]:
    """The whole-suite point list (labels match ``run_suite`` keys)."""
    from repro.core.runner import variant_name
    from repro.kernels import benchmark_names

    config = config or GPUConfig()
    points = []
    for abbr in benchmarks or benchmark_names():
        for cdp in (False, True) if cdp_variants else (False,):
            points.append(
                sweep_point(variant_name(abbr, cdp), abbr, config,
                            cdp=cdp, size=size)
            )
    return points
