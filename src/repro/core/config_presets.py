"""Configuration presets: the Table I / Table II sweep space.

Bolded Table I values are the baseline (returned by
:func:`baseline_config`); the sweep lists here drive the Fig 11-22
harnesses in ``benchmarks/``.
"""

from __future__ import annotations

from dataclasses import replace

from repro.sim.config import GPUConfig


def baseline_config(**overrides) -> GPUConfig:
    """The RTX 3070 baseline (bolded Table I column).

    ``overrides`` replace top-level :class:`GPUConfig` fields, e.g.
    ``baseline_config(num_sms=16)`` for faster test runs.
    """
    return GPUConfig(**overrides)


#: Table I register-file sweep (registers per core).
REGISTER_SWEEP = [16384, 32768, 65536, 131072, 262144]

#: Table I CTAs-per-core sweep.
CTA_SWEEP = [8, 16, 32, 64, 128]

#: Table I threads-per-core sweep.
THREAD_SWEEP = [384, 768, 1536, 3072, 6144]

#: Table I shared-memory sweep (KB per core).
SHARED_MEM_SWEEP_KB = [32, 64, 100, 256, 512]

#: Fig 11 CTA scaling factors (25% .. 200% of baseline).
CTA_SCALING = [0.25, 0.5, 1.0, 1.5, 2.0]

#: Fig 12/13/14 cache sweep: (L1 bytes, L2 bytes) pairs from Sec IV-G.
CACHE_SWEEP = [
    (0, 128 * 1024),
    (32 * 1024, 512 * 1024),
    (128 * 1024, 4 * 1024 * 1024),  # baseline
    (256 * 1024, 8 * 1024 * 1024),
    (512 * 1024, 16 * 1024 * 1024),
    (4 * 1024 * 1024, 128 * 1024 * 1024),
]

#: Fig 16 memory-controller policies.
MEM_CONTROLLERS = ["frfcfs", "fifo", "ooo128"]

#: Fig 19 warp schedulers.
SCHEDULERS = ["lrr", "gto", "old", "2lv"]

#: Fig 20 interconnect topologies (baseline first).
TOPOLOGIES = ["xbar", "mesh", "fattree", "butterfly"]

#: Fig 21 added router latencies (cycles), on a mesh.
NOC_LATENCY_SWEEP = [0, 4, 8, 16]

#: Fig 22 channel widths (bytes), on a mesh; 40B is the baseline.
NOC_BANDWIDTH_SWEEP = [8, 16, 32, 40]


def with_cache_sizes(config: GPUConfig, l1_bytes: int, l2_bytes: int) -> GPUConfig:
    """A config with resized L1/L2 (associativity and lines preserved)."""
    l1 = replace(config.l1, size_bytes=l1_bytes)
    l2 = replace(config.l2, size_bytes=l2_bytes)
    return config.with_(l1=l1, l2=l2)


def with_controller(config: GPUConfig, controller: str) -> GPUConfig:
    """A config using the given DRAM scheduling policy."""
    return config.with_(dram=replace(config.dram, controller=controller))


def with_topology(
    config: GPUConfig,
    topology: str,
    router_delay: int | None = None,
    channel_bytes: int | None = None,
) -> GPUConfig:
    """A config with interconnect changes (Figs 20-22)."""
    noc = config.noc
    changes: dict = {"topology": topology}
    if router_delay is not None:
        changes["router_delay"] = router_delay
    if channel_bytes is not None:
        changes["channel_bytes"] = channel_bytes
    return config.with_(noc=replace(noc, **changes))


def scale_cta_resources(config: GPUConfig, factor: float) -> GPUConfig:
    """Fig 11: scale CTAs/core together with its linked resources.

    The paper notes that changing CTAs per core requires scaling
    shared memory, threads, and registers accordingly.
    """
    if factor <= 0:
        raise ValueError("factor must be positive")
    return config.with_(
        max_ctas_per_sm=max(1, int(config.max_ctas_per_sm * factor)),
        max_threads_per_sm=max(32, int(config.max_threads_per_sm * factor)),
        registers_per_sm=max(1024, int(config.registers_per_sm * factor)),
        shared_mem_per_sm=max(4096, int(config.shared_mem_per_sm * factor)),
    )
