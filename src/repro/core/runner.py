"""Run benchmarks on the simulator and collect statistics."""

from __future__ import annotations

from repro.data.datasets import DatasetSize
from repro.kernels import benchmark_names, build_application
from repro.sim.config import GPUConfig
from repro.sim.gpu import GPUSimulator
from repro.sim.stats import RunStats


def variant_name(abbr: str, cdp: bool) -> str:
    """Display name: ``NW`` or ``NW-CDP``."""
    return f"{abbr}-CDP" if cdp else abbr


def run_benchmark(
    abbr: str,
    cdp: bool = False,
    size: DatasetSize = DatasetSize.SMALL,
    config: GPUConfig | None = None,
    workload=None,
    **options,
) -> RunStats:
    """Run one benchmark to completion and return its statistics.

    A fresh simulator is built per call, so results are independent
    and deterministic for fixed inputs.
    """
    app = build_application(abbr, cdp=cdp, size=size, workload=workload, **options)
    simulator = GPUSimulator(config or GPUConfig())
    return simulator.run_application(app)


def estimate_benchmark(
    abbr: str,
    cdp: bool = False,
    size: DatasetSize = DatasetSize.SMALL,
    config: GPUConfig | None = None,
    workload=None,
    **options,
):
    """Estimate one benchmark's statistics from a warp sample.

    Returns an :class:`~repro.sim.sampled.EstimatedRunStats`: the same
    fields as :func:`run_benchmark`'s exact :class:`RunStats`, plus
    per-metric confidence intervals (``stats.interval("cycles")``) and
    the sampling metadata (``stats.sample``).  When ``config`` leaves
    ``sample_fraction`` at ``0.0`` (the exact-mode default) a 10%
    sample is used; pass an explicit fraction to override.
    """
    from repro.sim.replay import CachedApplication
    from repro.sim.sampled import estimate_application

    config = config or GPUConfig()
    if config.sample_fraction == 0.0:
        config = config.with_(sample_fraction=0.1)
    app = build_application(abbr, cdp=cdp, size=size, workload=workload,
                            **options)
    return estimate_application(CachedApplication(app), config)


def run_suite(
    benchmarks: list[str] | None = None,
    cdp_variants: bool = True,
    size: DatasetSize = DatasetSize.SMALL,
    config: GPUConfig | None = None,
    jobs: int | None = None,
) -> dict[str, RunStats]:
    """Run the whole suite; keys are variant names (``NW``, ``NW-CDP``...).

    ``jobs`` routes the runs through the sweep engine: ``0`` in-process
    with trace reuse, ``N`` across N worker processes (see
    :func:`repro.core.sweep.run_sweep`).  ``None`` (the default) keeps
    the direct serial path; all three produce identical results.
    """
    if jobs is not None:
        from repro.core.sweep import run_sweep, suite_points

        return run_sweep(
            suite_points(benchmarks, cdp_variants, size, config),
            jobs=jobs,
        )
    results: dict[str, RunStats] = {}
    for abbr in benchmarks or benchmark_names():
        results[variant_name(abbr, False)] = run_benchmark(
            abbr, cdp=False, size=size, config=config
        )
        if cdp_variants:
            results[variant_name(abbr, True)] = run_benchmark(
                abbr, cdp=True, size=size, config=config
            )
    return results
