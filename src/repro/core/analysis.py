"""Roofline-style performance analysis of benchmark runs.

Classifies each benchmark as compute- or bandwidth-bound from its run
statistics, following the classic roofline methodology:

- *operational intensity* = issued instructions per DRAM byte moved;
- the machine's *ridge point* = peak issue rate / peak DRAM bandwidth;
- below the ridge the kernel is bandwidth-bound, above it
  compute-bound, and the attainable-throughput bound follows the
  roofline formula ``min(peak_compute, intensity * peak_bw)``.

This is the style of analysis the paper's characterization supports —
e.g. its observation that GKSW and NvB are "more memory intensive"
(Fig 18) drops out of the intensity column directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.config import GPUConfig
from repro.sim.stats import RunStats

#: 128-byte lines per DRAM transaction.
LINE_BYTES = 128


@dataclass(frozen=True)
class RooflinePoint:
    """One benchmark's position under the roofline."""

    benchmark: str
    instructions: int
    dram_bytes: int
    intensity: float  # instructions per DRAM byte
    achieved_ipc: float
    bound: str  # "compute" | "bandwidth"
    attainable_ipc: float
    efficiency: float  # achieved / attainable

    def as_row(self) -> dict:
        return {
            "benchmark": self.benchmark,
            "intensity": round(self.intensity, 3),
            "ipc": round(self.achieved_ipc, 3),
            "attainable": round(self.attainable_ipc, 3),
            "bound": self.bound,
            "efficiency": round(self.efficiency, 3),
        }


def machine_peaks(config: GPUConfig) -> tuple[float, float]:
    """(peak IPC, peak DRAM bytes/cycle) of a configuration."""
    peak_ipc = float(config.num_sms)  # one issue slot per SM per cycle
    bytes_per_cycle = (
        config.num_mem_partitions
        * LINE_BYTES
        / config.dram.burst_cycles
    )
    return peak_ipc, bytes_per_cycle


def roofline_point(
    name: str, stats: RunStats, config: GPUConfig
) -> RooflinePoint:
    """Place one run under the configuration's roofline."""
    peak_ipc, peak_bw = machine_peaks(config)
    dram_bytes = stats.dram.requests * LINE_BYTES
    if dram_bytes == 0:
        intensity = float("inf")
    else:
        intensity = stats.instructions / dram_bytes
    attainable = (
        peak_ipc
        if intensity == float("inf")
        else min(peak_ipc, intensity * peak_bw)
    )
    ridge = peak_ipc / peak_bw
    bound = "compute" if intensity >= ridge else "bandwidth"
    achieved = stats.ipc
    return RooflinePoint(
        benchmark=name,
        instructions=stats.instructions,
        dram_bytes=dram_bytes,
        intensity=intensity,
        achieved_ipc=achieved,
        bound=bound,
        attainable_ipc=attainable,
        efficiency=achieved / attainable if attainable else 0.0,
    )


def roofline_report(
    results: dict[str, RunStats], config: GPUConfig
) -> list[dict]:
    """Roofline rows for a dict of named runs (most intense first)."""
    points = [
        roofline_point(name, stats, config)
        for name, stats in results.items()
    ]
    points.sort(key=lambda p: p.intensity)
    return [p.as_row() for p in points]
