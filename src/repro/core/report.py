"""Plain-text table/series formatting for harness output.

The benchmark harnesses print the same rows/series the paper's tables
and figures report; these helpers keep that output aligned and
diff-friendly.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]], columns: Sequence[str] | None = None
) -> str:
    """Render dict rows as an aligned text table.

    ``columns`` fixes the column order; by default the first row's key
    order is used.
    """
    if not rows:
        return "(empty table)"
    columns = list(columns or rows[0].keys())
    cells = [[_fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(row[i]) for row in cells))
        for i, col in enumerate(columns)
    ]
    lines = [
        "  ".join(col.ljust(w) for col, w in zip(columns, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in cells:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_kernel_profile(stats) -> str:
    """nvprof-style per-kernel summary from a run's kernel timeline.

    One row per kernel name: invocation count, total/average/min/max
    duration in cycles, and whether launches came from the host or the
    device (CDP) — the view the paper collects with nvprof/Nsight.
    """
    timeline = getattr(stats, "kernel_timeline", None)
    if not timeline:
        return "(no kernels executed)"
    groups: dict[str, list[dict]] = {}
    for record in timeline:
        groups.setdefault(record["kernel"], []).append(record)
    rows = []
    for name, records in sorted(
        groups.items(),
        key=lambda kv: -sum(r["end"] - r["start"] for r in kv[1]),
    ):
        durations = [r["end"] - r["start"] for r in records]
        origins = {r["origin"] for r in records}
        rows.append({
            "kernel": name,
            "calls": len(records),
            "total_cycles": sum(durations),
            "avg": round(sum(durations) / len(durations), 1),
            "min": min(durations),
            "max": max(durations),
            "launch": "/".join(sorted(origins)),
        })
    return format_table(rows)


def format_interval_profile(stats, max_rows: int | None = None) -> str:
    """Per-interval time-series table from a sampled run.

    ``stats`` is a :class:`~repro.sim.stats.RunStats` with a telemetry
    summary attached (``GPUConfig(telemetry_interval=N)``), or the
    summary dict itself.  One row per sampled interval: the cycle
    window, IPC, the dominant stall reason and its share of the
    interval's stall cycles, cache miss rates, DRAM data-pin bandwidth,
    and NoC channel utilization — the time-resolved view behind the
    paper's aggregate characterization figures.
    """
    summary = stats if isinstance(stats, dict) else getattr(
        stats, "telemetry", None
    )
    if not summary or not summary.get("rows"):
        return "(no telemetry; run with GPUConfig(telemetry_interval=N))"
    rows = summary["rows"]
    clipped = max_rows is not None and len(rows) > max_rows
    if clipped:
        rows = rows[:max_rows]
    out = []
    for row in rows:
        fractions = row["stall_fractions"]
        if fractions:
            top = max(fractions, key=fractions.get)
            stall = f"{top} {100 * fractions[top]:.0f}%"
        else:
            stall = "-"
        out.append({
            "cycles": f"{row['start']}-{row['end']}",
            "ipc": round(row["ipc"], 3),
            "top_stall": stall,
            "l1_miss": round(row["l1_miss_rate"], 3),
            "l2_miss": round(row["l2_miss_rate"], 3),
            "dram_bw": round(row["dram_bandwidth"], 3),
            "noc_util": round(row["noc_utilization"], 3),
        })
    text = format_table(out)
    if clipped:
        text += f"\n... ({len(summary['rows']) - max_rows} more intervals)"
    return text


#: Default metric rows of :func:`format_estimate`, in display order.
ESTIMATE_METRICS = (
    "cycles",
    "device_time",
    "ipc",
    "l1_miss_rate",
    "l2_miss_rate",
    "dram_requests",
    "noc_bytes",
)


def format_estimate(stats, metrics: Sequence[str] | None = None) -> str:
    """Estimate-with-error-bounds table for a sampled run.

    ``stats`` is an :class:`~repro.sim.sampled.EstimatedRunStats`; one
    row per metric shows the point estimate, its 95% confidence
    interval, and the half-width as a percentage of the estimate.
    Metrics without a declared interval are skipped.
    """
    intervals = getattr(stats, "intervals", None)
    if not intervals:
        return "(exact run; no confidence intervals)"
    values = {
        "cycles": stats.cycles,
        "kernel_cycles": stats.kernel_cycles,
        "device_time": stats.device_time(),
        "ipc": stats.ipc,
        "l1_miss_rate": stats.l1.miss_rate,
        "l2_miss_rate": stats.l2.miss_rate,
        "dram_requests": stats.dram.requests,
        "dram_data_cycles": stats.dram.data_cycles,
        "noc_bytes": stats.noc.bytes,
        "noc_messages": stats.noc.messages,
    }
    rows = []
    for metric in metrics or ESTIMATE_METRICS:
        bounds = intervals.get(metric)
        if bounds is None:
            continue
        lo, hi = bounds
        value = values.get(metric)
        if value is None:
            value = (lo + hi) / 2
        half_pct = 100.0 * (hi - lo) / 2 / value if value else 0.0
        rows.append({
            "metric": metric,
            "estimate": round(float(value), 3),
            "ci_lo": round(float(lo), 3),
            "ci_hi": round(float(hi), 3),
            "+/-%": round(half_pct, 1),
        })
    return format_table(rows)


def format_sample_note(stats) -> str:
    """One-line provenance summary of a sampled estimate."""
    sample = getattr(stats, "sample", None)
    if not sample:
        return "(exact run)"
    if sample.get("exact_fallback"):
        return (
            "sample covered the whole run (fraction "
            f"{sample.get('requested_fraction', 0.0):g}); "
            "degenerated to a bit-exact replay"
        )
    return (
        f"sampled {sample.get('sampled_ctas', 0)}/{sample.get('total_ctas', 0)}"
        f" CTAs across {sample.get('launches_kept', 0)}/"
        f"{sample.get('launches', 0)} launches "
        f"(work fraction {sample.get('achieved_work_fraction', 0.0):.3f}, "
        f"seed {sample.get('seed', 0)})"
    )


def format_bar_chart(
    rows: Sequence[Mapping[str, object]],
    label: str,
    values: Sequence[str],
    width: int = 40,
    normalize: bool = False,
) -> str:
    """Render rows as horizontal grouped bars (the paper's figure style).

    One group per row (labelled by ``rows[i][label]``), one bar per
    column in ``values``.  Bars share a common scale; ``normalize``
    rescales each value by the chart maximum regardless of sign.
    """
    if not rows:
        return "(empty chart)"
    numeric = [
        [float(row.get(col, 0.0) or 0.0) for col in values] for row in rows
    ]
    peak = max((abs(v) for group in numeric for v in group), default=0.0)
    if peak == 0.0:
        peak = 1.0
    col_w = max(len(col) for col in values)
    lines = []
    for row, group in zip(rows, numeric):
        lines.append(str(row.get(label, "")))
        for col, value in zip(values, group):
            frac = abs(value) / peak
            bar = "#" * max(1 if value else 0, int(round(frac * width)))
            shown = f"{value:.3f}" if normalize else f"{value:g}"
            lines.append(f"  {col.ljust(col_w)} |{bar.ljust(width)}| {shown}")
    return "\n".join(lines)


def format_breakdown(breakdown: Mapping[str, float], width: int = 40) -> str:
    """Render a fraction dict as labelled percentage bars."""
    if not breakdown:
        return "(no data)"
    label_w = max(len(k) for k in breakdown)
    lines = []
    for key, frac in sorted(breakdown.items(), key=lambda kv: -kv[1]):
        bar = "#" * int(round(frac * width))
        lines.append(f"{key.ljust(label_w)}  {100 * frac:6.2f}%  {bar}")
    return "\n".join(lines)
