"""Interconnect topologies and their routing hop counts.

Four topologies from Table II.  Routing follows the paper's choices:
dimension-order for the mesh, destination-tag for the butterfly,
nearest-common-ancestor for the fat tree; the local crossbar is a
single-stage switch.  The timing model only needs the per-message hop
count, which each topology derives from its routing algorithm.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class Topology:
    """Hop-count oracle for a fixed node population.

    Nodes ``0 .. num_sms-1`` are SMs; nodes ``num_sms ..`` are memory
    partitions.
    """

    name: str
    num_sms: int
    num_partitions: int

    @property
    def total_nodes(self) -> int:
        return self.num_sms + self.num_partitions

    def hops(self, src: int, dst: int) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def bisection_links(self) -> int | None:
        """Number of shared bisection channels, or ``None`` if the
        fabric is non-blocking (crossbar, fat tree)."""
        return None

    def average_hops(self) -> float:
        """Mean SM->partition hop count (diagnostic / tests)."""
        total = 0
        count = 0
        for sm in range(self.num_sms):
            for part in range(self.num_partitions):
                total += self.hops(sm, self.num_sms + part)
                count += 1
        return total / count


class CrossbarTopology(Topology):
    """Single-stage local crossbar: every pair is one hop (the baseline)."""

    def hops(self, src: int, dst: int) -> int:
        return 1


class MeshTopology(Topology):
    """2D mesh with dimension-order (X then Y) routing.

    Nodes are laid row-major on the smallest square grid that fits;
    partitions are interleaved through the population the way
    GPGPU-Sim places memory nodes.
    """

    def _side(self) -> int:
        return math.ceil(math.sqrt(self.total_nodes))

    def _coords(self, node: int) -> tuple[int, int]:
        side = self._side()
        return node % side, node // side

    def hops(self, src: int, dst: int) -> int:
        sx, sy = self._coords(src)
        dx, dy = self._coords(dst)
        # Dimension-order: |X distance| + |Y distance| links, plus the
        # ejection router.
        return abs(sx - dx) + abs(sy - dy) + 1

    def bisection_links(self) -> int:
        # A square mesh's bisection is one row of vertical links.
        return self._side()


class FatTreeTopology(Topology):
    """k-ary fat tree with nearest-common-ancestor routing (k = 4)."""

    ARITY = 4

    def _levels(self) -> int:
        return max(1, math.ceil(math.log(self.total_nodes, self.ARITY)))

    def hops(self, src: int, dst: int) -> int:
        if src == dst:
            return 1
        # Climb until the two leaves share a subtree, then descend.
        up = 0
        a, b = src, dst
        for level in range(1, self._levels() + 1):
            a //= self.ARITY
            b //= self.ARITY
            up = level
            if a == b:
                break
        return 2 * up


class ButterflyTopology(Topology):
    """log2(N)-stage butterfly with destination-tag routing.

    Every packet crosses all stages, so the hop count is uniform.
    """

    def hops(self, src: int, dst: int) -> int:
        return max(1, math.ceil(math.log2(self.total_nodes)))

    def bisection_links(self) -> int:
        # Unidirectional butterfly: half the nodes' worth of channels
        # cross the middle stage.
        return max(1, self.total_nodes // 2)


_TOPOLOGIES = {
    "xbar": CrossbarTopology,
    "mesh": MeshTopology,
    "fattree": FatTreeTopology,
    "butterfly": ButterflyTopology,
}


def build_topology(name: str, num_sms: int, num_partitions: int) -> Topology:
    """Construct a topology by Table II name."""
    try:
        cls = _TOPOLOGIES[name]
    except KeyError:
        raise ValueError(
            f"unknown topology {name!r}; known: {sorted(_TOPOLOGIES)}"
        ) from None
    return cls(name, num_sms, num_partitions)
