"""On-chip network between SMs and memory partitions (the Booksim role)."""

from repro.sim.interconnect.topology import Topology, build_topology
from repro.sim.interconnect.network import Network, NetworkStats

__all__ = ["Topology", "build_topology", "Network", "NetworkStats"]
