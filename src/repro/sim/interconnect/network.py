"""Interconnect timing: serialization, per-hop delay, port contention.

A message from node A to node B:

1. waits for A's injection port and B's ejection port (each message
   occupies both for its serialization time — the crossbar/port model
   of contention);
2. serializes over the channel: ``ceil(bytes / channel_bytes)`` cycles;
3. pays ``hops * router_delay`` pipeline cycles plus a fixed base
   latency.

This reproduces the three NoC sensitivities the paper sweeps: topology
changes the hop count (Fig 20), ``router_delay`` scales per-hop latency
(Fig 21), and ``channel_bytes`` scales serialization (Fig 22).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.sim.config import NoCConfig
from repro.sim.interconnect.topology import Topology, build_topology

#: Control header bytes on every message (request or response).
HEADER_BYTES = 8


@dataclass
class NetworkStats:
    """Aggregate NoC counters."""

    messages: int = 0
    bytes: int = 0
    latency_cycles: int = 0
    contention_cycles: int = 0

    @property
    def average_latency(self) -> float:
        if self.messages == 0:
            return 0.0
        return self.latency_cycles / self.messages

    def merge(self, other: "NetworkStats") -> None:
        self.messages += other.messages
        self.bytes += other.bytes
        self.latency_cycles += other.latency_cycles
        self.contention_cycles += other.contention_cycles


class Network:
    """The SM <-> memory-partition interconnect."""

    def __init__(self, config: NoCConfig, num_sms: int, num_partitions: int):
        self.config = config
        self.num_sms = num_sms
        self.topology: Topology = build_topology(
            config.topology, num_sms, num_partitions
        )
        self.stats = NetworkStats()
        #: time-resolved sampler (set by the owning MemorySubsystem;
        #: None when telemetry is off)
        self.telemetry = None
        self._inject_busy = [0] * self.topology.total_nodes
        self._eject_busy = [0] * self.topology.total_nodes

    def _transfer(self, src: int, dst: int, payload_bytes: int, now: int) -> int:
        config = self.config
        bytes_total = payload_bytes + HEADER_BYTES
        ser = max(1, math.ceil(bytes_total / config.channel_bytes))
        start = max(now, self._inject_busy[src], self._eject_busy[dst])
        self._inject_busy[src] = start + ser
        self._eject_busy[dst] = start + ser
        hops = self.topology.hops(src, dst)
        # Store-and-forward switching: every hop re-serializes the
        # packet, and added router-pipeline delay is paid per flit per
        # hop (flits cannot overlap the stalled pipeline with only two
        # virtual channels).  Both the per-router delay (Fig 21) and
        # the channel width (Fig 22) therefore multiply with the
        # topology's hop count (Fig 20).
        arrival = (
            start
            + hops * ser * (1 + config.router_delay)
            + config.base_latency
        )

        self.stats.messages += 1
        self.stats.bytes += bytes_total
        self.stats.latency_cycles += arrival - now
        self.stats.contention_cycles += start - now
        if self.telemetry is not None:
            # Channel occupancy, attributed to the serialization window.
            self.telemetry.noc(start, ser, bytes_total)
        return arrival

    def min_request_latency(self) -> int:
        """Lower bound on ``request`` arrival minus issue time.

        Serialization is at least one cycle per hop and port waits only
        push arrivals later, so the closest SM/partition pair bounds
        every request leg from below.  The parallel core's window
        auto-tune (:mod:`repro.sim.parallel`) uses this as part of the
        minimum cross-SM interaction latency.
        """
        config = self.config
        num_partitions = self.topology.total_nodes - self.num_sms
        hops = min(
            self.topology.hops(sm, self.num_sms + p)
            for sm in range(self.num_sms)
            for p in range(num_partitions)
        )
        return hops * (1 + config.router_delay) + config.base_latency

    def request(self, sm: int, partition: int, now: int, store_bytes: int = 0) -> int:
        """Send a memory request; returns arrival time at the partition.

        ``store_bytes`` carries write data (reads send only a header).
        """
        return self._transfer(sm, self.num_sms + partition, store_bytes, now)

    def response(self, partition: int, sm: int, now: int, data_bytes: int = 128) -> int:
        """Send a reply; returns arrival time at the SM."""
        return self._transfer(self.num_sms + partition, sm, data_bytes, now)
