"""Persistent binary trace store: materialize once, reuse everywhere.

Trace materialization (:mod:`repro.sim.replay`) already amortizes
generator cost *within* a process; this module extends the reuse
across processes and sessions.  A materialized application — every
warp's instruction list plus the pre-counted
:class:`~repro.sim.replay.TraceCounts` totals — is serialized to a
compact binary file keyed by the same identity the in-memory cache
uses (:func:`repro.core.sweep.app_key`, which embeds
``trace_signature``) plus a fingerprint of the trace-producing source
trees.  Loading a stored application skips generator execution
entirely and replays bit-identically (the golden suite in
``tests/sim/test_trace_golden.py`` locks this in).

Key policy
----------
A store entry is addressed by ``sha256(repr(key) + source
fingerprint)``.  The caller's ``key`` carries the application identity
(benchmark, CDP, dataset size, options) and the config trace
signature; the fingerprint hashes every ``.py`` file under
``repro/kernels``, ``repro/isa``, ``repro/data`` and
``repro/genomics`` — the four trees that can change trace *content*
without changing the key.  Editing any of them silently retires every
old entry (the old files are just never addressed again).

Corruption contract
-------------------
``load`` never raises for a bad file: wrong magic, wrong version,
foreign byte order, truncation, or a CRC mismatch all unlink the file
(best effort) and return ``None``, so callers fall back to live
generation and overwrite the entry.

Concurrency
-----------
:meth:`TraceStore.get_or_build` serializes cold builds of one entry
across processes with an ``O_CREAT | O_EXCL`` lockfile: exactly one
process generates while the others poll for the finished file (stale
locks from killed writers are broken after a timeout).  Finished
entries are published by atomic rename, so readers never observe a
partial file.  Every materialization appends one line to
``builds.log``, which is how the fan-out tests assert the
exactly-once property.
"""

from __future__ import annotations

import hashlib
import os
import struct
import sys
import time
import zlib
from array import array
from pathlib import Path

from repro.isa.instructions import (
    MemAccess,
    MemSpace,
    OpClass,
    WarpInstruction,
    popcount,
)
from repro.sim.kernel import KernelProgram, WarpContext
from repro.sim.launch import Application, HostLaunch, HostMemcpy, KernelLaunch
from repro.sim.replay import CachedApplication, TraceCounts

MAGIC = b"RTRX"
VERSION = 1

#: Archive format of :meth:`TraceStore.pack` / :meth:`TraceStore.unpack`.
PACK_MAGIC = b"RPAK"
PACK_VERSION = 1

#: Seconds after which another process's lockfile is presumed dead.
#: Per-store override: ``TraceStore(root, stale_lock_s=...)`` or the
#: ``REPRO_TRACE_LOCK_TIMEOUT`` environment variable.  A writer that
#: dies holding the O_EXCL lock (kill -9 mid-build) leaves waiters
#: polling until this age elapses, so short-lived jobs want a bound
#: matched to their build times rather than the conservative default
#: (``tests/sim/test_trace_store.py`` locks the takeover behavior).
STALE_LOCK_S = 60.0


def _default_stale_lock_s() -> float:
    raw = os.environ.get("REPRO_TRACE_LOCK_TIMEOUT", "")
    try:
        value = float(raw)
    except ValueError:
        return STALE_LOCK_S
    return value if value > 0 else STALE_LOCK_S

#: Poll interval while waiting for a concurrent writer.
_POLL_S = 0.02

_OPS = list(OpClass)
_SPACES = list(MemSpace)
_NO_SPACE = 255


# -- stored application -----------------------------------------------------


class StoredKernel(KernelProgram):
    """A kernel shell replaying decoded per-warp instruction lists.

    One instance per stored *launch*: traces are indexed by the warp's
    flat grid position, so the launch geometry is baked in.  Like
    :class:`~repro.sim.replay.ReplayKernel` it clears ``counts_inline``
    — the totals were stored alongside the traces.
    """

    counts_inline = False

    def __init__(
        self,
        name: str,
        cta_threads: int,
        regs_per_thread: int,
        smem_per_cta: int,
        const_bytes: int,
    ):
        super().__init__(
            name,
            cta_threads,
            regs_per_thread=regs_per_thread,
            smem_per_cta=smem_per_cta,
            const_bytes=const_bytes,
        )
        self.traces: list[list[WarpInstruction]] = []

    def warp_trace(self, ctx: WarpContext):
        return self.traces[ctx.cta_id * self.warps_per_cta + ctx.warp_id]


class StoredApplication(Application):
    """A decoded store entry; replayable like a cached application."""

    def __init__(
        self,
        name: str,
        may_device_launch: bool,
        ops: list,
        total_counts: TraceCounts,
    ):
        self.name = name
        self.may_device_launch = may_device_launch
        self.ops = ops
        self.total_counts = total_counts

    def host_program(self):
        yield from self.ops

    def describe(self) -> str:
        return f"stored:{self.name}"


# -- binary encoding --------------------------------------------------------


class _Writer:
    def __init__(self):
        self.parts: list[bytes] = []

    def u8(self, v: int) -> None:
        self.parts.append(struct.pack("<B", v))

    def u32(self, v: int) -> None:
        self.parts.append(struct.pack("<I", v))

    def i64(self, v: int) -> None:
        self.parts.append(struct.pack("<q", v))

    def u64(self, v: int) -> None:
        self.parts.append(struct.pack("<Q", v))

    def text(self, s: str) -> None:
        raw = s.encode("utf-8")
        self.u32(len(raw))
        self.parts.append(raw)

    def arr(self, a: array) -> None:
        raw = a.tobytes()
        self.u32(len(raw))
        self.parts.append(raw)

    def payload(self) -> bytes:
        return b"".join(self.parts)


class _Reader:
    def __init__(self, data: bytes):
        self.data = data
        self.pos = 0

    def _take(self, n: int) -> bytes:
        end = self.pos + n
        if end > len(self.data):
            raise ValueError("truncated trace payload")
        raw = self.data[self.pos : end]
        self.pos = end
        return raw

    def u8(self) -> int:
        return self._take(1)[0]

    def u32(self) -> int:
        return struct.unpack("<I", self._take(4))[0]

    def i64(self) -> int:
        return struct.unpack("<q", self._take(8))[0]

    def u64(self) -> int:
        return struct.unpack("<Q", self._take(8))[0]

    def text(self) -> str:
        return self._take(self.u32()).decode("utf-8")

    def arr(self, typecode: str, swap: bool) -> array:
        raw = self._take(self.u32())
        a = array(typecode)
        a.frombytes(raw)
        if swap:
            a.byteswap()
        return a


def _counts_to(w: _Writer, counts: TraceCounts) -> None:
    w.u64(counts.instructions)
    for mapping in (counts.op_mix, counts.mem_mix, counts.warp_occupancy):
        w.u32(len(mapping))
        for key, value in mapping.items():
            w.text(key)
            w.u64(value)


def _counts_from(r: _Reader) -> TraceCounts:
    counts = TraceCounts()
    counts.instructions = r.u64()
    for mapping in (counts.op_mix, counts.mem_mix, counts.warp_occupancy):
        for _ in range(r.u32()):
            key = r.text()
            mapping[key] = r.u64()
    return counts


def encode_bytes(entry: CachedApplication) -> bytes:
    """Serialize a materialized application to the store payload."""
    # Launch discovery: host launches first, then CDP children in the
    # order their LAUNCH instructions are encountered.  Launch objects
    # are deduplicated by identity (a spec shared between two sites is
    # stored once), instructions by identity as well — warps that
    # share template-instantiated lists share their pool entries.
    launches: list[KernelLaunch] = []
    launch_ids: dict[int, int] = {}

    def launch_id(launch: KernelLaunch) -> int:
        lid = launch_ids.get(id(launch))
        if lid is None:
            lid = launch_ids[id(launch)] = len(launches)
            launches.append(launch)
        return lid

    host_ops = []
    for op in entry.ops:
        if isinstance(op, HostLaunch):
            host_ops.append((1, launch_id(op.launch)))
        else:
            host_ops.append((0, op.nbytes, op.direction))

    pool: list[WarpInstruction] = []
    pool_ids: dict[int, int] = {}

    def pool_id(instr: WarpInstruction) -> int:
        pid = pool_ids.get(id(instr))
        if pid is None:
            pid = pool_ids[id(instr)] = len(pool)
            pool.append(instr)
        return pid

    launch_traces: list[list[array]] = []
    index = 0
    while index < len(launches):
        launch = launches[index]
        kernel = launch.kernel
        warp_traces = []
        for cta_id in range(launch.num_ctas):
            for warp_id in range(kernel.warps_per_cta):
                ctx = WarpContext(
                    cta_id=cta_id,
                    warp_id=warp_id,
                    warps_per_cta=kernel.warps_per_cta,
                    num_ctas=launch.num_ctas,
                    args=launch.args,
                )
                instrs, _ = kernel.entry_for(ctx)
                for instr in instrs:
                    if instr.op is OpClass.LAUNCH:
                        launch_id(instr.child)
                warp_traces.append(
                    array("I", [pool_id(i) for i in instrs])
                )
        launch_traces.append(warp_traces)
        index += 1

    w = _Writer()
    w.text(entry.name)
    w.u8(1 if entry.may_device_launch else 0)

    w.u32(len(launches))
    for launch in launches:
        kernel = launch.kernel
        w.text(kernel.name)
        w.u32(kernel.cta_threads)
        w.u32(kernel.regs_per_thread)
        w.u32(kernel.smem_per_cta)
        w.u32(kernel.const_bytes)
        w.u32(launch.num_ctas)

    w.u32(len(host_ops))
    for op in host_ops:
        if op[0] == 1:
            w.u8(1)
            w.u32(op[1])
        else:
            w.u8(0)
            w.u64(op[1])
            w.u8(0 if op[2] == "h2d" else 1)

    # Instruction pool as parallel arrays (struct-of-arrays keeps the
    # payload compact and the decode loop tight).
    ops_a = array("B")
    masks_a = array("I")
    repeats_a = array("I")
    children_a = array("i")
    spaces_a = array("B")
    stores_a = array("B")
    nlines_a = array("I")
    lines_a = array("q")
    for instr in pool:
        ops_a.append(_OPS.index(instr.op))
        masks_a.append(instr.mask)
        repeats_a.append(instr.repeat)
        children_a.append(
            launch_ids[id(instr.child)] if instr.child is not None else -1
        )
        mem = instr.mem
        if mem is None:
            spaces_a.append(_NO_SPACE)
            stores_a.append(0)
            nlines_a.append(0)
        else:
            spaces_a.append(_SPACES.index(mem.space))
            stores_a.append(1 if mem.store else 0)
            nlines_a.append(len(mem.lines))
            lines_a.extend(mem.lines)
    w.u32(len(pool))
    for a in (
        ops_a, masks_a, repeats_a, children_a,
        spaces_a, stores_a, nlines_a, lines_a,
    ):
        w.arr(a)

    for warp_traces in launch_traces:
        w.u32(len(warp_traces))
        flat = array("I")
        counts = array("I")
        for trace in warp_traces:
            counts.append(len(trace))
            flat.extend(trace)
        w.arr(counts)
        w.arr(flat)

    _counts_to(w, entry.total_counts)

    payload = w.payload()
    header = MAGIC + struct.pack(
        "<HBBQI",
        VERSION,
        0 if sys.byteorder == "little" else 1,
        0,
        len(payload),
        zlib.crc32(payload),
    )
    return header + payload


def decode_bytes(data: bytes) -> StoredApplication:
    """Decode a store payload; raises ``ValueError`` on any corruption."""
    if len(data) < 20 or data[:4] != MAGIC:
        raise ValueError("not a trace-store file")
    version, order, _, payload_len, crc = struct.unpack(
        "<HBBQI", data[4:20]
    )
    if version != VERSION:
        raise ValueError(f"unsupported trace-store version {version}")
    payload = data[20:]
    if len(payload) != payload_len:
        raise ValueError("truncated trace-store file")
    if zlib.crc32(payload) != crc:
        raise ValueError("trace-store CRC mismatch")
    swap = order != (0 if sys.byteorder == "little" else 1)

    r = _Reader(payload)
    name = r.text()
    may_device_launch = bool(r.u8())

    num_launches = r.u32()
    kernels: list[StoredKernel] = []
    launches: list[KernelLaunch] = []
    for _ in range(num_launches):
        kernel = StoredKernel(
            r.text(), r.u32(), r.u32(), r.u32(), r.u32()
        )
        kernels.append(kernel)
        launches.append(KernelLaunch(kernel, num_ctas=r.u32()))

    ops = []
    for _ in range(r.u32()):
        tag = r.u8()
        if tag == 1:
            ops.append(HostLaunch(launches[r.u32()]))
        else:
            nbytes = r.u64()
            ops.append(
                HostMemcpy(nbytes, "h2d" if r.u8() == 0 else "d2h")
            )

    num_pool = r.u32()
    ops_a = r.arr("B", False)
    masks_a = r.arr("I", swap)
    repeats_a = r.arr("I", swap)
    children_a = r.arr("i", swap)
    spaces_a = r.arr("B", False)
    stores_a = r.arr("B", False)
    nlines_a = r.arr("I", swap)
    lines_a = r.arr("q", swap)
    if not (
        len(ops_a) == len(masks_a) == len(repeats_a) == len(children_a)
        == len(spaces_a) == len(stores_a) == len(nlines_a) == num_pool
    ):
        raise ValueError("inconsistent instruction pool")

    pool: list[WarpInstruction] = []
    line_pos = 0
    for i in range(num_pool):
        instr = WarpInstruction.__new__(WarpInstruction)
        instr.op = _OPS[ops_a[i]]
        mask = masks_a[i]
        instr.mask = mask
        instr.repeat = repeats_a[i]
        child = children_a[i]
        instr.child = launches[child] if child >= 0 else None
        space = spaces_a[i]
        if space == _NO_SPACE:
            instr.mem = None
        else:
            n = nlines_a[i]
            lines = tuple(lines_a[line_pos : line_pos + n])
            line_pos += n
            mem = MemAccess.__new__(MemAccess)
            object.__setattr__(mem, "space", _SPACES[space])
            object.__setattr__(mem, "lines", lines)
            object.__setattr__(mem, "store", bool(stores_a[i]))
            object.__setattr__(mem, "transactions", max(1, n))
            instr.mem = mem
        instr.active_lanes = popcount(mask)
        pool.append(instr)
    if line_pos != len(lines_a):
        raise ValueError("inconsistent line table")

    for kernel in kernels:
        num_warps = r.u32()
        counts = r.arr("I", swap)
        flat = r.arr("I", swap)
        if len(counts) != num_warps:
            raise ValueError("inconsistent warp table")
        pos = 0
        traces = []
        for count in counts:
            traces.append([pool[j] for j in flat[pos : pos + count]])
            pos += count
        if pos != len(flat):
            raise ValueError("inconsistent trace table")
        kernel.traces = traces

    return StoredApplication(
        name, may_device_launch, ops, _counts_from(r)
    )


# -- source fingerprint -----------------------------------------------------

#: Packages whose source content determines trace bytes.
_FINGERPRINT_PACKAGES = ("kernels", "isa", "data", "genomics")

_fingerprint_cache: str | None = None


def source_fingerprint() -> str:
    """Hash of every trace-producing source file (cached per process)."""
    global _fingerprint_cache
    if _fingerprint_cache is None:
        digest = hashlib.sha256()
        root = Path(__file__).resolve().parent.parent
        for package in _FINGERPRINT_PACKAGES:
            for path in sorted((root / package).rglob("*.py")):
                digest.update(str(path.relative_to(root)).encode())
                digest.update(path.read_bytes())
        _fingerprint_cache = digest.hexdigest()
    return _fingerprint_cache


# -- the store --------------------------------------------------------------


class TraceStore:
    """On-disk trace store rooted at a directory."""

    def __init__(
        self, root: str | os.PathLike, stale_lock_s: float | None = None
    ):
        self.root = Path(root)
        self.hits = 0
        self.builds = 0
        #: Lock age beyond which a (presumed dead) writer is evicted.
        self.stale_lock_s = (
            _default_stale_lock_s() if stale_lock_s is None else stale_lock_s
        )

    @classmethod
    def from_env(cls) -> "TraceStore | None":
        """The store named by ``REPRO_TRACE_STORE``, or None if unset."""
        root = os.environ.get("REPRO_TRACE_STORE", "")
        return cls(root) if root else None

    def path_for(self, key) -> Path:
        name = hashlib.sha256(
            (repr(key) + source_fingerprint()).encode()
        ).hexdigest()
        return self.root / f"{name}.trace"

    # -- load / save -------------------------------------------------------
    def load(self, key) -> StoredApplication | None:
        """The stored application for ``key``; None on miss/corruption."""
        return self._load_path(self.path_for(key))

    def _load_path(self, path: Path) -> StoredApplication | None:
        try:
            data = path.read_bytes()
        except OSError:
            return None
        try:
            return decode_bytes(data)
        except Exception:
            # Corrupt or foreign file: retire it and regenerate.
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def save(self, key, entry: CachedApplication) -> Path:
        """Serialize ``entry`` under ``key`` (atomic publish)."""
        path = self.path_for(key)
        self._save_path(path, entry)
        return path

    def _save_path(self, path: Path, entry: CachedApplication) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        tmp.write_bytes(encode_bytes(entry))
        os.replace(tmp, path)

    # -- coordinated builds ------------------------------------------------
    def get_or_build(self, key, build):
        """The entry for ``key``, building (exactly once) on a cold miss.

        ``build`` must return a materialized :class:`CachedApplication`
        (stored and returned) or None (nothing stored — the application
        opted out of replay).  Concurrent callers with the same key
        serialize on a lockfile: one builds, the rest wait for the
        published file.
        """
        path = self.path_for(key)
        stored = self._load_path(path)
        if stored is not None:
            self.hits += 1
            return stored
        self.root.mkdir(parents=True, exist_ok=True)
        lock = path.with_name(path.name + ".lock")
        while True:
            try:
                fd = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                stored = self._await_writer(path, lock)
                if stored is not None:
                    self.hits += 1
                    return stored
                continue  # writer vanished without publishing: take over
            try:
                os.write(fd, str(os.getpid()).encode())
                os.close(fd)
                # A writer may have published between our miss and the
                # lock acquisition.
                stored = self._load_path(path)
                if stored is not None:
                    self.hits += 1
                    return stored
                entry = build()
                self.builds += 1
                if entry is not None:
                    self._save_path(path, entry)
                    self._log_build(path)
                return entry
            finally:
                try:
                    os.unlink(lock)
                except OSError:
                    pass

    def _await_writer(self, path: Path, lock: Path):
        """Poll until the writer publishes ``path`` or abandons ``lock``."""
        while True:
            stored = self._load_path(path)
            if stored is not None:
                return stored
            try:
                age = time.time() - lock.stat().st_mtime
            except OSError:
                return None  # lock released; caller re-checks / retries
            if age > self.stale_lock_s:
                # Writer died mid-build: break its lock and take over.
                try:
                    os.unlink(lock)
                except OSError:
                    pass
                return None
            time.sleep(_POLL_S)

    def _log_build(self, path: Path) -> None:
        """Append one line per materialization (the fan-out tests'
        exactly-once evidence).  O_APPEND keeps concurrent lines whole."""
        line = f"{path.name} pid={os.getpid()}\n".encode()
        with open(self.root / "builds.log", "ab") as log:
            log.write(line)

    # -- host-to-host sync (pack / unpack) ---------------------------------
    def entry_names(self) -> list[str]:
        """Names of every published entry, in a stable order."""
        try:
            return sorted(
                p.name for p in self.root.glob("*.trace") if p.is_file()
            )
        except OSError:
            return []

    def pack(self, dest: str | os.PathLike, names=None) -> int:
        """Archive store entries into one transferable file.

        The archive records the packing host's source fingerprint and a
        per-entry CRC32, so :meth:`unpack` on the receiving host can
        reject both a stale source tree and bytes damaged in transit.
        ``names`` restricts the archive to those entries (default:
        everything published).  Returns the number of entries packed.
        """
        selected = self.entry_names() if names is None else list(names)
        dest = Path(dest)
        dest.parent.mkdir(parents=True, exist_ok=True)
        tmp = dest.with_name(f"{dest.name}.{os.getpid()}.tmp")
        count = 0
        with open(tmp, "wb") as fh:
            fh.write(PACK_MAGIC + struct.pack("<H", PACK_VERSION))
            fingerprint = source_fingerprint().encode()
            fh.write(struct.pack("<I", len(fingerprint)) + fingerprint)
            fh.write(struct.pack("<I", len(selected)))
            for name in selected:
                data = (self.root / name).read_bytes()
                raw = name.encode()
                fh.write(struct.pack("<I", len(raw)) + raw)
                fh.write(struct.pack("<QI", len(data), zlib.crc32(data)))
                fh.write(data)
                count += 1
        os.replace(tmp, dest)
        return count

    def unpack(self, src: str | os.PathLike) -> int:
        """Import a :meth:`pack` archive into this store.

        Unlike :meth:`load` (which silently retires corrupt files and
        regenerates), importing foreign bytes fails *loudly*: a wrong
        magic/version, a fingerprint from a different source tree, a
        per-entry CRC mismatch, or an unsafe entry name all raise
        ``ValueError`` and nothing from the archive is kept — syncing
        must never plant traces the local source could not have
        produced.  Returns the number of entries written.
        """
        data = Path(src).read_bytes()
        r = _Reader(data)
        if r._take(4) != PACK_MAGIC:
            raise ValueError(f"{src} is not a trace-store archive")
        (version,) = struct.unpack("<H", r._take(2))
        if version != PACK_VERSION:
            raise ValueError(
                f"unsupported trace archive version {version}"
            )
        fingerprint = r.text()
        if fingerprint != source_fingerprint():
            raise ValueError(
                f"{src} was packed against a different source tree "
                f"(fingerprint {fingerprint[:12]}..., local "
                f"{source_fingerprint()[:12]}...); re-warm instead of "
                "importing stale traces"
            )
        entries = []
        for _ in range(r.u32()):
            name = r.text()
            if (
                not name.endswith(".trace")
                or "/" in name or "\\" in name or name.startswith(".")
            ):
                raise ValueError(f"unsafe entry name {name!r} in {src}")
            size, crc = struct.unpack("<QI", r._take(12))
            payload = r._take(size)
            if zlib.crc32(payload) != crc:
                raise ValueError(
                    f"entry {name} in {src} failed its CRC check; "
                    "archive corrupt, nothing imported"
                )
            entries.append((name, payload))
        if r.pos != len(data):
            raise ValueError(
                f"{src} has {len(data) - r.pos} trailing byte(s) past the "
                "last entry; archive damaged, nothing imported"
            )
        # All entries validated: publish each atomically.
        self.root.mkdir(parents=True, exist_ok=True)
        for name, payload in entries:
            path = self.root / name
            tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
            tmp.write_bytes(payload)
            os.replace(tmp, path)
        return len(entries)
