"""Dynamic execution state: warps, CTAs, grids."""

from __future__ import annotations

import itertools
from typing import Iterator, Optional

from repro.isa.instructions import WarpInstruction
from repro.sim.kernel import KernelProgram, WarpContext
from repro.sim.stats import StallReason

#: Wake time of a warp blocked on an event (barrier, child completion).
NEVER = float("inf")

_warp_counter = itertools.count()


class Warp:
    """One resident warp: its trace iterator plus scheduling state."""

    __slots__ = (
        "trace",
        "cta",
        "warp_id",
        "age",
        "next_ready",
        "block_reason",
        "exited",
        "pending_children",
        "waiting_device_sync",
        "precounted",
        "in_ready",
    )

    def __init__(self, trace: Iterator[WarpInstruction], cta: "CTA", warp_id: int):
        # ``iter`` admits both live generators and materialized lists
        # (trace replay hands the same list to every sweep point).
        self.trace = iter(trace)
        self.cta = cta
        self.warp_id = warp_id
        self.age = next(_warp_counter)  # global issue-order age for GTO/OLD
        self.next_ready: float = 0.0
        self.block_reason: Optional[StallReason] = None
        self.exited = False
        self.pending_children = 0
        self.waiting_device_sync = False
        #: instruction/memory-mix totals were pre-credited at trace
        #: materialization (repro.sim.replay) — the SM skips per-issue
        #: counting for this warp
        self.precounted = False
        #: membership flag for the owning SM's ready list (see
        #: repro.sim.sm); schedulers read it for O(1) ready checks
        self.in_ready = False

    def fetch(self) -> WarpInstruction:
        """Next instruction; EXIT semantics are handled by the SM."""
        return next(self.trace)


class CTA:
    """A cooperative thread array resident on one SM."""

    __slots__ = (
        "cta_id", "grid", "warps", "barrier_arrived", "sm", "start_time"
    )

    def __init__(self, cta_id: int, grid: "Grid"):
        self.cta_id = cta_id
        self.grid = grid
        self.warps: list[Warp] = []
        self.barrier_arrived = 0
        self.sm = None  # set on admission by the owning SM
        self.start_time: float = 0.0  # dispatch time, set in make_cta

    @property
    def live_warps(self) -> int:
        return sum(1 for w in self.warps if not w.exited)

    def barrier_ready(self) -> bool:
        """True when every live warp has arrived at the barrier."""
        return self.barrier_arrived >= self.live_warps


class Grid:
    """One kernel launch being executed (host- or device-initiated)."""

    _seq = itertools.count()

    def __init__(
        self,
        kernel: KernelProgram,
        num_ctas: int,
        args: dict | None = None,
        available_time: float = 0.0,
        parent_warp: Warp | None = None,
    ):
        if num_ctas <= 0:
            raise ValueError("grid must have at least one CTA")
        self.kernel = kernel
        self.num_ctas = num_ctas
        self.args = args or {}
        self.available_time = available_time
        self.parent_warp = parent_warp
        self.seq = next(Grid._seq)
        self.next_cta = 0
        self.remaining_ctas = num_ctas
        self.start_time: float | None = None
        self.completion_time: float | None = None

    @property
    def dispatch_done(self) -> bool:
        return self.next_cta >= self.num_ctas

    @property
    def finished(self) -> bool:
        return self.remaining_ctas == 0

    def make_cta(self, sm_time: float) -> CTA:
        """Instantiate the next CTA with its warps' trace generators."""
        if self.dispatch_done:
            raise RuntimeError("all CTAs already dispatched")
        cta = CTA(self.next_cta, self)
        cta.start_time = sm_time
        self.next_cta += 1
        if self.start_time is None:
            self.start_time = sm_time
        kernel = self.kernel
        precounted = not kernel.counts_inline
        for warp_id in range(kernel.warps_per_cta):
            ctx = WarpContext(
                cta_id=cta.cta_id,
                warp_id=warp_id,
                warps_per_cta=kernel.warps_per_cta,
                num_ctas=self.num_ctas,
                args=self.args,
            )
            warp = Warp(kernel.warp_trace(ctx), cta, warp_id)
            warp.next_ready = sm_time
            warp.precounted = precounted
            cta.warps.append(warp)
        return cta
