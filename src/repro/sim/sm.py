"""Streaming multiprocessor: issue loop, hazards, stall attribution.

Each SM owns a private L1, constant and texture cache, a warp
scheduler, and a set of resident CTAs.  ``step`` makes one scheduling
decision: issue from a ready warp, or account a stall and jump to the
next wake-up time.  The event-driven jump keeps simulation fast while
preserving per-cycle issue accounting.
"""

from __future__ import annotations

from repro.isa.instructions import MemSpace, OpClass
from repro.sim.cache import Cache
from repro.sim.config import GPUConfig
from repro.sim.kernel import KernelProgram
from repro.sim.scheduler import build_scheduler
from repro.sim.stats import RunStats, StallReason
from repro.sim.warp import CTA, Grid, NEVER, Warp


class StreamingMultiprocessor:
    """One GPU core."""

    def __init__(self, sm_id: int, config: GPUConfig, stats: RunStats):
        self.sm_id = sm_id
        self.config = config
        self.stats = stats
        self.time: float = 0.0
        self.l1 = Cache(config.l1, name=f"sm{sm_id}.l1")
        self.const_cache = Cache(config.const_cache, name=f"sm{sm_id}.const")
        self.tex_cache = Cache(config.tex_cache, name=f"sm{sm_id}.tex")
        self.scheduler = build_scheduler(config.scheduler)
        self.ctas: list[CTA] = []
        self.warps: list[Warp] = []
        # Resource accounting for CTA admission.
        self.used_threads = 0
        self.used_regs = 0
        self.used_smem = 0
        # Heap bookkeeping (owned by the GPU).
        self.in_heap = False
        self.dormant_since: float | None = None
        self.dormant_reason: StallReason | None = None

    # -- CTA admission ------------------------------------------------------
    def can_admit(self, kernel: KernelProgram) -> bool:
        """Would one more CTA of ``kernel`` fit right now?"""
        config = self.config
        if len(self.ctas) >= config.max_ctas_per_sm:
            return False
        if self.used_threads + kernel.cta_threads > config.max_threads_per_sm:
            return False
        regs = kernel.regs_per_thread * kernel.cta_threads
        if self.used_regs + regs > config.registers_per_sm:
            return False
        if self.used_smem + kernel.smem_per_cta > config.shared_mem_per_sm:
            return False
        return True

    def admit_cta(self, grid: Grid, start_time: float) -> CTA:
        """Instantiate and adopt the next CTA of ``grid``."""
        kernel = grid.kernel
        start = max(self.time, start_time)
        cta = grid.make_cta(start)
        self.ctas.append(cta)
        self.warps.extend(cta.warps)
        self.used_threads += kernel.cta_threads
        self.used_regs += kernel.regs_per_thread * kernel.cta_threads
        self.used_smem += kernel.smem_per_cta
        return cta

    def _release_cta(self, cta: CTA) -> None:
        kernel = cta.grid.kernel
        self.ctas.remove(cta)
        self.warps = [w for w in self.warps if w.cta is not cta]
        self.used_threads -= kernel.cta_threads
        self.used_regs -= kernel.regs_per_thread * kernel.cta_threads
        self.used_smem -= kernel.smem_per_cta

    @property
    def has_resident_work(self) -> bool:
        return bool(self.warps)

    # -- issue loop -----------------------------------------------------------
    def step(self, gpu, now: float) -> None:
        """One scheduling decision at time ``max(self.time, now)``.

        ``gpu`` is the owning :class:`~repro.sim.gpu.GPUSimulator`,
        used for memory access, device launches and completion hooks.
        """
        self.time = max(self.time, now)
        if not self.warps:
            return

        t = self.time
        ready = [
            w for w in self.warps if not w.exited and w.next_ready <= t
        ]
        if not ready:
            self._account_stall(t)
            return

        warp = self.scheduler.select(ready)
        try:
            instr = warp.fetch()
        except StopIteration:  # pragma: no cover - traces must end with EXIT
            raise RuntimeError(
                f"trace of kernel {warp.cta.grid.kernel.name} ended "
                "without an EXIT instruction"
            ) from None
        self._execute(gpu, warp, instr, t)
        self.scheduler.issued(warp)

    def _account_stall(self, t: float) -> None:
        """No warp ready: attribute the gap and jump to the next wake."""
        wake = NEVER
        reasons: dict[StallReason, int] = {}
        for warp in self.warps:
            if warp.exited:
                continue
            wake = min(wake, warp.next_ready)
            reason = warp.block_reason or StallReason.IDLE
            reasons[reason] = reasons.get(reason, 0) + 1
        dominant = self._dominant_reason(reasons)
        if wake is NEVER or wake == NEVER:
            # Every warp waits on an external event (device sync /
            # barrier release from another path).  Go dormant; the GPU
            # attributes the dormant period when it wakes us.
            self.dormant_since = t
            self.dormant_reason = dominant
            return
        self.stats.add_stall(dominant, int(wake - t))
        self.time = wake

    @staticmethod
    def _dominant_reason(reasons: dict[StallReason, int]) -> StallReason:
        if not reasons:
            return StallReason.IDLE
        # Ties break in a fixed priority order: memory is the paper's
        # headline cause, so it wins ties.
        priority = [
            StallReason.MEMORY,
            StallReason.CONTROL,
            StallReason.SYNC,
            StallReason.FUNCTIONAL_DONE,
            StallReason.IDLE,
        ]
        best = max(reasons.values())
        for reason in priority:
            if reasons.get(reason) == best:
                return reason
        return StallReason.IDLE  # pragma: no cover - unreachable

    def wake_accounting(self, wake_time: float) -> None:
        """Charge a dormant period that just ended at ``wake_time``."""
        if self.dormant_since is not None:
            gap = int(wake_time - self.dormant_since)
            if gap > 0 and self.dormant_reason is not None and self.warps:
                self.stats.add_stall(self.dormant_reason, gap)
            self.dormant_since = None
            self.dormant_reason = None
        self.time = max(self.time, wake_time)

    # -- instruction semantics -------------------------------------------------
    def _execute(self, gpu, warp: Warp, instr, t: float) -> None:
        config = self.config
        op = instr.op
        self.stats.count_instruction(op, instr.active_lanes, instr.repeat)
        self.stats.sm_instructions[self.sm_id] = (
            self.stats.sm_instructions.get(self.sm_id, 0) + instr.repeat
        )
        warp.block_reason = None

        if op in (OpClass.INT, OpClass.FP, OpClass.SFU):
            latency = {
                OpClass.INT: config.int_latency,
                OpClass.FP: config.fp_latency,
                OpClass.SFU: config.sfu_latency,
            }[op]
            # A repeat block monopolizes the issue port for `repeat`
            # cycles; the dependent-use latency applies after the last.
            warp.next_ready = t + instr.repeat - 1 + latency
            self.time = t + instr.repeat
            return

        self.time = t + 1
        if op is OpClass.LDST:
            self._execute_memory(gpu, warp, instr, t)
        elif op is OpClass.CTRL:
            warp.next_ready = t + config.branch_latency
            warp.block_reason = StallReason.CONTROL
        elif op is OpClass.SYNC:
            self._execute_barrier(warp, t)
        elif op is OpClass.DEVSYNC:
            if warp.pending_children > 0:
                # Waiting for child kernels to be set up, run, and
                # drain — the CDP face of "functional done" (Fig 5
                # shows CDP and non-CDP breakdowns staying similar).
                warp.waiting_device_sync = True
                warp.next_ready = NEVER
                warp.block_reason = StallReason.FUNCTIONAL_DONE
            else:
                warp.next_ready = t + 1
        elif op is OpClass.LAUNCH:
            gpu.device_launch(self, warp, instr.child, t)
            warp.next_ready = t + config.cdp_launch_cycles
            warp.block_reason = StallReason.FUNCTIONAL_DONE
        elif op is OpClass.EXIT:
            self._execute_exit(gpu, warp, t)
        else:  # pragma: no cover - enum is closed
            raise AssertionError(f"unhandled op {op}")

    def _execute_memory(self, gpu, warp: Warp, instr, t: float) -> None:
        config = self.config
        mem = instr.mem
        space = mem.space
        self.stats.count_memory(space, mem.transactions)

        if space is MemSpace.SHARED:
            # On-chip scratchpad: unaffected by the Fig 15 perfect
            # memory-system experiment.
            warp.next_ready = t + config.shared_latency
            warp.block_reason = StallReason.MEMORY
            return

        if config.perfect_memory:
            # Zero-latency memory system: every access behaves like an
            # L1 hit (one transaction retired per port cycle).
            warp.next_ready = (
                t + config.l1.hit_latency + max(0, len(mem.lines) - 1)
            )
            return
        if space is MemSpace.PARAM:
            # Parameter reads hit the constant path's dedicated storage.
            warp.next_ready = t + config.const_cache.hit_latency
            return

        port = 1 if config.l1_port_serialization else 0
        if space in (MemSpace.CONST, MemSpace.TEX):
            cache = self.const_cache if space is MemSpace.CONST else self.tex_cache
            completion = t
            # The cache port retires one transaction per cycle.
            for i, line in enumerate(mem.lines):
                issue = t + i * port
                if cache.access(line, store=mem.store):
                    completion = max(completion, issue + cache.config.hit_latency)
                else:
                    completion = max(
                        completion, gpu.memory.line_request(
                            self.sm_id, line, mem.store, issue
                        )
                    )
            warp.next_ready = completion
            warp.block_reason = StallReason.MEMORY
            return

        # GLOBAL / LOCAL through the L1, one transaction per cycle —
        # an uncoalesced access pays for all 32 of its transactions.
        # Stores are write-back write-validate: they allocate dirty in
        # the L1 without fetching; dirty evictions flow to L2/DRAM via
        # the writeback sink.
        completion = t
        for i, line in enumerate(mem.lines):
            issue = t + i * port
            hit = self.l1.access(line, store=mem.store)
            if mem.store or hit:
                completion = max(completion, issue + config.l1.hit_latency)
            else:
                completion = max(
                    completion,
                    gpu.memory.line_request(self.sm_id, line, False, issue),
                )
        warp.next_ready = completion
        if completion - t > config.l1.hit_latency:
            warp.block_reason = StallReason.MEMORY

    def _execute_barrier(self, warp: Warp, t: float) -> None:
        cta = warp.cta
        cta.barrier_arrived += 1
        if cta.barrier_ready():
            # Last arrival releases everyone.
            for peer in cta.warps:
                if not peer.exited:
                    peer.next_ready = t + 1
                    peer.block_reason = None
            cta.barrier_arrived = 0
        else:
            warp.next_ready = NEVER
            warp.block_reason = StallReason.SYNC

    def _execute_exit(self, gpu, warp: Warp, t: float) -> None:
        warp.exited = True
        self.scheduler.retired(warp)
        cta = warp.cta
        if cta.live_warps == 0:
            self._release_cta(cta)
            grid = cta.grid
            grid.remaining_ctas -= 1
            if grid.finished:
                grid.completion_time = t
                gpu.on_grid_finished(grid, t)
            gpu.refill_sm(self, t)
        elif cta.barrier_arrived and cta.barrier_ready():
            # An exiting warp can satisfy a barrier its peers wait on.
            for peer in cta.warps:
                if not peer.exited and peer.block_reason is StallReason.SYNC:
                    peer.next_ready = t + 1
                    peer.block_reason = None
            cta.barrier_arrived = 0
