"""Streaming multiprocessor: issue loop, hazards, stall attribution.

Each SM owns a private L1, constant and texture cache, a warp
scheduler, and a set of resident CTAs.  ``step`` makes one scheduling
decision: issue from a ready warp, or account a stall and jump to the
next wake-up time.  The event-driven jump keeps simulation fast while
preserving per-cycle issue accounting.
"""

from __future__ import annotations

from repro.isa.instructions import MemSpace, OpClass
from repro.sim.cache import Cache
from repro.sim.config import GPUConfig
from repro.sim.kernel import KernelProgram
from repro.sim.scheduler import build_scheduler
from repro.sim.stats import RunStats, StallReason
from repro.sim.warp import CTA, Grid, NEVER, Warp

# Hot-loop aliases: issue-loop comparisons run once per dynamic
# instruction, so they use ``is`` against bound locals instead of enum
# lookups on every call.
_INT = OpClass.INT
_FP = OpClass.FP
_SFU = OpClass.SFU
_LDST = OpClass.LDST
_CTRL = OpClass.CTRL
_SYNC = OpClass.SYNC
_DEVSYNC = OpClass.DEVSYNC
_LAUNCH = OpClass.LAUNCH
_EXIT = OpClass.EXIT
_SHARED = MemSpace.SHARED
_PARAM = MemSpace.PARAM
_CONST = MemSpace.CONST
_TEX = MemSpace.TEX
_R_MEMORY = StallReason.MEMORY
_R_CONTROL = StallReason.CONTROL
_R_SYNC = StallReason.SYNC
_R_FUNCTIONAL = StallReason.FUNCTIONAL_DONE
_R_IDLE = StallReason.IDLE


class StreamingMultiprocessor:
    """One GPU core."""

    def __init__(self, sm_id: int, config: GPUConfig, stats: RunStats):
        self.sm_id = sm_id
        self.config = config
        self.stats = stats
        self.time: float = 0.0
        self.l1 = Cache(config.l1, name=f"sm{sm_id}.l1")
        self.const_cache = Cache(config.const_cache, name=f"sm{sm_id}.const")
        self.tex_cache = Cache(config.tex_cache, name=f"sm{sm_id}.tex")
        self.scheduler = build_scheduler(config.scheduler)
        self.ctas: list[CTA] = []
        #: warps visible to the scheduler; exited warps are removed
        #: eagerly so the per-decision ready scan never touches them
        self.warps: list[Warp] = []
        # Resource accounting for CTA admission.
        self.used_threads = 0
        self.used_regs = 0
        self.used_smem = 0
        #: dynamic instructions issued here; folded into
        #: ``stats.sm_instructions`` at finalize (cheaper than a dict
        #: update per instruction)
        self.issued_instructions = 0
        # Heap bookkeeping (owned by the GPU).
        self.in_heap = False
        self.dormant_since: float | None = None
        self.dormant_reason: StallReason | None = None

    # -- CTA admission ------------------------------------------------------
    def can_admit(self, kernel: KernelProgram) -> bool:
        """Would one more CTA of ``kernel`` fit right now?"""
        config = self.config
        if len(self.ctas) >= config.max_ctas_per_sm:
            return False
        if self.used_threads + kernel.cta_threads > config.max_threads_per_sm:
            return False
        regs = kernel.regs_per_thread * kernel.cta_threads
        if self.used_regs + regs > config.registers_per_sm:
            return False
        if self.used_smem + kernel.smem_per_cta > config.shared_mem_per_sm:
            return False
        return True

    def admit_cta(self, grid: Grid, start_time: float) -> CTA:
        """Instantiate and adopt the next CTA of ``grid``."""
        kernel = grid.kernel
        start = max(self.time, start_time)
        cta = grid.make_cta(start)
        self.ctas.append(cta)
        self.warps.extend(cta.warps)
        self.used_threads += kernel.cta_threads
        self.used_regs += kernel.regs_per_thread * kernel.cta_threads
        self.used_smem += kernel.smem_per_cta
        return cta

    def _release_cta(self, cta: CTA) -> None:
        kernel = cta.grid.kernel
        self.ctas.remove(cta)
        self.warps = [w for w in self.warps if w.cta is not cta]
        self.used_threads -= kernel.cta_threads
        self.used_regs -= kernel.regs_per_thread * kernel.cta_threads
        self.used_smem -= kernel.smem_per_cta

    @property
    def has_resident_work(self) -> bool:
        return bool(self.warps)

    # -- issue loop -----------------------------------------------------------
    def step(self, gpu, now: float) -> None:
        """One scheduling decision at time ``max(self.time, now)``.

        ``gpu`` is the owning :class:`~repro.sim.gpu.GPUSimulator`,
        used for memory access, device launches and completion hooks.
        """
        if now > self.time:
            self.time = now
        warps = self.warps
        if not warps:
            return

        t = self.time
        ready = [w for w in warps if w.next_ready <= t]
        if not ready:
            self._account_stall(t)
            return

        warp = self.scheduler.select(ready)
        try:
            instr = warp.fetch()
        except StopIteration:  # pragma: no cover - traces must end with EXIT
            raise RuntimeError(
                f"trace of kernel {warp.cta.grid.kernel.name} ended "
                "without an EXIT instruction"
            ) from None
        self._execute(gpu, warp, instr, t)
        self.scheduler.issued(warp)

    def _account_stall(self, t: float) -> None:
        """No warp ready: attribute the gap and jump to the next wake."""
        wake = NEVER
        n_mem = n_ctrl = n_sync = n_func = n_idle = 0
        for warp in self.warps:
            if warp.next_ready < wake:
                wake = warp.next_ready
            reason = warp.block_reason
            if reason is _R_MEMORY:
                n_mem += 1
            elif reason is _R_CONTROL:
                n_ctrl += 1
            elif reason is _R_SYNC:
                n_sync += 1
            elif reason is _R_FUNCTIONAL:
                n_func += 1
            else:
                n_idle += 1
        # Ties break in a fixed priority order: memory is the paper's
        # headline cause, so it wins ties.
        best, dominant = n_mem, _R_MEMORY
        if n_ctrl > best:
            best, dominant = n_ctrl, _R_CONTROL
        if n_sync > best:
            best, dominant = n_sync, _R_SYNC
        if n_func > best:
            best, dominant = n_func, _R_FUNCTIONAL
        if n_idle > best:
            dominant = _R_IDLE
        if wake == NEVER:
            # Every warp waits on an external event (device sync /
            # barrier release from another path).  Go dormant; the GPU
            # attributes the dormant period when it wakes us.
            self.dormant_since = t
            self.dormant_reason = dominant
            return
        self.stats.add_stall(dominant, int(wake - t))
        self.time = wake

    def wake_accounting(self, wake_time: float) -> None:
        """Charge a dormant period that just ended at ``wake_time``."""
        if self.dormant_since is not None:
            gap = int(wake_time - self.dormant_since)
            if gap > 0 and self.dormant_reason is not None and self.warps:
                self.stats.add_stall(self.dormant_reason, gap)
            self.dormant_since = None
            self.dormant_reason = None
        self.time = max(self.time, wake_time)

    # -- instruction semantics -------------------------------------------------
    def _execute(self, gpu, warp: Warp, instr, t: float) -> None:
        config = self.config
        op = instr.op
        repeat = instr.repeat
        if not warp.precounted:
            self.stats.count_instruction(op, instr.active_lanes, repeat)
        self.issued_instructions += repeat
        warp.block_reason = None

        if op is _INT or op is _FP or op is _SFU:
            if op is _INT:
                latency = config.int_latency
            elif op is _FP:
                latency = config.fp_latency
            else:
                latency = config.sfu_latency
            # A repeat block monopolizes the issue port for `repeat`
            # cycles; the dependent-use latency applies after the last.
            warp.next_ready = t + repeat - 1 + latency
            self.time = t + repeat
            return

        self.time = t + 1
        if op is _LDST:
            self._execute_memory(gpu, warp, instr, t)
        elif op is _CTRL:
            warp.next_ready = t + config.branch_latency
            warp.block_reason = StallReason.CONTROL
        elif op is _SYNC:
            self._execute_barrier(warp, t)
        elif op is _DEVSYNC:
            if warp.pending_children > 0:
                # Waiting for child kernels to be set up, run, and
                # drain — the CDP face of "functional done" (Fig 5
                # shows CDP and non-CDP breakdowns staying similar).
                warp.waiting_device_sync = True
                warp.next_ready = NEVER
                warp.block_reason = StallReason.FUNCTIONAL_DONE
            else:
                warp.next_ready = t + 1
        elif op is _LAUNCH:
            gpu.device_launch(self, warp, instr.child, t)
            warp.next_ready = t + config.cdp_launch_cycles
            warp.block_reason = StallReason.FUNCTIONAL_DONE
        elif op is _EXIT:
            self._execute_exit(gpu, warp, t)
        else:  # pragma: no cover - enum is closed
            raise AssertionError(f"unhandled op {op}")

    def _execute_memory(self, gpu, warp: Warp, instr, t: float) -> None:
        config = self.config
        mem = instr.mem
        space = mem.space
        if not warp.precounted:
            self.stats.count_memory(space, mem.transactions)

        if space is _SHARED:
            # On-chip scratchpad: unaffected by the Fig 15 perfect
            # memory-system experiment.
            warp.next_ready = t + config.shared_latency
            warp.block_reason = StallReason.MEMORY
            return

        if config.perfect_memory:
            # Zero-latency memory system: every access behaves like an
            # L1 hit (one transaction retired per port cycle).
            warp.next_ready = (
                t + config.l1.hit_latency + max(0, len(mem.lines) - 1)
            )
            return
        if space is _PARAM:
            # Parameter reads hit the constant path's dedicated storage.
            warp.next_ready = t + config.const_cache.hit_latency
            return

        port = 1 if config.l1_port_serialization else 0
        if space is _CONST or space is _TEX:
            cache = self.const_cache if space is _CONST else self.tex_cache
            completion = t
            # The cache port retires one transaction per cycle.
            for i, line in enumerate(mem.lines):
                issue = t + i * port
                if cache.access(line, store=mem.store):
                    completion = max(completion, issue + cache.config.hit_latency)
                else:
                    completion = max(
                        completion, gpu.memory.line_request(
                            self.sm_id, line, mem.store, issue
                        )
                    )
            warp.next_ready = completion
            warp.block_reason = StallReason.MEMORY
            return

        # GLOBAL / LOCAL through the L1, one transaction per cycle —
        # an uncoalesced access pays for all 32 of its transactions.
        # Stores are write-back write-validate: they allocate dirty in
        # the L1 without fetching; dirty evictions flow to L2/DRAM via
        # the writeback sink.
        completion = t
        l1_access = self.l1.access
        line_request = gpu.memory.line_request
        hit_latency = config.l1.hit_latency
        store = mem.store
        sm_id = self.sm_id
        for i, line in enumerate(mem.lines):
            issue = t + i * port
            hit = l1_access(line, store=store)
            if store or hit:
                done = issue + hit_latency
            else:
                done = line_request(sm_id, line, False, issue)
            if done > completion:
                completion = done
        warp.next_ready = completion
        if completion - t > hit_latency:
            warp.block_reason = StallReason.MEMORY

    def _execute_barrier(self, warp: Warp, t: float) -> None:
        cta = warp.cta
        cta.barrier_arrived += 1
        if cta.barrier_ready():
            # Last arrival releases everyone.
            for peer in cta.warps:
                if not peer.exited:
                    peer.next_ready = t + 1
                    peer.block_reason = None
            cta.barrier_arrived = 0
        else:
            warp.next_ready = NEVER
            warp.block_reason = StallReason.SYNC

    def _execute_exit(self, gpu, warp: Warp, t: float) -> None:
        warp.exited = True
        self.warps.remove(warp)
        self.scheduler.retired(warp)
        cta = warp.cta
        if cta.live_warps == 0:
            self._release_cta(cta)
            grid = cta.grid
            grid.remaining_ctas -= 1
            if grid.finished:
                grid.completion_time = t
                gpu.on_grid_finished(grid, t)
            gpu.refill_sm(self, t)
        elif cta.barrier_arrived and cta.barrier_ready():
            # An exiting warp can satisfy a barrier its peers wait on.
            for peer in cta.warps:
                if not peer.exited and peer.block_reason is StallReason.SYNC:
                    peer.next_ready = t + 1
                    peer.block_reason = None
            cta.barrier_arrived = 0
