"""Streaming multiprocessor: issue loop, hazards, stall attribution.

Each SM owns a private L1, constant and texture cache, a warp
scheduler, and a set of resident CTAs.  ``step`` makes one scheduling
decision: issue from a ready warp, or account a stall and jump to the
next wake-up time.

This is the **event core**: instead of rescanning every resident warp
per decision, the SM maintains

- ``_ready`` — the warps able to issue right now, kept in residence
  order (ascending ``age``, which is exactly the order the original
  per-decision scan of ``self.warps`` produced, so scheduler decisions
  are unchanged);
- ``_wakes`` — a min-heap of ``(next_ready, seq, warp)`` wake events
  for blocked warps with a known wake time (warps parked on an
  external event — barrier, device sync — are in neither structure);
- ``_reason_counts`` — resident warps per ``block_reason``, so stall
  attribution is O(1) instead of a scan.

Both structures are updated at the points where ``next_ready`` /
``block_reason`` change: ``_execute``, barrier release, CDP child
completion (``wake_warp``), and exit.  When a single warp is the only
one ready, ``step`` enters a *monopolize* loop that keeps issuing from
it — ALU repeat blocks in closed form, stall gaps fused inline — for
as long as the one-decision-per-step loop would provably have made the
same choices.  See DESIGN.md ("event core") for the invariants; the
scan-per-decision original lives on as
:class:`repro.sim.sm_reference.ReferenceSM` and the two are locked
bit-identical by ``tests/sim/test_event_core_golden.py``.
"""

from __future__ import annotations

import itertools
from bisect import bisect_left, insort
from heapq import heappop, heappush
from operator import attrgetter

from repro.isa.instructions import MemSpace, OpClass
from repro.sim.cache import Cache
from repro.sim.config import GPUConfig
from repro.sim.kernel import KernelProgram
from repro.sim.scheduler import build_scheduler
from repro.sim.stats import RunStats, StallReason
from repro.sim.warp import CTA, Grid, NEVER, Warp

# Hot-loop aliases: issue-loop comparisons run once per dynamic
# instruction, so they use ``is`` against bound locals instead of enum
# lookups on every call.
_INT = OpClass.INT
_FP = OpClass.FP
_SFU = OpClass.SFU
_LDST = OpClass.LDST
_CTRL = OpClass.CTRL
_SYNC = OpClass.SYNC
_DEVSYNC = OpClass.DEVSYNC
_LAUNCH = OpClass.LAUNCH
_EXIT = OpClass.EXIT
_SHARED = MemSpace.SHARED
_PARAM = MemSpace.PARAM
_CONST = MemSpace.CONST
_TEX = MemSpace.TEX
_R_MEMORY = StallReason.MEMORY
_R_CONTROL = StallReason.CONTROL
_R_SYNC = StallReason.SYNC
_R_FUNCTIONAL = StallReason.FUNCTIONAL_DONE
_R_IDLE = StallReason.IDLE

_AGE = attrgetter("age")


class StreamingMultiprocessor:
    """One GPU core (event-maintained issue loop)."""

    def __init__(self, sm_id: int, config: GPUConfig, stats: RunStats):
        self.sm_id = sm_id
        self.config = config
        self.stats = stats
        self.time: float = 0.0
        self.l1 = Cache(config.l1, name=f"sm{sm_id}.l1")
        self.const_cache = Cache(config.const_cache, name=f"sm{sm_id}.const")
        self.tex_cache = Cache(config.tex_cache, name=f"sm{sm_id}.tex")
        self.scheduler = build_scheduler(config.scheduler)
        self.ctas: list[CTA] = []
        #: warps visible to the scheduler; exited warps are removed
        #: eagerly.  Residence order is ascending ``age`` (CTAs only
        #: ever append warps), which the ready list relies on.
        self.warps: list[Warp] = []
        # Resource accounting for CTA admission.
        self.used_threads = 0
        self.used_regs = 0
        self.used_smem = 0
        #: dynamic instructions issued here; folded into
        #: ``stats.sm_instructions`` at finalize (cheaper than a dict
        #: update per instruction)
        self.issued_instructions = 0
        #: time-resolved sampler (set by the owning GPUSimulator; None
        #: when telemetry is off — every hook is a local None check)
        self._tel = None
        # Heap bookkeeping (owned by the GPU).
        self.in_heap = False
        self.dormant_since: float | None = None
        self.dormant_reason: StallReason | None = None
        # -- event-core state (see module docstring) --
        self._ready: list[Warp] = []
        self._wakes: list = []
        #: a selected-but-not-executed nonlocal decision ``(warp,
        #: instr)``: run-ahead stops *before* ops that touch shared
        #: state (L2/NoC/DRAM, grid bookkeeping) and re-queues itself
        #: so they execute in global (time, seq) order.
        self._deferred: tuple | None = None
        #: heap sequence number of the entry this SM pushed for its
        #: deferred decision; the decision executes only when exactly
        #: that entry pops, so FIFO tie-breaking matches the
        #: one-decision-per-pop schedule.
        self._deferred_seq = -1
        #: run-ahead time horizon (window end under the parallel core,
        #: see repro.sim.parallel): ``_run_local`` makes no decision at
        #: ``t >= _horizon``, and a blocked SM whose next wake falls at
        #: or past it parks as pseudo-dormant so the window barrier can
        #: resolve the true wake (which may involve a cross-shard
        #: completion) and attribute the stall in one sequential-
        #: identical chunk.  ``NEVER`` (the default) disables the gate:
        #: ``wk >= NEVER`` degenerates to the plain dormancy check.
        self._horizon: float = NEVER
        self._reason_counts: dict = {
            None: 0,
            _R_MEMORY: 0,
            _R_CONTROL: 0,
            _R_SYNC: 0,
            _R_FUNCTIONAL: 0,
        }

    # -- CTA admission ------------------------------------------------------
    def can_admit(self, kernel: KernelProgram) -> bool:
        """Would one more CTA of ``kernel`` fit right now?"""
        config = self.config
        if len(self.ctas) >= config.max_ctas_per_sm:
            return False
        if self.used_threads + kernel.cta_threads > config.max_threads_per_sm:
            return False
        regs = kernel.regs_per_thread * kernel.cta_threads
        if self.used_regs + regs > config.registers_per_sm:
            return False
        if self.used_smem + kernel.smem_per_cta > config.shared_mem_per_sm:
            return False
        return True

    def admit_cta(self, grid: Grid, start_time: float) -> CTA:
        """Instantiate and adopt the next CTA of ``grid``."""
        kernel = grid.kernel
        start = max(self.time, start_time)
        cta = grid.make_cta(start)
        self.ctas.append(cta)
        self.warps.extend(cta.warps)
        self.used_threads += kernel.cta_threads
        self.used_regs += kernel.regs_per_thread * kernel.cta_threads
        self.used_smem += kernel.smem_per_cta
        # Fold the new warps into the event-core structures.
        self._reason_counts[None] += len(cta.warps)
        t = self.time
        ready = self._ready
        wakes = self._wakes
        for warp in cta.warps:
            if warp.next_ready <= t:
                warp.in_ready = True
                insort(ready, warp, key=_AGE)
            else:
                heappush(wakes, (warp.next_ready, warp.age, warp))
        return cta

    def _release_cta(self, cta: CTA) -> None:
        kernel = cta.grid.kernel
        self.ctas.remove(cta)
        self.warps = [w for w in self.warps if w.cta is not cta]
        self.used_threads -= kernel.cta_threads
        self.used_regs -= kernel.regs_per_thread * kernel.cta_threads
        self.used_smem -= kernel.smem_per_cta

    @property
    def has_resident_work(self) -> bool:
        return bool(self.warps)

    # -- issue loop -----------------------------------------------------------
    def step(self, gpu, now: float, seq: int = -1) -> None:
        """One or more scheduling decisions at ``max(self.time, now)``.

        ``gpu`` is the owning :class:`~repro.sim.gpu.GPUSimulator`,
        used for memory access, device launches and completion hooks.
        ``seq`` is the heap sequence number of the popped entry; a
        pending deferred decision executes only when its own entry
        pops (stale wake entries are no-ops until then).

        With run-ahead enabled (``gpu._runahead``, non-CDP
        applications only) this executes every *SM-local* decision in
        one call and stops just before the next shared-state op; the
        classic gheap-gated path below handles everything else.
        """
        if now > self.time:
            self.time = now
        deferred = self._deferred
        if deferred is not None:
            if seq != self._deferred_seq:
                # A stale wake entry popped while a nonlocal decision
                # is queued under its own (time, seq): not our turn.
                return
            self._deferred = None
            self._deferred_seq = -1
            warp, instr = deferred
            self._execute(gpu, warp, instr, self.time)
            self.scheduler.issued(warp)
            if not warp.exited:
                self._settle(warp)
        if not self.warps:
            return
        if gpu._runahead:
            self._run_local(gpu)
            return

        t = self.time
        wakes = self._wakes
        if wakes and wakes[0][0] <= t:
            self._drain_wakes(t)
        ready = self._ready
        if not ready:
            self._account_stall(t)
            return

        scheduler = self.scheduler
        if len(ready) == 1:
            warp = scheduler.select_sole(ready[0])
            self._monopolize(gpu, warp)
            scheduler.issued(warp)
            return

        warp = scheduler.select(ready)
        try:
            instr = next(warp.trace)
        except StopIteration:  # pragma: no cover - traces must end with EXIT
            raise RuntimeError(
                f"trace of kernel {warp.cta.grid.kernel.name} ended "
                "without an EXIT instruction"
            ) from None
        self._execute(gpu, warp, instr, t)
        scheduler.issued(warp)
        if not warp.exited:
            self._settle(warp)

    def _run_local(self, gpu) -> None:
        """Run-ahead: execute SM-local decisions without the event heap.

        For applications that can never device-launch, the only state
        shared between SMs is the memory subsystem (NoC/L2/DRAM) plus
        grid dispatch bookkeeping.  ALU, control, CTA barriers,
        shared/param accesses, perfect-memory accesses, and cache
        accesses whose lines are all resident touch none of it, so
        their interleaving with other SMs is unobservable and this SM
        may retire them in one burst regardless of the global heap.

        The first *nonlocal* decision — a cache access that would miss
        (probed side-effect-free via ``contains_all``), or an
        EXIT/LAUNCH/DEVSYNC whose grid bookkeeping must stay globally
        ordered — is left selected-but-unexecuted in ``_deferred`` and
        this SM re-queues itself at the decision time; it executes when
        that exact entry pops, giving the same (time, seq) order the
        one-decision-per-pop schedule produces.
        """
        ready = self._ready
        wakes = self._wakes
        rc = self._reason_counts
        scheduler = self.scheduler
        stats = self.stats
        config = self.config
        int_latency = config.int_latency
        fp_latency = config.fp_latency
        sfu_latency = config.sfu_latency
        shared_latency = config.shared_latency
        perfect = config.perfect_memory
        count_instruction = stats.count_instruction
        count_memory = stats.count_memory
        stalls = stats.stalls
        const_cache = self.const_cache
        tex_cache = self.tex_cache
        l1 = self.l1
        tel = self._tel
        horizon = self._horizon
        issued = 0
        warp = None
        while True:
            t = self.time
            if t >= horizon:
                # Window gate (parallel core): every decision at or
                # past the horizon belongs to the next window.  Only
                # reached with the last warp fully settled — the fused
                # paths below never carry a selected warp across the
                # horizon (their jump targets are gated on it).
                break
            if warp is None:
                # -- pick the warp the one-decision loop would pick ----
                if ready:
                    if wakes and wakes[0][0] <= t:
                        self._drain_wakes(t)
                    if len(ready) == 1:
                        warp = scheduler.select_sole(ready[0])
                    else:
                        warp = scheduler.select(ready)
                    in_list = True
                elif wakes and wakes[0][0] <= t:
                    wake, _, w = heappop(wakes)
                    if w.exited or w.in_ready or w.next_ready != wake:
                        continue
                    if wakes and wakes[0][0] <= t:
                        # Several warps wake together: materialize the
                        # ready list and take the general path above.
                        w.in_ready = True
                        insort(ready, w, key=_AGE)
                        continue
                    # Dominant case: exactly one warp wakes and issues.
                    # It never enters the ready list (its membership is
                    # unobservable until the next decision).
                    warp = scheduler.select_sole(w)
                    in_list = False
                else:
                    # No ready warp and no due wake: the one-decision
                    # loop would peek the next live wake (_next_wake),
                    # attribute the gap (_dominant_reason + add_stall),
                    # jump, and on the next decision pop that same
                    # entry.  Fused here into one pass — the hottest
                    # path on the latency-bound benchmarks.
                    wk = NEVER
                    w = None
                    while wakes:
                        head = wakes[0]
                        w = head[2]
                        if w.exited or w.in_ready or w.next_ready != head[0]:
                            heappop(wakes)
                            continue
                        wk = head[0]
                        break
                    # _dominant_reason, inlined (ties: memory wins).
                    best = rc[_R_MEMORY]
                    dominant = _R_MEMORY
                    n = rc[_R_CONTROL]
                    if n > best:
                        best, dominant = n, _R_CONTROL
                    n = rc[_R_SYNC]
                    if n > best:
                        best, dominant = n, _R_SYNC
                    n = rc[_R_FUNCTIONAL]
                    if n > best:
                        best, dominant = n, _R_FUNCTIONAL
                    if rc[None] > best:
                        dominant = _R_IDLE
                    if wk >= horizon:
                        # No wake before the horizon (NEVER when the
                        # gate is off): park dormant with the dominant
                        # reason *at this decision time*; the waker —
                        # GPU or window barrier — charges [t, wake) in
                        # one chunk via wake_accounting, exactly the
                        # add_stall the jump below would have made.
                        self.dormant_since = t
                        self.dormant_reason = dominant
                        break
                    gap = int(wk - t)
                    if gap > 0:  # add_stall, inlined
                        key = dominant._value_
                        stalls[key] = stalls.get(key, 0) + gap
                        if tel is not None:
                            tel.stall(t, key, gap)
                    self.time = wk
                    t = wk
                    heappop(wakes)
                    if wakes and wakes[0][0] <= t:
                        # Several warps wake together: materialize the
                        # ready list and take the general path above.
                        w.in_ready = True
                        insort(ready, w, key=_AGE)
                        continue
                    warp = scheduler.select_sole(w)
                    in_list = False

            try:
                instr = next(warp.trace)
            except StopIteration:  # pragma: no cover - traces end with EXIT
                raise RuntimeError(
                    f"trace of kernel {warp.cta.grid.kernel.name} ended "
                    "without an EXIT instruction"
                ) from None
            op = instr.op
            if op is _INT or op is _FP or op is _SFU:
                repeat = instr.repeat
                if not warp.precounted:
                    count_instruction(op, instr.active_lanes, repeat)
                issued += repeat
                if tel is not None:
                    tel.issue(t, instr.active_lanes, repeat)
                old = warp.block_reason
                if old is not None:
                    rc[old] -= 1
                    rc[None] += 1
                    warp.block_reason = None
                if op is _INT:
                    latency = int_latency
                elif op is _FP:
                    latency = fp_latency
                else:
                    latency = sfu_latency
                nr = t + repeat - 1 + latency
                warp.next_ready = nr
                now = t + repeat
                self.time = now
                scheduler.issued(warp)
                if nr > now:
                    if in_list:
                        ready.remove(warp)
                        warp.in_ready = False
                    if nr < horizon and not ready \
                            and not (wakes and wakes[0][0] <= nr):
                        # The warp is provably the next decision: no
                        # ready peer and every queued wake is later
                        # (and the jump stays inside the window).
                        # Fuse the stall the next pick would attribute
                        # and reissue without the heap round trip.
                        best = rc[_R_MEMORY]
                        dominant = _R_MEMORY
                        n = rc[_R_CONTROL]
                        if n > best:
                            best, dominant = n, _R_CONTROL
                        n = rc[_R_SYNC]
                        if n > best:
                            best, dominant = n, _R_SYNC
                        n = rc[_R_FUNCTIONAL]
                        if n > best:
                            best, dominant = n, _R_FUNCTIONAL
                        if rc[None] > best:
                            dominant = _R_IDLE
                        gap = int(nr - now)
                        if gap > 0:
                            key = dominant._value_
                            stalls[key] = stalls.get(key, 0) + gap
                            if tel is not None:
                                tel.stall(now, key, gap)
                        self.time = nr
                        scheduler.select_sole(warp)
                        in_list = False
                        continue
                    heappush(wakes, (nr, warp.age, warp))
                elif not in_list:
                    warp.in_ready = True
                    insort(ready, warp, key=_AGE)
                warp = None
                continue

            if op is _LDST:
                mem = instr.mem
                space = mem.space
                if space is _SHARED:
                    # Scratchpad: inlined (hot in the shared-tiled
                    # kernels), identical to _execute_memory's path.
                    if not warp.precounted:
                        count_instruction(op, instr.active_lanes, 1)
                        count_memory(space, mem.transactions)
                    issued += 1
                    if tel is not None:
                        tel.issue(t, instr.active_lanes, 1)
                    now = t + 1
                    self.time = now
                    nr = t + shared_latency
                    warp.next_ready = nr
                    old = warp.block_reason
                    if old is not _R_MEMORY:
                        rc[old] -= 1
                        rc[_R_MEMORY] += 1
                        warp.block_reason = _R_MEMORY
                    scheduler.issued(warp)
                    if nr > now:
                        if in_list:
                            ready.remove(warp)
                            warp.in_ready = False
                        if nr < horizon and not ready \
                                and not (wakes and wakes[0][0] <= nr):
                            # Provably next (as in the ALU path): fuse
                            # the stall and skip the heap round trip.
                            # All warps block on memory here, so the
                            # dominant reason is never contested by a
                            # recount: rc changed by exactly this warp.
                            best = rc[_R_MEMORY]
                            dominant = _R_MEMORY
                            n = rc[_R_CONTROL]
                            if n > best:
                                best, dominant = n, _R_CONTROL
                            n = rc[_R_SYNC]
                            if n > best:
                                best, dominant = n, _R_SYNC
                            n = rc[_R_FUNCTIONAL]
                            if n > best:
                                best, dominant = n, _R_FUNCTIONAL
                            if rc[None] > best:
                                dominant = _R_IDLE
                            gap = int(nr - now)
                            if gap > 0:
                                key = dominant._value_
                                stalls[key] = stalls.get(key, 0) + gap
                                if tel is not None:
                                    tel.stall(now, key, gap)
                            self.time = nr
                            scheduler.select_sole(warp)
                            in_list = False
                            continue
                        heappush(wakes, (nr, warp.age, warp))
                    elif not in_list:
                        warp.in_ready = True
                        insort(ready, warp, key=_AGE)
                    warp = None
                    continue
                if not (space is _PARAM or perfect):
                    if space is _CONST:
                        cache = const_cache
                    elif space is _TEX:
                        cache = tex_cache
                    else:
                        cache = l1
                    if not cache.contains_all(mem.lines):
                        # Would miss: shared-state traffic — defer.
                        if not in_list:
                            warp.in_ready = True
                            insort(ready, warp, key=_AGE)
                        self._defer(gpu, warp, instr, t)
                        break
            elif op is not _CTRL and op is not _SYNC:
                # EXIT / LAUNCH / DEVSYNC: grid bookkeeping must stay
                # globally ordered — defer.
                if not in_list:
                    warp.in_ready = True
                    insort(ready, warp, key=_AGE)
                self._defer(gpu, warp, instr, t)
                break

            # Local op with non-inlined semantics (control, barriers,
            # param/const/tex/L1 all-hit, perfect memory).
            self._execute(gpu, warp, instr, t)
            scheduler.issued(warp)
            nr = warp.next_ready
            now = self.time
            if nr > now:
                if in_list:
                    ready.remove(warp)
                    warp.in_ready = False
                if nr != NEVER:
                    if nr < horizon and not ready \
                            and not (wakes and wakes[0][0] <= nr):
                        # Provably next (as in the ALU path).
                        best = rc[_R_MEMORY]
                        dominant = _R_MEMORY
                        n = rc[_R_CONTROL]
                        if n > best:
                            best, dominant = n, _R_CONTROL
                        n = rc[_R_SYNC]
                        if n > best:
                            best, dominant = n, _R_SYNC
                        n = rc[_R_FUNCTIONAL]
                        if n > best:
                            best, dominant = n, _R_FUNCTIONAL
                        if rc[None] > best:
                            dominant = _R_IDLE
                        gap = int(nr - now)
                        if gap > 0:
                            key = dominant._value_
                            stalls[key] = stalls.get(key, 0) + gap
                            if tel is not None:
                                tel.stall(now, key, gap)
                        self.time = nr
                        scheduler.select_sole(warp)
                        in_list = False
                        continue
                    heappush(wakes, (nr, warp.age, warp))
            elif not in_list:
                warp.in_ready = True
                insort(ready, warp, key=_AGE)
            warp = None
        self.issued_instructions += issued

    def _defer(self, gpu, warp: Warp, instr, t: float) -> None:
        """Queue a selected nonlocal decision at its global heap slot."""
        seq = next(gpu._heap_seq)
        heappush(gpu._heap, (t, self.sm_id, seq, self))
        self._deferred = (warp, instr)
        self._deferred_seq = seq

    def _monopolize(self, gpu, warp: Warp) -> None:
        """Keep issuing from the sole ready warp while the one-decision
        loop would provably do the same.

        The gates, re-checked after every issue in exactly the order
        the outer loops check them:

        1. nothing on the GPU's event heap is due (another SM — or a
           queued wake of this one — would run first otherwise);
        2. no other resident warp became ready (the scheduler would
           then have a real choice), via the ready list and the wake
           heap's minimum;
        3. when the warp blocks with every gate still clear, the stall
           decision the next ``step`` would make is fused inline.

        Breaking out at any point is identity-safe: the outer loop
        simply resumes one decision at a time from the same state.
        """
        config = self.config
        stats = self.stats
        rc = self._reason_counts
        gheap = gpu._heap
        wakes = self._wakes
        ready = self._ready
        trace = warp.trace
        precounted = warp.precounted
        int_latency = config.int_latency
        fp_latency = config.fp_latency
        sfu_latency = config.sfu_latency
        count_instruction = stats.count_instruction
        tel = self._tel
        inline_issued = 0
        while True:
            t = self.time
            try:
                instr = next(trace)
            except StopIteration:  # pragma: no cover - traces end with EXIT
                raise RuntimeError(
                    f"trace of kernel {warp.cta.grid.kernel.name} ended "
                    "without an EXIT instruction"
                ) from None
            op = instr.op
            if op is _INT or op is _FP or op is _SFU:
                # Closed-form macro-issue of the whole repeat block.
                repeat = instr.repeat
                if not precounted:
                    count_instruction(op, instr.active_lanes, repeat)
                inline_issued += repeat
                if tel is not None:
                    tel.issue(t, instr.active_lanes, repeat)
                old = warp.block_reason
                if old is not None:
                    rc[old] -= 1
                    rc[None] += 1
                    warp.block_reason = None
                if op is _INT:
                    latency = int_latency
                elif op is _FP:
                    latency = fp_latency
                else:
                    latency = sfu_latency
                next_ready = t + repeat - 1 + latency
                warp.next_ready = next_ready
                now = t + repeat
                self.time = now
            else:
                self._execute(gpu, warp, instr, t)
                if warp.exited:
                    break
                now = self.time
                next_ready = warp.next_ready
            # Gate 1: the GPU loop would hand control elsewhere.
            if gheap and gheap[0][0] <= now:
                self._settle(warp)
                break
            # Gate 2: the scheduler would see more than one candidate.
            if len(ready) != 1 or (wakes and wakes[0][0] <= now):
                self._settle(warp)
                break
            if next_ready > now:
                # Sole warp blocked: fuse the stall decision the next
                # step would have made.
                dominant = self._dominant_reason()
                wake = self._next_wake()
                if next_ready < wake:
                    wake = next_ready
                if wake == NEVER:
                    self.dormant_since = now
                    self.dormant_reason = dominant
                    self._settle(warp)
                    break
                gap = int(wake - now)
                stats.add_stall(dominant, gap)
                if tel is not None:
                    tel.stall(now, dominant._value_, gap)
                self.time = wake
                if wake != next_ready or (wakes and wakes[0][0] <= wake):
                    # Another warp wakes here (too): resume stepping.
                    self._settle(warp)
                    break
                # Gate 1 again, at the post-jump time.
                if gheap and gheap[0][0] <= wake:
                    break
        self.issued_instructions += inline_issued

    def _drain_wakes(self, t: float) -> None:
        """Move every due wake event into the ready list."""
        wakes = self._wakes
        ready = self._ready
        while wakes and wakes[0][0] <= t:
            wake, _, warp = heappop(wakes)
            # Stale entries — the warp exited, was woken earlier through
            # another path, or re-blocked to a different time — are
            # dropped lazily here (see DESIGN.md: they cannot point at a
            # warp that still owns the recorded wake time).
            if warp.exited or warp.in_ready or warp.next_ready != wake:
                continue
            warp.in_ready = True
            insort(ready, warp, key=_AGE)

    def _next_wake(self) -> float:
        """Earliest live wake time, dropping stale heap heads."""
        wakes = self._wakes
        while wakes:
            wake, _, warp = wakes[0]
            if warp.exited or warp.in_ready or warp.next_ready != wake:
                heappop(wakes)
                continue
            return wake
        return NEVER

    def _settle(self, warp: Warp) -> None:
        """Move an issued warp out of the ready list if it blocked."""
        nr = warp.next_ready
        if nr <= self.time:
            return
        ready = self._ready
        del ready[bisect_left(ready, warp.age, key=_AGE)]
        warp.in_ready = False
        if nr != NEVER:
            heappush(self._wakes, (nr, warp.age, warp))

    def _dominant_reason(self) -> StallReason:
        """The stall reason blocking the most resident warps.

        Ties break in a fixed priority order: memory is the paper's
        headline cause, so it wins ties.
        """
        rc = self._reason_counts
        best, dominant = rc[_R_MEMORY], _R_MEMORY
        n = rc[_R_CONTROL]
        if n > best:
            best, dominant = n, _R_CONTROL
        n = rc[_R_SYNC]
        if n > best:
            best, dominant = n, _R_SYNC
        n = rc[_R_FUNCTIONAL]
        if n > best:
            best, dominant = n, _R_FUNCTIONAL
        if rc[None] > best:
            dominant = _R_IDLE
        return dominant

    def _account_stall(self, t: float) -> None:
        """No warp ready: attribute the gap and jump to the next wake."""
        dominant = self._dominant_reason()
        wake = self._next_wake()
        if wake == NEVER:
            # Every warp waits on an external event (device sync /
            # barrier release from another path).  Go dormant; the GPU
            # attributes the dormant period when it wakes us.
            self.dormant_since = t
            self.dormant_reason = dominant
            return
        gap = int(wake - t)
        self.stats.add_stall(dominant, gap)
        if self._tel is not None:
            self._tel.stall(t, dominant._value_, gap)
        self.time = wake

    def wake_accounting(self, wake_time: float) -> None:
        """Charge a dormant period that just ended at ``wake_time``."""
        if self.dormant_since is not None:
            gap = int(wake_time - self.dormant_since)
            if gap > 0 and self.dormant_reason is not None and self.warps:
                self.stats.add_stall(self.dormant_reason, gap)
                if self._tel is not None:
                    self._tel.stall(
                        self.dormant_since, self.dormant_reason._value_, gap
                    )
            self.dormant_since = None
            self.dormant_reason = None
        self.time = max(self.time, wake_time)

    def wake_warp(self, warp: Warp, t: float) -> None:
        """An external event (CDP child completion) unblocks ``warp``."""
        reason = warp.block_reason
        if reason is not None:
            rc = self._reason_counts
            rc[reason] -= 1
            rc[None] += 1
            warp.block_reason = None
        warp.next_ready = t
        if not warp.in_ready:
            if t <= self.time:
                warp.in_ready = True
                insort(self._ready, warp, key=_AGE)
            else:
                heappush(self._wakes, (t, warp.age, warp))

    # -- instruction semantics -------------------------------------------------
    def _execute(self, gpu, warp: Warp, instr, t: float) -> None:
        config = self.config
        op = instr.op
        repeat = instr.repeat
        if not warp.precounted:
            self.stats.count_instruction(op, instr.active_lanes, repeat)
        self.issued_instructions += repeat
        tel = self._tel
        if tel is not None:
            # Issue decision at t; repeat blocks occupy [t, t+repeat).
            # Deliberately outside the precounted guard: replayed runs
            # pre-credit aggregates but still need time-resolved samples.
            tel.issue(t, instr.active_lanes, repeat)
        rc = self._reason_counts
        old = warp.block_reason

        if op is _INT or op is _FP or op is _SFU:
            if op is _INT:
                latency = config.int_latency
            elif op is _FP:
                latency = config.fp_latency
            else:
                latency = config.sfu_latency
            # A repeat block monopolizes the issue port for `repeat`
            # cycles; the dependent-use latency applies after the last.
            warp.next_ready = t + repeat - 1 + latency
            self.time = t + repeat
            if old is not None:
                rc[old] -= 1
                rc[None] += 1
                warp.block_reason = None
            return

        self.time = t + 1
        if op is _LDST:
            warp.block_reason = None
            self._execute_memory(gpu, warp, instr, t)
            new = warp.block_reason
            if new is not old:
                rc[old] -= 1
                rc[new] += 1
        elif op is _CTRL:
            warp.next_ready = t + config.branch_latency
            warp.block_reason = _R_CONTROL
            if old is not _R_CONTROL:
                rc[old] -= 1
                rc[_R_CONTROL] += 1
        elif op is _SYNC:
            self._execute_barrier(warp, t)
            new = warp.block_reason
            if new is not old:
                rc[old] -= 1
                rc[new] += 1
        elif op is _DEVSYNC:
            if warp.pending_children > 0:
                # Waiting for child kernels to be set up, run, and
                # drain — the CDP face of "functional done" (Fig 5
                # shows CDP and non-CDP breakdowns staying similar).
                warp.waiting_device_sync = True
                warp.next_ready = NEVER
                warp.block_reason = _R_FUNCTIONAL
                if old is not _R_FUNCTIONAL:
                    rc[old] -= 1
                    rc[_R_FUNCTIONAL] += 1
            else:
                warp.next_ready = t + 1
                warp.block_reason = None
                if old is not None:
                    rc[old] -= 1
                    rc[None] += 1
        elif op is _LAUNCH:
            gpu.device_launch(self, warp, instr.child, t)
            warp.next_ready = t + config.cdp_launch_cycles
            warp.block_reason = _R_FUNCTIONAL
            if old is not _R_FUNCTIONAL:
                rc[old] -= 1
                rc[_R_FUNCTIONAL] += 1
        elif op is _EXIT:
            warp.block_reason = None
            rc[old] -= 1  # the warp leaves the resident population
            self._execute_exit(gpu, warp, t)
        else:  # pragma: no cover - enum is closed
            raise AssertionError(f"unhandled op {op}")

    def _execute_memory(self, gpu, warp: Warp, instr, t: float) -> None:
        config = self.config
        mem = instr.mem
        space = mem.space
        if not warp.precounted:
            self.stats.count_memory(space, mem.transactions)

        if space is _SHARED:
            # On-chip scratchpad: unaffected by the Fig 15 perfect
            # memory-system experiment.
            warp.next_ready = t + config.shared_latency
            warp.block_reason = _R_MEMORY
            return

        if config.perfect_memory:
            # Zero-latency memory system: every access behaves like an
            # L1 hit (one transaction retired per port cycle).
            warp.next_ready = (
                t + config.l1.hit_latency + max(0, len(mem.lines) - 1)
            )
            return
        if space is _PARAM:
            # Parameter reads hit the constant path's dedicated storage.
            warp.next_ready = t + config.const_cache.hit_latency
            return

        port = 1 if config.l1_port_serialization else 0
        lines = mem.lines
        n = len(lines)
        store = mem.store
        if space is _CONST or space is _TEX:
            cache = self.const_cache if space is _CONST else self.tex_cache
            hit_latency = cache.config.hit_latency
            # The cache port retires one transaction per cycle.  The
            # all-hit prefix is probed in one call; const/tex caches
            # have no writeback sink, so the misses' L2/DRAM traffic
            # can be batched too (order preserved — see line_requests).
            k = cache.probe_hits(lines, store=store)
            if k == n:
                completion = t + (n - 1) * port + hit_latency
            else:
                completion = t + (k - 1) * port + hit_latency if k else t
                access = cache.access
                misses: list = []
                for i in range(k, n):
                    line = lines[i]
                    if access(line, store=store):
                        done = t + i * port + hit_latency
                        if done > completion:
                            completion = done
                    else:
                        misses.append((t + i * port, line))
                if misses:
                    done = gpu.memory.line_requests(self.sm_id, misses, store)
                    if done > completion:
                        completion = done
            warp.next_ready = completion
            warp.block_reason = _R_MEMORY
            return

        # GLOBAL / LOCAL through the L1, one transaction per cycle —
        # an uncoalesced access pays for all 32 of its transactions.
        # Stores are write-back write-validate: they allocate dirty in
        # the L1 without fetching; dirty evictions flow to L2/DRAM via
        # the writeback sink.
        l1 = self.l1
        hit_latency = config.l1.hit_latency
        tel = self._tel
        if tel is not None:
            # L1 samples are delta-captured around the access block
            # (probe_hits and access both bump the counters), all
            # attributed to the decision cycle t.
            _ls = l1.stats
            _a0 = _ls.accesses
            _m0 = _ls.misses
            _la0 = _ls.load_accesses
            _lm0 = _ls.load_misses
        if n == 1:
            # Fast path: coalesced accesses dominate every benchmark.
            line = lines[0]
            hit = l1.access(line, store=store)
            if store or hit:
                completion = t + hit_latency
            else:
                completion = gpu.memory.line_request(self.sm_id, line, False, t)
        else:
            # The L1's dirty evictions emit writebacks *during* access
            # calls, so only the leading all-hit prefix may batch —
            # the tail must interleave accesses and line requests in
            # the original order.
            k = l1.probe_hits(lines, store=store)
            if k == n:
                completion = t + (n - 1) * port + hit_latency
            else:
                completion = t + (k - 1) * port + hit_latency if k else t
                l1_access = l1.access
                line_request = gpu.memory.line_request
                sm_id = self.sm_id
                for i in range(k, n):
                    line = lines[i]
                    issue = t + i * port
                    hit = l1_access(line, store=store)
                    if store or hit:
                        done = issue + hit_latency
                    else:
                        done = line_request(sm_id, line, False, issue)
                    if done > completion:
                        completion = done
        if tel is not None:
            tel.cache(
                "l1",
                t,
                _ls.accesses - _a0,
                _ls.misses - _m0,
                _ls.load_accesses - _la0,
                _ls.load_misses - _lm0,
            )
        warp.next_ready = completion
        if completion - t > hit_latency:
            warp.block_reason = _R_MEMORY

    def _execute_barrier(self, warp: Warp, t: float) -> None:
        cta = warp.cta
        cta.barrier_arrived += 1
        if cta.barrier_ready():
            # Last arrival releases everyone.
            rc = self._reason_counts
            ready = self._ready
            nr = t + 1
            released = 0
            for peer in cta.warps:
                if peer.exited:
                    continue
                released += 1
                peer.next_ready = nr
                if peer is warp:
                    # The issuer's reason transition is accounted by
                    # the caller (_execute).
                    peer.block_reason = None
                    continue
                reason = peer.block_reason
                if reason is not None:
                    rc[reason] -= 1
                    rc[None] += 1
                    peer.block_reason = None
                if not peer.in_ready:
                    peer.in_ready = True
                    insort(ready, peer, key=_AGE)
            cta.barrier_arrived = 0
            if self._tel is not None:
                self._tel.event(
                    "barrier", "release", t, sm=self.sm_id, warps=released
                )
        else:
            warp.next_ready = NEVER
            warp.block_reason = _R_SYNC

    def _execute_exit(self, gpu, warp: Warp, t: float) -> None:
        warp.exited = True
        self.warps.remove(warp)
        # An issuing warp is always in the ready list; take it out.
        ready = self._ready
        del ready[bisect_left(ready, warp.age, key=_AGE)]
        warp.in_ready = False
        self.scheduler.retired(warp)
        cta = warp.cta
        if cta.live_warps == 0:
            self._release_cta(cta)
            # Grid bookkeeping (retire count, completion, backfill)
            # lives on the GPU so the parallel core can stage it at a
            # shard boundary and replay it in global order.
            gpu.cta_finished(self, cta.grid, t, cta)
        elif cta.barrier_arrived and cta.barrier_ready():
            # An exiting warp can satisfy a barrier its peers wait on.
            rc = self._reason_counts
            nr = t + 1
            released = 0
            for peer in cta.warps:
                if not peer.exited and peer.block_reason is _R_SYNC:
                    released += 1
                    peer.next_ready = nr
                    peer.block_reason = None
                    rc[_R_SYNC] -= 1
                    rc[None] += 1
                    if not peer.in_ready:
                        peer.in_ready = True
                        insort(ready, peer, key=_AGE)
            cta.barrier_arrived = 0
            if self._tel is not None:
                self._tel.event(
                    "barrier", "release", t, sm=self.sm_id, warps=released
                )
