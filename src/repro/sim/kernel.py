"""Kernel programs: the unit the simulator executes.

A :class:`KernelProgram` declares its static resources (threads per
CTA, registers, shared memory, constant footprint — the Table III
properties) and generates a per-warp instruction trace.  Benchmarks in
:mod:`repro.kernels` subclass it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.isa.instructions import WARP_SIZE, WarpInstruction


@dataclass(frozen=True)
class WarpContext:
    """Identity of one warp within a launch, passed to trace generators."""

    cta_id: int
    warp_id: int  # within the CTA
    warps_per_cta: int
    num_ctas: int
    args: dict = field(default_factory=dict)

    @property
    def global_warp(self) -> int:
        """Warp index across the whole grid."""
        return self.cta_id * self.warps_per_cta + self.warp_id


class KernelProgram:
    """Base class for benchmark kernels.

    Parameters mirror Table III plus the per-thread register count and
    per-CTA shared memory the occupancy calculator needs.
    """

    #: When False, instruction/memory-mix totals for this kernel's warps
    #: were already credited at trace-materialization time and the SM
    #: must not count them again at issue.  Only
    #: :class:`repro.sim.replay.ReplayKernel` clears this.
    counts_inline = True

    def __init__(
        self,
        name: str,
        cta_threads: int,
        regs_per_thread: int = 32,
        smem_per_cta: int = 0,
        const_bytes: int = 0,
    ):
        if cta_threads <= 0:
            raise ValueError("cta_threads must be positive")
        if cta_threads % WARP_SIZE:
            raise ValueError("cta_threads must be a multiple of the warp size")
        self.name = name
        self.cta_threads = cta_threads
        self.regs_per_thread = regs_per_thread
        self.smem_per_cta = smem_per_cta
        self.const_bytes = const_bytes

    @property
    def warps_per_cta(self) -> int:
        return self.cta_threads // WARP_SIZE

    @property
    def uses_shared_memory(self) -> bool:
        return self.smem_per_cta > 0

    @property
    def uses_constant_memory(self) -> bool:
        return self.const_bytes > 0

    def warp_trace(self, ctx: WarpContext) -> Iterator[WarpInstruction]:
        """Yield the dynamic instructions of one warp.

        Subclasses must end every trace with ``builder.exit()``.
        """
        raise NotImplementedError

    def trace_template(self, ctx: WarpContext):
        """Templating contract for one warp: ``(key, bases)`` or None.

        Warps of this kernel whose ``key`` matches must emit
        structurally identical instruction streams (same ops, masks,
        repeats, memory spaces and per-access line counts, no device
        launches) in which every memory line index is either a
        class-wide constant or ``bases[r] + d`` with the same ``(r,
        d)`` at the same trace position for every member.  The replay
        layer (:mod:`repro.sim.replay`) then runs the generator once
        per class and instantiates other members by address relocation
        — see :mod:`repro.isa.template` for how the contract is probed
        and enforced.

        Return None for warps whose traces are genuinely
        data-dependent (e.g. hash-scattered index walks) or that issue
        device-side launches; they are always generated live.  The
        default opts the whole kernel out.
        """
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<KernelProgram {self.name} cta={self.cta_threads}>"
