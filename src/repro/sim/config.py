"""Simulator configuration — every knob from Tables I and II.

The bolded values in the paper's tables (the RTX 3070 hardware
configuration, also the simulation baseline) are the defaults returned
by :func:`rtx3070_baseline`.  Sweep lists used by the figure harnesses
live in :mod:`repro.core.config_presets`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class CacheConfig:
    """A set-associative cache (Table I: LRU, 128B lines)."""

    size_bytes: int
    assoc: int
    line_bytes: int = 128
    hit_latency: int = 28

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError("cache size must be non-negative")
        if self.size_bytes:
            lines = self.size_bytes // self.line_bytes
            if lines == 0:
                raise ValueError("cache smaller than one line")
            if self.assoc <= 0:
                raise ValueError("associativity must be positive")

    @property
    def num_sets(self) -> int:
        if self.size_bytes == 0:
            return 0
        lines = self.size_bytes // self.line_bytes
        return max(1, lines // self.assoc)

    @property
    def disabled(self) -> bool:
        return self.size_bytes == 0


@dataclass(frozen=True)
class DRAMConfig:
    """One memory partition's DRAM channel.

    ``controller`` is ``"frfcfs"`` (baseline), ``"fifo"``, or
    ``"ooo128"`` (FR-FCFS with a 128-entry reorder window) — the three
    Table I memory-controller settings.
    """

    controller: str = "frfcfs"
    banks: int = 16
    row_bytes: int = 2048
    row_hit_latency: int = 40
    row_miss_latency: int = 100
    burst_cycles: int = 4  # one 128B line over a 32B/cycle pin bus
    queue_entries: int = 64

    def __post_init__(self) -> None:
        if self.controller not in ("frfcfs", "fifo", "ooo128"):
            raise ValueError(f"unknown controller {self.controller!r}")
        if self.banks <= 0:
            raise ValueError("need at least one bank")


@dataclass(frozen=True)
class NoCConfig:
    """Interconnect between SMs and memory partitions (Table II)."""

    topology: str = "xbar"  # xbar | mesh | fattree | butterfly
    router_delay: int = 0  # extra pipeline cycles per hop (Fig 21)
    channel_bytes: int = 40  # flit size / channel width (Fig 22)
    base_latency: int = 10  # wire + arbitration minimum, both directions

    def __post_init__(self) -> None:
        if self.topology not in ("xbar", "mesh", "fattree", "butterfly"):
            raise ValueError(f"unknown topology {self.topology!r}")
        if self.channel_bytes <= 0:
            raise ValueError("channel width must be positive")


@dataclass(frozen=True)
class PCIConfig:
    """Host<->device copy engine (cudaMemcpy cost model)."""

    latency_cycles: int = 2000  # fixed per-call overhead
    bytes_per_cycle: float = 10.0  # ~16 GB/s at 1.5 GHz

    def __post_init__(self) -> None:
        if self.bytes_per_cycle <= 0:
            raise ValueError("PCI bandwidth must be positive")


@dataclass(frozen=True)
class GPUConfig:
    """Full device configuration (Table I bolded values by default)."""

    num_sms: int = 78
    warp_size: int = 32
    max_ctas_per_sm: int = 32
    max_threads_per_sm: int = 1536
    registers_per_sm: int = 65536
    shared_mem_per_sm: int = 100 * 1024
    scheduler: str = "lrr"  # lrr | gto | old | 2lv

    l1: CacheConfig = field(default_factory=lambda: CacheConfig(128 * 1024, 256))
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(4 * 1024 * 1024, 16, hit_latency=120)
    )
    const_cache: CacheConfig = field(
        default_factory=lambda: CacheConfig(64 * 1024, 256, hit_latency=8)
    )
    tex_cache: CacheConfig = field(
        default_factory=lambda: CacheConfig(128 * 1024, 64, hit_latency=30)
    )

    num_mem_partitions: int = 8
    dram: DRAMConfig = field(default_factory=DRAMConfig)
    noc: NoCConfig = field(default_factory=NoCConfig)
    pci: PCIConfig = field(default_factory=PCIConfig)

    # Execution latencies (cycles until the warp may issue again).
    int_latency: int = 4
    fp_latency: int = 4
    sfu_latency: int = 16
    shared_latency: int = 24
    branch_latency: int = 8

    # Kernel-launch costs.
    host_launch_cycles: int = 2000  # driver + runtime setup per host launch
    cdp_launch_cycles: int = 600  # device-runtime child launch overhead
    cdp_dispatch_cycles: int = 400  # delay until a child grid is runnable

    #: Zero-latency memory system (Fig 15's "perfect memory").
    perfect_memory: bool = False

    #: Interval length (in cycles) of the time-resolved telemetry
    #: sampler (:mod:`repro.sim.telemetry`).  ``0`` (the default)
    #: disables telemetry entirely — the hot paths then pay only a
    #: ``None`` check per attribution point.  Positive values attach a
    #: :class:`~repro.sim.telemetry.Telemetry` to the simulator and
    #: store its summary on ``RunStats.telemetry`` at finalize.
    telemetry_interval: int = 0

    #: Use the event-maintained issue loop (incremental ready tracking,
    #: macro-issue batching, memory fast path — see DESIGN.md "event
    #: core").  ``False`` selects the scan-per-decision reference SM,
    #: kept for golden bit-identity tests and wall-clock benchmarking;
    #: both produce field-for-field identical :class:`RunStats`.
    event_core: bool = True

    #: Shard the SM array across N workers inside one simulation
    #: (window-barrier parallel core, see :mod:`repro.sim.parallel`
    #: and DESIGN.md "parallel core").  ``1`` (the default) keeps the
    #: sequential event loop; ``N > 1`` partitions SMs round-robin
    #: over N shards that advance independently to each window
    #: boundary.  Results stay bit-identical to the sequential core.
    parallel_shards: int = 1
    #: Window width in cycles for the parallel core.  ``0`` (default)
    #: auto-tunes to the safe bound — the minimum cross-SM interaction
    #: latency (NoC request leg + L2 hit), below which no shard can
    #: observe another shard's same-window traffic.  Explicit values
    #: above the safe bound are rejected unless ``parallel_relaxed``.
    window_cycles: int = 0
    #: Opt-in relaxed synchronization: allow windows larger than the
    #: safe bound (fewer barriers, bounded timing skew).  Results are
    #: then approximate and excluded from the golden identity locks.
    parallel_relaxed: bool = False
    #: Shard execution backend: ``auto`` prefers forked shard worker
    #: processes (real multi-core speedup under the GIL — see
    #: :mod:`repro.sim.parallel_proc`) when the application is
    #: eligible and more than one CPU is available, degrading to
    #: threads, then inline; ``processes`` / ``threads`` / ``inline``
    #: force a backend (``processes`` still falls back to threads for
    #: ineligible applications — CDP, observers attached, partial
    #: dispatch).  All backends produce identical results; ``inline``
    #: runs the shards sequentially (useful for debugging).
    parallel_executor: str = "auto"

    #: Sampled-estimation mode (:mod:`repro.sim.sampled`).  ``0.0``
    #: (the default) runs the exact cycle-accurate core.  A positive
    #: fraction simulates a stratified sample of CTAs on a
    #: proportionally scaled machine and extrapolates whole-run stats
    #: with confidence intervals — go through
    #: :func:`repro.sim.sampled.estimate_application` (or
    #: ``repro run --estimate``); ``GPUSimulator.run_application``
    #: rejects configs with a positive fraction to catch misuse.
    sample_fraction: float = 0.0
    #: Deterministic seed for CTA sampling.  The same
    #: ``(app, config, sample_seed)`` always yields the same
    #: :class:`~repro.sim.sampled.EstimatedRunStats`, regardless of
    #: ``--jobs`` / ``--workers`` (no global RNG state is touched).
    sample_seed: int = 0
    #: Minimum CTAs sampled per equivalence class (stratum), so rare
    #: classes are never extrapolated from zero observations.
    sample_min_per_class: int = 2
    #: Cap on host launches simulated per launch stratum (``0`` =
    #: uncapped).  Stratum-rate sampling error shrinks with the
    #: absolute sample size, not the fraction, so apps issuing
    #: thousands of similar launches (NvB) gain nothing past a few
    #: dozen observations — the cap is what lets launch-heavy apps
    #: beat the ``1/sample_fraction`` speedup ceiling.
    sample_max_launches_per_class: int = 24

    # Ablation switches (defaults model the hardware; see DESIGN.md).
    #: Host-to-device copies invalidate cached device data (the paper's
    #: inter-kernel locality-loss observation).
    flush_on_memcpy: bool = True
    #: SM-side caches retire one transaction per cycle, so uncoalesced
    #: accesses pay for every line they touch.
    l1_port_serialization: bool = True

    def __post_init__(self) -> None:
        if self.num_sms <= 0:
            raise ValueError("need at least one SM")
        if self.scheduler not in ("lrr", "gto", "old", "2lv"):
            raise ValueError(f"unknown scheduler {self.scheduler!r}")
        if self.num_mem_partitions <= 0:
            raise ValueError("need at least one memory partition")
        if self.telemetry_interval < 0:
            raise ValueError("telemetry interval must be >= 0 (0 = off)")
        if self.parallel_shards < 1:
            raise ValueError("parallel_shards must be >= 1")
        if self.window_cycles < 0:
            raise ValueError("window_cycles must be >= 0 (0 = auto)")
        if self.parallel_executor not in (
            "auto", "threads", "processes", "inline"
        ):
            raise ValueError(
                f"unknown parallel executor {self.parallel_executor!r}"
            )
        if not 0.0 <= self.sample_fraction <= 1.0:
            raise ValueError("sample_fraction must be in [0, 1]")
        if self.sample_min_per_class < 1:
            raise ValueError("sample_min_per_class must be >= 1")
        if self.sample_max_launches_per_class < 0:
            raise ValueError(
                "sample_max_launches_per_class must be >= 0 (0 = uncapped)"
            )

    def with_(self, **changes) -> "GPUConfig":
        """A copy with fields replaced (sweep helper)."""
        return replace(self, **changes)


def rtx3070_baseline(**overrides) -> GPUConfig:
    """The paper's baseline: bolded Table I values on an RTX 3070."""
    return GPUConfig(**overrides)


def rtx3090_config(**overrides) -> GPUConfig:
    """A GA102-class device: more SMs, bigger L2, wider memory system."""
    params: dict = dict(
        num_sms=82,
        l2=CacheConfig(6 * 1024 * 1024, 16, hit_latency=120),
        num_mem_partitions=12,
        shared_mem_per_sm=100 * 1024,
    )
    params.update(overrides)
    return GPUConfig(**params)


def a100_config(**overrides) -> GPUConfig:
    """An GA100-class compute device: 108 SMs, 40MB L2, HBM-like DRAM."""
    params: dict = dict(
        num_sms=108,
        max_threads_per_sm=2048,
        registers_per_sm=65536,
        shared_mem_per_sm=164 * 1024,
        l2=CacheConfig(40 * 1024 * 1024, 16, hit_latency=140),
        num_mem_partitions=16,
        dram=DRAMConfig(row_hit_latency=30, row_miss_latency=80,
                        burst_cycles=2),
    )
    params.update(overrides)
    return GPUConfig(**params)
