"""Process shard backend: forked workers for the window-barrier core.

The thread executor in :mod:`repro.sim.parallel` is bit-identical but
GIL-bound — shards serialize on the interpreter lock, so ``--workers
N`` buys nothing on stock CPython.  This module runs each shard in a
**forked worker process** instead:

- **Fork inheritance, no warp pickling.**  The driver forks *after*
  the shards are built, so every worker inherits the cached
  application, the instantiated SM/cache structures, and the shard
  partitioning copy-on-write.  Nothing simulation-sized ever crosses
  the process boundary; per window only the staged cross-shard
  interactions travel.
- **Replicated deterministic dispatch.**  CTA placement in the
  sequential core is a pure function of the kernel's resource needs on
  an idle machine (host-synchronous apps fully dispatch every grid
  from empty — checked per launch before forking).
  :func:`plan_dispatch` mirrors ``GPUSimulator._dispatch_pending``'s
  least-loaded rule, and both the parent and every worker walk the
  same plan: workers admit the CTAs owned by their SMs (bumping
  ``grid.next_cta`` past remote ones so CTA ids — and therefore trace
  addresses — stay global), the parent only keeps grid bookkeeping.
- **Compact binary channel.**  Parent → worker ops are tagged frames
  (``RUN w_end``, ``DELIVER completions``, ``SUBMIT ordinal avail``,
  ``FLUSH``, ``FINALIZE``, ``CLOSE``); worker → parent frames carry
  the window's staged interactions (struct-packed, one ``(time,
  sm_id, k, kind)`` header per entry), the shard's next heap minimum,
  a pickled finalize payload (per-shard ``RunStats`` / ``Telemetry`` /
  per-SM cache stats), or a pickled exception + traceback.  Transport
  is ``multiprocessing.Pipe`` by default; ``REPRO_PROC_TRANSPORT=ring``
  selects the shared-memory SPSC ring (measured in
  ``benchmarks/bench_perf.py`` — pipes win on this workload's frame
  sizes, so they stay the default).
- **Exact replay at the barrier.**  The parent is the sole owner of
  the memory subsystem and grid bookkeeping: it k-way merges the
  workers' staged frames by ``(time, sm_id, k)`` and replays them
  against the real NoC/L2/DRAM — byte-for-byte the same call sequence
  as the sequential core, so bit-identity extends through
  ``Telemetry.absorb`` / ``RunStats.merge`` unchanged (locked by
  tests/sim/test_parallel_golden.py).
- **Failure propagation.**  A worker exception ships back pickled
  with its traceback and re-raises in the parent; a dead worker
  (killed, OOM) surfaces as :class:`SimulationDeadlock` at the next
  barrier; any error — including ``KeyboardInterrupt`` — terminates
  and reaps all workers before propagating.

Eligibility is checked up front by :func:`try_install_process_driver`
(fork available, run-ahead application, no observers, windowed mode
exact or relaxed, every launch fully dispatches); ineligible runs fall
back to the in-process :class:`~repro.sim.parallel.WindowBarrierDriver`
— never a mid-run backend switch.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import signal
import struct
import time
import traceback
from heapq import heappush, merge as _kway_merge

from repro.sim.gpu import SimulationDeadlock
from repro.sim.launch import HostLaunch
from repro.sim.parallel import (
    _BATCH,
    _CTA,
    _REQ,
    _WB,
    WindowBarrierDriver,
    resolve_window,
)
from repro.sim.warp import NEVER, Grid

# -- wire protocol ----------------------------------------------------------
# Parent -> worker op frames (first byte):
_OP_RUN = b"R"  # + f8 w_end                   -> staged frame
_OP_DELIVER = b"D"  # + u4 n + n*f8 completions -> heap-min frame
_OP_SUBMIT = b"G"  # + u4 ordinal + f8 avail    -> submit-reply frame
_OP_FLUSH = b"X"  # (no reply)
_OP_FINALIZE = b"F"  # -> pickled finalize frame
_OP_CLOSE = b"Q"  # (no reply; worker exits)
# Worker -> parent reply tags (first byte):
_TAG_STAGED = b"S"
_TAG_MIN = b"M"
_TAG_FINAL = b"F"
_TAG_ERROR = b"E"  # + pickle((exception, traceback_text))

_F8 = struct.Struct("<d")
_U4 = struct.Struct("<I")
#: staged-entry header: key time (f8), key sm_id (i4, -1 sentinel ok),
#: key k (u4), kind (u1)
_HDR = struct.Struct("<diIB")
_P_REQ = struct.Struct("<iqBd")  # sm_id, line, store, now
_P_WB = struct.Struct("<iqd")  # sm_id, line, now
_P_CTA = struct.Struct("<id")  # sm_id, t
_P_BATCH = struct.Struct("<iBI")  # sm_id, store, n_entries
_P_ENTRY = struct.Struct("<dq")  # issue_time, line
_SUBMIT = struct.Struct("<Id")  # launch ordinal, available_time
_SUBMIT_REPLY = struct.Struct("<dBd")  # heap_min, has_start, start_time


def _encode_staged(staged) -> bytes:
    """Pack one window's staged interactions into a ``b"S"`` frame."""
    buf = bytearray(_TAG_STAGED)
    buf += _U4.pack(len(staged))
    hdr = _HDR.pack
    for (t, sm_key, k), kind, payload, _slot in staged:
        buf += hdr(t, sm_key, k, kind)
        if kind == _REQ:
            sm_id, line, store, now = payload
            buf += _P_REQ.pack(sm_id, line, 1 if store else 0, now)
        elif kind == _BATCH:
            sm_id, entries, store = payload
            buf += _P_BATCH.pack(sm_id, 1 if store else 0, len(entries))
            pack_entry = _P_ENTRY.pack
            for issue, line in entries:
                buf += pack_entry(issue, line)
        elif kind == _WB:
            buf += _P_WB.pack(*payload)
        else:  # _CTA: payload is (sm, grid, t, cta); only (sm_id, t) travel
            sm, _grid, t_done, _cta = payload
            buf += _P_CTA.pack(sm.sm_id, t_done)
    return bytes(buf)


def _decode_staged(frame: bytes, origin: int) -> list:
    """Unpack a ``b"S"`` frame into ``(key, kind, payload, origin)``."""
    (count,) = _U4.unpack_from(frame, 1)
    offset = 1 + _U4.size
    out = []
    hdr = _HDR
    for _ in range(count):
        t, sm_key, k, kind = hdr.unpack_from(frame, offset)
        offset += hdr.size
        if kind == _REQ:
            sm_id, line, store, now = _P_REQ.unpack_from(frame, offset)
            offset += _P_REQ.size
            payload = (sm_id, line, bool(store), now)
        elif kind == _BATCH:
            sm_id, store, n = _P_BATCH.unpack_from(frame, offset)
            offset += _P_BATCH.size
            entries = []
            unpack_entry = _P_ENTRY.unpack_from
            for _ in range(n):
                entries.append(unpack_entry(frame, offset))
                offset += _P_ENTRY.size
            payload = (sm_id, tuple(entries), bool(store))
        elif kind == _WB:
            payload = _P_WB.unpack_from(frame, offset)
            offset += _P_WB.size
        else:  # _CTA
            payload = _P_CTA.unpack_from(frame, offset)
            offset += _P_CTA.size
        out.append(((t, sm_key, k), kind, payload, origin))
    return out


# -- transports -------------------------------------------------------------
class _PipeTransport:
    """One duplex ``multiprocessing.Pipe`` per shard (the default)."""

    kind = "pipe"

    def __init__(self, num_shards: int):
        self._pairs = [multiprocessing.Pipe(duplex=True)
                       for _ in range(num_shards)]

    def child_channel(self, index: int):
        # Close every fd this worker does not own: the parent ends, and
        # the other workers' child ends — otherwise a dead sibling's
        # pipe never reaches EOF in the parent.
        for j, (parent_end, child_end) in enumerate(self._pairs):
            parent_end.close()
            if j != index:
                child_end.close()
        return self._pairs[index][1]

    def parent_channels(self, alive_fns) -> list:
        for _parent_end, child_end in self._pairs:
            child_end.close()
        return [parent_end for parent_end, _child_end in self._pairs]

    def destroy(self) -> None:
        pass


class _Ring:
    """One direction of a shared-memory SPSC byte ring.

    Layout at ``offset``: head (u8, bytes consumed), tail (u8, bytes
    written), then ``capacity`` data bytes.  Indices grow
    monotonically; positions are ``index % capacity``.  Frames are
    ``u4 length + payload`` and stream through chunked (frames larger
    than the ring still pass).
    """

    def __init__(self, buf, offset: int, capacity: int):
        self._buf = buf
        self._head = offset
        self._tail = offset + 8
        self._base = offset + 16
        self._capacity = capacity

    def _load(self, off: int) -> int:
        return int.from_bytes(bytes(self._buf[off:off + 8]), "little")

    def _store(self, off: int, value: int) -> None:
        self._buf[off:off + 8] = value.to_bytes(8, "little")

    def write(self, data: bytes, alive) -> None:
        buf, base, capacity = self._buf, self._base, self._capacity
        total = len(data)
        sent = 0
        spins = 0
        while sent < total:
            head = self._load(self._head)
            tail = self._load(self._tail)
            free = capacity - (tail - head)
            if free <= 0:
                spins = _ring_wait(spins, alive)
                continue
            spins = 0
            n = min(free, total - sent)
            pos = tail % capacity
            first = min(n, capacity - pos)
            buf[base + pos:base + pos + first] = data[sent:sent + first]
            if n > first:
                buf[base:base + n - first] = data[sent + first:sent + n]
            self._store(self._tail, tail + n)
            sent += n

    def read_exact(self, n: int, alive) -> bytes:
        buf, base, capacity = self._buf, self._base, self._capacity
        out = bytearray()
        spins = 0
        while len(out) < n:
            head = self._load(self._head)
            tail = self._load(self._tail)
            available = tail - head
            if available <= 0:
                spins = _ring_wait(spins, alive)
                continue
            spins = 0
            take = min(available, n - len(out))
            pos = head % capacity
            first = min(take, capacity - pos)
            out += buf[base + pos:base + pos + first]
            if take > first:
                out += buf[base:base + take - first]
            self._store(self._head, head + take)
        return bytes(out)


def _ring_wait(spins: int, alive) -> int:
    """Backoff between ring polls; EOF when the peer is gone."""
    spins += 1
    if spins > 100:
        if alive is not None and not alive():
            raise EOFError("ring peer process is gone")
        time.sleep(0.0002)
    return spins


class RingChannel:
    """Connection-compatible view over one end of a ring pair."""

    def __init__(self, out_ring: _Ring, in_ring: _Ring, alive=None):
        self._out = out_ring
        self._in = in_ring
        self._alive = alive

    def send_bytes(self, data: bytes) -> None:
        self._out.write(_U4.pack(len(data)) + data, self._alive)

    def recv_bytes(self) -> bytes:
        (n,) = _U4.unpack(self._in.read_exact(4, self._alive))
        return self._in.read_exact(n, self._alive)

    def close(self) -> None:  # shared memory is owned by the transport
        pass


class _RingTransport:
    """Two SPSC rings per shard in one shared-memory block."""

    kind = "ring"

    def __init__(self, num_shards: int, capacity: int = 1 << 20):
        from multiprocessing import shared_memory

        self._capacity = capacity
        stride = 2 * (capacity + 16)
        self._shm = shared_memory.SharedMemory(
            create=True, size=stride * num_shards
        )
        self._stride = stride
        self._destroyed = False

    def _rings(self, index: int):
        base = index * self._stride
        down = _Ring(self._shm.buf, base, self._capacity)  # parent -> child
        up = _Ring(self._shm.buf, base + self._capacity + 16, self._capacity)
        return down, up

    def child_channel(self, index: int):
        ppid = os.getppid()
        down, up = self._rings(index)
        return RingChannel(up, down, alive=lambda: os.getppid() == ppid)

    def parent_channels(self, alive_fns) -> list:
        channels = []
        for index, alive in enumerate(alive_fns):
            down, up = self._rings(index)
            channels.append(RingChannel(down, up, alive=alive))
        return channels

    def destroy(self) -> None:
        if self._destroyed:
            return
        self._destroyed = True
        try:
            self._shm.close()
        except Exception:
            pass
        try:
            self._shm.unlink()
        except Exception:
            pass


def make_transport(kind: str, num_shards: int):
    if kind == "ring":
        return _RingTransport(num_shards)
    return _PipeTransport(num_shards)


# -- deterministic dispatch mirror ------------------------------------------
def plan_dispatch(gpu, kernel, num_ctas: int) -> list[int]:
    """CTA -> SM placement ``_dispatch_pending`` makes from an idle machine.

    Mirrors ``sm.can_admit`` resource checks and the least-loaded
    ``min(candidates, key=(used_threads, sm_id))`` rule: an ascending
    scan keeping the first strict minimum reproduces ``min``'s
    tie-break exactly.  Returns one ``sm_id`` per CTA in admission
    order; shorter than ``num_ctas`` means the grid cannot fully
    dispatch (the process backend then declines the application).
    """
    config = gpu.config
    n = len(gpu.sms)
    cta_threads = kernel.cta_threads
    cta_regs = kernel.regs_per_thread * cta_threads
    cta_smem = kernel.smem_per_cta
    max_ctas = config.max_ctas_per_sm
    max_threads = config.max_threads_per_sm
    max_regs = config.registers_per_sm
    max_smem = config.shared_mem_per_sm
    ctas = [0] * n
    threads = [0] * n
    plan: list[int] = []
    for _ in range(num_ctas):
        best = -1
        best_threads = 0
        for sm_id in range(n):
            used = threads[sm_id]
            if best >= 0 and used >= best_threads:
                continue
            if ctas[sm_id] >= max_ctas:
                continue
            if used + cta_threads > max_threads:
                continue
            if ctas[sm_id] * cta_regs + cta_regs > max_regs:
                continue
            if ctas[sm_id] * cta_smem + cta_smem > max_smem:
                continue
            best = sm_id
            best_threads = used
        if best < 0:
            break
        plan.append(best)
        ctas[best] += 1
        threads[best] += cta_threads
    return plan


class _OpsApp:
    """Application wrapper replaying a pre-materialized host program.

    The eligibility scan must walk the host ops before forking (to
    plan every launch), and stateful generators cannot be walked
    twice — so the scan materializes them once and the simulator runs
    this wrapper.
    """

    def __init__(self, ops: list, app):
        self._ops = ops
        self.name = getattr(app, "name", "app")
        self.may_device_launch = getattr(app, "may_device_launch", True)

    def host_program(self):
        return iter(self._ops)


def try_install_process_driver(gpu, app):
    """Install :class:`ProcessShardDriver` on ``gpu`` when eligible.

    Returns the (wrapped) application to run, or ``None`` when the
    run must fall back to the in-process driver: no ``fork`` on this
    platform, a CDP-capable application, observers attached (the
    sampled estimator's hooks cannot cross a process boundary),
    windowed execution disabled, or a launch that cannot fully
    dispatch from an idle machine.
    """
    config = gpu.config
    if not hasattr(os, "fork"):  # pragma: no cover - posix-only repo
        return None
    if not config.event_core or getattr(app, "may_device_launch", True):
        return None
    if gpu.cta_observer is not None or gpu.launch_observer is not None:
        return None
    if max(1, min(config.parallel_shards, len(gpu.sms))) < 2:
        return None
    # Same validation (and the same ValueError on unsafe explicit
    # windows) as the in-process driver.
    _window, _safe, _exact, enabled = resolve_window(gpu)
    if not enabled:
        return None
    ops = list(app.host_program())
    launches = [op.launch for op in ops if isinstance(op, HostLaunch)]
    plans = []
    memo: dict = {}
    for launch in launches:
        kernel = launch.kernel
        key = (
            kernel.cta_threads,
            kernel.regs_per_thread,
            kernel.smem_per_cta,
            launch.num_ctas,
        )
        plan = memo.get(key)
        if plan is None:
            plan = memo[key] = plan_dispatch(gpu, kernel, launch.num_ctas)
        if len(plan) < launch.num_ctas:
            # Partially-dispatched grids need live mid-grid refills;
            # the in-process driver's per-grid fallback handles them.
            return None
        plans.append(plan)
    ProcessShardDriver(gpu, launches, plans)
    return _OpsApp(ops, app)


class ProcessShardDriver(WindowBarrierDriver):
    """Window-barrier driver whose shards run in forked workers.

    Construction forks one worker per shard (inheriting the fully
    built shard structures copy-on-write), takes over ``submit_grid``
    (grid admission is replicated in the workers from the shared
    dispatch plans), and registers the flush/finalize hooks.  The
    parent keeps sole ownership of the memory subsystem, grid
    bookkeeping, and host accounting; workers own their shard's SMs.
    """

    def __init__(self, gpu, launches, plans):
        super().__init__(gpu, executor="inline")
        self.executor_mode = "processes"
        self.launches = launches
        self.plans = plans
        self.transport_kind = os.environ.get("REPRO_PROC_TRANSPORT", "pipe")
        self._heap_mins = [NEVER] * self.num_shards
        self._next_launch = 0
        self._pids: list = []
        self._channels: list = []
        self._transport = None
        self._fork_workers()
        # Instance-level override: grid admission happens inside the
        # workers, the parent only keeps bookkeeping.
        gpu.submit_grid = self._submit
        gpu._flush_hooks.append(self._flush)

    # -- worker lifecycle --------------------------------------------------
    def _fork_workers(self) -> None:
        transport = make_transport(self.transport_kind, self.num_shards)
        self._transport = transport
        for index in range(self.num_shards):
            pid = os.fork()
            if pid == 0:
                status = 1
                try:
                    channel = transport.child_channel(index)
                    self._worker_main(index, channel)
                    status = 0
                except BaseException:  # noqa: BLE001 - child never unwinds
                    pass
                finally:
                    # Never run the parent's atexit/test machinery.
                    os._exit(status)
            self._pids.append(pid)
        alive_fns = [
            (lambda i=index: self._child_alive(i))
            for index in range(self.num_shards)
        ]
        self._channels = transport.parent_channels(alive_fns)

    def _child_alive(self, index: int) -> bool:
        pid = self._pids[index]
        if pid is None:
            return False
        try:
            done, _status = os.waitpid(pid, os.WNOHANG)
        except ChildProcessError:
            self._pids[index] = None
            return False
        if done == pid:
            self._pids[index] = None
            return False
        return True

    def close(self, terminate: bool = False) -> None:
        """Stop and reap all workers (idempotent; safe on error paths)."""
        channels, self._channels = self._channels, []
        for channel in channels:
            if not terminate:
                try:
                    channel.send_bytes(_OP_CLOSE)
                except Exception:
                    pass
        for index, pid in enumerate(self._pids):
            if pid is None:
                continue
            if terminate:
                try:
                    os.kill(pid, signal.SIGTERM)
                except ProcessLookupError:
                    pass
            if not _reap(pid, timeout=5.0):
                try:
                    os.kill(pid, signal.SIGKILL)
                except ProcessLookupError:
                    pass
                _reap(pid, timeout=5.0)
            self._pids[index] = None
        for channel in channels:
            try:
                channel.close()
            except Exception:
                pass
        if self._transport is not None:
            self._transport.destroy()

    # -- parent-side channel helpers ---------------------------------------
    def _send(self, index: int, frame: bytes) -> None:
        try:
            self._channels[index].send_bytes(frame)
        except (BrokenPipeError, EOFError, OSError):
            raise SimulationDeadlock(
                f"shard worker {index} died before the window barrier"
            ) from None

    def _expect(self, index: int, want: bytes) -> bytes:
        try:
            frame = self._channels[index].recv_bytes()
        except (EOFError, OSError):
            raise SimulationDeadlock(
                f"shard worker {index} died before the window barrier"
            ) from None
        tag = frame[:1]
        if tag == _TAG_ERROR:
            exc, text = pickle.loads(frame[1:])
            raise exc from RuntimeError(
                f"shard worker {index} failed; worker traceback:\n{text}"
            )
        if tag != want:  # pragma: no cover - protocol is lockstep
            raise RuntimeError(
                f"shard worker {index}: expected frame {want!r}, got {tag!r}"
            )
        return frame

    # -- grid submission ----------------------------------------------------
    def _submit(self, grid: Grid) -> None:
        try:
            self._submit_inner(grid)
        except BaseException:
            self.close(terminate=True)
            raise

    def _submit_inner(self, grid: Grid) -> None:
        gpu = self.gpu
        gpu._active_grids += 1
        ordinal = self._next_launch
        self._next_launch += 1
        # All CTAs are admitted inside the workers (from the shared
        # plan); the parent's copy only tracks retirement.
        grid.next_cta = grid.num_ctas
        frame = _OP_SUBMIT + _SUBMIT.pack(ordinal, grid.available_time)
        for index in range(self.num_shards):
            self._send(index, frame)
        for index in range(self.num_shards):
            reply = self._expect(index, _TAG_MIN)
            head, has_start, start = _SUBMIT_REPLY.unpack_from(reply, 1)
            self._heap_mins[index] = head
            if has_start:
                # Reported by the worker owning plan[0]'s SM — the
                # exact start_time the sequential first admission sets.
                grid.start_time = start

    def _flush(self) -> None:
        try:
            for index in range(self.num_shards):
                self._send(index, _OP_FLUSH)
        except BaseException:
            self.close(terminate=True)
            raise

    # -- the window loop (parent side) --------------------------------------
    def drive(self, grid: Grid) -> None:
        try:
            gpu = self.gpu
            if not gpu._runahead or gpu._pending_grids or not self.enabled:
                # The eligibility scan guarantees these before forking;
                # reaching here means a backend invariant broke — fail
                # loudly, a silent sequential fallback would desync the
                # workers' SM state from the parent's.
                raise RuntimeError(
                    "process shard backend: windowed-execution "
                    "preconditions violated mid-run"
                )
            self._window_loop(grid)
        except BaseException:
            self.close(terminate=True)
            raise

    def _window_loop(self, grid: Grid) -> None:
        gpu = self.gpu
        window = self.window
        mins = self._heap_mins
        n = self.num_shards
        run_op = _OP_RUN
        while grid.remaining_ctas:
            start = min(mins)
            if start == NEVER:
                raise SimulationDeadlock(
                    "no runnable SMs but the run predicate is unsatisfied "
                    f"(pending grids: {len(gpu._pending_grids)})"
                )
            w_end = start + window
            due = [i for i in range(n) if mins[i] < w_end]
            frame = run_op + _F8.pack(w_end)
            for index in due:
                self._send(index, frame)
            staged = [self._expect(index, _TAG_STAGED) for index in due]
            deliveries = self._replay(due, staged, grid)
            for index in due:
                values = deliveries[index]
                self._send(
                    index,
                    _OP_DELIVER + _U4.pack(len(values))
                    + struct.pack(f"<{len(values)}d", *values),
                )
            for index in due:
                reply = self._expect(index, _TAG_MIN)
                mins[index] = _F8.unpack_from(reply, 1)[0]

    def _replay(self, due, frames, grid) -> dict:
        """Barrier drain: replay staged ops in global sequential order."""
        gpu = self.gpu
        memory = gpu.memory
        out: dict[int, list] = {index: [] for index in due}
        streams = []
        for index, frame in zip(due, frames):
            entries = _decode_staged(frame, index)
            if entries:
                streams.append(entries)
        if not streams:
            return out
        for _key, kind, payload, origin in _kway_merge(*streams):
            if kind == _REQ:
                out[origin].append(memory.line_request(*payload))
            elif kind == _BATCH:
                sm_id, entries, store = payload
                out[origin].append(
                    memory.line_requests(sm_id, entries, store)
                )
            elif kind == _WB:
                memory.writeback(*payload)
            else:  # _CTA — observers are None by eligibility, and with
                # no pending grids refill_sm is a no-op, so the parent
                # replays retirement without SM/CTA objects.
                _sm_id, t = payload
                gpu.cta_finished(None, grid, t, None)
        return out

    # -- finalize ------------------------------------------------------------
    def _finalize(self) -> None:
        gpu = self.gpu
        if not self._channels:
            return
        try:
            for index in range(self.num_shards):
                self._send(index, _OP_FINALIZE)
            for index in range(self.num_shards):
                frame = self._expect(index, _TAG_FINAL)
                stats, telemetry, rows = pickle.loads(frame[1:])
                gpu.stats.merge(stats)
                if telemetry is not None and gpu.telemetry is not None:
                    gpu.telemetry.absorb(telemetry)
                # The parent's SM copies never ran: overwrite their
                # (all-zero) cache stats with the workers' so
                # GPUSimulator.finalize's per-SM merge runs unchanged.
                for sm_id, l1_stats, const_stats, issued in rows:
                    sm = gpu.sms[sm_id]
                    sm.l1.stats = l1_stats
                    sm.const_cache.stats = const_stats
                    sm.issued_instructions = issued
        except BaseException:
            self.close(terminate=True)
            raise
        self.close()

    # -- worker main loop (child side) --------------------------------------
    def _worker_main(self, index: int, channel) -> None:
        # The parent coordinates teardown; a terminal Ctrl-C reaches it
        # and propagates as terminate+reap.
        signal.signal(signal.SIGINT, signal.SIG_IGN)
        shard = self.shards[index]
        staging = shard.ctx.memory
        for sm in shard.sms:
            # The windowed writeback binding (dirty L1 evictions stage
            # under the live cursor — see WindowBarrierDriver).
            sm.l1.writeback_sink = (
                lambda line, _sm=sm, _mem=staging: _mem.writeback(
                    _sm.sm_id, line, _sm.time
                )
            )
        own = {sm.sm_id: sm for sm in shard.sms}
        heap = shard.heap
        seq = shard.seq
        try:
            while True:
                try:
                    frame = channel.recv_bytes()
                except (EOFError, OSError):
                    return  # parent is gone
                op = frame[:1]
                if op == _OP_RUN:
                    (w_end,) = _F8.unpack_from(frame, 1)
                    shard.run_window(w_end)
                    channel.send_bytes(_encode_staged(shard.staged))
                elif op == _OP_DELIVER:
                    (count,) = _U4.unpack_from(frame, 1)
                    values = struct.unpack_from(f"<{count}d", frame, 5)
                    j = 0
                    for entry in shard.staged:
                        slot = entry[3]
                        if slot is not None:
                            slot[0] = values[j]
                            j += 1
                    shard.staged.clear()
                    shard.deliver()
                    head = heap[0][0] if heap else NEVER
                    channel.send_bytes(_TAG_MIN + _F8.pack(head))
                elif op == _OP_SUBMIT:
                    ordinal, avail = _SUBMIT.unpack_from(frame, 1)
                    launch = self.launches[ordinal]
                    grid = Grid(
                        launch.kernel,
                        launch.num_ctas,
                        args=launch.args,
                        available_time=avail,
                    )
                    plan = self.plans[ordinal]
                    for sm_id in plan:
                        sm = own.get(sm_id)
                        if sm is None:
                            # Remote CTA: burn its id so local CTAs
                            # keep their global cta_id (trace
                            # addresses depend on it).
                            grid.next_cta += 1
                            continue
                        cta = sm.admit_cta(grid, avail)
                        cta.sm = sm
                        # Mirror of _dispatch_pending's _wake_sm call.
                        wake = max(sm.time, avail)
                        sm.wake_accounting(wake)
                        heappush(heap, (wake, sm_id, next(seq), sm))
                    has_start = bool(plan) and plan[0] in own
                    start = grid.start_time if has_start else 0.0
                    head = heap[0][0] if heap else NEVER
                    channel.send_bytes(
                        _TAG_MIN
                        + _SUBMIT_REPLY.pack(
                            head, 1 if has_start else 0, start or 0.0
                        )
                    )
                elif op == _OP_FLUSH:
                    for sm in shard.sms:
                        sm.l1.flush()
                        sm.const_cache.flush()
                        sm.tex_cache.flush()
                elif op == _OP_FINALIZE:
                    rows = [
                        (
                            sm.sm_id,
                            sm.l1.stats,
                            sm.const_cache.stats,
                            sm.issued_instructions,
                        )
                        for sm in shard.sms
                    ]
                    payload = (shard.stats, shard.telemetry, rows)
                    channel.send_bytes(
                        _TAG_FINAL
                        + pickle.dumps(payload, pickle.HIGHEST_PROTOCOL)
                    )
                elif op == _OP_CLOSE:
                    return
                else:  # pragma: no cover - protocol is lockstep
                    raise RuntimeError(f"unknown op frame {op!r}")
        except BaseException as exc:  # noqa: BLE001 - ship, then die
            text = traceback.format_exc()
            try:
                blob = pickle.dumps((exc, text), pickle.HIGHEST_PROTOCOL)
            except Exception:
                blob = pickle.dumps(
                    (RuntimeError(f"{type(exc).__name__}: {exc}"), text),
                    pickle.HIGHEST_PROTOCOL,
                )
            try:
                channel.send_bytes(_TAG_ERROR + blob)
            except Exception:
                pass


def _reap(pid: int, timeout: float) -> bool:
    """Wait for ``pid`` to exit; True once reaped (or already gone)."""
    deadline = time.monotonic() + timeout
    while True:
        try:
            done, _status = os.waitpid(pid, os.WNOHANG)
        except ChildProcessError:
            return True
        if done == pid:
            return True
        if time.monotonic() >= deadline:
            return False
        time.sleep(0.005)


__all__ = [
    "ProcessShardDriver",
    "RingChannel",
    "make_transport",
    "plan_dispatch",
    "try_install_process_driver",
]
