"""Host-side program model: memcpys, kernel launches, applications.

A benchmark *application* is a host program — a sequence of
``cudaMemcpy`` and kernel-launch operations — exactly what Fig 4
characterizes (kernel-call count vs PCI-call count, kernel time vs PCI
time).  Applications are Python generators of host ops so a benchmark
can shape its launch pattern from the functional workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Union

from repro.sim.kernel import KernelProgram


@dataclass(frozen=True)
class KernelLaunch:
    """A kernel plus its grid size and trace arguments."""

    kernel: KernelProgram
    num_ctas: int
    args: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.num_ctas <= 0:
            raise ValueError("grid must have at least one CTA")


@dataclass(frozen=True)
class HostMemcpy:
    """A cudaMemcpy of ``nbytes`` in the given direction ("h2d"/"d2h")."""

    nbytes: int
    direction: str = "h2d"

    def __post_init__(self) -> None:
        if self.nbytes <= 0:
            raise ValueError("memcpy must move at least one byte")
        if self.direction not in ("h2d", "d2h"):
            raise ValueError("direction must be 'h2d' or 'd2h'")


@dataclass(frozen=True)
class HostLaunch:
    """A synchronous kernel launch from the host."""

    launch: KernelLaunch


HostOp = Union[HostMemcpy, HostLaunch]


class Application:
    """Base class for the ten benchmark applications.

    Subclasses set ``name`` and implement :meth:`host_program`; the CDP
    variants override it to replace host launch loops with device-side
    launches inside a parent kernel.
    """

    name: str = "app"

    #: Whether any kernel this application runs may issue a
    #: device-side (CDP) launch.  When ``False``, the simulator may
    #: execute SM-local work ahead of the global event order (see
    #: ``repro.sim.sm``) — bit-identical for launch-free programs,
    #: and guarded by a hard error if a launch happens anyway.  The
    #: default is the conservative ``True``.
    may_device_launch: bool = True

    def host_program(self) -> Iterator[HostOp]:
        """Yield the host operations in execution order."""
        raise NotImplementedError

    def describe(self) -> str:
        """One-line description for reports."""
        return self.name
