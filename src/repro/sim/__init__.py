"""Cycle-level GPU timing model (the Accel-Sim + RTX 3070 stand-in).

The simulator is trace driven and event based: kernels supply per-warp
instruction generators (:mod:`repro.isa`), streaming multiprocessors
issue them under a configurable warp scheduler, and memory instructions
traverse L1 -> interconnect -> L2 -> DRAM models with contention.  All
Table I / Table II knobs of the paper are exposed on
:class:`~repro.sim.config.GPUConfig`.
"""

from repro.sim.config import (
    CacheConfig,
    DRAMConfig,
    GPUConfig,
    NoCConfig,
    PCIConfig,
    rtx3070_baseline,
)
from repro.sim.gpu import GPUSimulator
from repro.sim.launch import Application, HostMemcpy, HostLaunch, KernelLaunch
from repro.sim.kernel import KernelProgram
from repro.sim.stats import RunStats, StallReason
from repro.sim.telemetry import (
    Telemetry,
    aggregate_rows,
    load_jsonl,
    write_chrome_trace,
    write_jsonl,
)

__all__ = [
    "CacheConfig",
    "DRAMConfig",
    "GPUConfig",
    "NoCConfig",
    "PCIConfig",
    "rtx3070_baseline",
    "GPUSimulator",
    "Application",
    "HostMemcpy",
    "HostLaunch",
    "KernelLaunch",
    "KernelProgram",
    "RunStats",
    "StallReason",
    "Telemetry",
    "aggregate_rows",
    "load_jsonl",
    "write_chrome_trace",
    "write_jsonl",
]
