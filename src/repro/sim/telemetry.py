"""Time-resolved observability: interval sampler and event tracer.

End-of-run :class:`~repro.sim.stats.RunStats` aggregates answer *how
much* but never *when*: a kernel that stalls for its whole second half
and one that stalls uniformly produce the same Fig 5 bar.  A
:class:`Telemetry` instance — attached by setting
``GPUConfig(telemetry_interval=N)``, or passed directly to
:class:`~repro.sim.gpu.GPUSimulator` — collects per-interval time
series (IPC, stall cycles per :class:`~repro.sim.stats.StallReason`,
warp-occupancy buckets, L1/L2 miss counters, DRAM data-pin cycles, NoC
channel occupancy) plus discrete events (kernel executions, CDP
launches, host memcpys, barrier-release episodes, and derived
cache-contention bursts).

Attribution contract
--------------------
Every sample carries the *simulated* cycle it describes and is split
across interval boundaries by the cycles it covers:

- an issued repeat block of ``repeat`` ALU instructions starting at
  cycle ``t`` contributes one instruction (and one occupancy-bucket
  count) to each of the cycles ``t .. t+repeat-1``;
- a stall span of ``c`` cycles attributed at ``t`` contributes to each
  of ``t .. t+c-1``;
- cache counters attach to the access's decision cycle, DRAM data
  cycles to the data-pin transfer window, NoC occupancy to the port
  serialization window.

Both SM cores — the event-maintained fast core
(:mod:`repro.sim.sm`, including its macro-issue, monopolize, and
run-ahead paths) and the scan-per-decision reference
(:mod:`repro.sim.sm_reference`) — feed these hooks with identical
``(cycle, value)`` samples, so the interval series are bit-identical
between them; ``tests/sim/test_telemetry_differential.py`` locks this.
Hooks are guarded by a single ``is not None`` check so the
telemetry-off hot paths stay untouched (overhead budget: <2%, measured
by ``benchmarks/bench_perf.py``).

Exports: :func:`write_jsonl` / :func:`load_jsonl` (one JSON object per
line: a header, then interval rows, then events) and
:func:`write_chrome_trace` (a Chrome ``trace_event`` file loadable in
Perfetto or ``chrome://tracing``).
"""

from __future__ import annotations

import json
from typing import Iterable

from repro.sim.stats import OCCUPANCY_BUCKETS, StallReason

#: Stall-reason keys in a fixed export order.
STALL_KEYS = tuple(reason.value for reason in StallReason)

#: L1 interval series threshold for a "cache-contention burst" event: a
#: maximal run of intervals whose load miss rate exceeds the threshold
#: with at least ``BURST_MIN_ACCESSES`` load accesses per interval.
BURST_MISS_RATE = 0.5
BURST_MIN_ACCESSES = 32

#: Keys every interval row carries (occupancy/stall dicts aside).
_COUNTER_KEYS = (
    "instructions",
    "l1_accesses", "l1_misses", "l1_load_accesses", "l1_load_misses",
    "l2_accesses", "l2_misses", "l2_load_accesses", "l2_load_misses",
    "dram_requests", "dram_data_cycles",
    "noc_messages", "noc_bytes", "noc_busy_cycles",
)


def _new_row() -> dict:
    row = dict.fromkeys(_COUNTER_KEYS, 0)
    row["occupancy"] = dict.fromkeys(OCCUPANCY_BUCKETS, 0)
    row["stalls"] = dict.fromkeys(STALL_KEYS, 0)
    return row


def _event_key(event: dict) -> str:
    """Canonical sort key: event streams must not depend on which core
    (or which run-ahead burst) recorded them first."""
    return json.dumps(event, sort_keys=True)


class Telemetry:
    """Low-overhead interval sampler + event tracer for one simulation.

    One instance per :class:`~repro.sim.gpu.GPUSimulator`; the
    simulator wires it into its SMs and memory subsystem at
    construction.  All recording methods take the simulated cycle of
    the sample — see the module docstring for the attribution contract.
    """

    def __init__(self, interval: int = 10_000, max_events: int = 1_000_000):
        if interval <= 0:
            raise ValueError("telemetry interval must be positive")
        self.interval = int(interval)
        self.max_events = max_events
        self.events: list[dict] = []
        self.events_dropped = 0
        self.meta: dict = {}
        self._rows: dict[int, dict] = {}
        #: Optional live-progress hook: ``fn(index, interval)`` fired
        #: the first time each new *highest* interval row opens (i.e.
        #: once per ``interval`` simulated cycles).  The service layer
        #: uses it to surface percent-complete on job status; it rides
        #: the row-creation miss path, so the recording hot paths are
        #: untouched and results are unaffected either way.
        self.progress = None
        self._progress_high = -1

    # -- row access --------------------------------------------------------
    def _row(self, index: int) -> dict:
        row = self._rows.get(index)
        if row is None:
            row = self._rows[index] = _new_row()
            if self.progress is not None and index > self._progress_high:
                self._progress_high = index
                self.progress(index, self.interval)
        return row

    def _spread(self, key: str, start: int, cycles: int, sub: str | None = None):
        """Add ``cycles`` units of ``key`` over ``[start, start+cycles)``,
        split across interval boundaries by coverage."""
        interval = self.interval
        first = start // interval
        end = start + cycles
        if end <= (first + 1) * interval:
            row = self._row(first)
            if sub is None:
                row[key] += cycles
            else:
                row[key][sub] += cycles
            return
        index = first
        while index * interval < end:
            lo = index * interval
            hi = lo + interval
            n = min(end, hi) - max(start, lo)
            row = self._row(index)
            if sub is None:
                row[key] += n
            else:
                row[key][sub] += n
            index += 1

    # -- SM-side samples ---------------------------------------------------
    def issue(self, t: float, lanes: int, repeat: int = 1) -> None:
        """A warp issued a (possibly macro-issued) instruction block at
        cycle ``t`` occupying the issue port for ``repeat`` cycles."""
        start = int(t)
        bucket = OCCUPANCY_BUCKETS[(lanes - 1) // 4]
        self._spread("instructions", start, repeat)
        self._spread("occupancy", start, repeat, sub=bucket)

    def stall(self, t: float, reason_key: str, cycles: int) -> None:
        """``cycles`` unused issue-slot cycles starting at ``t``."""
        if cycles <= 0:
            return
        self._spread("stalls", int(t), cycles, sub=reason_key)

    def cache(self, level: str, t: float, accesses: int, misses: int,
              load_accesses: int, load_misses: int) -> None:
        """Cache counters for one access burst at cycle ``t``
        (``level`` is ``"l1"`` or ``"l2"``)."""
        row = self._row(int(t) // self.interval)
        row[f"{level}_accesses"] += accesses
        row[f"{level}_misses"] += misses
        row[f"{level}_load_accesses"] += load_accesses
        row[f"{level}_load_misses"] += load_misses

    # -- memory-system samples ---------------------------------------------
    def dram(self, transfer_start: int, burst_cycles: int) -> None:
        """One DRAM line transfer occupying the data pins for
        ``burst_cycles`` from ``transfer_start``."""
        self._row(int(transfer_start) // self.interval)["dram_requests"] += 1
        self._spread("dram_data_cycles", int(transfer_start), burst_cycles)

    def noc(self, start: int, ser_cycles: int, nbytes: int) -> None:
        """One NoC message holding its ports for ``ser_cycles``."""
        row = self._row(int(start) // self.interval)
        row["noc_messages"] += 1
        row["noc_bytes"] += nbytes
        self._spread("noc_busy_cycles", int(start), ser_cycles)

    # -- discrete events ---------------------------------------------------
    def event(self, cat: str, name: str, ts: float, dur: float = 0,
              **args) -> None:
        """Record a discrete event (kernel, cdp_launch, memcpy, barrier)."""
        if len(self.events) >= self.max_events:
            self.events_dropped += 1
            return
        record = {"cat": cat, "name": name, "ts": int(ts), "dur": int(dur)}
        if args:
            record["args"] = args
        self.events.append(record)

    def absorb(self, other: "Telemetry") -> None:
        """Fold another sampler's series into this one.

        The window-barrier parallel core gives each shard a private
        ``Telemetry`` (same interval) so SM-side sampling stays
        single-writer, then absorbs them all here at finalize.
        Interval rows sum cell-by-cell and events concatenate —
        :meth:`sorted_events` canonicalizes their order — so the merged
        summary is bit-identical to a sequential run's.  (Exception:
        runs that overflow ``max_events`` may drop a different subset
        of events per sharding; see DESIGN.md "parallel core".)
        """
        if other.interval != self.interval:
            raise ValueError("cannot absorb a different telemetry interval")
        for index, src in other._rows.items():
            row = self._row(index)
            for key in _COUNTER_KEYS:
                row[key] += src[key]
            occupancy = row["occupancy"]
            for bucket, n in src["occupancy"].items():
                occupancy[bucket] += n
            stalls = row["stalls"]
            for key, n in src["stalls"].items():
                stalls[key] += n
        for record in other.events:
            self.event(record["cat"], record["name"], record["ts"],
                       dur=record.get("dur", 0), **record.get("args", {}))
        self.events_dropped += other.events_dropped

    # -- finalize ----------------------------------------------------------
    def finalize(self, stats) -> None:
        """Derive burst events and snapshot run-level metadata."""
        for record in getattr(stats, "kernel_timeline", ()):
            self.event(
                "kernel", record["kernel"], record["start"],
                dur=record["end"] - record["start"],
                ctas=record["ctas"], origin=record["origin"],
            )
        self._derive_bursts()
        self.meta = {
            "interval": self.interval,
            "cycles": int(getattr(stats, "cycles", 0)),
            "instructions": int(getattr(stats, "instructions", 0)),
            "events_dropped": self.events_dropped,
        }

    def _derive_bursts(self) -> None:
        """Cache-contention bursts: maximal runs of high-miss intervals."""
        run_start = None
        last = None
        interval = self.interval

        def close(end_index: int) -> None:
            self.event(
                "burst", "l1_contention", run_start * interval,
                dur=(end_index - run_start) * interval,
            )

        for index in sorted(self._rows):
            row = self._rows[index]
            loads = row["l1_load_accesses"]
            hot = (
                loads >= BURST_MIN_ACCESSES
                and row["l1_load_misses"] / loads > BURST_MISS_RATE
            )
            if hot and run_start is not None and index != last + 1:
                close(last + 1)  # gap of cold intervals ends the run
                run_start = index
            elif hot and run_start is None:
                run_start = index
            elif not hot and run_start is not None:
                close(last + 1)
                run_start = None
            if hot:
                last = index
        if run_start is not None:
            close(last + 1)

    # -- views -------------------------------------------------------------
    def rows(self) -> list[dict]:
        """Interval rows in time order, each with derived rates attached."""
        interval = self.interval
        out = []
        for index in sorted(self._rows):
            raw = self._rows[index]
            row = {"index": index, "start": index * interval,
                   "end": (index + 1) * interval}
            row.update({k: raw[k] for k in _COUNTER_KEYS})
            row["occupancy"] = dict(raw["occupancy"])
            row["stalls"] = dict(raw["stalls"])
            row["ipc"] = raw["instructions"] / interval
            total_stall = sum(raw["stalls"].values())
            row["stall_fractions"] = (
                {k: v / total_stall for k, v in raw["stalls"].items()}
                if total_stall else {}
            )
            row["l1_miss_rate"] = (
                raw["l1_load_misses"] / raw["l1_load_accesses"]
                if raw["l1_load_accesses"] else 0.0
            )
            row["l2_miss_rate"] = (
                raw["l2_load_misses"] / raw["l2_load_accesses"]
                if raw["l2_load_accesses"] else 0.0
            )
            row["dram_bandwidth"] = raw["dram_data_cycles"] / interval
            row["noc_utilization"] = raw["noc_busy_cycles"] / interval
            out.append(row)
        return out

    def sorted_events(self) -> list[dict]:
        """Events in a canonical order independent of recording order."""
        return sorted(self.events, key=_event_key)

    def summary(self) -> dict:
        """The JSON-serializable snapshot stored on ``RunStats.telemetry``."""
        return {
            "meta": dict(self.meta) or {"interval": self.interval,
                                        "events_dropped": self.events_dropped},
            "rows": self.rows(),
            "events": self.sorted_events(),
        }

    def aggregate(self) -> dict:
        """Sum the interval series back into run totals (invariant tests:
        these must reproduce the aggregate ``RunStats`` counters)."""
        return aggregate_rows(self.rows())


def aggregate_rows(rows: Iterable[dict]) -> dict:
    """Re-aggregate interval rows into run totals."""
    totals = dict.fromkeys(_COUNTER_KEYS, 0)
    occupancy = dict.fromkeys(OCCUPANCY_BUCKETS, 0)
    stalls: dict[str, int] = {}
    for row in rows:
        for key in _COUNTER_KEYS:
            totals[key] += row[key]
        for bucket, n in row["occupancy"].items():
            occupancy[bucket] += n
        for key, n in row["stalls"].items():
            if n:
                stalls[key] = stalls.get(key, 0) + n
    totals["occupancy"] = occupancy
    totals["stalls"] = stalls
    return totals


# -- file formats -----------------------------------------------------------

def write_jsonl(summary: dict, path) -> None:
    """Write a telemetry summary as JSONL: header, rows, then events."""
    with open(path, "w") as fh:
        fh.write(json.dumps({"type": "header", **summary["meta"]}) + "\n")
        for row in summary["rows"]:
            fh.write(json.dumps({"type": "interval", **row}) + "\n")
        for event in summary["events"]:
            fh.write(json.dumps({"type": "event", **event}) + "\n")


def load_jsonl(path) -> dict:
    """Load a :func:`write_jsonl` file back into a summary dict."""
    meta: dict = {}
    rows: list[dict] = []
    events: list[dict] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.pop("type")
            if kind == "header":
                meta = record
            elif kind == "interval":
                rows.append(record)
            elif kind == "event":
                events.append(record)
            else:
                raise ValueError(f"unknown telemetry record type {kind!r}")
    return {"meta": meta, "rows": rows, "events": events}


#: Counter tracks exported to the Chrome trace, per interval row.
_TRACE_COUNTERS = (
    ("ipc", "ipc"),
    ("l1_miss_rate", "l1 miss rate"),
    ("l2_miss_rate", "l2 miss rate"),
    ("dram_bandwidth", "dram bandwidth"),
    ("noc_utilization", "noc utilization"),
)

_PID_KERNELS = 1
_PID_COUNTERS = 2
_PID_EVENTS = 3


def write_chrome_trace(summary: dict, path) -> None:
    """Write a Chrome ``trace_event`` file (Perfetto / chrome://tracing).

    Timestamps are simulated cycles presented as microseconds (the
    ``trace_event`` format has no cycle unit).  Kernel executions render
    as duration slices, interval series as counter tracks, and discrete
    events as instants.
    """
    trace: list[dict] = [
        {"ph": "M", "pid": _PID_KERNELS, "name": "process_name",
         "args": {"name": "kernels"}},
        {"ph": "M", "pid": _PID_COUNTERS, "name": "process_name",
         "args": {"name": "interval metrics"}},
        {"ph": "M", "pid": _PID_EVENTS, "name": "process_name",
         "args": {"name": "events"}},
    ]
    lanes: dict[str, int] = {}
    for event in summary["events"]:
        cat, name = event["cat"], event["name"]
        if cat == "kernel":
            tid = lanes.setdefault(name, len(lanes))
            trace.append({
                "ph": "X", "pid": _PID_KERNELS, "tid": tid,
                "name": name, "cat": cat,
                "ts": event["ts"], "dur": max(1, event["dur"]),
                "args": event.get("args", {}),
            })
        else:
            trace.append({
                "ph": "i", "s": "g", "pid": _PID_EVENTS, "tid": 0,
                "name": f"{cat}:{name}", "cat": cat, "ts": event["ts"],
                "args": event.get("args", {}),
            })
    for row in summary["rows"]:
        ts = row["start"]
        for key, label in _TRACE_COUNTERS:
            trace.append({
                "ph": "C", "pid": _PID_COUNTERS, "name": label,
                "ts": ts, "args": {label: round(row[key], 6)},
            })
        trace.append({
            "ph": "C", "pid": _PID_COUNTERS, "name": "stall cycles",
            "ts": ts,
            "args": {k: v for k, v in row["stalls"].items()},
        })
    for name, tid in lanes.items():
        trace.append({
            "ph": "M", "pid": _PID_KERNELS, "tid": tid,
            "name": "thread_name", "args": {"name": name},
        })
    payload = {
        "traceEvents": trace,
        "displayTimeUnit": "ms",
        "otherData": dict(summary.get("meta", {})),
    }
    with open(path, "w") as fh:
        json.dump(payload, fh)
        fh.write("\n")


__all__ = [
    "Telemetry",
    "aggregate_rows",
    "write_jsonl",
    "load_jsonl",
    "write_chrome_trace",
    "STALL_KEYS",
]
