"""Load/save GPU configurations as Accel-Sim-style config files.

The format is flat ``key = value`` lines with ``#`` comments; nested
components use dotted keys (``l1.size_bytes``, ``dram.controller``,
``noc.topology``).  Unknown keys are rejected so typos can't silently
fall back to defaults — the failure mode that plagues simulator
configs.

Example::

    # rtx3070-ish, but fifo memory controller
    num_sms = 78
    l1.size_bytes = 131072
    dram.controller = fifo
    noc.topology = mesh
"""

from __future__ import annotations

import dataclasses
from pathlib import Path

from repro.sim.config import (
    CacheConfig,
    DRAMConfig,
    GPUConfig,
    NoCConfig,
    PCIConfig,
)

#: dotted prefix -> (GPUConfig field, component dataclass)
_COMPONENTS = {
    "l1": ("l1", CacheConfig),
    "l2": ("l2", CacheConfig),
    "const_cache": ("const_cache", CacheConfig),
    "tex_cache": ("tex_cache", CacheConfig),
    "dram": ("dram", DRAMConfig),
    "noc": ("noc", NoCConfig),
    "pci": ("pci", PCIConfig),
}


def _parse_value(field: dataclasses.Field, raw: str):
    if field.type in ("bool", bool):
        lowered = raw.lower()
        if lowered in ("true", "1", "yes", "on"):
            return True
        if lowered in ("false", "0", "no", "off"):
            return False
        raise ValueError(f"invalid boolean {raw!r} for {field.name}")
    if field.type in ("float", float):
        return float(raw)
    if field.type in ("int", int):
        return int(raw, 0)
    return raw  # strings (controller/topology/scheduler names)


def _field_map(cls) -> dict:
    return {f.name: f for f in dataclasses.fields(cls)}


def parse_config(text: str) -> GPUConfig:
    """Build a :class:`GPUConfig` from config-file text."""
    top: dict = {}
    nested: dict[str, dict] = {}
    gpu_fields = _field_map(GPUConfig)

    for lineno, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        if "=" not in line:
            raise ValueError(f"line {lineno}: expected 'key = value'")
        key, _, raw = line.partition("=")
        key = key.strip()
        raw = raw.strip()
        if "." in key:
            prefix, _, sub = key.partition(".")
            if prefix not in _COMPONENTS:
                raise ValueError(f"line {lineno}: unknown component {prefix!r}")
            _, cls = _COMPONENTS[prefix]
            fields = _field_map(cls)
            if sub not in fields:
                raise ValueError(
                    f"line {lineno}: unknown key {sub!r} for {prefix}"
                )
            nested.setdefault(prefix, {})[sub] = _parse_value(fields[sub], raw)
        else:
            if key not in gpu_fields or key in (
                name for name, _ in _COMPONENTS.values()
            ):
                raise ValueError(f"line {lineno}: unknown key {key!r}")
            top[key] = _parse_value(gpu_fields[key], raw)

    base = GPUConfig()
    for prefix, overrides in nested.items():
        field_name, _ = _COMPONENTS[prefix]
        component = dataclasses.replace(getattr(base, field_name), **overrides)
        top[field_name] = component
    return base.with_(**top) if top else base


def apply_overrides(config: GPUConfig, overrides: dict) -> GPUConfig:
    """``config`` with dotted-key ``overrides`` applied and validated.

    The mapping uses the file format's key space (``num_sms``,
    ``l1.size_bytes``, ``dram.controller``...) with already-typed
    values — the service layer's request schemas resolve their
    ``config`` objects through here so an HTTP client and a config
    file reject exactly the same typos.  Raises ``ValueError`` for
    unknown keys, wrong value types, and (via the dataclass
    ``__post_init__`` validators) out-of-range values.
    """
    top: dict = {}
    nested: dict[str, dict] = {}
    gpu_fields = _field_map(GPUConfig)
    component_fields = {name for name, _ in _COMPONENTS.values()}

    for key, value in overrides.items():
        if not isinstance(key, str):
            raise ValueError(f"config keys must be strings, got {key!r}")
        if "." in key:
            prefix, _, sub = key.partition(".")
            if prefix not in _COMPONENTS:
                raise ValueError(f"unknown component {prefix!r}")
            _, cls = _COMPONENTS[prefix]
            fields = _field_map(cls)
            if sub not in fields:
                raise ValueError(f"unknown key {sub!r} for {prefix}")
            nested.setdefault(prefix, {})[sub] = _check_type(
                fields[sub], value
            )
        else:
            if key not in gpu_fields or key in component_fields:
                raise ValueError(f"unknown key {key!r}")
            top[key] = _check_type(gpu_fields[key], value)

    for prefix, changes in nested.items():
        field_name, _ = _COMPONENTS[prefix]
        top[field_name] = dataclasses.replace(
            getattr(config, field_name), **changes
        )
    return config.with_(**top) if top else config


def _check_type(field: dataclasses.Field, value):
    """Validate an already-typed override value against its field."""
    if field.type in ("bool", bool):
        if not isinstance(value, bool):
            raise ValueError(f"{field.name} expects a boolean, got {value!r}")
        return value
    if field.type in ("float", float):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ValueError(f"{field.name} expects a number, got {value!r}")
        return float(value)
    if field.type in ("int", int):
        if isinstance(value, bool) or not isinstance(value, int):
            raise ValueError(f"{field.name} expects an integer, got {value!r}")
        return value
    if not isinstance(value, str):
        raise ValueError(f"{field.name} expects a string, got {value!r}")
    return value


def load_config(path: str | Path) -> GPUConfig:
    """Read a config file from disk."""
    return parse_config(Path(path).read_text())


def save_config(config: GPUConfig, path: str | Path | None = None) -> str:
    """Serialize a config to the file format (full, explicit)."""
    lines = ["# Genomics-GPU simulator configuration"]
    for field in dataclasses.fields(GPUConfig):
        value = getattr(config, field.name)
        if dataclasses.is_dataclass(value):
            for sub in dataclasses.fields(value):
                lines.append(
                    f"{field.name}.{sub.name} = {getattr(value, sub.name)}"
                )
        else:
            lines.append(f"{field.name} = {value}")
    text = "\n".join(lines) + "\n"
    if path is not None:
        Path(path).write_text(text)
    return text
