"""Scan-per-decision reference SM (pre-event-core issue loop).

:class:`ReferenceSM` preserves the original
:class:`~repro.sim.sm.StreamingMultiprocessor` algorithms verbatim:
every scheduling decision rescans all resident warps for readiness, and
every stall rescans them for attribution and the next wake time.  It is
selected with ``GPUConfig(event_core=False)`` and exists for two jobs:

- the golden bit-identity regression test runs every benchmark through
  both cores and requires field-for-field identical :class:`RunStats`
  (``tests/sim/test_event_core_golden.py``);
- ``benchmarks/bench_perf.py`` measures the event core's single-run
  speedup against this implementation.

Keep this file frozen unless the *timing model* changes — performance
work belongs in :mod:`repro.sim.sm`.
"""

from __future__ import annotations

from repro.sim.scheduler import TwoLevel
from repro.sim.sm import (
    _CONST,
    _CTRL,
    _DEVSYNC,
    _EXIT,
    _FP,
    _INT,
    _LAUNCH,
    _LDST,
    _PARAM,
    _R_CONTROL,
    _R_FUNCTIONAL,
    _R_IDLE,
    _R_MEMORY,
    _R_SYNC,
    _SFU,
    _SHARED,
    _SYNC,
    _TEX,
    StreamingMultiprocessor,
)
from repro.sim.stats import StallReason
from repro.sim.warp import CTA, Grid, NEVER, Warp


class ReferenceSM(StreamingMultiprocessor):
    """One GPU core, scan-per-decision (the original issue loop)."""

    def __init__(self, sm_id, config, stats):
        super().__init__(sm_id, config, stats)
        # The rewritten TwoLevel scheduler reads ``warp.in_ready``; the
        # reference core has no ready list, so it refreshes the flags
        # during its per-decision scan — only when the policy needs
        # them, to keep the baseline benchmark honest for lrr/gto/old.
        self._flags_needed = isinstance(self.scheduler, TwoLevel)

    # -- CTA admission ------------------------------------------------------
    def admit_cta(self, grid: Grid, start_time: float) -> CTA:
        """Instantiate and adopt the next CTA of ``grid``."""
        kernel = grid.kernel
        start = max(self.time, start_time)
        cta = grid.make_cta(start)
        self.ctas.append(cta)
        self.warps.extend(cta.warps)
        self.used_threads += kernel.cta_threads
        self.used_regs += kernel.regs_per_thread * kernel.cta_threads
        self.used_smem += kernel.smem_per_cta
        return cta

    # -- issue loop -----------------------------------------------------------
    def step(self, gpu, now: float, seq: int = -1) -> None:
        """One scheduling decision at time ``max(self.time, now)``.

        ``gpu`` is the owning :class:`~repro.sim.gpu.GPUSimulator`,
        used for memory access, device launches and completion hooks.
        """
        if now > self.time:
            self.time = now
        warps = self.warps
        if not warps:
            return

        t = self.time
        if self._flags_needed:
            ready = []
            for w in warps:
                if w.next_ready <= t:
                    w.in_ready = True
                    ready.append(w)
                else:
                    w.in_ready = False
        else:
            ready = [w for w in warps if w.next_ready <= t]
        if not ready:
            self._account_stall(t)
            return

        warp = self.scheduler.select(ready)
        try:
            instr = warp.fetch()
        except StopIteration:  # pragma: no cover - traces must end with EXIT
            raise RuntimeError(
                f"trace of kernel {warp.cta.grid.kernel.name} ended "
                "without an EXIT instruction"
            ) from None
        self._execute(gpu, warp, instr, t)
        self.scheduler.issued(warp)

    def _account_stall(self, t: float) -> None:
        """No warp ready: attribute the gap and jump to the next wake."""
        wake = NEVER
        n_mem = n_ctrl = n_sync = n_func = n_idle = 0
        for warp in self.warps:
            if warp.next_ready < wake:
                wake = warp.next_ready
            reason = warp.block_reason
            if reason is _R_MEMORY:
                n_mem += 1
            elif reason is _R_CONTROL:
                n_ctrl += 1
            elif reason is _R_SYNC:
                n_sync += 1
            elif reason is _R_FUNCTIONAL:
                n_func += 1
            else:
                n_idle += 1
        # Ties break in a fixed priority order: memory is the paper's
        # headline cause, so it wins ties.
        best, dominant = n_mem, _R_MEMORY
        if n_ctrl > best:
            best, dominant = n_ctrl, _R_CONTROL
        if n_sync > best:
            best, dominant = n_sync, _R_SYNC
        if n_func > best:
            best, dominant = n_func, _R_FUNCTIONAL
        if n_idle > best:
            dominant = _R_IDLE
        if wake == NEVER:
            # Every warp waits on an external event (device sync /
            # barrier release from another path).  Go dormant; the GPU
            # attributes the dormant period when it wakes us.
            self.dormant_since = t
            self.dormant_reason = dominant
            return
        gap = int(wake - t)
        self.stats.add_stall(dominant, gap)
        if self._tel is not None:
            self._tel.stall(t, dominant._value_, gap)
        self.time = wake

    def wake_warp(self, warp: Warp, t: float) -> None:
        """An external event (CDP child completion) unblocks ``warp``."""
        warp.next_ready = t
        warp.block_reason = None

    # -- instruction semantics -------------------------------------------------
    def _execute(self, gpu, warp: Warp, instr, t: float) -> None:
        config = self.config
        op = instr.op
        repeat = instr.repeat
        if not warp.precounted:
            self.stats.count_instruction(op, instr.active_lanes, repeat)
        self.issued_instructions += repeat
        if self._tel is not None:
            # Same attribution contract as the event core: the issue
            # decision lands at t and repeat blocks cover [t, t+repeat),
            # recorded even for precounted (replayed) warps.
            self._tel.issue(t, instr.active_lanes, repeat)
        warp.block_reason = None

        if op is _INT or op is _FP or op is _SFU:
            if op is _INT:
                latency = config.int_latency
            elif op is _FP:
                latency = config.fp_latency
            else:
                latency = config.sfu_latency
            # A repeat block monopolizes the issue port for `repeat`
            # cycles; the dependent-use latency applies after the last.
            warp.next_ready = t + repeat - 1 + latency
            self.time = t + repeat
            return

        self.time = t + 1
        if op is _LDST:
            self._execute_memory(gpu, warp, instr, t)
        elif op is _CTRL:
            warp.next_ready = t + config.branch_latency
            warp.block_reason = StallReason.CONTROL
        elif op is _SYNC:
            self._execute_barrier(warp, t)
        elif op is _DEVSYNC:
            if warp.pending_children > 0:
                # Waiting for child kernels to be set up, run, and
                # drain — the CDP face of "functional done" (Fig 5
                # shows CDP and non-CDP breakdowns staying similar).
                warp.waiting_device_sync = True
                warp.next_ready = NEVER
                warp.block_reason = StallReason.FUNCTIONAL_DONE
            else:
                warp.next_ready = t + 1
        elif op is _LAUNCH:
            gpu.device_launch(self, warp, instr.child, t)
            warp.next_ready = t + config.cdp_launch_cycles
            warp.block_reason = StallReason.FUNCTIONAL_DONE
        elif op is _EXIT:
            self._execute_exit(gpu, warp, t)
        else:  # pragma: no cover - enum is closed
            raise AssertionError(f"unhandled op {op}")

    def _execute_memory(self, gpu, warp: Warp, instr, t: float) -> None:
        config = self.config
        mem = instr.mem
        space = mem.space
        if not warp.precounted:
            self.stats.count_memory(space, mem.transactions)

        if space is _SHARED:
            # On-chip scratchpad: unaffected by the Fig 15 perfect
            # memory-system experiment.
            warp.next_ready = t + config.shared_latency
            warp.block_reason = StallReason.MEMORY
            return

        if config.perfect_memory:
            # Zero-latency memory system: every access behaves like an
            # L1 hit (one transaction retired per port cycle).
            warp.next_ready = (
                t + config.l1.hit_latency + max(0, len(mem.lines) - 1)
            )
            return
        if space is _PARAM:
            # Parameter reads hit the constant path's dedicated storage.
            warp.next_ready = t + config.const_cache.hit_latency
            return

        port = 1 if config.l1_port_serialization else 0
        if space is _CONST or space is _TEX:
            cache = self.const_cache if space is _CONST else self.tex_cache
            completion = t
            # The cache port retires one transaction per cycle.
            for i, line in enumerate(mem.lines):
                issue = t + i * port
                if cache.access(line, store=mem.store):
                    completion = max(completion, issue + cache.config.hit_latency)
                else:
                    completion = max(
                        completion, gpu.memory.line_request(
                            self.sm_id, line, mem.store, issue
                        )
                    )
            warp.next_ready = completion
            warp.block_reason = StallReason.MEMORY
            return

        # GLOBAL / LOCAL through the L1, one transaction per cycle —
        # an uncoalesced access pays for all 32 of its transactions.
        # Stores are write-back write-validate: they allocate dirty in
        # the L1 without fetching; dirty evictions flow to L2/DRAM via
        # the writeback sink.
        completion = t
        l1_access = self.l1.access
        line_request = gpu.memory.line_request
        hit_latency = config.l1.hit_latency
        store = mem.store
        sm_id = self.sm_id
        tel = self._tel
        if tel is not None:
            _ls = self.l1.stats
            _a0 = _ls.accesses
            _m0 = _ls.misses
            _la0 = _ls.load_accesses
            _lm0 = _ls.load_misses
        for i, line in enumerate(mem.lines):
            issue = t + i * port
            hit = l1_access(line, store=store)
            if store or hit:
                done = issue + hit_latency
            else:
                done = line_request(sm_id, line, False, issue)
            if done > completion:
                completion = done
        if tel is not None:
            tel.cache(
                "l1",
                t,
                _ls.accesses - _a0,
                _ls.misses - _m0,
                _ls.load_accesses - _la0,
                _ls.load_misses - _lm0,
            )
        warp.next_ready = completion
        if completion - t > hit_latency:
            warp.block_reason = StallReason.MEMORY

    def _execute_barrier(self, warp: Warp, t: float) -> None:
        cta = warp.cta
        cta.barrier_arrived += 1
        if cta.barrier_ready():
            # Last arrival releases everyone.
            released = 0
            for peer in cta.warps:
                if not peer.exited:
                    released += 1
                    peer.next_ready = t + 1
                    peer.block_reason = None
            cta.barrier_arrived = 0
            if self._tel is not None:
                self._tel.event(
                    "barrier", "release", t, sm=self.sm_id, warps=released
                )
        else:
            warp.next_ready = NEVER
            warp.block_reason = StallReason.SYNC

    def _execute_exit(self, gpu, warp: Warp, t: float) -> None:
        warp.exited = True
        self.warps.remove(warp)
        self.scheduler.retired(warp)
        cta = warp.cta
        if cta.live_warps == 0:
            self._release_cta(cta)
            # Same GPU-side bookkeeping hook as the event core.
            gpu.cta_finished(self, cta.grid, t, cta)
        elif cta.barrier_arrived and cta.barrier_ready():
            # An exiting warp can satisfy a barrier its peers wait on.
            released = 0
            for peer in cta.warps:
                if not peer.exited and peer.block_reason is StallReason.SYNC:
                    released += 1
                    peer.next_ready = t + 1
                    peer.block_reason = None
            cta.barrier_arrived = 0
            if self._tel is not None:
                self._tel.event(
                    "barrier", "release", t, sm=self.sm_id, warps=released
                )


__all__ = ["ReferenceSM"]
